// Fast prototyping with the task-level communication model: sweep topology
// and switching strategy for a halo-exchange workload *before* committing to
// a detailed node design.
//
// This is the workflow Section 3.2 sketches: "if there is only the need for
// fast prototyping, then just using the communication model might be
// sufficient" — whole machines simulated with minor slowdown.
//
//   $ ./examples/stencil_prototyping
#include <iostream>

#include "core/workbench.hpp"
#include "gen/stochastic.hpp"
#include "machine/config.hpp"
#include "stats/stats.hpp"

int main() {
  using namespace merm;

  // A synthetic task-level description of a communication-heavy iterative
  // code: a short compute step followed by a random-permutation exchange of
  // 64 KiB messages (traffic that actually stresses path length), 12 steps.
  gen::StochasticDescription desc;
  desc.task_level = true;
  desc.rounds = 12;
  desc.mean_task_ticks = 100 * sim::kTicksPerMicrosecond;
  desc.comm.pattern = gen::CommPattern::kRandomPerm;
  desc.comm.message_bytes = 64 * 1024;
  desc.seed = 2024;

  stats::Table table({"topology", "switching", "sim time", "mean msg latency",
                      "link util"});

  struct Config {
    machine::TopologyKind topo;
    std::array<std::uint32_t, 2> dims;
    machine::Switching sw;
  };
  const Config configs[] = {
      {machine::TopologyKind::kRing, {16, 1}, machine::Switching::kStoreAndForward},
      {machine::TopologyKind::kRing, {16, 1}, machine::Switching::kWormhole},
      {machine::TopologyKind::kMesh2D, {4, 4}, machine::Switching::kStoreAndForward},
      {machine::TopologyKind::kMesh2D, {4, 4}, machine::Switching::kWormhole},
      {machine::TopologyKind::kTorus2D, {4, 4}, machine::Switching::kWormhole},
      {machine::TopologyKind::kHypercube, {16, 1}, machine::Switching::kWormhole},
  };

  for (const Config& c : configs) {
    machine::MachineParams arch = machine::presets::generic_risc(4, 4);
    arch.topology.kind = c.topo;
    arch.topology.dims = c.dims;
    arch.router.switching = c.sw;
    arch.name = std::string(machine::to_string(c.topo)) + "/" +
                machine::to_string(c.sw);

    core::Workbench wb(arch);
    auto w = gen::make_stochastic_task_workload(desc, arch.node_count());
    const core::RunResult r = wb.run_task_level(w);
    if (!r.completed) {
      std::cerr << "deadlock on " << arch.name << "\n";
      return 1;
    }
    table.add_row(
        {machine::to_string(c.topo), machine::to_string(c.sw),
         sim::format_time(r.simulated_time),
         sim::format_time(static_cast<sim::Tick>(
             wb.machine().network().message_latency_ticks.mean())),
         stats::Table::fmt(
             wb.machine().network().mean_link_utilization(r.simulated_time),
             4)});
  }
  table.print(std::cout);
  std::cout << "\nLong ring paths hurt under random traffic, and on the "
               "saturated ring wormhole\nis *worse* than store-and-forward — "
               "blocked worms hold whole paths.  Richer\ntopologies lower "
               "per-link load until switching strategy barely matters:\n"
               "exactly the interaction a designer wants to discover before "
               "building anything.\n";
  return 0;
}
