// Hybrid architectures (Section 4.3): clusters of shared-memory
// multiprocessors connected by a message-passing network.
//
// Compares three machines with the same total CPU count (8) on a
// master-worker workload:
//   - 8 uniprocessor nodes on a ring,
//   - 4 dual-CPU SMP nodes on a ring (CPUs share L1-coherent memory),
//   - 1 node with 8 CPUs (pure shared-memory multiprocessor; the
//     communication model degenerates to local delivery).
//
//   $ ./examples/hybrid_cluster
#include <iostream>

#include "core/workbench.hpp"
#include "gen/stochastic.hpp"
#include "stats/stats.hpp"

int main() {
  using namespace merm;

  stats::Table table({"machine", "nodes x cpus", "sim time", "messages",
                      "bus wait (mean ns)", "snoop invalidations"});

  struct Shape {
    std::uint32_t nodes;
    std::uint32_t cpus;
  };
  for (const Shape shape : {Shape{8, 1}, Shape{4, 2}, Shape{1, 8}}) {
    machine::MachineParams arch = machine::presets::generic_risc(shape.nodes, 1);
    arch.topology.kind = machine::TopologyKind::kRing;
    arch.topology.dims = {shape.nodes, 1};
    arch.node.cpu_count = shape.cpus;
    arch.name = std::to_string(shape.nodes) + "x" + std::to_string(shape.cpus);

    // Same aggregate synthetic load on every machine: each CPU runs the
    // instruction mix; node-level ring exchange when >1 node.
    gen::StochasticDescription desc;
    desc.instructions_per_round = 4000;
    desc.rounds = 3;
    desc.comm.pattern =
        shape.nodes > 1 ? gen::CommPattern::kRing : gen::CommPattern::kNone;
    desc.comm.message_bytes = 8 * 1024;
    desc.memory.data_working_set = 32 * 1024;  // shared-hot on SMP nodes
    desc.seed = 11;

    core::Workbench wb(arch);
    auto w = gen::make_stochastic_workload(desc, shape.nodes, shape.cpus);
    const core::RunResult r = wb.run_detailed(w);
    if (!r.completed) return 1;

    std::uint64_t invalidations = 0;
    double bus_wait = 0.0;
    for (std::uint32_t n = 0; n < shape.nodes; ++n) {
      auto& mem = wb.machine().compute_node(n).memory();
      for (std::uint32_t c = 0; c < shape.cpus; ++c) {
        invalidations += mem.l1(c, memory::AccessType::kLoad)
                             ->invalidations.value();
      }
      bus_wait += mem.bus().queue_wait_ticks.mean();
    }
    bus_wait /= shape.nodes;

    table.add_row({arch.name,
                   std::to_string(shape.nodes) + " x " +
                       std::to_string(shape.cpus),
                   sim::format_time(r.simulated_time),
                   std::to_string(r.messages),
                   stats::Table::fmt(bus_wait / sim::kTicksPerNanosecond, 1),
                   std::to_string(invalidations)});
  }
  table.print(std::cout);
  std::cout << "\nPacking CPUs onto nodes trades network messages for bus "
               "contention and\ncoherence traffic — the tradeoff hybrid "
               "architectures navigate.\n";
  return 0;
}
