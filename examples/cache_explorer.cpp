// Single-node design-space exploration on the PowerPC 601 model: sweep the
// L1 size and watch hit rates and execution time move — the study that
// direct-execution simulators fundamentally cannot do (Section 2).  The six
// candidate hierarchies run concurrently on the sweep engine; results are
// bit-identical to the old serial loop.
//
//   $ ./examples/cache_explorer [--threads=N]
#include <iostream>

#include "core/workbench.hpp"
#include "explore/sweep.hpp"
#include "gen/apps.hpp"
#include "machine/config.hpp"
#include "stats/stats.hpp"

int main(int argc, char** argv) {
  using namespace merm;

  // A working set of 64 KiB (2 x 4096 doubles), streamed 6 times.
  const gen::AppFn app = [](gen::Annotator& a, trace::NodeId self,
                            std::uint32_t nodes) {
    gen::compute_kernel(a, self, nodes, gen::ComputeKernelParams{4096, 6, 1});
  };

  explore::Sweep sweep;
  sweep.workload = [&](const machine::MachineParams&, std::uint64_t) {
    return gen::make_offline_workload(1, app);
  };
  sweep.probe = [](core::Workbench& wb, const core::RunResult& r) {
    auto& mem = wb.machine().compute_node(0).memory();
    return std::vector<std::pair<std::string, double>>{
        {"L1 hit rate", mem.l1(0, memory::AccessType::kLoad)->hit_rate()},
        {"L2 hit rate", mem.shared_level(1)->hit_rate()},
        {"DRAM accesses", static_cast<double>(mem.dram_accesses.value())},
        {"cycles/op", static_cast<double>(r.simulated_cpu_cycles) /
                          static_cast<double>(r.operations)}};
  };

  for (const std::uint64_t l1 :
       {4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024}) {
    // Parameterize the preset through the config layer, as a user sweeping
    // a design space from files would.
    sweep.add(machine::parse_config_string(
                  "name = ppc601-l1-" + std::to_string(l1 / 1024) + "k\n"
                  "[cache.0]\n"
                  "size_bytes = " + std::to_string(l1) + "\n",
                  machine::presets::powerpc601_node()),
              "L1 " + sim::format_bytes(l1));
  }

  unsigned threads = 0;
  try {
    threads = explore::threads_from_args(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  explore::SweepEngine engine({.threads = threads});
  explore::SweepResult result;
  try {
    engine.run_into(sweep, result);
  } catch (const std::exception& e) {
    std::cerr << "sweep failed: " << e.what() << "\n";
    return 1;
  }
  for (const explore::PointResult& p : result.points) {
    if (!p.run.completed) return 1;
  }

  result.to_table().print(std::cout);
  std::cout << "\nOnce the L1 covers the 64 KiB working set the hit rate "
               "saturates and\nexecution time stops improving — the knee a "
               "designer is looking for.\n";
  return 0;
}
