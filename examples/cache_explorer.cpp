// Single-node design-space exploration on the PowerPC 601 model: sweep the
// L1 size and watch hit rates and execution time move — the study that
// direct-execution simulators fundamentally cannot do (Section 2), here a
// ten-line loop over config strings.
//
//   $ ./examples/cache_explorer
#include <iostream>

#include "core/workbench.hpp"
#include "gen/apps.hpp"
#include "machine/config.hpp"
#include "stats/stats.hpp"

int main() {
  using namespace merm;

  // A working set of 64 KiB (2 x 4096 doubles), streamed 6 times.
  const gen::AppFn app = [](gen::Annotator& a, trace::NodeId self,
                            std::uint32_t nodes) {
    gen::compute_kernel(a, self, nodes, gen::ComputeKernelParams{4096, 6, 1});
  };

  stats::Table table({"L1 size", "L1 hit rate", "L2 hit rate", "DRAM accesses",
                      "sim time", "cycles/op"});

  for (const std::uint64_t l1 :
       {4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024}) {
    // Parameterize the preset through the config layer, as a user sweeping
    // a design space from files would.
    machine::MachineParams arch = machine::parse_config_string(
        "name = ppc601-l1-" + std::to_string(l1 / 1024) + "k\n"
        "[cache.0]\n"
        "size_bytes = " + std::to_string(l1) + "\n",
        machine::presets::powerpc601_node());

    core::Workbench wb(arch);
    auto w = gen::make_offline_workload(1, app);
    const core::RunResult r = wb.run_detailed(w);
    if (!r.completed) return 1;

    auto& mem = wb.machine().compute_node(0).memory();
    const auto* l1c = mem.l1(0, memory::AccessType::kLoad);
    const auto* l2c = mem.shared_level(1);
    table.add_row(
        {sim::format_bytes(l1), stats::Table::fmt(l1c->hit_rate(), 4),
         stats::Table::fmt(l2c->hit_rate(), 4),
         std::to_string(mem.dram_accesses.value()),
         sim::format_time(r.simulated_time),
         stats::Table::fmt(static_cast<double>(r.simulated_cpu_cycles) /
                               static_cast<double>(r.operations),
                           2)});
  }
  table.print(std::cout);
  std::cout << "\nOnce the L1 covers the 64 KiB working set the hit rate "
               "saturates and\nexecution time stops improving — the knee a "
               "designer is looking for.\n";
  return 0;
}
