// Architecture X vs Architecture Y (Fig. 1): the comparison driver the
// workbench exists for.
//
// Question a designer might ask in 1997: for a ring-rotation parallel
// matrix multiply, how much does upgrading a transputer mesh to a
// wormhole-routed RISC torus buy, and where does the time go?
//
//   $ ./examples/design_space
#include <iostream>

#include "core/workbench.hpp"
#include "gen/apps.hpp"
#include "stats/stats.hpp"

int main() {
  using namespace merm;

  const gen::AppFn app = [](gen::Annotator& a, trace::NodeId self,
                            std::uint32_t nodes) {
    gen::matmul_spmd(a, self, nodes, gen::MatmulParams{32});
  };
  const auto workload_for = [&](const machine::MachineParams& params) {
    return gen::make_offline_workload(params.node_count(), app);
  };

  stats::Table table({"architecture", "nodes", "sim time", "messages",
                      "net mean latency", "cpu busy frac"});

  for (const machine::MachineParams& arch :
       {machine::presets::t805_multicomputer(2, 2),
        machine::presets::ipsc860_hypercube(4),
        machine::presets::generic_risc(2, 2)}) {
    core::Workbench wb(arch);
    auto w = workload_for(arch);
    const core::RunResult r = wb.run_detailed(w);
    if (!r.completed) {
      std::cerr << "workload did not complete on " << arch.name << "\n";
      return 1;
    }
    double busy = 0.0;
    for (std::uint32_t n = 0; n < wb.machine().node_count(); ++n) {
      busy += static_cast<double>(
                  wb.machine().compute_node(n).cpu(0).busy_ticks()) /
              static_cast<double>(r.simulated_time);
    }
    busy /= wb.machine().node_count();
    table.add_row(
        {arch.name, std::to_string(arch.node_count()),
         sim::format_time(r.simulated_time), std::to_string(r.messages),
         sim::format_time(static_cast<sim::Tick>(
             wb.machine().network().message_latency_ticks.mean())),
         stats::Table::fmt(busy, 3)});
  }
  table.print(std::cout);

  // The one-call comparison API gives the headline number directly.
  const auto cmp =
      core::Workbench::compare(machine::presets::t805_multicomputer(2, 2),
                               machine::presets::generic_risc(2, 2),
                               workload_for);
  std::cout << "\ngeneric-risc runs this workload "
            << stats::Table::fmt(1.0 / cmp.speedup_x_over_y(), 1)
            << "x faster than t805 (simulated time).\n";
  return 0;
}
