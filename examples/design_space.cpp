// Architecture X vs Architecture Y (Fig. 1): the comparison driver the
// workbench exists for — now an experiment *campaign* on the parallel sweep
// engine: every candidate architecture simulates concurrently on its own
// host thread, with per-point results guaranteed bit-identical to running
// the grid serially.
//
// Question a designer might ask in 1997: for a ring-rotation parallel
// matrix multiply, how much does upgrading a transputer mesh to a
// wormhole-routed RISC torus buy, and where does the time go?
//
//   $ ./examples/design_space [--sweep-threads=N] [--sim-threads=N]
//                             [--faults=<spec>]
//
// --sweep-threads (alias --threads, -jN) runs N experiment points at once;
// --sim-threads parallelizes each point's own run with conservative PDES
// (points the PDES path cannot honor fall back to the serial engine).
//
// With --faults (e.g. --faults=link=0-1@100,drop=0.01,seed=7) every candidate
// runs in degraded mode: the sweep keeps going past faulted points and
// reports them as failure rows instead of aborting the campaign.
#include <cstring>
#include <iostream>
#include <string>

#include "core/workbench.hpp"
#include "explore/sweep.hpp"
#include "fault/fault.hpp"
#include "gen/apps.hpp"
#include "stats/stats.hpp"

int main(int argc, char** argv) {
  using namespace merm;

  std::string faults_spec;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      faults_spec = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      faults_spec = argv[++i];
    }
  }

  const gen::AppFn app = [](gen::Annotator& a, trace::NodeId self,
                            std::uint32_t nodes) {
    gen::matmul_spmd(a, self, nodes, gen::MatmulParams{32});
  };

  explore::Sweep sweep;
  sweep.workload = [&](const machine::MachineParams& params, std::uint64_t) {
    return gen::make_offline_workload(params.node_count(), app);
  };
  // Post-run probes run on the worker thread while the model is alive, so
  // the table can keep the columns the serial loop used to compute inline.
  sweep.probe = [](core::Workbench& wb, const core::RunResult& r) {
    double busy = 0.0;
    for (std::uint32_t n = 0; n < wb.machine().node_count(); ++n) {
      busy += static_cast<double>(
                  wb.machine().compute_node(n).cpu(0).busy_ticks()) /
              static_cast<double>(r.simulated_time);
    }
    busy /= wb.machine().node_count();
    return std::vector<std::pair<std::string, double>>{
        {"net mean latency (us)",
         wb.machine().network().message_latency_ticks.mean() /
             static_cast<double>(sim::kTicksPerMicrosecond)},
        {"cpu busy frac", busy}};
  };
  sweep.add(machine::presets::t805_multicomputer(2, 2));
  sweep.add(machine::presets::ipsc860_hypercube(4));
  sweep.add(machine::presets::generic_risc(2, 2));

  if (!faults_spec.empty()) {
    const machine::FaultParams faults = fault::parse_spec(faults_spec);
    for (explore::ExperimentPoint& p : sweep.points) p.params.fault = faults;
  }

  const explore::HostThreads host =
      explore::host_threads_from_args(argc, argv);
  explore::SweepEngine engine(
      {.threads = host.sweep_threads,
       .sim_threads = host.sim_threads,
       .progress = &std::cerr,
       // Degraded-mode campaigns record faulted points as failure rows and
       // keep simulating the rest of the grid.
       .keep_going = !faults_spec.empty()});
  explore::SweepResult result;
  try {
    engine.run_into(sweep, result);
  } catch (const std::exception& e) {
    std::cerr << "sweep failed: " << e.what() << "\n";
    return 1;
  }
  for (const explore::PointResult& p : result.points) {
    if (p.status == explore::PointResult::Status::kFailed) {
      std::cerr << p.label << " FAILED: " << p.error << "\n";
    } else if (!p.run.completed) {
      std::cerr << "workload did not complete on " << p.label << "\n";
      return 1;
    }
  }

  result.to_table().print(std::cout);
  std::cout << "(" << result.points.size() << " architectures on "
            << result.threads << " thread(s), "
            << stats::Table::fmt(result.host_seconds, 3) << " s wall)\n";

  // The one-call comparison API gives the headline number directly.
  const auto workload_for = [&](const machine::MachineParams& params) {
    return gen::make_offline_workload(params.node_count(), app);
  };
  const auto cmp =
      core::Workbench::compare(machine::presets::t805_multicomputer(2, 2),
                               machine::presets::generic_risc(2, 2),
                               workload_for);
  std::cout << "\ngeneric-risc runs this workload "
            << stats::Table::fmt(1.0 / cmp.speedup_x_over_y(), 1)
            << "x faster than t805 (simulated time).\n";
  return 0;
}
