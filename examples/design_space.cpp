// Architecture X vs Architecture Y (Fig. 1): the comparison driver the
// workbench exists for — now an experiment *campaign* on the parallel sweep
// engine: every candidate architecture simulates concurrently on its own
// host thread, with per-point results guaranteed bit-identical to running
// the grid serially.
//
// Question a designer might ask in 1997: for a ring-rotation parallel
// matrix multiply, how much does upgrading a transputer mesh to a
// wormhole-routed RISC torus buy, and where does the time go?
//
//   $ ./examples/design_space [--sweep-threads=N] [--sim-threads=N]
//                             [--sim-partitions=N|auto]
//                             [--faults=<spec>] [--out=<csv>] [--isolate]
//                             [--timeout=<s>] [--retries=<n>]
//                             [--memo-dir=<dir>] [--resume]
//
// --sweep-threads (alias --threads, -jN) runs N experiment points at once;
// --sim-threads parallelizes each point's own run with conservative PDES
// (points the PDES path cannot honor fall back to the serial engine);
// --sim-partitions pins the PDES partition count ('auto' = coarse blocks,
// min(sim-threads, nodes)).
//
// With --faults (e.g. --faults=link=0-1@100,drop=0.01,seed=7) every candidate
// runs in degraded mode: the sweep keeps going past faulted points and
// reports them as failure rows instead of aborting the campaign.
//
// Crash-safety: --out=<csv> also journals every finished row to
// <csv>.journal (fsync'd), so a killed campaign restarts with --resume and
// replays what it already paid for; --isolate forks each point into its own
// process (a segfault becomes a failure row, and --timeout/--retries become
// enforceable); --memo-dir caches finished rows by content hash across
// campaigns.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/workbench.hpp"
#include "explore/sweep.hpp"
#include "fault/fault.hpp"
#include "gen/apps.hpp"
#include "stats/stats.hpp"

namespace {

// `--name=value` / `--name value` string flags; boolean flags stand alone.
bool flag_value(int argc, char** argv, int& i, const char* name,
                std::string* out) {
  const std::string arg = argv[i];
  const std::string flag = std::string("--") + name;
  if (arg.rfind(flag + "=", 0) == 0) {
    *out = arg.substr(flag.size() + 1);
    return true;
  }
  if (arg == flag && i + 1 < argc) {
    *out = argv[++i];
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace merm;

  std::string faults_spec;
  std::string out_path;
  std::string memo_dir;
  std::string timeout_spec;
  std::string retries_spec;
  bool isolate = false;
  bool do_resume = false;
  for (int i = 1; i < argc; ++i) {
    if (flag_value(argc, argv, i, "faults", &faults_spec)) continue;
    if (flag_value(argc, argv, i, "out", &out_path)) continue;
    if (flag_value(argc, argv, i, "memo-dir", &memo_dir)) continue;
    if (flag_value(argc, argv, i, "timeout", &timeout_spec)) continue;
    if (flag_value(argc, argv, i, "retries", &retries_spec)) continue;
    if (std::strcmp(argv[i], "--isolate") == 0) isolate = true;
    if (std::strcmp(argv[i], "--resume") == 0) do_resume = true;
  }

  const gen::AppFn app = [](gen::Annotator& a, trace::NodeId self,
                            std::uint32_t nodes) {
    gen::matmul_spmd(a, self, nodes, gen::MatmulParams{32});
  };

  explore::Sweep sweep;
  sweep.workload = [&](const machine::MachineParams& params, std::uint64_t) {
    return gen::make_offline_workload(params.node_count(), app);
  };
  // Names what the factory generates, for the memo store and the journal's
  // grid check; bump the suffix when the generated traffic changes.
  sweep.workload_fingerprint = "design_space:matmul32:v1";
  // Post-run probes run on the worker thread while the model is alive, so
  // the table can keep the columns the serial loop used to compute inline.
  sweep.probe = [](core::Workbench& wb, const core::RunResult& r) {
    double busy = 0.0;
    for (std::uint32_t n = 0; n < wb.machine().node_count(); ++n) {
      busy += static_cast<double>(
                  wb.machine().compute_node(n).cpu(0).busy_ticks()) /
              static_cast<double>(r.simulated_time);
    }
    busy /= wb.machine().node_count();
    return std::vector<std::pair<std::string, double>>{
        {"net mean latency (us)",
         wb.machine().network().message_latency_ticks.mean() /
             static_cast<double>(sim::kTicksPerMicrosecond)},
        {"cpu busy frac", busy}};
  };
  sweep.add(machine::presets::t805_multicomputer(2, 2));
  sweep.add(machine::presets::ipsc860_hypercube(4));
  sweep.add(machine::presets::generic_risc(2, 2));

  if (!faults_spec.empty()) {
    const machine::FaultParams faults = fault::parse_spec(faults_spec);
    for (explore::ExperimentPoint& p : sweep.points) p.params.fault = faults;
  }

  const std::string journal =
      out_path.empty() ? std::string() : out_path + ".journal";
  if (do_resume && journal.empty()) {
    std::cerr << "error: --resume needs --out=<csv> (the journal lives at "
                 "<csv>.journal)\n";
    return 2;
  }

  explore::HostThreads host;
  double timeout_s = 0.0;
  unsigned retries = 1;
  try {
    host = explore::host_threads_from_args(argc, argv);
    if (!timeout_spec.empty()) timeout_s = std::stod(timeout_spec);
    if (!retries_spec.empty()) {
      retries = static_cast<unsigned>(std::stoul(retries_spec));
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  explore::SweepEngine engine(
      {.threads = host.sweep_threads,
       .sim_threads = host.sim_threads,
       .sim_partitions = host.sim_partitions,
       .progress = &std::cerr,
       // Degraded-mode and isolated campaigns record faulted/crashed points
       // as failure rows and keep simulating the rest of the grid.
       .keep_going = !faults_spec.empty() || isolate,
       .isolate =
           isolate ? explore::Isolation::kProcess : explore::Isolation::kNone,
       .point_timeout_s = timeout_s,
       .max_attempts = retries,
       // resume() appends to the existing journal; a fresh run truncates it.
       .journal_path = do_resume ? std::string() : journal,
       .memo_dir = memo_dir});
  explore::SweepResult result;
  try {
    if (do_resume) {
      result = engine.resume(sweep, journal);
    } else {
      engine.run_into(sweep, result);
    }
  } catch (const std::exception& e) {
    std::cerr << "sweep failed: " << e.what() << "\n";
    return 1;
  }
  for (const explore::PointResult& p : result.points) {
    if (p.status == explore::PointResult::Status::kFailed) {
      std::cerr << p.label << " FAILED"
                << (p.error_type.empty() ? "" : " [" + p.error_type + "]")
                << ": " << p.error << "\n";
    } else if (!p.run.completed) {
      std::cerr << "workload did not complete on " << p.label << "\n";
      return 1;
    }
  }

  result.to_table().print(std::cout);
  std::cout << "(" << result.points.size() << " architectures on "
            << result.threads << " thread(s), "
            << stats::Table::fmt(result.host_seconds, 3) << " s wall)\n";
  if (result.resumed_points > 0) {
    std::cout << result.resumed_points
              << " point(s) replayed from the journal\n";
  }
  if (!memo_dir.empty()) {
    std::cout << "memo: " << result.memo_hits << " hit(s), "
              << result.memo_misses << " miss(es) in " << memo_dir << "\n";
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    result.write_csv(out);
    std::cout << "results written to " << out_path << " (journal: " << journal
              << ")\n";
  }

  // The one-call comparison API gives the headline number directly.
  const auto workload_for = [&](const machine::MachineParams& params) {
    return gen::make_offline_workload(params.node_count(), app);
  };
  const auto cmp =
      core::Workbench::compare(machine::presets::t805_multicomputer(2, 2),
                               machine::presets::generic_risc(2, 2),
                               workload_for);
  std::cout << "\ngeneric-risc runs this workload "
            << stats::Table::fmt(1.0 / cmp.speedup_x_over_y(), 1)
            << "x faster than t805 (simulated time).\n";
  return 0;
}
