// Quickstart: simulate a 4x4 T805 transputer multicomputer running an
// annotated SPMD stencil, at both abstraction levels.
//
//   $ ./examples/quickstart
//
// Walks through the canonical workbench workflow:
//   1. pick an architecture (a preset; see examples/cache_explorer.cpp for
//      config-file parameterization),
//   2. describe the application (an annotated kernel),
//   3. run the detailed simulation and read the results,
//   4. derive the task-level workload from the run and replay it — the
//      fast-prototyping path.
#include <iostream>

#include "core/workbench.hpp"
#include "gen/apps.hpp"

int main() {
  using namespace merm;

  // 1. Architecture: 16 transputers on a 4x4 store-and-forward mesh.
  const machine::MachineParams arch = machine::presets::t805_multicomputer(4, 4);
  std::cout << "Machine: " << arch.name << ", " << arch.node_count()
            << " nodes\n\n";

  // 2. Application: a 32x32 Jacobi stencil, 4 iterations, strip-partitioned
  //    over all 16 nodes with halo exchanges.
  const gen::AppFn app = [](gen::Annotator& a, trace::NodeId self,
                            std::uint32_t nodes) {
    gen::stencil_spmd(a, self, nodes, gen::StencilParams{32, 4});
  };

  // 3. Detailed (operation-level) simulation.
  core::Workbench detailed(arch);
  auto workload = gen::make_offline_workload(arch.node_count(), app);
  std::vector<node::TaskRecorder> recorders;
  const core::RunResult r1 =
      detailed.run_detailed(workload, sim::kTickMax, &recorders);
  r1.print(std::cout);

  std::cout << "\nNetwork: " << detailed.machine().network().messages.value()
            << " messages, mean latency "
            << sim::format_time(static_cast<sim::Tick>(
                   detailed.machine().network().message_latency_ticks.mean()))
            << ", mean hops "
            << detailed.machine().network().message_hops.mean() << "\n\n";

  // 4. Fast prototyping: replay the derived task-level workload.
  core::Workbench task_level(arch);
  trace::Workload tasks;
  for (const auto& rec : recorders) {
    tasks.sources.push_back(
        std::make_unique<trace::VectorSource>(rec.task_trace()));
  }
  const core::RunResult r2 = task_level.run_task_level(tasks);
  r2.print(std::cout);

  std::cout << "\nTask-level replay reproduced the detailed execution time "
               "within "
            << stats::Table::fmt(
                   100.0 *
                       std::abs(static_cast<double>(r2.simulated_time) -
                                static_cast<double>(r1.simulated_time)) /
                       static_cast<double>(r1.simulated_time),
                   2)
            << "% using "
            << (r1.events_processed / std::max<std::uint64_t>(
                                          1, r2.events_processed))
            << "x fewer simulator events.\n";
  return 0;
}
