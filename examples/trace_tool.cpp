// Trace utility: record, inspect and convert workbench traces — the
// post-mortem analysis entry point of the environment (Fig. 1).
//
//   $ ./examples/trace_tool record stencil out.trc   # annotated kernel -> file
//   $ ./examples/trace_tool stats out.trc            # per-node summaries
//   $ ./examples/trace_tool dump out.trc | head      # text form
//   $ ./examples/trace_tool convert out.trc out.txt  # binary -> text
//
// It also handles the observability layer's execution timelines (the .mobt
// files mermaid_cli writes with --trace-out):
//
//   $ ./examples/trace_tool chrome run.mobt run.json # -> Perfetto-loadable
//   $ ./examples/trace_tool timeline run.mobt        # per-track summary
#include <array>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "gen/apps.hpp"
#include "obs/binary_trace.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace_stats.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace merm;

int usage() {
  std::cerr << "usage:\n"
            << "  trace_tool record <stencil|matmul|allreduce|pingpong> <file>\n"
            << "  trace_tool stats <file> [--top <n>]\n"
            << "  trace_tool dump <file>\n"
            << "  trace_tool convert <binary-in> <text-out>\n"
            << "  trace_tool compress <binary-in> <packed-out>\n"
            << "  trace_tool decompress <packed-in> <binary-out>\n"
            << "  trace_tool chrome <timeline-in> <json-out>   # -> Perfetto\n"
            << "  trace_tool timeline <timeline-in>            # summarize\n"
            << "\n<timeline-in> is an execution timeline written by\n"
            << "'mermaid_cli run --trace-out=<file>' (compact binary form)\n"
            << "stats sniffs the file: execution timelines (MOBT) get a\n"
            << "wait-state report (compute vs bus-wait vs link-transit vs\n"
            << "send/recv-blocked, per-track totals, the --top <n> longest\n"
            << "spans); annotated operation traces get per-node op counts\n";
  return 2;
}

std::vector<std::vector<trace::Operation>> load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return trace::read_binary(in);
}

int cmd_record(const std::string& kernel, const std::string& path) {
  gen::AppFn app;
  std::uint32_t nodes = 4;
  if (kernel == "stencil") {
    app = [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
      gen::stencil_spmd(a, s, n, gen::StencilParams{32, 4});
    };
  } else if (kernel == "matmul") {
    app = [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
      gen::matmul_spmd(a, s, n, gen::MatmulParams{32});
    };
  } else if (kernel == "allreduce") {
    app = [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
      gen::allreduce_spmd(a, s, n, gen::AllReduceParams{512, 2});
    };
  } else if (kernel == "pingpong") {
    nodes = 2;
    app = [](gen::Annotator& a, trace::NodeId s, std::uint32_t n) {
      gen::pingpong(a, s, n, gen::PingPongParams{16, 4096});
    };
  } else {
    return usage();
  }
  const auto traces = gen::record_app_traces(nodes, app);
  std::ofstream out(path, std::ios::binary);
  trace::write_binary(out, traces);
  std::uint64_t total = 0;
  for (const auto& t : traces) total += t.size();
  std::cout << "wrote " << total << " operations for " << nodes
            << " nodes to " << path << "\n";
  return 0;
}

/// True when the file starts with the execution-timeline magic ('M','O',
/// 'B','T') — those get the wait-state analyzer, everything else is an
/// annotated operation trace.
bool is_timeline_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  return in.gcount() == 4 && magic[0] == 'M' && magic[1] == 'O' &&
         magic[2] == 'B' && magic[3] == 'T';
}

int cmd_stats(const std::string& path, std::size_t top_k) {
  if (is_timeline_file(path)) {
    std::ifstream in(path, std::ios::binary);
    const obs::TraceData data = obs::read_binary_trace(in);
    obs::write_trace_stats(std::cout, data, {.top_k = top_k});
    return 0;
  }
  const auto traces = load(path);
  for (std::size_t n = 0; n < traces.size(); ++n) {
    std::map<trace::OpCode, std::uint64_t> histogram;
    std::uint64_t bytes_sent = 0;
    for (const auto& op : traces[n]) {
      histogram[op.code] += 1;
      if (op.code == trace::OpCode::kSend || op.code == trace::OpCode::kASend) {
        bytes_sent += op.value;
      }
    }
    std::cout << "node " << n << ": " << traces[n].size() << " operations\n";
    for (const auto& [code, count] : histogram) {
      std::cout << "  " << trace::to_string(code) << ": " << count << "\n";
    }
    if (bytes_sent > 0) {
      std::cout << "  bytes sent: " << bytes_sent << "\n";
    }
  }
  return 0;
}

int cmd_dump(const std::string& path) {
  const auto traces = load(path);
  trace::write_text_multi(std::cout, traces);
  return 0;
}

int cmd_convert(const std::string& in_path, const std::string& out_path) {
  const auto traces = load(in_path);
  std::ofstream out(out_path);
  trace::write_text_multi(out, traces);
  std::cout << "converted " << in_path << " -> " << out_path << "\n";
  return 0;
}

int cmd_compress(const std::string& in_path, const std::string& out_path) {
  const auto traces = load(in_path);
  std::ofstream out(out_path, std::ios::binary);
  trace::write_compressed(out, traces);
  out.flush();
  std::ifstream a(in_path, std::ios::binary | std::ios::ate);
  std::ifstream b(out_path, std::ios::binary | std::ios::ate);
  std::cout << "compressed " << a.tellg() << " -> " << b.tellg() << " bytes\n";
  return 0;
}

obs::TraceData load_timeline(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return obs::read_binary_trace(in);
}

int cmd_chrome(const std::string& in_path, const std::string& out_path) {
  const obs::TraceData data = load_timeline(in_path);
  std::ofstream out(out_path, std::ios::binary);
  obs::write_chrome_trace(out, data);
  std::cout << "converted " << in_path << " -> " << out_path << " ("
            << data.events.size()
            << " events; open it at https://ui.perfetto.dev)\n";
  return 0;
}

int cmd_timeline(const std::string& path) {
  const obs::TraceData data = load_timeline(path);
  std::cout << "sealed at " << data.sealed_at << " ps"
            << (data.hung ? " (run HUNG; open spans are the blockers)" : "")
            << ", " << data.tracks.size() << " tracks, " << data.events.size()
            << " events\n";
  // Per-track event counts by kind, plus any unterminated spans.
  for (std::size_t t = 0; t < data.tracks.size(); ++t) {
    std::map<obs::SpanKind, std::uint64_t> by_kind;
    std::uint64_t open = 0;
    for (const auto& ev : data.events) {
      if (ev.track != t) continue;
      by_kind[ev.kind] += 1;
      if ((ev.flags & obs::kFlagOpen) != 0) open += 1;
    }
    if (by_kind.empty()) continue;
    std::cout << "  " << data.tracks[t].name << ":";
    for (const auto& [kind, count] : by_kind) {
      std::cout << " " << obs::to_string(kind) << "=" << count;
    }
    if (open > 0) std::cout << " open=" << open;
    if (data.tracks[t].dropped > 0) {
      std::cout << " dropped=" << data.tracks[t].dropped;
    }
    std::cout << "\n";
  }
  return 0;
}

int cmd_decompress(const std::string& in_path, const std::string& out_path) {
  std::ifstream in(in_path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + in_path);
  const auto traces = trace::read_compressed(in);
  std::ofstream out(out_path, std::ios::binary);
  trace::write_binary(out, traces);
  std::cout << "decompressed " << in_path << " -> " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.size() == 3 && args[0] == "record") {
      return cmd_record(args[1], args[2]);
    }
    if (args.size() >= 2 && args[0] == "stats") {
      std::size_t top_k = 10;
      std::string file;
      for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--top" && i + 1 < args.size()) {
          top_k = static_cast<std::size_t>(std::stoull(args[++i]));
        } else if (args[i].rfind("--top=", 0) == 0) {
          top_k = static_cast<std::size_t>(std::stoull(args[i].substr(6)));
        } else if (file.empty()) {
          file = args[i];
        } else {
          return usage();
        }
      }
      if (file.empty()) return usage();
      return cmd_stats(file, top_k);
    }
    if (args.size() == 2 && args[0] == "dump") return cmd_dump(args[1]);
    if (args.size() == 3 && args[0] == "convert") {
      return cmd_convert(args[1], args[2]);
    }
    if (args.size() == 3 && args[0] == "compress") {
      return cmd_compress(args[1], args[2]);
    }
    if (args.size() == 3 && args[0] == "decompress") {
      return cmd_decompress(args[1], args[2]);
    }
    if (args.size() == 3 && args[0] == "chrome") {
      return cmd_chrome(args[1], args[2]);
    }
    if (args.size() == 2 && args[0] == "timeline") {
      return cmd_timeline(args[1]);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
