// The workbench as a command-line tool: machine descriptions and workload
// descriptions are files; evaluating an architecture is a shell command.
//
//   $ ./examples/mermaid_cli presets
//   $ ./examples/mermaid_cli describe preset:t805:4x4 > t805.cfg
//   $ ./examples/mermaid_cli describe-workload > ring.wl
//   $ ./examples/mermaid_cli run --machine t805.cfg --workload ring.wl
//   $ ./examples/mermaid_cli run --machine preset:risc:2x2 ...
//       ... --workload ring.wl --level task --stats out.csv
//
// Sweeps also run as a service: `mermaid_cli serve` starts a daemon that
// accepts jobs over a unix socket, shares one memo store across all
// submissions, and survives kill -9 (jobs resume from their journals).
//
//   $ ./examples/mermaid_cli serve --socket /tmp/merm.sock --spool /tmp/spool &
//   $ ./examples/mermaid_cli submit --socket /tmp/merm.sock ...
//         ... --machine preset:t805:4x4 --workload ring.wl --wait
//   $ ./examples/mermaid_cli fetch --socket /tmp/merm.sock --job <id> > out.csv
#include <csignal>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/workbench.hpp"
#include "explore/memo.hpp"
#include "explore/progress.hpp"
#include "explore/sweep.hpp"
#include "gen/workload_config.hpp"
#include "machine/config.hpp"
#include "obs/binary_trace.hpp"
#include "obs/chrome_trace.hpp"
#include "serve/client.hpp"
#include "serve/job.hpp"
#include "serve/server.hpp"

namespace {

using namespace merm;

int usage() {
  std::cerr
      << "usage:\n"
      << "  mermaid_cli presets\n"
      << "  mermaid_cli describe <machine>            # print full config\n"
      << "  mermaid_cli describe-workload             # print defaults\n"
      << "  mermaid_cli run --machine <machine> --workload <file>\n"
      << "              [--level detailed|task] [--stats <csv>]\n"
      << "              [--progress <us>] [--faults <spec|file>]\n"
      << "              [--trace-out <file>] [--sim-threads <n>]\n"
      << "              [--sim-partitions <n|auto>] [--pdes-metrics]\n"
      << "  mermaid_cli sweep --machine <m> [--machine <m> ...] "
      << "--workload <file>\n"
      << "              [--level detailed|task] [--out <csv>]\n"
      << "              [--sweep-threads <n>] [--sim-threads <n>]\n"
      << "              [--sim-partitions <n|auto>] [--pdes-columns]\n"
      << "              [--faults <spec|file>] [--isolate] [--timeout <s>]\n"
      << "              [--retries <n>] [--resume] [--memo-dir <dir>]\n"
      << "              [--progress] [--no-host-columns]\n"
      << "  mermaid_cli serve --socket <path> --spool <dir>\n"
      << "              [--job-workers <n>] [--memo-max-bytes <n>]\n"
      << "              [--memo-max-age <s>] [--metrics-file <path>]\n"
      << "              [--metrics-interval <s>]\n"
      << "  mermaid_cli submit --socket <path> --machine <m> [...] "
      << "--workload <file>\n"
      << "              [--level detailed|task] [--faults <spec|file>]\n"
      << "              [--no-isolate] [--timeout <s>] [--retries <n>]\n"
      << "              [--sweep-threads <n>] [--sim-threads <n>]\n"
      << "              [--sim-partitions <n|auto>] [--wait]\n"
      << "  mermaid_cli status --socket <path> [--job <id>] [--json]\n"
      << "  mermaid_cli metrics --socket <path> [--json]\n"
      << "  mermaid_cli jobs --socket <path>\n"
      << "  mermaid_cli fetch --socket <path> --job <id> "
      << "[--format csv|json] [--out <file>]\n"
      << "  mermaid_cli cancel --socket <path> --job <id>\n"
      << "  mermaid_cli shutdown --socket <path>\n"
      << "  mermaid_cli memo-gc (--memo-dir <dir> | --socket <path>)\n"
      << "              [--max-bytes <n>] [--max-age <s>]\n"
      << "\n<machine> is a config file path or "
      << "preset:{t805|ppc601|risc|ipsc860}[:WxH]\n"
      << "--sim-threads parallelizes the single run with conservative PDES\n"
      << "(results are identical for any n >= 1 at a fixed --sim-partitions;\n"
      << "incompatible machines fall back to the serial engine with a note)\n"
      << "--sim-partitions sets the PDES partition count; 'auto' (default)\n"
      << "uses min(sim-threads, nodes) coarse topology blocks\n"
      << "--pdes-columns adds a pdes.fallback column to sweep rows\n"
      << "--faults takes a config file (overlaid on the machine) or an\n"
      << "inline spec, e.g. 'link=0-1@100:500,drop=0.01,retries=6,seed=7'\n"
      << "sweep runs one grid row per --machine; with --out the finished\n"
      << "rows are journaled (fsync'd) to <csv>.journal as they land, and\n"
      << "--resume replays that journal instead of re-running; --isolate\n"
      << "forks each point (crashes become failure rows; --timeout/--retries\n"
      << "become enforceable); --memo-dir caches rows by content hash;\n"
      << "--progress streams done/total, failure and memo counts, rolling\n"
      << "throughput and an ETA to stderr; --no-host-columns drops the\n"
      << "nondeterministic host-cost columns so outputs byte-compare\n"
      << "serve runs the sweep service: jobs submitted to its socket share\n"
      << "one memo store under <spool>, and a killed daemon resumes its\n"
      << "unfinished jobs on restart; submit sends a sweep to it (--wait\n"
      << "polls progress until done), fetch retrieves results (identical\n"
      << "bytes to `sweep --no-host-columns` of the same grid)\n"
      << "--trace-out records an execution trace: a .json path gets Chrome\n"
      << "trace-event JSON (load it in Perfetto / chrome://tracing), any\n"
      << "other suffix gets the compact binary form (see trace_tool)\n"
      << "--pdes-metrics profiles the PDES partitions (host-side only, the\n"
      << "simulated result is unchanged) and prints per-partition events,\n"
      << "busy time, barrier wait and per-window imbalance after the run\n"
      << "metrics scrapes the daemon's runtime telemetry (Prometheus text,\n"
      << "or JSON with --json); serve --metrics-file atomically rewrites\n"
      << "the same exposition to a file every --metrics-interval seconds\n";
  return 2;
}

int cmd_presets() {
  std::cout << "preset:t805[:WxH]   20 MHz T805 transputer mesh, "
               "store-and-forward\n";
  std::cout << "preset:ppc601       66 MHz PowerPC 601 node, 2 cache levels\n";
  std::cout << "preset:risc[:WxH]   200 MHz generic RISC torus, wormhole\n";
  std::cout << "preset:ipsc860[:WxH] 40 MHz i860 hypercube (WxH nodes), "
               "cut-through\n";
  return 0;
}

int cmd_describe(const std::string& spec) {
  machine::write_config(std::cout, serve::resolve_machine(spec));
  return 0;
}

int cmd_describe_workload() {
  gen::StochasticDescription d;
  gen::write_workload(std::cout, d);
  return 0;
}

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct RunArgs {
  std::string machine;
  std::string workload;
  std::string level = "detailed";
  std::string stats_out;
  std::string faults;
  std::string trace_out;
  std::uint64_t progress_us = 0;
  unsigned sim_threads = 0;
  std::uint32_t sim_partitions = 0;  ///< 0 = auto
  bool pdes_metrics = false;
};

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Human rendering of the PDES partition profile (`run --pdes-metrics`).
/// Host-side timings vary run to run; the simulated result does not.
void print_pdes_profile(std::ostream& os,
                        const sim::pdes::Engine::Profile& p) {
  const auto ms = [](std::uint64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", static_cast<double>(ns) / 1e6);
    return std::string(buf);
  };
  os << "[pdes-metrics] " << p.windows << " window(s), barrier wait "
     << ms(p.barrier_wait_ns) << " ms, " << p.mail_delivered
     << " engine mail delivered\n";
  if (p.measured_windows > 0) {
    char mean[32], peak[32];
    std::snprintf(mean, sizeof(mean), "%.2f", p.imbalance_mean());
    std::snprintf(peak, sizeof(peak), "%.2f", p.imbalance_max);
    os << "[pdes-metrics] per-window imbalance (peak/mean busy): mean " << mean
       << "x, worst " << peak << "x over " << p.measured_windows
       << " measured window(s)\n";
  }
  for (std::size_t i = 0; i < p.partitions.size(); ++i) {
    const auto& part = p.partitions[i];
    os << "[pdes-metrics]   partition " << i << ": " << part.events
       << " event(s), busy " << ms(part.busy_ns) << " ms, "
       << part.mail_posted << " engine mail posted\n";
  }
}

int cmd_run(const RunArgs& args) {
  machine::MachineParams params = serve::resolve_machine(args.machine);
  if (!args.faults.empty()) serve::apply_faults(params, args.faults);
  gen::StochasticDescription desc = gen::parse_workload_file(args.workload);

  core::Workbench wb(params);
  // PDES must come first: tracing, stats and progress bind to the machine
  // enable_pdes replaces.
  if (args.sim_threads > 0) {
    if (args.progress_us > 0) {
      std::cerr << "[pdes] serial fallback: --progress samples global state "
                   "mid-run\n";
    } else {
      const core::Workbench::PdesStatus st =
          wb.enable_pdes(args.sim_threads, args.sim_partitions);
      if (st.active) {
        std::cerr << "[pdes] " << st.workers << " workers over "
                  << st.partitions << " partitions (" << st.note << ")\n";
        if (args.pdes_metrics && !wb.enable_pdes_profiling()) {
          std::cerr << "[pdes-metrics] unavailable (no PDES engine)\n";
        }
      } else {
        std::cerr << "[pdes] serial fallback: " << st.note << "\n";
      }
    }
  }
  wb.register_all_stats();
  if (args.progress_us > 0) {
    wb.enable_progress(args.progress_us * sim::kTicksPerMicrosecond,
                       &std::cerr);
  }
  if (!args.trace_out.empty()) wb.enable_tracing();

  core::RunResult result;
  if (args.level == "task") {
    auto w = gen::make_stochastic_task_workload(desc, params.node_count());
    result = wb.run_task_level(w);
  } else if (args.level == "detailed") {
    auto w = gen::make_stochastic_workload(desc, params.node_count(),
                                           params.node.cpu_count);
    result = wb.run_detailed(w);
  } else {
    std::cerr << "unknown level '" << args.level << "'\n";
    return 2;
  }
  result.print(std::cout);
  if (args.pdes_metrics) {
    if (result.pdes_profile != nullptr) {
      print_pdes_profile(std::cout, *result.pdes_profile);
    } else {
      std::cerr << "[pdes-metrics] no profile: needs --sim-threads > 0 and an "
                   "active PDES engine\n";
    }
  }

  if (!args.stats_out.empty()) {
    std::ofstream out(args.stats_out);
    wb.stats().write_csv(out);
    std::cout << "stats written to " << args.stats_out << "\n";
  }
  if (!args.trace_out.empty() && result.trace != nullptr) {
    std::ofstream out(args.trace_out, std::ios::binary);
    if (!out) {
      std::cerr << "error: cannot open " << args.trace_out << "\n";
      return 1;
    }
    if (ends_with(args.trace_out, ".json")) {
      obs::write_chrome_trace(out, *result.trace, &wb.host_profiler());
    } else {
      obs::write_binary_trace(out, *result.trace);
    }
    std::uint64_t dropped = 0;
    for (const auto& t : result.trace->tracks) dropped += t.dropped;
    std::cout << "trace written to " << args.trace_out << " ("
              << result.trace->events.size() << " events, "
              << result.trace->tracks.size() << " tracks";
    if (dropped > 0) std::cout << ", " << dropped << " dropped";
    std::cout << ")\n";
  }
  return result.completed ? 0 : 3;
}

std::string format_eta(double s) {
  if (!std::isfinite(s) || s < 0) return "?";
  const auto total = static_cast<long>(s + 0.5);
  if (total < 60) return std::to_string(total) + "s";
  return std::to_string(total / 60) + "m" + std::to_string(total % 60) + "s";
}

struct SweepArgs {
  std::vector<std::string> machines;
  std::string workload;
  std::string level = "detailed";
  std::string out;  ///< CSV path; the journal rides along at <out>.journal
  std::string faults;
  std::string memo_dir;
  bool isolate = false;
  bool resume = false;
  bool pdes_columns = false;
  bool progress = false;
  bool host_columns = true;
  double timeout_s = 0.0;
  unsigned retries = 1;
  explore::HostThreads threads;
};

serve::JobSpec job_spec_of(const SweepArgs& args) {
  serve::JobSpec spec;
  spec.machines = args.machines;
  spec.workload_text = read_file_bytes(args.workload);
  spec.level = args.level;
  spec.faults = args.faults;
  spec.sweep_threads = args.threads.sweep_threads;
  spec.sim_threads = args.threads.sim_threads;
  spec.sim_partitions = args.threads.sim_partitions;
  spec.isolate = args.isolate;
  spec.timeout_s = args.timeout_s;
  spec.retries = args.retries;
  return spec;
}

int cmd_sweep(const SweepArgs& args) {
  if (args.level != "detailed" && args.level != "task") {
    std::cerr << "unknown level '" << args.level << "'\n";
    return 2;
  }
  // The batch path and the daemon build the *same* grid from the same spec
  // (serve::build_sweep): content-derived point seeds, workload identified
  // by its bytes.  That is what makes `sweep --no-host-columns` output
  // byte-identical to a fetched service result of the same grid.
  const serve::JobSpec spec = job_spec_of(args);
  const explore::Sweep sweep = serve::build_sweep(spec);
  explore::SweepOptions opts = serve::engine_options(spec);

  const std::string journal =
      args.out.empty() ? std::string() : args.out + ".journal";
  if (args.resume && journal.empty()) {
    std::cerr << "error: --resume needs --out <csv> (the journal lives at "
                 "<csv>.journal)\n";
    return 2;
  }
  opts.journal_path = args.resume ? std::string() : journal;
  opts.memo_dir = args.memo_dir;
  opts.pdes_columns = args.pdes_columns;
  // ThroughputMeter only counts freshly executed points, so memo hits and
  // journal replays shrink the remaining work without inflating the rate —
  // the ETA stays honest on warm caches (same meter the daemon uses).
  const auto meter = std::make_shared<explore::ThroughputMeter>();
  if (args.progress) {
    opts.on_point_complete = [meter](const explore::SweepProgress& p) {
      const explore::ThroughputMeter::Estimate est = meter->note(p);
      std::cerr << "[sweep] " << p.done << "/" << p.total << " done";
      if (p.failed > 0) std::cerr << ", " << p.failed << " failed";
      if (p.memo_hits > 0) std::cerr << ", " << p.memo_hits << " memo";
      if (est.points_per_s > 0.0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f", est.points_per_s);
        std::cerr << " | " << buf << " pts/s, eta " << format_eta(est.eta_s);
      }
      std::cerr << "\n";
    };
  } else {
    opts.progress = &std::cerr;
  }

  explore::SweepEngine engine(opts);
  const explore::SweepResult result =
      args.resume ? engine.resume(sweep, journal) : engine.run(sweep);

  result.to_table().print(std::cout);
  for (const explore::PointResult& p : result.points) {
    if (p.status == explore::PointResult::Status::kFailed) {
      std::cerr << p.label << " FAILED"
                << (p.error_type.empty() ? "" : " [" + p.error_type + "]")
                << ": " << p.error << "\n";
    }
  }
  if (result.resumed_points > 0) {
    std::cout << result.resumed_points
              << " point(s) replayed from the journal\n";
  }
  if (!args.memo_dir.empty()) {
    std::cout << "memo: " << result.memo_hits << " hit(s), "
              << result.memo_misses << " miss(es) in " << args.memo_dir
              << "\n";
  }
  if (!args.out.empty()) {
    std::ofstream out(args.out);
    result.write_csv(out, {.host_columns = args.host_columns});
    std::cout << "results written to " << args.out << " (journal: " << journal
              << ")\n";
  }
  return result.failed() == 0 ? 0 : 3;
}

// --- sweep service ---------------------------------------------------------

int g_serve_signal_fd = -1;

extern "C" void serve_signal_handler(int) {
  if (g_serve_signal_fd >= 0) {
    const char b = 's';
    [[maybe_unused]] const ssize_t n = ::write(g_serve_signal_fd, &b, 1);
  }
}

int cmd_serve(const serve::ServerOptions& opts) {
  serve::Server server(opts);
  server.start();
  // SIGINT/SIGTERM wind down gracefully: running jobs journal their
  // completed rows and everything resumes on the next start.
  g_serve_signal_fd = server.signal_fd();
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  std::signal(SIGPIPE, SIG_IGN);  // dead clients must not kill the daemon
  server.run();
  return 0;
}

/// Prints one human line for a job-status response frame.
void print_job_line(const serve::Json& r, std::ostream& os) {
  const auto n = [&r](std::string_view key) {
    return static_cast<long long>(r.get_number(key, 0.0));
  };
  os << r.get_string("job") << "\n  " << r.get_string("state") << ": " << n("done")
     << "/" << n("total") << " done, " << n("failed") << " failed, "
     << n("memo_hits") << " memo hit(s), " << n("resumed") << " resumed";
  if (const serve::Json* rate = r.find("points_per_s")) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", rate->as_number());
    os << ", " << buf << " pts/s, eta " << format_eta(r.get_number("eta_s"));
  }
  if (const serve::Json* elapsed = r.find("elapsed_s")) {
    os << ", " << format_eta(elapsed->as_number()) << " elapsed";
  }
  const std::string error = r.get_string("error");
  if (!error.empty()) os << "\n  error: " << error;
  os << "\n";
}

/// Sends one frame; exits nonzero (after printing the error) on "ok": false.
serve::Json request_or_fail(serve::Client& client, const serve::Json& req) {
  const serve::Json r = client.request(req);
  if (!r.get_bool("ok")) {
    throw std::runtime_error("daemon refused: " +
                             r.get_string("error", "(no error message)"));
  }
  return r;
}

int cmd_submit(const std::string& socket, const serve::JobSpec& spec,
               bool wait) {
  serve::Client client(socket);
  serve::Json req = spec.to_json();
  req.set("cmd", serve::Json("submit"));
  const serve::Json r = request_or_fail(client, req);
  const std::string id = r.get_string("job");
  std::cerr << "job " << id << " "
            << (r.get_bool("attached") ? "attached (already submitted)"
                                       : "queued")
            << ", " << static_cast<long long>(r.get_number("total"))
            << " point(s)\n";
  std::cout << id << "\n";
  if (!wait) return 0;

  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    serve::Json sreq = serve::Json::object();
    sreq.set("cmd", serve::Json("status"));
    sreq.set("job", serve::Json(id));
    const serve::Json st = request_or_fail(client, sreq);
    const std::string state = st.get_string("state");
    if (state == "running") {
      std::cerr << "[serve] "
                << static_cast<long long>(st.get_number("done")) << "/"
                << static_cast<long long>(st.get_number("total")) << " done";
      if (const serve::Json* rate = st.find("points_per_s")) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f", rate->as_number());
        std::cerr << " | " << buf << " pts/s, eta "
                  << format_eta(st.get_number("eta_s"));
      }
      std::cerr << "\n";
      continue;
    }
    if (state == "queued") continue;
    print_job_line(st, std::cerr);
    if (state == "done") return 0;
    return 3;  // failed or cancelled
  }
}

int cmd_status(const std::string& socket, const std::string& job, bool json) {
  serve::Client client(socket);
  serve::Json req = serve::Json::object();
  req.set("cmd", serve::Json("status"));
  if (!job.empty()) req.set("job", serve::Json(job));
  const serve::Json r = request_or_fail(client, req);
  if (json) {
    std::cout << r.dump() << "\n";
    return 0;
  }
  if (!job.empty()) {
    print_job_line(r, std::cout);
    return 0;
  }
  const auto n = [&r](std::string_view key) {
    return static_cast<long long>(r.get_number(key, 0.0));
  };
  std::cout << "uptime " << format_eta(r.get_number("uptime_s")) << ", "
            << n("jobs") << " job(s): " << n("queued") << " queued, "
            << n("running") << " running, " << n("done") << " done, "
            << n("failed") << " failed, " << n("cancelled") << " cancelled\n"
            << "submissions " << n("submissions") << " (" << n("attached")
            << " attached to existing jobs)\n"
            << "memo: " << n("memo_hits") << " hit(s), " << n("memo_misses")
            << " miss(es), " << n("memo_evictions") << " eviction(s)\n";
  return 0;
}

int cmd_metrics(const std::string& socket, bool json) {
  serve::Client client(socket);
  serve::Json req = serve::Json::object();
  req.set("cmd", serve::Json("metrics"));
  req.set("format", serve::Json(json ? "json" : "prometheus"));
  const serve::Json r = request_or_fail(client, req);
  std::cout << r.get_string("data");
  if (json) std::cout << "\n";  // the exposition already ends in a newline
  return 0;
}

int cmd_jobs(const std::string& socket) {
  serve::Client client(socket);
  serve::Json req = serve::Json::object();
  req.set("cmd", serve::Json("list"));
  const serve::Json r = request_or_fail(client, req);
  const serve::Json* jobs = r.find("jobs");
  if (jobs == nullptr || jobs->items().empty()) {
    std::cout << "no jobs\n";
    return 0;
  }
  for (const serve::Json& job : jobs->items()) print_job_line(job, std::cout);
  return 0;
}

int cmd_fetch(const std::string& socket, const std::string& job,
              const std::string& format, const std::string& out) {
  serve::Client client(socket);
  serve::Json req = serve::Json::object();
  req.set("cmd", serve::Json("results"));
  req.set("job", serve::Json(job));
  req.set("format", serve::Json(format));
  const serve::Json r = request_or_fail(client, req);
  const std::string& data = r.get_string("data");
  if (out.empty()) {
    std::cout << data;
    return 0;
  }
  std::ofstream os(out, std::ios::binary);
  if (!os) {
    std::cerr << "error: cannot open " << out << "\n";
    return 1;
  }
  os << data;
  std::cerr << "results written to " << out << "\n";
  return 0;
}

int cmd_cancel(const std::string& socket, const std::string& job) {
  serve::Client client(socket);
  serve::Json req = serve::Json::object();
  req.set("cmd", serve::Json("cancel"));
  req.set("job", serve::Json(job));
  const serve::Json r = request_or_fail(client, req);
  std::cout << "job " << r.get_string("job") << " "
            << (r.get_bool("cancelling") ? "cancelling"
                                         : r.get_string("state"))
            << "\n";
  return 0;
}

int cmd_shutdown(const std::string& socket) {
  serve::Client client(socket);
  serve::Json req = serve::Json::object();
  req.set("cmd", serve::Json("shutdown"));
  request_or_fail(client, req);
  std::cout << "daemon shutting down\n";
  return 0;
}

int cmd_memo_gc(const std::string& socket, const std::string& memo_dir,
                std::uint64_t max_bytes, double max_age_s) {
  if (!socket.empty()) {
    serve::Client client(socket);
    serve::Json req = serve::Json::object();
    req.set("cmd", serve::Json("memo-gc"));
    if (max_bytes != 0) req.set("max_bytes", serve::Json(max_bytes));
    if (max_age_s > 0) req.set("max_age_s", serve::Json(max_age_s));
    const serve::Json r = request_or_fail(client, req);
    std::cout << "daemon memo store: scanned "
              << static_cast<long long>(r.get_number("scanned"))
              << " entrie(s) ("
              << static_cast<long long>(r.get_number("bytes_scanned"))
              << " bytes), evicted "
              << static_cast<long long>(r.get_number("evicted")) << " ("
              << static_cast<long long>(r.get_number("bytes_freed"))
              << " bytes)\n";
    return 0;
  }
  explore::MemoStore store(memo_dir);
  const explore::MemoPruneStats stats =
      store.prune({.max_bytes = max_bytes, .max_age_s = max_age_s});
  std::cout << memo_dir << ": scanned " << stats.scanned << " entrie(s) ("
            << stats.bytes_scanned << " bytes), evicted " << stats.evicted
            << " (" << stats.bytes_freed << " bytes)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.size() == 1 && args[0] == "presets") return cmd_presets();
    if (args.size() == 2 && args[0] == "describe") return cmd_describe(args[1]);
    if (args.size() == 1 && args[0] == "describe-workload") {
      return cmd_describe_workload();
    }
    if (!args.empty() && args[0] == "run") {
      RunArgs run;
      for (std::size_t i = 1; i < args.size(); ++i) {
        std::string key = args[i];
        if (key == "--pdes-metrics") {
          run.pdes_metrics = true;
          continue;
        }
        std::string value;
        // Accept both `--flag value` and `--flag=value`.
        if (const auto eq = key.find('='); eq != std::string::npos) {
          value = key.substr(eq + 1);
          key = key.substr(0, eq);
        } else if (i + 1 < args.size()) {
          value = args[++i];
        } else {
          std::cerr << "flag " << key << " needs a value\n";
          return usage();
        }
        if (key == "--machine") {
          run.machine = value;
        } else if (key == "--workload") {
          run.workload = value;
        } else if (key == "--level") {
          run.level = value;
        } else if (key == "--stats") {
          run.stats_out = value;
        } else if (key == "--faults") {
          run.faults = value;
        } else if (key == "--trace-out") {
          run.trace_out = value;
        } else if (key == "--progress") {
          run.progress_us = std::stoull(value);
        } else if (key == "--sim-threads" || key == "--sim-partitions") {
          // Validated and applied by host_threads_from_args below: the
          // strict parser rejects 0, negatives and garbage with exit 2
          // instead of silently running serial.
        } else {
          std::cerr << "unknown flag " << key << "\n";
          return usage();
        }
      }
      try {
        const explore::HostThreads ht =
            explore::host_threads_from_args(argc, argv);
        run.sim_threads = ht.sim_threads;
        run.sim_partitions = ht.sim_partitions;
      } catch (const std::invalid_argument& e) {
        std::cerr << "error: " << e.what() << "\n";
        return usage();
      }
      if (run.machine.empty() || run.workload.empty()) return usage();
      return cmd_run(run);
    }
    if (!args.empty() && args[0] == "sweep") {
      SweepArgs sw;
      for (std::size_t i = 1; i < args.size(); ++i) {
        std::string key = args[i];
        // Boolean flags stand alone; everything else takes a value.
        if (key == "--isolate") {
          sw.isolate = true;
          continue;
        }
        if (key == "--resume") {
          sw.resume = true;
          continue;
        }
        if (key == "--pdes-columns") {
          sw.pdes_columns = true;
          continue;
        }
        if (key == "--progress") {
          sw.progress = true;
          continue;
        }
        if (key == "--no-host-columns") {
          sw.host_columns = false;
          continue;
        }
        std::string value;
        if (const auto eq = key.find('='); eq != std::string::npos) {
          value = key.substr(eq + 1);
          key = key.substr(0, eq);
        } else if (i + 1 < args.size()) {
          value = args[++i];
        } else {
          std::cerr << "flag " << key << " needs a value\n";
          return usage();
        }
        if (key == "--machine") {
          sw.machines.push_back(value);
        } else if (key == "--workload") {
          sw.workload = value;
        } else if (key == "--level") {
          sw.level = value;
        } else if (key == "--out") {
          sw.out = value;
        } else if (key == "--faults") {
          sw.faults = value;
        } else if (key == "--memo-dir") {
          sw.memo_dir = value;
        } else if (key == "--timeout") {
          sw.timeout_s = std::stod(value);
        } else if (key == "--retries") {
          sw.retries = static_cast<unsigned>(std::stoul(value));
        } else if (key == "--sweep-threads" || key == "--sim-threads" ||
                   key == "--sim-partitions" || key == "--threads") {
          // Validated and applied by host_threads_from_args below.
        } else {
          std::cerr << "unknown flag " << key << "\n";
          return usage();
        }
      }
      try {
        sw.threads = explore::host_threads_from_args(argc, argv);
      } catch (const std::invalid_argument& e) {
        std::cerr << "error: " << e.what() << "\n";
        return usage();
      }
      if (sw.machines.empty() || sw.workload.empty()) return usage();
      return cmd_sweep(sw);
    }
    if (!args.empty() && args[0] == "serve") {
      serve::ServerOptions opts;
      opts.log = &std::cerr;
      for (std::size_t i = 1; i < args.size(); ++i) {
        std::string key = args[i];
        std::string value;
        if (const auto eq = key.find('='); eq != std::string::npos) {
          value = key.substr(eq + 1);
          key = key.substr(0, eq);
        } else if (i + 1 < args.size()) {
          value = args[++i];
        } else {
          std::cerr << "flag " << key << " needs a value\n";
          return usage();
        }
        if (key == "--socket") {
          opts.socket_path = value;
        } else if (key == "--spool") {
          opts.spool = value;
        } else if (key == "--job-workers") {
          opts.job_workers = static_cast<unsigned>(std::stoul(value));
        } else if (key == "--memo-max-bytes") {
          opts.memo_max_bytes = std::stoull(value);
        } else if (key == "--memo-max-age") {
          opts.memo_max_age_s = std::stod(value);
        } else if (key == "--metrics-file") {
          opts.metrics_file = value;
        } else if (key == "--metrics-interval") {
          opts.metrics_interval_s = std::stod(value);
        } else {
          std::cerr << "unknown flag " << key << "\n";
          return usage();
        }
      }
      if (opts.socket_path.empty() || opts.spool.empty()) return usage();
      return cmd_serve(opts);
    }
    if (!args.empty() && args[0] == "submit") {
      std::string socket;
      bool wait = false;
      SweepArgs sw;
      sw.isolate = true;  // the service default: points fork
      std::uint64_t stall_ms = 0;
      for (std::size_t i = 1; i < args.size(); ++i) {
        std::string key = args[i];
        if (key == "--wait") {
          wait = true;
          continue;
        }
        if (key == "--no-isolate") {
          sw.isolate = false;
          continue;
        }
        std::string value;
        if (const auto eq = key.find('='); eq != std::string::npos) {
          value = key.substr(eq + 1);
          key = key.substr(0, eq);
        } else if (i + 1 < args.size()) {
          value = args[++i];
        } else {
          std::cerr << "flag " << key << " needs a value\n";
          return usage();
        }
        if (key == "--socket") {
          socket = value;
        } else if (key == "--machine") {
          sw.machines.push_back(value);
        } else if (key == "--workload") {
          sw.workload = value;
        } else if (key == "--level") {
          sw.level = value;
        } else if (key == "--faults") {
          sw.faults = value;
        } else if (key == "--timeout") {
          sw.timeout_s = std::stod(value);
        } else if (key == "--retries") {
          sw.retries = static_cast<unsigned>(std::stoul(value));
        } else if (key == "--stall-ms") {
          // Test hook: per-point configure stall for kill/resume windows.
          stall_ms = std::stoull(value);
        } else if (key == "--sweep-threads" || key == "--sim-threads" ||
                   key == "--sim-partitions" || key == "--threads") {
          // Validated and applied by host_threads_from_args below.
        } else {
          std::cerr << "unknown flag " << key << "\n";
          return usage();
        }
      }
      try {
        sw.threads = explore::host_threads_from_args(argc, argv);
      } catch (const std::invalid_argument& e) {
        std::cerr << "error: " << e.what() << "\n";
        return usage();
      }
      if (socket.empty() || sw.machines.empty() || sw.workload.empty()) {
        return usage();
      }
      serve::JobSpec spec = job_spec_of(sw);
      spec.stall_ms = stall_ms;
      return cmd_submit(socket, spec, wait);
    }
    if (!args.empty() &&
        (args[0] == "status" || args[0] == "jobs" || args[0] == "fetch" ||
         args[0] == "cancel" || args[0] == "shutdown" ||
         args[0] == "memo-gc" || args[0] == "metrics")) {
      const std::string cmd = args[0];
      std::string socket, job, out, memo_dir;
      std::string format = "csv";
      std::uint64_t max_bytes = 0;
      double max_age_s = 0.0;
      bool json = false;
      for (std::size_t i = 1; i < args.size(); ++i) {
        std::string key = args[i];
        if (key == "--json") {
          json = true;
          continue;
        }
        std::string value;
        if (const auto eq = key.find('='); eq != std::string::npos) {
          value = key.substr(eq + 1);
          key = key.substr(0, eq);
        } else if (i + 1 < args.size()) {
          value = args[++i];
        } else {
          std::cerr << "flag " << key << " needs a value\n";
          return usage();
        }
        if (key == "--socket") {
          socket = value;
        } else if (key == "--job") {
          job = value;
        } else if (key == "--format") {
          format = value;
        } else if (key == "--out") {
          out = value;
        } else if (key == "--memo-dir") {
          memo_dir = value;
        } else if (key == "--max-bytes") {
          max_bytes = std::stoull(value);
        } else if (key == "--max-age") {
          max_age_s = std::stod(value);
        } else {
          std::cerr << "unknown flag " << key << "\n";
          return usage();
        }
      }
      if (cmd == "memo-gc") {
        if (socket.empty() == memo_dir.empty()) return usage();  // exactly one
        return cmd_memo_gc(socket, memo_dir, max_bytes, max_age_s);
      }
      if (socket.empty()) return usage();
      if (cmd == "status") return cmd_status(socket, job, json);
      if (cmd == "metrics") return cmd_metrics(socket, json);
      if (cmd == "jobs") return cmd_jobs(socket);
      if (cmd == "shutdown") return cmd_shutdown(socket);
      if (job.empty()) return usage();
      if (cmd == "fetch") return cmd_fetch(socket, job, format, out);
      if (cmd == "cancel") return cmd_cancel(socket, job);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
