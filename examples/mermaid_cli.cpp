// The workbench as a command-line tool: machine descriptions and workload
// descriptions are files; evaluating an architecture is a shell command.
//
//   $ ./examples/mermaid_cli presets
//   $ ./examples/mermaid_cli describe preset:t805:4x4 > t805.cfg
//   $ ./examples/mermaid_cli describe-workload > ring.wl
//   $ ./examples/mermaid_cli run --machine t805.cfg --workload ring.wl
//   $ ./examples/mermaid_cli run --machine preset:risc:2x2 ...
//       ... --workload ring.wl --level task --stats out.csv
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/workbench.hpp"
#include "explore/memo.hpp"
#include "explore/sweep.hpp"
#include "fault/fault.hpp"
#include "gen/workload_config.hpp"
#include "machine/config.hpp"
#include "obs/binary_trace.hpp"
#include "obs/chrome_trace.hpp"

namespace {

using namespace merm;

int usage() {
  std::cerr
      << "usage:\n"
      << "  mermaid_cli presets\n"
      << "  mermaid_cli describe <machine>            # print full config\n"
      << "  mermaid_cli describe-workload             # print defaults\n"
      << "  mermaid_cli run --machine <machine> --workload <file>\n"
      << "              [--level detailed|task] [--stats <csv>]\n"
      << "              [--progress <us>] [--faults <spec|file>]\n"
      << "              [--trace-out <file>] [--sim-threads <n>]\n"
      << "              [--sim-partitions <n|auto>]\n"
      << "  mermaid_cli sweep --machine <m> [--machine <m> ...] "
      << "--workload <file>\n"
      << "              [--level detailed|task] [--out <csv>]\n"
      << "              [--sweep-threads <n>] [--sim-threads <n>]\n"
      << "              [--sim-partitions <n|auto>] [--pdes-columns]\n"
      << "              [--faults <spec|file>] [--isolate] [--timeout <s>]\n"
      << "              [--retries <n>] [--resume] [--memo-dir <dir>]\n"
      << "\n<machine> is a config file path or "
      << "preset:{t805|ppc601|risc|ipsc860}[:WxH]\n"
      << "--sim-threads parallelizes the single run with conservative PDES\n"
      << "(results are identical for any n >= 1 at a fixed --sim-partitions;\n"
      << "incompatible machines fall back to the serial engine with a note)\n"
      << "--sim-partitions sets the PDES partition count; 'auto' (default)\n"
      << "uses min(sim-threads, nodes) coarse topology blocks\n"
      << "--pdes-columns adds a pdes.fallback column to sweep rows\n"
      << "--faults takes a config file (overlaid on the machine) or an\n"
      << "inline spec, e.g. 'link=0-1@100:500,drop=0.01,retries=6,seed=7'\n"
      << "sweep runs one grid row per --machine; with --out the finished\n"
      << "rows are journaled (fsync'd) to <csv>.journal as they land, and\n"
      << "--resume replays that journal instead of re-running; --isolate\n"
      << "forks each point (crashes become failure rows; --timeout/--retries\n"
      << "become enforceable); --memo-dir caches rows by content hash\n"
      << "--trace-out records an execution trace: a .json path gets Chrome\n"
      << "trace-event JSON (load it in Perfetto / chrome://tracing), any\n"
      << "other suffix gets the compact binary form (see trace_tool)\n";
  return 2;
}

machine::MachineParams resolve_machine(const std::string& spec) {
  if (spec.rfind("preset:", 0) == 0) {
    std::string rest = spec.substr(7);
    std::string name = rest;
    std::uint32_t w = 4;
    std::uint32_t h = 4;
    const auto colon = rest.find(':');
    if (colon != std::string::npos) {
      name = rest.substr(0, colon);
      const std::string dims = rest.substr(colon + 1);
      const auto x = dims.find('x');
      if (x == std::string::npos) {
        throw std::runtime_error("bad preset dims '" + dims + "'");
      }
      w = static_cast<std::uint32_t>(std::stoul(dims.substr(0, x)));
      h = static_cast<std::uint32_t>(std::stoul(dims.substr(x + 1)));
    }
    if (name == "t805") return machine::presets::t805_multicomputer(w, h);
    if (name == "ppc601") return machine::presets::powerpc601_node();
    if (name == "risc") return machine::presets::generic_risc(w, h);
    if (name == "ipsc860") {
      return machine::presets::ipsc860_hypercube(w * h);
    }
    throw std::runtime_error("unknown preset '" + name + "'");
  }
  return machine::parse_config_file(spec);
}

// `spec` is either a config file (overlaid on top of `params`, so a file
// holding just a [fault] stanza works) or an inline fault::parse_spec string.
void apply_faults(machine::MachineParams& params, const std::string& spec) {
  if (std::ifstream probe(spec); probe) {
    params = machine::parse_config_file(spec, params);
  } else {
    params.fault = fault::parse_spec(spec);
  }
}

int cmd_presets() {
  std::cout << "preset:t805[:WxH]   20 MHz T805 transputer mesh, "
               "store-and-forward\n";
  std::cout << "preset:ppc601       66 MHz PowerPC 601 node, 2 cache levels\n";
  std::cout << "preset:risc[:WxH]   200 MHz generic RISC torus, wormhole\n";
  std::cout << "preset:ipsc860[:WxH] 40 MHz i860 hypercube (WxH nodes), "
               "cut-through\n";
  return 0;
}

int cmd_describe(const std::string& spec) {
  machine::write_config(std::cout, resolve_machine(spec));
  return 0;
}

int cmd_describe_workload() {
  gen::StochasticDescription d;
  gen::write_workload(std::cout, d);
  return 0;
}

struct RunArgs {
  std::string machine;
  std::string workload;
  std::string level = "detailed";
  std::string stats_out;
  std::string faults;
  std::string trace_out;
  std::uint64_t progress_us = 0;
  unsigned sim_threads = 0;
  std::uint32_t sim_partitions = 0;  ///< 0 = auto
};

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

int cmd_run(const RunArgs& args) {
  machine::MachineParams params = resolve_machine(args.machine);
  if (!args.faults.empty()) apply_faults(params, args.faults);
  gen::StochasticDescription desc = gen::parse_workload_file(args.workload);

  core::Workbench wb(params);
  // PDES must come first: tracing, stats and progress bind to the machine
  // enable_pdes replaces.
  if (args.sim_threads > 0) {
    if (args.progress_us > 0) {
      std::cerr << "[pdes] serial fallback: --progress samples global state "
                   "mid-run\n";
    } else {
      const core::Workbench::PdesStatus st =
          wb.enable_pdes(args.sim_threads, args.sim_partitions);
      if (st.active) {
        std::cerr << "[pdes] " << st.workers << " workers over "
                  << st.partitions << " partitions (" << st.note << ")\n";
      } else {
        std::cerr << "[pdes] serial fallback: " << st.note << "\n";
      }
    }
  }
  wb.register_all_stats();
  if (args.progress_us > 0) {
    wb.enable_progress(args.progress_us * sim::kTicksPerMicrosecond,
                       &std::cerr);
  }
  if (!args.trace_out.empty()) wb.enable_tracing();

  core::RunResult result;
  if (args.level == "task") {
    auto w = gen::make_stochastic_task_workload(desc, params.node_count());
    result = wb.run_task_level(w);
  } else if (args.level == "detailed") {
    auto w = gen::make_stochastic_workload(desc, params.node_count(),
                                           params.node.cpu_count);
    result = wb.run_detailed(w);
  } else {
    std::cerr << "unknown level '" << args.level << "'\n";
    return 2;
  }
  result.print(std::cout);

  if (!args.stats_out.empty()) {
    std::ofstream out(args.stats_out);
    wb.stats().write_csv(out);
    std::cout << "stats written to " << args.stats_out << "\n";
  }
  if (!args.trace_out.empty() && result.trace != nullptr) {
    std::ofstream out(args.trace_out, std::ios::binary);
    if (!out) {
      std::cerr << "error: cannot open " << args.trace_out << "\n";
      return 1;
    }
    if (ends_with(args.trace_out, ".json")) {
      obs::write_chrome_trace(out, *result.trace, &wb.host_profiler());
    } else {
      obs::write_binary_trace(out, *result.trace);
    }
    std::uint64_t dropped = 0;
    for (const auto& t : result.trace->tracks) dropped += t.dropped;
    std::cout << "trace written to " << args.trace_out << " ("
              << result.trace->events.size() << " events, "
              << result.trace->tracks.size() << " tracks";
    if (dropped > 0) std::cout << ", " << dropped << " dropped";
    std::cout << ")\n";
  }
  return result.completed ? 0 : 3;
}

struct SweepArgs {
  std::vector<std::string> machines;
  std::string workload;
  std::string level = "detailed";
  std::string out;  ///< CSV path; the journal rides along at <out>.journal
  std::string faults;
  std::string memo_dir;
  bool isolate = false;
  bool resume = false;
  bool pdes_columns = false;
  double timeout_s = 0.0;
  unsigned retries = 1;
  explore::HostThreads threads;
};

int cmd_sweep(const SweepArgs& args) {
  const gen::StochasticDescription desc =
      gen::parse_workload_file(args.workload);
  // The memo key needs the workload's identity, and the file *is* that
  // identity: hash its bytes, so editing the workload invalidates cached
  // rows while renaming or copying the file does not.
  std::string file_bytes;
  {
    std::ifstream in(args.workload, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    file_bytes = buf.str();
  }

  const bool task_level = args.level == "task";
  if (!task_level && args.level != "detailed") {
    std::cerr << "unknown level '" << args.level << "'\n";
    return 2;
  }
  explore::Sweep sweep;
  sweep.level = task_level ? node::SimulationLevel::kTaskLevel
                           : node::SimulationLevel::kDetailed;
  sweep.workload_fingerprint =
      "workload-file:" + args.level +
      ":sha256=" + explore::sha256_hex(file_bytes);
  sweep.workload = [desc, task_level](const machine::MachineParams& params,
                                      std::uint64_t) {
    return task_level
               ? gen::make_stochastic_task_workload(desc, params.node_count())
               : gen::make_stochastic_workload(desc, params.node_count(),
                                               params.node.cpu_count);
  };
  for (const std::string& spec : args.machines) {
    machine::MachineParams m = resolve_machine(spec);
    if (!args.faults.empty()) apply_faults(m, args.faults);
    sweep.add(std::move(m), spec);
  }

  const std::string journal =
      args.out.empty() ? std::string() : args.out + ".journal";
  if (args.resume && journal.empty()) {
    std::cerr << "error: --resume needs --out <csv> (the journal lives at "
                 "<csv>.journal)\n";
    return 2;
  }

  explore::SweepEngine engine(
      {.threads = args.threads.sweep_threads,
       .sim_threads = args.threads.sim_threads,
       .sim_partitions = args.threads.sim_partitions,
       .progress = &std::cerr,
       // A campaign grid reports failed points as rows; it never aborts.
       .keep_going = true,
       .isolate = args.isolate ? explore::Isolation::kProcess
                               : explore::Isolation::kNone,
       .point_timeout_s = args.timeout_s,
       .max_attempts = args.retries,
       .journal_path = args.resume ? std::string() : journal,
       .memo_dir = args.memo_dir,
       .pdes_columns = args.pdes_columns});
  const explore::SweepResult result =
      args.resume ? engine.resume(sweep, journal) : engine.run(sweep);

  result.to_table().print(std::cout);
  for (const explore::PointResult& p : result.points) {
    if (p.status == explore::PointResult::Status::kFailed) {
      std::cerr << p.label << " FAILED"
                << (p.error_type.empty() ? "" : " [" + p.error_type + "]")
                << ": " << p.error << "\n";
    }
  }
  if (result.resumed_points > 0) {
    std::cout << result.resumed_points
              << " point(s) replayed from the journal\n";
  }
  if (!args.memo_dir.empty()) {
    std::cout << "memo: " << result.memo_hits << " hit(s), "
              << result.memo_misses << " miss(es) in " << args.memo_dir
              << "\n";
  }
  if (!args.out.empty()) {
    std::ofstream out(args.out);
    result.write_csv(out);
    std::cout << "results written to " << args.out << " (journal: " << journal
              << ")\n";
  }
  return result.failed() == 0 ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.size() == 1 && args[0] == "presets") return cmd_presets();
    if (args.size() == 2 && args[0] == "describe") return cmd_describe(args[1]);
    if (args.size() == 1 && args[0] == "describe-workload") {
      return cmd_describe_workload();
    }
    if (!args.empty() && args[0] == "run") {
      RunArgs run;
      for (std::size_t i = 1; i < args.size(); ++i) {
        std::string key = args[i];
        std::string value;
        // Accept both `--flag value` and `--flag=value`.
        if (const auto eq = key.find('='); eq != std::string::npos) {
          value = key.substr(eq + 1);
          key = key.substr(0, eq);
        } else if (i + 1 < args.size()) {
          value = args[++i];
        } else {
          std::cerr << "flag " << key << " needs a value\n";
          return usage();
        }
        if (key == "--machine") {
          run.machine = value;
        } else if (key == "--workload") {
          run.workload = value;
        } else if (key == "--level") {
          run.level = value;
        } else if (key == "--stats") {
          run.stats_out = value;
        } else if (key == "--faults") {
          run.faults = value;
        } else if (key == "--trace-out") {
          run.trace_out = value;
        } else if (key == "--progress") {
          run.progress_us = std::stoull(value);
        } else if (key == "--sim-threads" || key == "--sim-partitions") {
          // Validated and applied by host_threads_from_args below: the
          // strict parser rejects 0, negatives and garbage with exit 2
          // instead of silently running serial.
        } else {
          std::cerr << "unknown flag " << key << "\n";
          return usage();
        }
      }
      try {
        const explore::HostThreads ht =
            explore::host_threads_from_args(argc, argv);
        run.sim_threads = ht.sim_threads;
        run.sim_partitions = ht.sim_partitions;
      } catch (const std::invalid_argument& e) {
        std::cerr << "error: " << e.what() << "\n";
        return usage();
      }
      if (run.machine.empty() || run.workload.empty()) return usage();
      return cmd_run(run);
    }
    if (!args.empty() && args[0] == "sweep") {
      SweepArgs sw;
      for (std::size_t i = 1; i < args.size(); ++i) {
        std::string key = args[i];
        // Boolean flags stand alone; everything else takes a value.
        if (key == "--isolate") {
          sw.isolate = true;
          continue;
        }
        if (key == "--resume") {
          sw.resume = true;
          continue;
        }
        if (key == "--pdes-columns") {
          sw.pdes_columns = true;
          continue;
        }
        std::string value;
        if (const auto eq = key.find('='); eq != std::string::npos) {
          value = key.substr(eq + 1);
          key = key.substr(0, eq);
        } else if (i + 1 < args.size()) {
          value = args[++i];
        } else {
          std::cerr << "flag " << key << " needs a value\n";
          return usage();
        }
        if (key == "--machine") {
          sw.machines.push_back(value);
        } else if (key == "--workload") {
          sw.workload = value;
        } else if (key == "--level") {
          sw.level = value;
        } else if (key == "--out") {
          sw.out = value;
        } else if (key == "--faults") {
          sw.faults = value;
        } else if (key == "--memo-dir") {
          sw.memo_dir = value;
        } else if (key == "--timeout") {
          sw.timeout_s = std::stod(value);
        } else if (key == "--retries") {
          sw.retries = static_cast<unsigned>(std::stoul(value));
        } else if (key == "--sweep-threads" || key == "--sim-threads" ||
                   key == "--sim-partitions" || key == "--threads") {
          // Validated and applied by host_threads_from_args below.
        } else {
          std::cerr << "unknown flag " << key << "\n";
          return usage();
        }
      }
      try {
        sw.threads = explore::host_threads_from_args(argc, argv);
      } catch (const std::invalid_argument& e) {
        std::cerr << "error: " << e.what() << "\n";
        return usage();
      }
      if (sw.machines.empty() || sw.workload.empty()) return usage();
      return cmd_sweep(sw);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
