// Run-time visualization (Fig. 1's "visualization of simulation data ...
// at run-time and post-mortem"): while a 16-node stencil runs, the monitor
// samples network and cache counters every simulated 200 us, echoes
// progress lines, and leaves plot-ready CSVs behind.
//
//   $ ./examples/runtime_monitor
//   $ column -s, -t runtime_counters.csv | head
#include <fstream>
#include <iostream>

#include "core/workbench.hpp"
#include "gen/apps.hpp"
#include "obs/sampler.hpp"
#include "stats/stats.hpp"

int main() {
  using namespace merm;

  core::Workbench wb(machine::presets::t805_multicomputer(4, 4));
  wb.register_all_stats();

  // Sample the counters a designer watches live: message and byte flow,
  // plus one node's memory traffic as a proxy for compute progress.
  obs::CounterSampler sampler(
      wb.stats(), {"t805.net.messages", "t805.net.packets", "t805.net.bytes",
                   "t805.node0.mem.accesses", "t805.node0.comm.recvs"});
  wb.enable_progress(200 * sim::kTicksPerMicrosecond, &std::cout);
  wb.attach_sampler(&sampler);

  auto workload = gen::make_offline_workload(
      16, [](gen::Annotator& a, trace::NodeId self, std::uint32_t nodes) {
        gen::stencil_spmd(a, self, nodes, gen::StencilParams{64, 6});
      });
  const core::RunResult r = wb.run_detailed(workload);
  std::cout << "\n";
  r.print(std::cout);

  {
    std::ofstream csv("runtime_counters.csv");
    sampler.write_csv(csv);
    std::ofstream deltas("runtime_deltas.csv");
    sampler.write_csv_deltas(deltas);
    std::ofstream rates("runtime_rates.csv");
    sampler.write_csv_rates(rates);
    std::ofstream all("final_stats.csv");
    wb.stats().write_csv(all);
  }
  std::cout << "\nwrote runtime_counters.csv (cumulative), runtime_deltas.csv "
               "(per-interval), runtime_rates.csv (per-second),\n"
               "and final_stats.csv ("
            << wb.stats().counter_values().size()
            << " metrics) — gnuplot/pandas-ready.\n";

  // Post-mortem: a latency histogram straight to the terminal.
  std::cout << "\nmessage latency distribution (ns):\n";
  wb.machine().network().latency_histogram.print(std::cout, "latency");
  return r.completed ? 0 : 1;
}
