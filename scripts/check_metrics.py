#!/usr/bin/env python3
"""Validate a Prometheus text exposition (stdlib only).

    check_metrics.py METRICS_FILE [LATER_SCRAPE]

Checks, on one file:
  - every non-comment line parses as `name{labels} value`
  - metric and label names match the Prometheus grammar
  - every sample belongs to a family declared with `# TYPE` (histogram
    samples may use the _bucket/_sum/_count suffixes of their family)
  - counter family names end in `_total` (the repo's convention)
  - histogram buckets: le values sorted and unique per series, cumulative
    counts non-decreasing, a `+Inf` bucket present and equal to `_count`
  - values parse as floats (`+Inf`/`-Inf`/`NaN` allowed)

With a second file (a later scrape of the same process), additionally
checks that every counter present in both is monotonically non-decreasing.

Exit status 0 when clean; 1 with one message per violation otherwise.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name{label="value",...} value  — label values may contain escaped chars.
SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{((?:[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*",?)*)\})?'
    r' (\S+)$')
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:\\.|[^"\\])*)"')


def parse_value(text):
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)  # raises ValueError on garbage


def parse(path):
    """Returns (types, samples, errors): family -> type, list of
    (name, label_tuple, value), list of messages."""
    types = {}
    samples = []
    errors = []
    with open(path, "r", encoding="utf-8") as f:
        lines = f.read().split("\n")
    for lineno, line in enumerate(lines, 1):
        where = f"{path}:{lineno}"
        if line == "":
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    errors.append(f"{where}: malformed TYPE line: {line!r}")
                    continue
                name, kind = parts[2], parts[3]
                if not NAME_RE.match(name):
                    errors.append(f"{where}: bad family name {name!r}")
                if kind not in ("counter", "gauge", "histogram", "summary",
                                "untyped"):
                    errors.append(f"{where}: unknown type {kind!r}")
                if name in types:
                    errors.append(f"{where}: duplicate TYPE for {name}")
                types[name] = kind
            elif len(parts) >= 2 and parts[1] == "HELP":
                if len(parts) < 3 or not NAME_RE.match(parts[2]):
                    errors.append(f"{where}: malformed HELP line: {line!r}")
            # other comments are legal and ignored
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"{where}: unparseable sample: {line!r}")
            continue
        name, label_text, value_text = m.group(1), m.group(2), m.group(3)
        labels = tuple(LABEL_RE.findall(label_text or ""))
        for lname, _ in labels:
            if not LABEL_NAME_RE.match(lname):
                errors.append(f"{where}: bad label name {lname!r}")
        try:
            value = parse_value(value_text)
        except ValueError:
            errors.append(f"{where}: bad value {value_text!r}")
            continue
        samples.append((name, labels, value))
    return types, samples, errors


def family_of(name, types):
    """Maps a sample name to its declared family (histogram suffixes)."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return None


def check_one(path):
    types, samples, errors = parse(path)

    for name, kind in types.items():
        if kind == "counter" and not name.endswith("_total"):
            errors.append(f"{path}: counter {name} does not end in _total")

    # Group histogram buckets by (family, labels-without-le).
    buckets = {}
    counts = {}
    for name, labels, value in samples:
        fam = family_of(name, types)
        if fam is None:
            errors.append(f"{path}: sample {name} has no # TYPE declaration")
            continue
        if types[fam] == "histogram":
            base_labels = tuple(l for l in labels if l[0] != "le")
            if name == fam + "_bucket":
                le = [v for k, v in labels if k == "le"]
                if len(le) != 1:
                    errors.append(
                        f"{path}: bucket of {fam} without exactly one le")
                    continue
                buckets.setdefault((fam, base_labels), []).append(
                    (le[0], value))
            elif name == fam + "_count":
                counts[(fam, base_labels)] = value
    for (fam, labels), rows in buckets.items():
        series = f"{fam}{dict(labels) if labels else ''}"
        les = [parse_value(le) for le, _ in rows]
        if sorted(les) != les or len(set(les)) != len(les):
            errors.append(f"{path}: {series}: le values not sorted/unique")
        values = [v for _, v in rows]
        if any(b > a for a, b in zip(values[1:], values[:-1])):
            errors.append(f"{path}: {series}: bucket counts not cumulative")
        if rows[-1][0] != "+Inf":
            errors.append(f"{path}: {series}: missing +Inf bucket")
        elif (fam, labels) in counts and rows[-1][1] != counts[(fam, labels)]:
            errors.append(
                f"{path}: {series}: +Inf bucket {rows[-1][1]} != _count "
                f"{counts[(fam, labels)]}")
    return types, samples, errors


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    types1, samples1, e1 = check_one(argv[1])
    errors += e1
    if len(argv) == 3:
        types2, samples2, e2 = check_one(argv[2])
        errors += e2
        first = {(n, l): v for n, l, v in samples1}
        for name, labels, value in samples2:
            fam = family_of(name, types2)
            monotone = (types2.get(fam) == "counter" or
                        (types2.get(fam) == "histogram" and
                         not name.endswith("_sum")))
            if not monotone:
                continue
            before = first.get((name, labels))
            if before is not None and value < before:
                errors.append(
                    f"counter {name}{dict(labels)} went backwards: "
                    f"{before} -> {value}")
    for e in errors:
        print(f"check_metrics: {e}", file=sys.stderr)
    if errors:
        return 1
    n = len(samples1)
    print(f"check_metrics: OK ({n} samples, {len(types1)} families"
          f"{', monotonic across scrapes' if len(argv) == 3 else ''})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
