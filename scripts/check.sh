#!/usr/bin/env bash
# Full verification gate: the tier-1 suite on a plain build, a
# crash-robustness gate (SIGKILL + journaled resume, process isolation,
# memo hits), the same suite on an optimized Release build (the
# configuration the scheduler fast paths are benchmarked in), a smoke pass
# of the scheduler benchmarks, the PDES thread-scaling gate (skipped on
# hosts with < 4 cores), then the threaded suites (sweep engine, fault
# determinism, conservative PDES) again under TSan.
#
#   scripts/check.sh               # all stages
#   SKIP_TSAN=1 scripts/check.sh      # skip the TSan stage
#   SKIP_RELEASE=1 scripts/check.sh   # skip the Release + bench stage
#
# Build trees: build/ (plain), build-release/ (Release, shared with
# scripts/bench.sh) and build-tsan/ (MERM_SANITIZE=thread).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)

echo "=== tier-1: configure + build (build/) ==="
cmake -B build -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build -j "$JOBS"

echo "=== tier-1: full test suite ==="
ctest --test-dir build --output-on-failure

echo "=== tier-1: crash-robustness gate ==="
# The fork-based suites are tier-1 ctest members too, but this leg runs the
# binaries directly so the crash/kill/resume machinery is exercised (and
# seen to be exercised) as its own gate: SIGKILL mid-grid + byte-identical
# resume, abort() -> structured failure row, and memo hits on a repeated
# sweep.  set -e gates on their exit status.
./build/tests/explore/explore_sweep_resume_test \
  --gtest_brief=1
./build/tests/explore/explore_sweep_robust_test \
  --gtest_brief=1 --gtest_filter='SweepIsolationTest.*:SweepMemoTest.*'

echo "=== tier-1: sweep-service gate (kill -9 mid-job + spool resume) ==="
# The daemon's whole value proposition, exercised the hard way: start it in
# a throwaway spool, submit a faulted sweep slowed enough to catch mid-job,
# SIGKILL the daemon, restart it on the same spool, and require the job to
# finish on its own with fetched bytes identical to the batch engine's
# `sweep --no-host-columns` output.  (The graceful-shutdown variant runs in
# ctest as DaemonTest.ShutdownMidJobThenRestartResumesFromTheSpool.)
SPOOL=$(mktemp -d)
SOCK="$SPOOL/merm.sock"
FAULTS="drop=0.01,retries=8,seed=7"
MACHINES=(--machine preset:t805:2x2 --machine preset:risc:2x2
  --machine preset:ipsc860:2x2 --machine preset:t805:2x1)
./build/examples/mermaid_cli describe-workload > "$SPOOL/work.wl"
./build/examples/mermaid_cli serve --socket "$SOCK" --spool "$SPOOL/spool" \
  > "$SPOOL/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 100); do [[ -S "$SOCK" ]] && break; sleep 0.1; done
# --sweep-threads 1 serializes the points; --stall-ms gives each one a
# fixed head start, so "first row journaled, grid incomplete" is a state
# the script can reliably kill inside.
JOB=$(./build/examples/mermaid_cli submit --socket "$SOCK" "${MACHINES[@]}" \
  --workload "$SPOOL/work.wl" --faults "$FAULTS" \
  --sweep-threads 1 --stall-ms 500 2>> "$SPOOL/serve.log")
JOURNAL="$SPOOL/spool/jobs/$JOB/sweep.journal"
for _ in $(seq 600); do
  [[ -f "$JOURNAL" ]] && [[ "$(wc -l < "$JOURNAL")" -ge 2 ]] && break
  sleep 0.1
done
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
if [[ -f "$SPOOL/spool/jobs/$JOB/result.csv" ]]; then
  echo "serve gate FAILED: the job outran the kill; raise --stall-ms"
  exit 1
fi
./build/examples/mermaid_cli serve --socket "$SOCK" --spool "$SPOOL/spool" \
  >> "$SPOOL/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1200); do
  [[ -f "$SPOOL/spool/jobs/$JOB/result.csv" ]] && break
  sleep 0.1
done
./build/examples/mermaid_cli fetch --socket "$SOCK" --job "$JOB" \
  --out "$SPOOL/fetched.csv" 2>> "$SPOOL/serve.log"
./build/examples/mermaid_cli status --socket "$SOCK"
./build/examples/mermaid_cli shutdown --socket "$SOCK" > /dev/null
wait "$SERVE_PID" 2>/dev/null || true
./build/examples/mermaid_cli sweep "${MACHINES[@]}" \
  --workload "$SPOOL/work.wl" --faults "$FAULTS" --isolate \
  --no-host-columns --out "$SPOOL/batch.csv" > /dev/null
cmp "$SPOOL/fetched.csv" "$SPOOL/batch.csv"
echo "serve gate: resumed daemon results byte-identical to the batch sweep"
rm -rf "$SPOOL"

echo "=== tier-1: runtime-metrics gate (mid-job scrape + exposition check) ==="
# The telemetry layer, exercised against a live daemon: scrape the socket
# twice while a stalled job is in flight and have scripts/check_metrics.py
# prove both scrapes are well-formed Prometheus text (grammar, TYPE lines,
# cumulative buckets, +Inf == _count) and that every counter moved only
# forward between them; the --metrics-file mirror must independently
# validate too.
SPOOL=$(mktemp -d)
SOCK="$SPOOL/merm.sock"
MFILE="$SPOOL/metrics.prom"
./build/examples/mermaid_cli describe-workload > "$SPOOL/work.wl"
./build/examples/mermaid_cli serve --socket "$SOCK" --spool "$SPOOL/spool" \
  --metrics-file "$MFILE" --metrics-interval 0.1 > "$SPOOL/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 100); do [[ -S "$SOCK" ]] && break; sleep 0.1; done
JOB=$(./build/examples/mermaid_cli submit --socket "$SOCK" \
  --machine preset:t805:2x2 --machine preset:risc:2x2 \
  --workload "$SPOOL/work.wl" --sweep-threads 1 --stall-ms 500 \
  2>> "$SPOOL/serve.log")
./build/examples/mermaid_cli metrics --socket "$SOCK" > "$SPOOL/scrape1.prom"
JOURNAL="$SPOOL/spool/jobs/$JOB/sweep.journal"
for _ in $(seq 600); do
  [[ -f "$JOURNAL" ]] && [[ "$(wc -l < "$JOURNAL")" -ge 1 ]] && break
  sleep 0.1
done
./build/examples/mermaid_cli metrics --socket "$SOCK" > "$SPOOL/scrape2.prom"
python3 scripts/check_metrics.py "$SPOOL/scrape1.prom" "$SPOOL/scrape2.prom"
for _ in $(seq 100); do [[ -s "$MFILE" ]] && break; sleep 0.1; done
python3 scripts/check_metrics.py "$MFILE"
grep -q '^merm_serve_uptime_seconds ' "$MFILE"
for _ in $(seq 1200); do
  [[ -f "$SPOOL/spool/jobs/$JOB/result.csv" ]] && break
  sleep 0.1
done
./build/examples/mermaid_cli metrics --socket "$SOCK" > "$SPOOL/scrape3.prom"
grep -q '^merm_serve_jobs_finished_total{state="done"} 1$' "$SPOOL/scrape3.prom"
grep -q '^merm_sweep_points_total{job="' "$SPOOL/scrape3.prom"
./build/examples/mermaid_cli shutdown --socket "$SOCK" > /dev/null
wait "$SERVE_PID" 2>/dev/null || true
echo "metrics gate: scrapes valid + monotonic, metrics file well-formed"
rm -rf "$SPOOL"

if [[ "${SKIP_RELEASE:-0}" != "1" ]]; then
  echo "=== release: configure + build (build-release/) ==="
  cmake -B build-release -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build-release -j "$JOBS"

  echo "=== release: full test suite ==="
  ctest --test-dir build-release --output-on-failure

  echo "=== release: scheduler bench smoke ==="
  scripts/bench.sh --smoke

  echo "=== release: obs-overhead gate (hooks off + metrics recording) ==="
  # Two claims, one bench run.  (1) The observability hooks must be free
  # when off: the detailed inner loop with no TraceSink and no metrics
  # hooks has to stay within OBS_OVERHEAD_TOL (default 2%) of the
  # checked-in baseline in BENCH_scheduler.json.  Best-of-5, and the
  # tolerance self-widens to the jitter observed *within* this run: a
  # cross-run comparison cannot certify 2% when the same binary wobbles 5%
  # rep to rep on a shared host, and failing on machine noise would train
  # people to ignore the gate.  (2) When metrics recording is on, the
  # per-update cost (counter add + histogram observe, measured as the
  # per-op delta between the two benches) must stay under
  # METRICS_RECORD_NS_MAX ns (default 250) — an absolute guard, because
  # the bench records per *op* while production records per *point*, so a
  # relative gate would be meaningless.
  ./build-release/bench/bench_kernel_micro \
    --benchmark_filter='^BM_OperationExecution(Metrics)?/0$' \
    --benchmark_repetitions=5 --benchmark_min_time=0.1 \
    --benchmark_format=json > build-release/bench_obs_overhead.json
  python3 - <<'PY'
import json, os, sys

tol = float(os.environ.get("OBS_OVERHEAD_TOL", "0.02"))
rec_max = float(os.environ.get("METRICS_RECORD_NS_MAX", "250"))
with open("BENCH_scheduler.json") as f:
    base = json.load(f)["simulated_ops_per_sec"]["detailed_cache_resident"]
with open("build-release/bench_obs_overhead.json") as f:
    runs = json.load(f)["benchmarks"]
reps = [b["items_per_second"] for b in runs
        if b.get("run_type") == "iteration" and "items_per_second" in b
        and b["name"].startswith("BM_OperationExecution/")]
mreps = [b["items_per_second"] for b in runs
         if b.get("run_type") == "iteration" and "items_per_second" in b
         and b["name"].startswith("BM_OperationExecutionMetrics/")]
best = max(reps)
spread = (best - min(reps)) / best
effective = max(tol, spread)
ratio = best / base
print(f"obs disabled: best-of-{len(reps)} {best/1e6:.1f}M ops/s vs "
      f"baseline {base/1e6:.1f}M ops/s ({(1 - ratio) * 100:+.1f}% "
      f"overhead; tolerance {tol:.0%}, in-run jitter {spread:.1%} -> "
      f"effective {effective:.0%})")
if ratio < 1.0 - effective:
    sys.exit("obs-overhead gate FAILED: detached-hook cost exceeds the "
             "tolerance beyond measurement jitter; if the baseline in "
             "BENCH_scheduler.json is stale, re-record it with "
             "scripts/bench.sh")
if not mreps:
    sys.exit("obs-overhead gate FAILED: no BM_OperationExecutionMetrics "
             "reps in the bench output")
rec_ns = 1e9 * (1.0 / max(mreps) - 1.0 / best)
print(f"metrics recording: {rec_ns:.0f} ns per counter+histogram update "
      f"(gate: <= {rec_max:.0f} ns)")
if rec_ns > rec_max:
    sys.exit("metrics-recording gate FAILED: a counter add + histogram "
             "observe costs more than METRICS_RECORD_NS_MAX ns; check "
             "obs::Counter/Histogram for accidental contention")
PY

  echo "=== release: PDES scaling smoke gate ==="
  # A 4-worker conservative-PDES run of the 32x32 mesh at the coarse
  # 4-partition point must be at least 1.8x faster than the 1-worker run of
  # the identical partitioning.  Only meaningful with real parallelism
  # underneath, so the gate SKIPs (does not fail) on small hosts;
  # determinism itself is still enforced by the bench's own exit code and
  # by the pdes-labelled tests above.
  CORES=$(nproc 2>/dev/null || echo 1)
  if [[ "$CORES" -lt 4 ]]; then
    echo "SKIP: host has ${CORES} core(s); the >=1.8x @ 4-thread gate needs 4+"
  else
    ./build-release/bench/bench_pdes_scaling --rounds=4 --threads=1,4 \
      --partitions=4 \
      | tee build-release/bench_pdes_gate.txt
    python3 - <<'PY'
import re, sys

speedup = None
with open("build-release/bench_pdes_gate.txt") as f:
    for line in f:
        m = re.match(r"^PDES sim_threads=4 .*speedup=([0-9.eE+-]+)", line)
        if m:
            speedup = float(m.group(1))
if speedup is None:
    sys.exit("PDES gate: no 4-thread point in bench_pdes_scaling output")
print(f"PDES 4-thread speedup: {speedup:.2f}x (gate: >= 1.8x)")
if speedup < 1.8:
    sys.exit("PDES scaling gate FAILED: 4 sim threads must be >= 1.8x "
             "over 1 on a 4+ core host")
PY
  fi
fi

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "=== tsan: configure + build (build-tsan/) ==="
  cmake -B build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMERM_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS"

  echo "=== tsan: threaded suites (ctest -L tsan) ==="
  ctest --test-dir build-tsan -L tsan --output-on-failure

  echo "=== tsan: conservative-PDES battery (ctest -L pdes) ==="
  # Mostly a subset of -L tsan, but kept as its own leg so the PDES suite
  # can be run (and seen to run) in isolation: worker-count bit-identity,
  # boundary tortures and the event-queue property tests, all under TSan.
  ctest --test-dir build-tsan -L pdes --output-on-failure
fi

echo "=== check.sh: all green ==="
