#!/usr/bin/env bash
# Full verification gate: the tier-1 suite on a plain build, the same suite
# on an optimized Release build (the configuration the scheduler fast paths
# are benchmarked in), a smoke pass of the scheduler benchmarks, then the
# threaded suites (sweep engine + fault determinism) again under TSan.
#
#   scripts/check.sh               # all stages
#   SKIP_TSAN=1 scripts/check.sh      # skip the TSan stage
#   SKIP_RELEASE=1 scripts/check.sh   # skip the Release + bench stage
#
# Build trees: build/ (plain), build-release/ (Release, shared with
# scripts/bench.sh) and build-tsan/ (MERM_SANITIZE=thread).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)

echo "=== tier-1: configure + build (build/) ==="
cmake -B build -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build -j "$JOBS"

echo "=== tier-1: full test suite ==="
ctest --test-dir build --output-on-failure

if [[ "${SKIP_RELEASE:-0}" != "1" ]]; then
  echo "=== release: configure + build (build-release/) ==="
  cmake -B build-release -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build-release -j "$JOBS"

  echo "=== release: full test suite ==="
  ctest --test-dir build-release --output-on-failure

  echo "=== release: scheduler bench smoke ==="
  scripts/bench.sh --smoke
fi

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "=== tsan: configure + build (build-tsan/) ==="
  cmake -B build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMERM_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS"

  echo "=== tsan: threaded suites (ctest -L tsan) ==="
  ctest --test-dir build-tsan -L tsan --output-on-failure
fi

echo "=== check.sh: all green ==="
