#!/usr/bin/env bash
# Full verification gate: the tier-1 suite on a plain build, then the
# threaded suites (sweep engine + fault determinism) again under TSan.
#
#   scripts/check.sh            # both stages
#   SKIP_TSAN=1 scripts/check.sh  # tier-1 only (fast local iteration)
#
# Build trees: build/ (plain) and build-tsan/ (MERM_SANITIZE=thread).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)

echo "=== tier-1: configure + build (build/) ==="
cmake -B build -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build -j "$JOBS"

echo "=== tier-1: full test suite ==="
ctest --test-dir build --output-on-failure

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "=== tsan: configure + build (build-tsan/) ==="
  cmake -B build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMERM_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS"

  echo "=== tsan: threaded suites (ctest -L tsan) ==="
  ctest --test-dir build-tsan -L tsan --output-on-failure
fi

echo "=== check.sh: all green ==="
