#!/usr/bin/env bash
# Scheduler benchmark gate: builds Release, runs the kernel microbenchmarks
# and the detailed-mode slowdown table, and distills both into a single
# BENCH_scheduler.json (simulated operations/sec for the detailed-model
# inner loop — fast path vs reference scheduler —, kernel events/sec, and
# the wall seconds of every slowdown workload).
#
#   scripts/bench.sh            # full run, writes BENCH_scheduler.json
#   scripts/bench.sh --smoke    # short run (check.sh), writes under build-release/
#
# Exits non-zero if bench_slowdown_detailed's shape check fails.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)

MIN_TIME=0.5
OUT=BENCH_scheduler.json
OUT_OBS=BENCH_obs.json
OUT_PDES=BENCH_pdes.json
OUT_ROBUST=BENCH_sweep_robust.json
PDES_ROUNDS=6
ROBUST_POINTS=8
if [[ "${1:-}" == "--smoke" ]]; then
  MIN_TIME=0.05
  OUT=build-release/BENCH_scheduler_smoke.json
  OUT_OBS=build-release/BENCH_obs_smoke.json
  OUT_PDES=build-release/BENCH_pdes_smoke.json
  OUT_ROBUST=build-release/BENCH_sweep_robust_smoke.json
  PDES_ROUNDS=2
  ROBUST_POINTS=4
fi

echo "=== bench: configure + build (build-release/) ==="
cmake -B build-release -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j "$JOBS" \
  --target bench_kernel_micro bench_slowdown_detailed bench_pdes_scaling \
  bench_sweep_robust \
  >/dev/null

echo "=== bench: kernel microbenchmarks (min_time=${MIN_TIME}s) ==="
./build-release/bench/bench_kernel_micro \
  --benchmark_min_time="${MIN_TIME}" --benchmark_format=json \
  > build-release/bench_kernel_micro.json

echo "=== bench: detailed-mode slowdown table ==="
./build-release/bench/bench_slowdown_detailed \
  | tee build-release/bench_slowdown_detailed.txt

python3 - "$OUT" "$MIN_TIME" "$OUT_OBS" <<'PY'
import json, re, sys

out_path = sys.argv[1]
min_time = float(sys.argv[2])
obs_path = sys.argv[3]
with open("build-release/bench_kernel_micro.json") as f:
    micro = json.load(f)

rate = {}
for b in micro["benchmarks"]:
    if "items_per_second" in b:
        rate[b["name"]] = b["items_per_second"]

rows = []
row_re = re.compile(
    r"^\|\s*(?P<machine>[^|]+?)\s*\|\s*(?P<workload>[^|]+?)\s*\|"
    r"\s*(?P<procs>\d+)\s*\|\s*(?P<cycles>\d+)\s*\|"
    r"\s*(?P<host>[0-9.]+)\s*\|\s*(?P<slowdown>[0-9.]+)\s*\|")
with open("build-release/bench_slowdown_detailed.txt") as f:
    for line in f:
        m = row_re.match(line)
        if m:
            rows.append({
                "machine": m["machine"],
                "workload": m["workload"],
                "processors": int(m["procs"]),
                "sim_cycles": int(m["cycles"]),
                "wall_seconds": float(m["host"]),
                "slowdown_per_processor": float(m["slowdown"]),
            })

report = {
    "generated_by": "scripts/bench.sh",
    "build_type": "Release",
    "benchmark_min_time_s": min_time,
    "simulated_ops_per_sec": {
        "detailed_cache_resident": rate.get("BM_OperationExecution/0"),
        "detailed_thrashing": rate.get("BM_OperationExecution/1"),
        "reference_cache_resident":
            rate.get("BM_OperationExecutionReference/0"),
        "reference_thrashing": rate.get("BM_OperationExecutionReference/1"),
    },
    "events_per_sec": {
        "queue_4096": rate.get("BM_EventQueueThroughput/4096"),
        "queue_65536": rate.get("BM_EventQueueThroughput/65536"),
        "process_switching": rate.get("BM_ProcessSwitching/16384"),
        "channel_rendezvous": rate.get("BM_ChannelRendezvous/16384"),
    },
    "slowdown_detailed": {
        "rows": rows,
        "total_wall_seconds": round(sum(r["wall_seconds"] for r in rows), 3),
    },
}
fast = report["simulated_ops_per_sec"]["detailed_cache_resident"]
ref = report["simulated_ops_per_sec"]["reference_cache_resident"]
if fast and ref:
    report["fast_over_reference"] = round(fast / ref, 2)

with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
if fast and ref:
    print(f"detailed inner loop: {fast/1e6:.1f}M ops/s fast "
          f"vs {ref/1e6:.1f}M ops/s reference ({fast/ref:.1f}x)")

# The observability series: the detailed inner loop with a TraceSink
# attached vs detached.  The detached figure equals BM_OperationExecution
# by construction (hooks are branch-on-null); the attached one prices
# recording itself, wrap included.
obs = {
    "generated_by": "scripts/bench.sh",
    "series": "obs",
    "build_type": "Release",
    "benchmark_min_time_s": min_time,
    "simulated_ops_per_sec": {
        "detailed_cache_resident_untraced":
            rate.get("BM_OperationExecution/0"),
        "detailed_cache_resident_traced":
            rate.get("BM_OperationExecutionTraced/0"),
        "detailed_thrashing_untraced": rate.get("BM_OperationExecution/1"),
        "detailed_thrashing_traced":
            rate.get("BM_OperationExecutionTraced/1"),
    },
}
pairs = obs["simulated_ops_per_sec"]
overhead = {}
for key in ("cache_resident", "thrashing"):
    off = pairs.get(f"detailed_{key}_untraced")
    on = pairs.get(f"detailed_{key}_traced")
    if off and on:
        overhead[key] = round(off / on, 3)
if overhead:
    obs["traced_slowdown"] = overhead
with open(obs_path, "w") as f:
    json.dump(obs, f, indent=2)
    f.write("\n")
print(f"wrote {obs_path}")
for key, x in overhead.items():
    print(f"tracing ON costs {key}: {x:.2f}x")
PY

echo "=== bench: PDES thread scaling (32x32 T805, task level) ==="
# The bench itself exits non-zero if the stat tables diverge across thread
# counts, so this stage doubles as a release-build determinism check.
./build-release/bench/bench_pdes_scaling --rounds="$PDES_ROUNDS" \
  | tee build-release/bench_pdes_scaling.txt

python3 - "$OUT_PDES" "$PDES_ROUNDS" <<'PY'
import json, os, re, sys

out_path = sys.argv[1]
rounds = int(sys.argv[2])
try:
    with open("/proc/cpuinfo") as f:
        host_cores = sum(1 for line in f if line.startswith("processor"))
except OSError:
    host_cores = 0

# A scaling curve recorded on a bigger host is strictly more informative
# than one from a smaller host: refuse to clobber it.  (Delete the file, or
# run on an equal-or-larger machine, to re-record.)
if os.path.exists(out_path):
    try:
        with open(out_path) as f:
            prev_cores = json.load(f).get("host_cores", 0)
    except (OSError, ValueError):
        prev_cores = 0
    if prev_cores > host_cores:
        print(f"KEEP {out_path}: it was recorded on a {prev_cores}-core "
              f"host; this host has only {host_cores} core(s) and its "
              f"speedups would be unrepresentative")
        sys.exit(0)

points = []
line_re = re.compile(
    r"^PDES sim_threads=(?P<threads>\d+) partitions=(?P<parts>\d+)"
    r" windows=(?P<windows>\d+)"
    r" barriers_per_sim_second=(?P<barriers>[0-9.eE+-]+)"
    r" ops_per_sec=(?P<rate>[0-9.eE+-]+)"
    r" speedup=(?P<speedup>[0-9.eE+-]+) host_seconds=(?P<secs>[0-9.eE+-]+)")
with open("build-release/bench_pdes_scaling.txt") as f:
    for line in f:
        m = line_re.match(line)
        if m:
            points.append({
                "sim_threads": int(m["threads"]),
                "partitions": int(m["parts"]),
                "windows": int(m["windows"]),
                "barriers_per_sim_second": round(float(m["barriers"]), 1),
                "ops_per_sec": round(float(m["rate"]), 1),
                "speedup": round(float(m["speedup"]), 3),
                "host_seconds": round(float(m["secs"]), 4),
            })
if not points:
    sys.exit("no PDES scaling points parsed from bench_pdes_scaling output")

# A point run with more sim threads than the host has cores measures
# oversubscription, not scaling; mark it so nobody quotes it as a speedup.
for p in points:
    if host_cores and p["sim_threads"] > host_cores:
        p["unrepresentative"] = True

report = {
    "generated_by": "scripts/bench.sh",
    "series": "pdes",
    "build_type": "Release",
    "workload": ("32x32 t805 mesh, stochastic random-perm, task level, "
                 "coarse partitions fixed at max sim_threads"),
    "rounds": rounds,
    # Speedups are only meaningful relative to this: on a host with fewer
    # cores than sim threads, slowdown at higher thread counts is expected.
    "host_cores": host_cores,
    "points": points,
}
with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
for p in points:
    print(f"  sim_threads={p['sim_threads']}: "
          f"{p['ops_per_sec']/1e3:.1f}K ops/s, {p['speedup']:.2f}x")
PY

echo "=== bench: sweep robustness (isolation overhead + memo hit rate) ==="
# The bench exits non-zero if isolated/memoized rows are not byte-identical
# to plain in-process rows, so this stage is also a correctness gate.
./build-release/bench/bench_sweep_robust --points="$ROBUST_POINTS" \
  | tee build-release/bench_sweep_robust.txt

python3 - "$OUT_ROBUST" "$ROBUST_POINTS" <<'PY'
import json, re, sys

out_path = sys.argv[1]
points = int(sys.argv[2])

kv_re = re.compile(r"(\w+)=([0-9.eE+-]+)")
series = {}
with open("build-release/bench_sweep_robust.txt") as f:
    for line in f:
        m = re.match(r"^SWEEP-ROBUST (\w+) (.*)$", line)
        if m:
            series[m.group(1)] = {k: float(v)
                                  for k, v in kv_re.findall(m.group(2))}
iso = series.get("isolation")
memo = series.get("memo")
if not iso or not memo:
    sys.exit("no SWEEP-ROBUST lines parsed from bench_sweep_robust output")

report = {
    "generated_by": "scripts/bench.sh",
    "series": "sweep_robust",
    "build_type": "Release",
    "grid": "stencil 16x2 on 2x2 t805, detailed level, 1 sweep thread",
    "points": points,
    "isolation": {
        "in_process_seconds": iso["in_process_seconds"],
        "isolated_seconds": iso["isolated_seconds"],
        "overhead_x": iso["overhead_x"],
    },
    "memo": {
        "cold_seconds": memo["cold_seconds"],
        "warm_seconds": memo["warm_seconds"],
        "hits": int(memo["hits"]),
        "misses": int(memo["misses"]),
        "hit_rate": memo["hit_rate"],
        "warm_speedup_x": memo["warm_speedup_x"],
    },
}
with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
print(f"  isolation overhead: {iso['overhead_x']:.2f}x; "
      f"memo warm speedup: {memo['warm_speedup_x']:.2f}x "
      f"(hit rate {memo['hit_rate']:.0%})")
PY

echo "=== bench.sh: done ==="
