# Empty dependencies file for bench_accuracy_tradeoff.
# This may be replaced when dependencies are built.
