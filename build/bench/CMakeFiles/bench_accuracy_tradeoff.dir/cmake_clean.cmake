file(REMOVE_RECURSE
  "CMakeFiles/bench_accuracy_tradeoff.dir/bench_accuracy_tradeoff.cpp.o"
  "CMakeFiles/bench_accuracy_tradeoff.dir/bench_accuracy_tradeoff.cpp.o.d"
  "bench_accuracy_tradeoff"
  "bench_accuracy_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_accuracy_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
