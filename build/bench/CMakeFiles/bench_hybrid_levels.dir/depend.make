# Empty dependencies file for bench_hybrid_levels.
# This may be replaced when dependencies are built.
