file(REMOVE_RECURSE
  "CMakeFiles/bench_hybrid_levels.dir/bench_hybrid_levels.cpp.o"
  "CMakeFiles/bench_hybrid_levels.dir/bench_hybrid_levels.cpp.o.d"
  "bench_hybrid_levels"
  "bench_hybrid_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hybrid_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
