file(REMOVE_RECURSE
  "CMakeFiles/bench_vsm.dir/bench_vsm.cpp.o"
  "CMakeFiles/bench_vsm.dir/bench_vsm.cpp.o.d"
  "bench_vsm"
  "bench_vsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
