# Empty compiler generated dependencies file for bench_vsm.
# This may be replaced when dependencies are built.
