file(REMOVE_RECURSE
  "CMakeFiles/bench_slowdown_detailed.dir/bench_slowdown_detailed.cpp.o"
  "CMakeFiles/bench_slowdown_detailed.dir/bench_slowdown_detailed.cpp.o.d"
  "bench_slowdown_detailed"
  "bench_slowdown_detailed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slowdown_detailed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
