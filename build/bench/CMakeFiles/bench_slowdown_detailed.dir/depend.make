# Empty dependencies file for bench_slowdown_detailed.
# This may be replaced when dependencies are built.
