# Empty dependencies file for bench_slowdown_tasklevel.
# This may be replaced when dependencies are built.
