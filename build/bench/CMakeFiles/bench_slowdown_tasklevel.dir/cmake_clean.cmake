file(REMOVE_RECURSE
  "CMakeFiles/bench_slowdown_tasklevel.dir/bench_slowdown_tasklevel.cpp.o"
  "CMakeFiles/bench_slowdown_tasklevel.dir/bench_slowdown_tasklevel.cpp.o.d"
  "bench_slowdown_tasklevel"
  "bench_slowdown_tasklevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slowdown_tasklevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
