file(REMOVE_RECURSE
  "libmerm_sim.a"
)
