file(REMOVE_RECURSE
  "CMakeFiles/merm_sim.dir/logging.cpp.o"
  "CMakeFiles/merm_sim.dir/logging.cpp.o.d"
  "CMakeFiles/merm_sim.dir/random.cpp.o"
  "CMakeFiles/merm_sim.dir/random.cpp.o.d"
  "CMakeFiles/merm_sim.dir/simulator.cpp.o"
  "CMakeFiles/merm_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/merm_sim.dir/types.cpp.o"
  "CMakeFiles/merm_sim.dir/types.cpp.o.d"
  "libmerm_sim.a"
  "libmerm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
