# Empty dependencies file for merm_sim.
# This may be replaced when dependencies are built.
