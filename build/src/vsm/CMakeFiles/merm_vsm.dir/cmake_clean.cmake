file(REMOVE_RECURSE
  "CMakeFiles/merm_vsm.dir/vsm.cpp.o"
  "CMakeFiles/merm_vsm.dir/vsm.cpp.o.d"
  "libmerm_vsm.a"
  "libmerm_vsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merm_vsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
