file(REMOVE_RECURSE
  "libmerm_vsm.a"
)
