# Empty dependencies file for merm_vsm.
# This may be replaced when dependencies are built.
