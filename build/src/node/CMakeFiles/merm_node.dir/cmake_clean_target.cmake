file(REMOVE_RECURSE
  "libmerm_node.a"
)
