file(REMOVE_RECURSE
  "CMakeFiles/merm_node.dir/comm_node.cpp.o"
  "CMakeFiles/merm_node.dir/comm_node.cpp.o.d"
  "CMakeFiles/merm_node.dir/compute_node.cpp.o"
  "CMakeFiles/merm_node.dir/compute_node.cpp.o.d"
  "CMakeFiles/merm_node.dir/machine.cpp.o"
  "CMakeFiles/merm_node.dir/machine.cpp.o.d"
  "libmerm_node.a"
  "libmerm_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merm_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
