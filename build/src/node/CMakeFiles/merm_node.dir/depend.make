# Empty dependencies file for merm_node.
# This may be replaced when dependencies are built.
