file(REMOVE_RECURSE
  "libmerm_memory.a"
)
