file(REMOVE_RECURSE
  "CMakeFiles/merm_memory.dir/bus.cpp.o"
  "CMakeFiles/merm_memory.dir/bus.cpp.o.d"
  "CMakeFiles/merm_memory.dir/cache.cpp.o"
  "CMakeFiles/merm_memory.dir/cache.cpp.o.d"
  "CMakeFiles/merm_memory.dir/hierarchy.cpp.o"
  "CMakeFiles/merm_memory.dir/hierarchy.cpp.o.d"
  "libmerm_memory.a"
  "libmerm_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merm_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
