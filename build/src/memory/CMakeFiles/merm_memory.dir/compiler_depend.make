# Empty compiler generated dependencies file for merm_memory.
# This may be replaced when dependencies are built.
