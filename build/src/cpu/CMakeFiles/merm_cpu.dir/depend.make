# Empty dependencies file for merm_cpu.
# This may be replaced when dependencies are built.
