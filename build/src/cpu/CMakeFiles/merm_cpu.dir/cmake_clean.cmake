file(REMOVE_RECURSE
  "CMakeFiles/merm_cpu.dir/cpu.cpp.o"
  "CMakeFiles/merm_cpu.dir/cpu.cpp.o.d"
  "libmerm_cpu.a"
  "libmerm_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merm_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
