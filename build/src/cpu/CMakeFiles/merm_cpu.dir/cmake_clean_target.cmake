file(REMOVE_RECURSE
  "libmerm_cpu.a"
)
