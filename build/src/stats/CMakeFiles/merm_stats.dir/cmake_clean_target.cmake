file(REMOVE_RECURSE
  "libmerm_stats.a"
)
