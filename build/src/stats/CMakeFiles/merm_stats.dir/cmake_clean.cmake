file(REMOVE_RECURSE
  "CMakeFiles/merm_stats.dir/stats.cpp.o"
  "CMakeFiles/merm_stats.dir/stats.cpp.o.d"
  "libmerm_stats.a"
  "libmerm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
