# Empty dependencies file for merm_stats.
# This may be replaced when dependencies are built.
