file(REMOVE_RECURSE
  "CMakeFiles/merm_machine.dir/config.cpp.o"
  "CMakeFiles/merm_machine.dir/config.cpp.o.d"
  "CMakeFiles/merm_machine.dir/params.cpp.o"
  "CMakeFiles/merm_machine.dir/params.cpp.o.d"
  "libmerm_machine.a"
  "libmerm_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merm_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
