file(REMOVE_RECURSE
  "libmerm_machine.a"
)
