# Empty compiler generated dependencies file for merm_machine.
# This may be replaced when dependencies are built.
