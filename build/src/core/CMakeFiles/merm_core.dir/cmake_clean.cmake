file(REMOVE_RECURSE
  "CMakeFiles/merm_core.dir/host.cpp.o"
  "CMakeFiles/merm_core.dir/host.cpp.o.d"
  "CMakeFiles/merm_core.dir/workbench.cpp.o"
  "CMakeFiles/merm_core.dir/workbench.cpp.o.d"
  "libmerm_core.a"
  "libmerm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
