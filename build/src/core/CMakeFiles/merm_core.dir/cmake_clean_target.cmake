file(REMOVE_RECURSE
  "libmerm_core.a"
)
