# Empty dependencies file for merm_core.
# This may be replaced when dependencies are built.
