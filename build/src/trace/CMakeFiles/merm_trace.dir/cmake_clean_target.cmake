file(REMOVE_RECURSE
  "libmerm_trace.a"
)
