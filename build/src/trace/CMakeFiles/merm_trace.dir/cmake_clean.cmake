file(REMOVE_RECURSE
  "CMakeFiles/merm_trace.dir/operation.cpp.o"
  "CMakeFiles/merm_trace.dir/operation.cpp.o.d"
  "CMakeFiles/merm_trace.dir/trace_io.cpp.o"
  "CMakeFiles/merm_trace.dir/trace_io.cpp.o.d"
  "libmerm_trace.a"
  "libmerm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
