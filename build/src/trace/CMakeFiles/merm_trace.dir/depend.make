# Empty dependencies file for merm_trace.
# This may be replaced when dependencies are built.
