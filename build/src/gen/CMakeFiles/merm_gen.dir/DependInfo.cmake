
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/annotate.cpp" "src/gen/CMakeFiles/merm_gen.dir/annotate.cpp.o" "gcc" "src/gen/CMakeFiles/merm_gen.dir/annotate.cpp.o.d"
  "/root/repo/src/gen/apps.cpp" "src/gen/CMakeFiles/merm_gen.dir/apps.cpp.o" "gcc" "src/gen/CMakeFiles/merm_gen.dir/apps.cpp.o.d"
  "/root/repo/src/gen/collectives.cpp" "src/gen/CMakeFiles/merm_gen.dir/collectives.cpp.o" "gcc" "src/gen/CMakeFiles/merm_gen.dir/collectives.cpp.o.d"
  "/root/repo/src/gen/direct_execution.cpp" "src/gen/CMakeFiles/merm_gen.dir/direct_execution.cpp.o" "gcc" "src/gen/CMakeFiles/merm_gen.dir/direct_execution.cpp.o.d"
  "/root/repo/src/gen/stochastic.cpp" "src/gen/CMakeFiles/merm_gen.dir/stochastic.cpp.o" "gcc" "src/gen/CMakeFiles/merm_gen.dir/stochastic.cpp.o.d"
  "/root/repo/src/gen/threaded_source.cpp" "src/gen/CMakeFiles/merm_gen.dir/threaded_source.cpp.o" "gcc" "src/gen/CMakeFiles/merm_gen.dir/threaded_source.cpp.o.d"
  "/root/repo/src/gen/vartable.cpp" "src/gen/CMakeFiles/merm_gen.dir/vartable.cpp.o" "gcc" "src/gen/CMakeFiles/merm_gen.dir/vartable.cpp.o.d"
  "/root/repo/src/gen/vsm_apps.cpp" "src/gen/CMakeFiles/merm_gen.dir/vsm_apps.cpp.o" "gcc" "src/gen/CMakeFiles/merm_gen.dir/vsm_apps.cpp.o.d"
  "/root/repo/src/gen/workload_config.cpp" "src/gen/CMakeFiles/merm_gen.dir/workload_config.cpp.o" "gcc" "src/gen/CMakeFiles/merm_gen.dir/workload_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/merm_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/merm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/merm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
