file(REMOVE_RECURSE
  "CMakeFiles/merm_gen.dir/annotate.cpp.o"
  "CMakeFiles/merm_gen.dir/annotate.cpp.o.d"
  "CMakeFiles/merm_gen.dir/apps.cpp.o"
  "CMakeFiles/merm_gen.dir/apps.cpp.o.d"
  "CMakeFiles/merm_gen.dir/collectives.cpp.o"
  "CMakeFiles/merm_gen.dir/collectives.cpp.o.d"
  "CMakeFiles/merm_gen.dir/direct_execution.cpp.o"
  "CMakeFiles/merm_gen.dir/direct_execution.cpp.o.d"
  "CMakeFiles/merm_gen.dir/stochastic.cpp.o"
  "CMakeFiles/merm_gen.dir/stochastic.cpp.o.d"
  "CMakeFiles/merm_gen.dir/threaded_source.cpp.o"
  "CMakeFiles/merm_gen.dir/threaded_source.cpp.o.d"
  "CMakeFiles/merm_gen.dir/vartable.cpp.o"
  "CMakeFiles/merm_gen.dir/vartable.cpp.o.d"
  "CMakeFiles/merm_gen.dir/vsm_apps.cpp.o"
  "CMakeFiles/merm_gen.dir/vsm_apps.cpp.o.d"
  "CMakeFiles/merm_gen.dir/workload_config.cpp.o"
  "CMakeFiles/merm_gen.dir/workload_config.cpp.o.d"
  "libmerm_gen.a"
  "libmerm_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merm_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
