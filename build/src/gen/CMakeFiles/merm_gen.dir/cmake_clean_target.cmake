file(REMOVE_RECURSE
  "libmerm_gen.a"
)
