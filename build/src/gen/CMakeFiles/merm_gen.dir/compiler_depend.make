# Empty compiler generated dependencies file for merm_gen.
# This may be replaced when dependencies are built.
