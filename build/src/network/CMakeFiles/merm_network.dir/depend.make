# Empty dependencies file for merm_network.
# This may be replaced when dependencies are built.
