file(REMOVE_RECURSE
  "CMakeFiles/merm_network.dir/network.cpp.o"
  "CMakeFiles/merm_network.dir/network.cpp.o.d"
  "CMakeFiles/merm_network.dir/topology.cpp.o"
  "CMakeFiles/merm_network.dir/topology.cpp.o.d"
  "libmerm_network.a"
  "libmerm_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merm_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
