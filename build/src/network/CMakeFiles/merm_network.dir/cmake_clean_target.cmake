file(REMOVE_RECURSE
  "libmerm_network.a"
)
