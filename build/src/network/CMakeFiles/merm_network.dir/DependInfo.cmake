
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/network/network.cpp" "src/network/CMakeFiles/merm_network.dir/network.cpp.o" "gcc" "src/network/CMakeFiles/merm_network.dir/network.cpp.o.d"
  "/root/repo/src/network/topology.cpp" "src/network/CMakeFiles/merm_network.dir/topology.cpp.o" "gcc" "src/network/CMakeFiles/merm_network.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/merm_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/merm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/merm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/merm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
