
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/stats_test.cpp" "tests/stats/CMakeFiles/stats_test.dir/stats_test.cpp.o" "gcc" "tests/stats/CMakeFiles/stats_test.dir/stats_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/merm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vsm/CMakeFiles/merm_vsm.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/merm_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/merm_node.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/merm_network.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/merm_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/merm_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/merm_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/merm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/merm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/merm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
