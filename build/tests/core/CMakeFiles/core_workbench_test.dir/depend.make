# Empty dependencies file for core_workbench_test.
# This may be replaced when dependencies are built.
