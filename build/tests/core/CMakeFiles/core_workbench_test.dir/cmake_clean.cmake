file(REMOVE_RECURSE
  "CMakeFiles/core_workbench_test.dir/workbench_test.cpp.o"
  "CMakeFiles/core_workbench_test.dir/workbench_test.cpp.o.d"
  "core_workbench_test"
  "core_workbench_test.pdb"
  "core_workbench_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_workbench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
