# CMake generated Testfile for 
# Source directory: /root/repo/tests/gen
# Build directory: /root/repo/build/tests/gen
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/gen/gen_vartable_test[1]_include.cmake")
include("/root/repo/build/tests/gen/gen_annotate_test[1]_include.cmake")
include("/root/repo/build/tests/gen/gen_stochastic_test[1]_include.cmake")
include("/root/repo/build/tests/gen/gen_threaded_source_test[1]_include.cmake")
include("/root/repo/build/tests/gen/gen_apps_test[1]_include.cmake")
include("/root/repo/build/tests/gen/gen_direct_execution_test[1]_include.cmake")
include("/root/repo/build/tests/gen/gen_collectives_test[1]_include.cmake")
include("/root/repo/build/tests/gen/gen_workload_config_test[1]_include.cmake")
