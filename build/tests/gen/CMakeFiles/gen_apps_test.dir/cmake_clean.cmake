file(REMOVE_RECURSE
  "CMakeFiles/gen_apps_test.dir/apps_test.cpp.o"
  "CMakeFiles/gen_apps_test.dir/apps_test.cpp.o.d"
  "gen_apps_test"
  "gen_apps_test.pdb"
  "gen_apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
