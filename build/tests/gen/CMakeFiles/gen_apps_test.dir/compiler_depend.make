# Empty compiler generated dependencies file for gen_apps_test.
# This may be replaced when dependencies are built.
