file(REMOVE_RECURSE
  "CMakeFiles/gen_collectives_test.dir/collectives_test.cpp.o"
  "CMakeFiles/gen_collectives_test.dir/collectives_test.cpp.o.d"
  "gen_collectives_test"
  "gen_collectives_test.pdb"
  "gen_collectives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_collectives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
