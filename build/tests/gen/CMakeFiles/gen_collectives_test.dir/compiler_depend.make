# Empty compiler generated dependencies file for gen_collectives_test.
# This may be replaced when dependencies are built.
