file(REMOVE_RECURSE
  "CMakeFiles/gen_vartable_test.dir/vartable_test.cpp.o"
  "CMakeFiles/gen_vartable_test.dir/vartable_test.cpp.o.d"
  "gen_vartable_test"
  "gen_vartable_test.pdb"
  "gen_vartable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_vartable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
