# Empty dependencies file for gen_vartable_test.
# This may be replaced when dependencies are built.
