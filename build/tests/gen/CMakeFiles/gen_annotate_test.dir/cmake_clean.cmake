file(REMOVE_RECURSE
  "CMakeFiles/gen_annotate_test.dir/annotate_test.cpp.o"
  "CMakeFiles/gen_annotate_test.dir/annotate_test.cpp.o.d"
  "gen_annotate_test"
  "gen_annotate_test.pdb"
  "gen_annotate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_annotate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
