# Empty dependencies file for gen_annotate_test.
# This may be replaced when dependencies are built.
