# Empty compiler generated dependencies file for gen_direct_execution_test.
# This may be replaced when dependencies are built.
