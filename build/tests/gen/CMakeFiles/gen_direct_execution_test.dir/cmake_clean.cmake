file(REMOVE_RECURSE
  "CMakeFiles/gen_direct_execution_test.dir/direct_execution_test.cpp.o"
  "CMakeFiles/gen_direct_execution_test.dir/direct_execution_test.cpp.o.d"
  "gen_direct_execution_test"
  "gen_direct_execution_test.pdb"
  "gen_direct_execution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_direct_execution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
