# Empty compiler generated dependencies file for gen_stochastic_test.
# This may be replaced when dependencies are built.
