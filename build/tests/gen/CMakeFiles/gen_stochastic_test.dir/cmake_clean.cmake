file(REMOVE_RECURSE
  "CMakeFiles/gen_stochastic_test.dir/stochastic_test.cpp.o"
  "CMakeFiles/gen_stochastic_test.dir/stochastic_test.cpp.o.d"
  "gen_stochastic_test"
  "gen_stochastic_test.pdb"
  "gen_stochastic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_stochastic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
