# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gen_threaded_source_test.
