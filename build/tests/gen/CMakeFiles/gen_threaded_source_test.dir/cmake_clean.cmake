file(REMOVE_RECURSE
  "CMakeFiles/gen_threaded_source_test.dir/threaded_source_test.cpp.o"
  "CMakeFiles/gen_threaded_source_test.dir/threaded_source_test.cpp.o.d"
  "gen_threaded_source_test"
  "gen_threaded_source_test.pdb"
  "gen_threaded_source_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_threaded_source_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
