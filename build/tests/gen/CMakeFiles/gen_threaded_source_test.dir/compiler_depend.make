# Empty compiler generated dependencies file for gen_threaded_source_test.
# This may be replaced when dependencies are built.
