# Empty compiler generated dependencies file for gen_workload_config_test.
# This may be replaced when dependencies are built.
