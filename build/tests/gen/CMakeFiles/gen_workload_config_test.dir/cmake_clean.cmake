file(REMOVE_RECURSE
  "CMakeFiles/gen_workload_config_test.dir/workload_config_test.cpp.o"
  "CMakeFiles/gen_workload_config_test.dir/workload_config_test.cpp.o.d"
  "gen_workload_config_test"
  "gen_workload_config_test.pdb"
  "gen_workload_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_workload_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
