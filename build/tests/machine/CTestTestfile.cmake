# CMake generated Testfile for 
# Source directory: /root/repo/tests/machine
# Build directory: /root/repo/build/tests/machine
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/machine/machine_params_test[1]_include.cmake")
include("/root/repo/build/tests/machine/machine_config_test[1]_include.cmake")
