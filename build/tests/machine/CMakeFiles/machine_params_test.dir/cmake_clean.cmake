file(REMOVE_RECURSE
  "CMakeFiles/machine_params_test.dir/params_test.cpp.o"
  "CMakeFiles/machine_params_test.dir/params_test.cpp.o.d"
  "machine_params_test"
  "machine_params_test.pdb"
  "machine_params_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
