file(REMOVE_RECURSE
  "CMakeFiles/network_topology_test.dir/topology_test.cpp.o"
  "CMakeFiles/network_topology_test.dir/topology_test.cpp.o.d"
  "network_topology_test"
  "network_topology_test.pdb"
  "network_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
