# Empty compiler generated dependencies file for node_comm_stress_test.
# This may be replaced when dependencies are built.
