file(REMOVE_RECURSE
  "CMakeFiles/node_machine_test.dir/machine_test.cpp.o"
  "CMakeFiles/node_machine_test.dir/machine_test.cpp.o.d"
  "node_machine_test"
  "node_machine_test.pdb"
  "node_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
