file(REMOVE_RECURSE
  "CMakeFiles/node_comm_test.dir/comm_node_test.cpp.o"
  "CMakeFiles/node_comm_test.dir/comm_node_test.cpp.o.d"
  "node_comm_test"
  "node_comm_test.pdb"
  "node_comm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_comm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
