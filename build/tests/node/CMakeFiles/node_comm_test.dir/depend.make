# Empty dependencies file for node_comm_test.
# This may be replaced when dependencies are built.
