file(REMOVE_RECURSE
  "CMakeFiles/integration_environment_test.dir/environment_test.cpp.o"
  "CMakeFiles/integration_environment_test.dir/environment_test.cpp.o.d"
  "integration_environment_test"
  "integration_environment_test.pdb"
  "integration_environment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_environment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
