# Empty dependencies file for integration_environment_test.
# This may be replaced when dependencies are built.
