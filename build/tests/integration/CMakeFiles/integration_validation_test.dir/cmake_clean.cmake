file(REMOVE_RECURSE
  "CMakeFiles/integration_validation_test.dir/validation_test.cpp.o"
  "CMakeFiles/integration_validation_test.dir/validation_test.cpp.o.d"
  "integration_validation_test"
  "integration_validation_test.pdb"
  "integration_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
