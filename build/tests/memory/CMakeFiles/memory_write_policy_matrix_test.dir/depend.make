# Empty dependencies file for memory_write_policy_matrix_test.
# This may be replaced when dependencies are built.
