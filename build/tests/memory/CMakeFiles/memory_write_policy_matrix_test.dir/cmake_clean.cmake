file(REMOVE_RECURSE
  "CMakeFiles/memory_write_policy_matrix_test.dir/write_policy_matrix_test.cpp.o"
  "CMakeFiles/memory_write_policy_matrix_test.dir/write_policy_matrix_test.cpp.o.d"
  "memory_write_policy_matrix_test"
  "memory_write_policy_matrix_test.pdb"
  "memory_write_policy_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_write_policy_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
