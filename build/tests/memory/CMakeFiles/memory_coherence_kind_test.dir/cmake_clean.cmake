file(REMOVE_RECURSE
  "CMakeFiles/memory_coherence_kind_test.dir/coherence_kind_test.cpp.o"
  "CMakeFiles/memory_coherence_kind_test.dir/coherence_kind_test.cpp.o.d"
  "memory_coherence_kind_test"
  "memory_coherence_kind_test.pdb"
  "memory_coherence_kind_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_coherence_kind_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
