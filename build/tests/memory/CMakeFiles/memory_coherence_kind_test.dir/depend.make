# Empty dependencies file for memory_coherence_kind_test.
# This may be replaced when dependencies are built.
