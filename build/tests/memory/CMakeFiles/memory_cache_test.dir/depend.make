# Empty dependencies file for memory_cache_test.
# This may be replaced when dependencies are built.
