file(REMOVE_RECURSE
  "CMakeFiles/memory_cache_test.dir/cache_test.cpp.o"
  "CMakeFiles/memory_cache_test.dir/cache_test.cpp.o.d"
  "memory_cache_test"
  "memory_cache_test.pdb"
  "memory_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
