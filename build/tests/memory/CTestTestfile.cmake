# CMake generated Testfile for 
# Source directory: /root/repo/tests/memory
# Build directory: /root/repo/build/tests/memory
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/memory/memory_cache_test[1]_include.cmake")
include("/root/repo/build/tests/memory/memory_bus_test[1]_include.cmake")
include("/root/repo/build/tests/memory/memory_hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/memory/memory_coherence_kind_test[1]_include.cmake")
include("/root/repo/build/tests/memory/memory_write_policy_matrix_test[1]_include.cmake")
