file(REMOVE_RECURSE
  "CMakeFiles/sim_channel_test.dir/channel_test.cpp.o"
  "CMakeFiles/sim_channel_test.dir/channel_test.cpp.o.d"
  "sim_channel_test"
  "sim_channel_test.pdb"
  "sim_channel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
