file(REMOVE_RECURSE
  "CMakeFiles/vsm_test.dir/vsm_test.cpp.o"
  "CMakeFiles/vsm_test.dir/vsm_test.cpp.o.d"
  "vsm_test"
  "vsm_test.pdb"
  "vsm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
