# Empty dependencies file for trace_operation_test.
# This may be replaced when dependencies are built.
