file(REMOVE_RECURSE
  "CMakeFiles/trace_operation_test.dir/operation_test.cpp.o"
  "CMakeFiles/trace_operation_test.dir/operation_test.cpp.o.d"
  "trace_operation_test"
  "trace_operation_test.pdb"
  "trace_operation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_operation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
