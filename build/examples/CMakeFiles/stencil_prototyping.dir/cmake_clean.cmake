file(REMOVE_RECURSE
  "CMakeFiles/stencil_prototyping.dir/stencil_prototyping.cpp.o"
  "CMakeFiles/stencil_prototyping.dir/stencil_prototyping.cpp.o.d"
  "stencil_prototyping"
  "stencil_prototyping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_prototyping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
