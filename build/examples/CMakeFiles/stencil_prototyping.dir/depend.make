# Empty dependencies file for stencil_prototyping.
# This may be replaced when dependencies are built.
