# Empty compiler generated dependencies file for hybrid_cluster.
# This may be replaced when dependencies are built.
