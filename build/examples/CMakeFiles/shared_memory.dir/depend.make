# Empty dependencies file for shared_memory.
# This may be replaced when dependencies are built.
