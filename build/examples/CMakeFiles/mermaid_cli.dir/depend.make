# Empty dependencies file for mermaid_cli.
# This may be replaced when dependencies are built.
