file(REMOVE_RECURSE
  "CMakeFiles/mermaid_cli.dir/mermaid_cli.cpp.o"
  "CMakeFiles/mermaid_cli.dir/mermaid_cli.cpp.o.d"
  "mermaid_cli"
  "mermaid_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mermaid_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
