# Empty compiler generated dependencies file for mermaid_cli.
# This may be replaced when dependencies are built.
