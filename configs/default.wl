instructions_per_round = 10000
rounds = 4
seed = 1
task_level = false
mean_task_us = 100

[mix]
load = 0.25
store = 0.1
load_const = 0.05
add = 0.3
sub = 0.1
mul = 0.15
div = 0.05
fp_fraction = 0.3
branch_fraction = 0.1

[memory]
data_working_set = 65536
spatial_locality = 0.7
code_working_set = 4096

[comm]
pattern = ring
stride = 1
message_bytes = 1024
exponential_sizes = false
synchronous = false
