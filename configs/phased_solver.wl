; A two-phase iterative solver: an FP-heavy compute phase with neighbor
; exchange, then a memory-bound assembly phase ending in a gather.
rounds = 4
seed = 12
[phase.0]
instructions = 15000
fp_fraction = 0.8
data_working_set = 32768
pattern = ring
message_bytes = 16384
[phase.1]
instructions = 5000
fp_fraction = 0.1
data_working_set = 524288
spatial_locality = 0.4
pattern = gather
message_bytes = 4096
