; Task-level fast-prototyping load: random permutation traffic.
task_level = true
rounds = 40
mean_task_us = 500
seed = 3
[comm]
pattern = random_perm
message_bytes = 32768
