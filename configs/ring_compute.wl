; Coarse-grained compute with a ring exchange each round.
instructions_per_round = 20000
rounds = 6
seed = 7
[comm]
pattern = ring
message_bytes = 8192
