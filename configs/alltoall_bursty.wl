; Communication-heavy all-to-all with exponential message sizes.
instructions_per_round = 4000
rounds = 4
seed = 21
[mix]
fp_fraction = 0.6
[comm]
pattern = all_to_all
message_bytes = 2048
exponential_sizes = true
