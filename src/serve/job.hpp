// What a sweep job *is*, independent of the daemon that runs it.
//
// A JobSpec is the self-contained, serializable description of one sweep:
// machine specs, the workload description text (the bytes, not a path — the
// daemon must not depend on client-side files), the abstraction level, and
// the engine knobs that change results.  From a spec both the batch CLI and
// the daemon build the *same* explore::Sweep through build_sweep(), which is
// what makes a fetched result byte-identical to `mermaid_cli sweep` of the
// same grid.
//
// Job identity is the grid content hash (SweepEngine::grid_hash over the
// spec's points), so identical submissions from different clients collapse
// onto one job, and the spool directory keyed by it survives daemon
// restarts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "explore/sweep.hpp"
#include "machine/params.hpp"
#include "serve/protocol.hpp"

namespace merm::serve {

/// Resolves a machine spec — a config file path or
/// "preset:{t805|ppc601|risc|ipsc860}[:WxH]" — to full parameters.  Shared
/// by the batch CLI and the daemon (moved here from mermaid_cli so both
/// resolve identically).  Throws std::runtime_error on unknown specs.
machine::MachineParams resolve_machine(const std::string& spec);

/// Overlays a fault description: `spec` is either a config file (overlaid
/// on `params`) or an inline fault::parse_spec string such as
/// "drop=0.01,retries=6,seed=7".
void apply_faults(machine::MachineParams& params, const std::string& spec);

/// One sweep job, fully described.
struct JobSpec {
  std::vector<std::string> machines;  ///< specs, one grid row each
  std::string workload_text;          ///< workload description file bytes
  std::string level = "detailed";     ///< "detailed" | "task"
  std::string faults;                 ///< optional overlay for every machine
  unsigned sweep_threads = 0;         ///< points in flight; 0 = auto
  unsigned sim_threads = 0;           ///< PDES workers per point; 0 = serial
  std::uint32_t sim_partitions = 0;   ///< PDES partitions; 0 = auto
  bool isolate = true;                ///< fork each point (service default)
  double timeout_s = 0.0;             ///< per-point budget; needs isolate
  unsigned retries = 1;               ///< attempts per point; needs isolate
  /// Test hook: sleep this long in each point's configure step, so kill /
  /// resume tests get a reliable window.  Does not affect results or job
  /// identity (it is not part of the grid hash).
  std::uint64_t stall_ms = 0;

  /// Frame/spool codec.  from_json throws ProtocolError on missing or
  /// mistyped fields; to_json round-trips through it exactly.
  Json to_json() const;
  static JobSpec from_json(const Json& j);
};

/// Builds the sweep a spec describes.  Point seeds are derived from each
/// point's *content* (machine config + level + workload fingerprint), not
/// its grid index, so the same machine appearing in two different grids
/// hashes to the same memo key — the sharing that makes overlapping
/// submissions cache hits.  Throws on unresolvable machines or a malformed
/// workload description.
explore::Sweep build_sweep(const JobSpec& spec);

/// Engine options a spec implies (journal/memo paths and progress hooks are
/// the runner's to fill in).  keep_going is always on: a service grid
/// reports failed points as rows, it never aborts the job.
explore::SweepOptions engine_options(const JobSpec& spec);

/// Job id: SweepEngine::grid_hash of the spec's grid (also the journal
/// header hash and the spool directory name).
std::string job_id(const JobSpec& spec);

/// Where a job lives under the daemon spool:
///   <spool>/memo                 shared memo store (all jobs)
///   <spool>/jobs/<id>/spec.json  the JobSpec, written atomically at submit
///   <spool>/jobs/<id>/sweep.journal
///   <spool>/jobs/<id>/result.csv / result.json   (host columns excluded)
std::string spool_memo_dir(const std::string& spool);
std::string spool_jobs_dir(const std::string& spool);
std::string spool_job_dir(const std::string& spool, const std::string& id);

}  // namespace merm::serve
