// Wire protocol of the sweep service: newline-delimited JSON frames over a
// unix-domain stream socket.
//
// Every request is one JSON object on one line ({"cmd": "submit", ...});
// every response is one JSON object on one line carrying "ok": true plus
// command-specific fields, or "ok": false plus "error".  Malformed input —
// truncated frames, oversized frames, garbage bytes, wrong field types —
// must come back as a structured error, never crash the daemon and never
// desynchronize the stream (see tests/serve/protocol_test.cpp).
//
// The Json value type below is deliberately small: objects, arrays,
// strings, doubles, bools, null.  It exists so the daemon has zero external
// dependencies, mirroring the memo store's self-contained SHA-256.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace merm::serve {

/// Malformed frames and type mismatches surface as this; the daemon turns
/// it into an {"ok": false} response instead of dying.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A frame larger than this is rejected before parsing: the protocol moves
/// result files (a few MB at the extreme), not bulk traces.
constexpr std::size_t kMaxFrameBytes = 32 * 1024 * 1024;

/// Nesting deeper than this is rejected while parsing — no legitimate frame
/// nests past submit.machines (depth 2), and a "[[[[..." bomb must not
/// recurse the daemon into a stack overflow.
constexpr std::size_t kMaxJsonDepth = 16;

/// Minimal JSON value: null, bool, number, string, array, object (insertion
/// ordered, so dumped frames are deterministic).
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double v) : kind_(Kind::kNumber), num_(v) {}
  Json(std::int64_t v)
      : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  Json(std::uint64_t v)
      : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  Json(int v) : kind_(Kind::kNumber), num_(v) {}
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  Json(const char* s) : kind_(Kind::kString), str_(s) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Typed accessors; a kind mismatch throws ProtocolError naming the
  /// expected kind, so a frame with the wrong shape fails loudly.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Json>& items() const;  ///< array elements

  /// Object field lookup; nullptr when absent (or not an object).
  const Json* find(std::string_view key) const;

  /// Convenience getters with defaults for optional frame fields.  A
  /// present field of the wrong kind throws — an "isolate": "yes" typo must
  /// not silently read as the default.
  std::string get_string(std::string_view key, std::string def = {}) const;
  double get_number(std::string_view key, double def = 0.0) const;
  bool get_bool(std::string_view key, bool def = false) const;
  /// A present field must be an array of strings; absent yields {}.
  std::vector<std::string> get_string_list(std::string_view key) const;

  /// Object/array builders.  set() replaces an existing key.
  Json& set(std::string key, Json value);
  Json& push(Json value);

  /// One-line serialization (no trailing newline).  parse(dump()) == *this.
  void write(std::ostream& os) const;
  std::string dump() const;

  /// Parses exactly one JSON value spanning the whole input (trailing
  /// whitespace allowed, trailing garbage is an error).  Throws
  /// ProtocolError on anything malformed.
  static Json parse(std::string_view text);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

/// Buffered line framing over a socket/pipe fd.  One instance per
/// connection; next() hands out complete newline-terminated frames and
/// classifies everything that is not one.
class LineReader {
 public:
  enum class Status {
    kLine,       ///< *line holds a complete frame (newline stripped)
    kEof,        ///< peer closed; any unterminated tail bytes are dropped
    kOversized,  ///< frame exceeded max_bytes before its newline arrived
    kTimeout,    ///< no bytes for longer than the per-read timeout
    kError,      ///< read() failed
  };

  explicit LineReader(int fd, std::size_t max_bytes = kMaxFrameBytes,
                      int timeout_ms = -1)
      : fd_(fd), max_(max_bytes), timeout_ms_(timeout_ms) {}

  Status next(std::string* line);

 private:
  int fd_;
  std::size_t max_;
  int timeout_ms_;
  std::string buf_;
  bool poisoned_ = false;  ///< oversized frame seen; stream is desynced
};

/// Writes `msg` as one frame (dump + '\n'), retrying partial writes.
/// Returns false when the peer is gone (EPIPE, reset).
bool write_frame(int fd, const Json& msg);

/// Canonical response shapes.
Json ok_response();
Json error_response(const std::string& message);

}  // namespace merm::serve
