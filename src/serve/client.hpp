// Client side of the sweep service: connect to the daemon's unix socket,
// send one request frame, read one response frame.  Used by the
// `mermaid_cli submit/status/fetch/...` subcommands and the daemon tests.
#pragma once

#include <string>

#include "serve/protocol.hpp"

namespace merm::serve {

/// One-shot request/response client.  Each request() opens a fresh
/// connection — the daemon serves short frames, so connection reuse buys
/// nothing and one-shot keeps client failure modes trivial.
class Client {
 public:
  /// `socket_path` is the daemon's listening socket; `timeout_ms` bounds
  /// both connect-side reads and writes.
  explicit Client(std::string socket_path, int timeout_ms = 30'000);

  /// Sends `request` and returns the daemon's response frame.  Throws
  /// std::runtime_error when the daemon is unreachable or the response is
  /// missing/oversized/unparseable; a frame with "ok": false is *returned*,
  /// not thrown — protocol errors are data, transport errors are exceptions.
  Json request(const Json& request);

  const std::string& socket_path() const { return socket_path_; }

 private:
  std::string socket_path_;
  int timeout_ms_;
};

}  // namespace merm::serve
