#include "serve/protocol.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ostream>
#include <sstream>

#include "core/serialize.hpp"

namespace merm::serve {

namespace {

[[noreturn]] void bad(const std::string& what) { throw ProtocolError(what); }

const char* kind_name(Json::Kind k) {
  switch (k) {
    case Json::Kind::kNull:
      return "null";
    case Json::Kind::kBool:
      return "bool";
    case Json::Kind::kNumber:
      return "number";
    case Json::Kind::kString:
      return "string";
    case Json::Kind::kArray:
      return "array";
    case Json::Kind::kObject:
      return "object";
  }
  return "?";
}

[[noreturn]] void wrong_kind(const char* want, Json::Kind got) {
  bad(std::string("expected ") + want + ", got " + kind_name(got));
}

}  // namespace

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) wrong_kind("bool", kind_);
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::kNumber) wrong_kind("number", kind_);
  return num_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) wrong_kind("string", kind_);
  return str_;
}

const std::vector<Json>& Json::items() const {
  if (kind_ != Kind::kArray) wrong_kind("array", kind_);
  return arr_;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Json::get_string(std::string_view key, std::string def) const {
  const Json* v = find(key);
  if (v == nullptr || v->is_null()) return def;
  if (v->kind_ != Kind::kString) {
    bad("field '" + std::string(key) + "': expected string, got " +
        kind_name(v->kind_));
  }
  return v->str_;
}

double Json::get_number(std::string_view key, double def) const {
  const Json* v = find(key);
  if (v == nullptr || v->is_null()) return def;
  if (v->kind_ != Kind::kNumber) {
    bad("field '" + std::string(key) + "': expected number, got " +
        kind_name(v->kind_));
  }
  return v->num_;
}

bool Json::get_bool(std::string_view key, bool def) const {
  const Json* v = find(key);
  if (v == nullptr || v->is_null()) return def;
  if (v->kind_ != Kind::kBool) {
    bad("field '" + std::string(key) + "': expected bool, got " +
        kind_name(v->kind_));
  }
  return v->bool_;
}

std::vector<std::string> Json::get_string_list(std::string_view key) const {
  const Json* v = find(key);
  if (v == nullptr || v->is_null()) return {};
  if (v->kind_ != Kind::kArray) {
    bad("field '" + std::string(key) + "': expected array, got " +
        kind_name(v->kind_));
  }
  std::vector<std::string> out;
  out.reserve(v->arr_.size());
  for (const Json& item : v->arr_) {
    if (item.kind_ != Kind::kString) {
      bad("field '" + std::string(key) + "': expected array of strings");
    }
    out.push_back(item.str_);
  }
  return out;
}

Json& Json::set(std::string key, Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) wrong_kind("object", kind_);
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) wrong_kind("array", kind_);
  arr_.push_back(std::move(value));
  return *this;
}

namespace {

/// JSON numbers: integral values print as integers (counts and sizes stay
/// readable and exact up to 2^53), everything else round-trips via %.17g.
void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";  // JSON has no Inf/NaN; absent beats invalid
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    os << buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

void Json::write(std::ostream& os) const {
  switch (kind_) {
    case Kind::kNull:
      os << "null";
      break;
    case Kind::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Kind::kNumber:
      write_number(os, num_);
      break;
    case Kind::kString:
      core::write_json_string(os, str_);
      break;
    case Kind::kArray:
      os << '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i != 0) os << ',';
        arr_[i].write(os);
      }
      os << ']';
      break;
    case Kind::kObject:
      os << '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i != 0) os << ',';
        core::write_json_string(os, obj_[i].first);
        os << ':';
        obj_[i].second.write(os);
      }
      os << '}';
      break;
  }
}

std::string Json::dump() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

namespace {

/// Recursive-descent parser over a bounded view.  Depth-limited and
/// exception-based: any malformed byte lands in ProtocolError with an
/// offset, and the daemon answers with a structured error.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    bad(what + " (at byte " + std::to_string(pos_) + ")");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of frame");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value(std::size_t depth) {
    if (depth > kMaxJsonDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') return Json(parse_string());
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail(std::string("unexpected character '") + c + "'");
  }

  Json parse_object(std::size_t depth) {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array(std::size_t depth) {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the code point; surrogate pairs are not needed by
          // this protocol (our writer only emits \u00xx) but decode to
          // their replacement-free BMP bytes rather than erroring.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail(std::string("unknown escape '\\") + e + "'");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("bad number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("bad number: no digits after '.'");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("bad number: no digits in exponent");
    }
    const std::string lit(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(lit.c_str(), &end);
    if (end != lit.c_str() + lit.size()) fail("bad number '" + lit + "'");
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  if (text.size() > kMaxFrameBytes) bad("frame exceeds kMaxFrameBytes");
  return Parser(text).parse_document();
}

LineReader::Status LineReader::next(std::string* line) {
  if (poisoned_) return Status::kOversized;
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return Status::kLine;
    }
    if (buf_.size() > max_) {
      // The frame never ended inside the budget.  There is no way to find
      // the next frame boundary reliably, so the stream is done: report
      // oversized now and on every later call.
      poisoned_ = true;
      return Status::kOversized;
    }
    if (timeout_ms_ >= 0) {
      struct pollfd pfd {
        fd_, POLLIN, 0
      };
      const int ready = ::poll(&pfd, 1, timeout_ms_);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Status::kError;
      }
      if (ready == 0) return Status::kTimeout;
    }
    char chunk[65536];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::kError;
    }
    if (n == 0) return Status::kEof;  // unterminated tail bytes are dropped
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool write_frame(int fd, const Json& msg) {
  const std::string line = msg.dump() + "\n";
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

Json ok_response() {
  Json r = Json::object();
  r.set("ok", Json(true));
  return r;
}

Json error_response(const std::string& message) {
  Json r = Json::object();
  r.set("ok", Json(false));
  r.set("error", Json(message));
  return r;
}

}  // namespace merm::serve
