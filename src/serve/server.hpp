// mermaid_serve: the sweep-as-a-service daemon.
//
// Accepts jobs over a unix-domain socket (see protocol.hpp), runs them on a
// bounded pool of job workers through the existing SweepEngine — process
// isolation, write-ahead journal and the *shared* memo store all on by
// default, so overlapping grids from different clients become cache hits —
// and streams per-job progress: points done/total/failed/memo-hit, rolling
// throughput, and an ETA derived from completed-point wall times.
//
// Everything durable lives under one spool directory keyed by grid content
// hash (see job.hpp for the layout).  A SIGKILL'd daemon loses nothing: on
// restart it re-registers every spooled job, re-enqueues the unfinished
// ones, and their journals resume exactly where the rows stopped.
// Duplicate submissions of an identical grid attach to the existing job
// instead of re-simulating.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "explore/progress.hpp"
#include "obs/metrics.hpp"
#include "serve/job.hpp"
#include "serve/protocol.hpp"

namespace merm::serve {

/// Lifecycle of one job.  kFailed means the *job* could not run (bad spec
/// after a code change, spool I/O error) — individual point failures are
/// rows in a kDone job's results, mirroring SweepOptions::keep_going.
enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };
const char* to_string(JobState s);

struct ServerOptions {
  std::string socket_path;  ///< unix socket to listen on (unlinked first)
  std::string spool;        ///< spool directory (created if missing)
  unsigned job_workers = 1; ///< jobs running concurrently
  /// When nonzero, the shared memo store is pruned to this many bytes after
  /// every finished job (and its age sibling applies too).
  std::uint64_t memo_max_bytes = 0;
  double memo_max_age_s = 0.0;
  std::ostream* log = nullptr;  ///< daemon chatter; nullptr = silent
  /// Per-read client timeout: a connection that goes quiet mid-frame for
  /// this long is dropped so one wedged client cannot hold the daemon.
  int client_timeout_ms = 10'000;
  /// When set, the daemon atomically rewrites this file (tmp + rename) with
  /// the Prometheus exposition of its registry every metrics_interval_s
  /// seconds — the file-based scrape path for node-exporter-style
  /// collectors.  The live sibling is the `metrics` protocol verb.
  std::string metrics_file;
  double metrics_interval_s = 5.0;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket, creates the spool, and recovers spooled jobs from a
  /// previous life (unfinished ones re-enqueue and resume from their
  /// journals).  Throws std::runtime_error on bind/spool failures.
  void start();

  /// Serves requests until a shutdown frame arrives (or request_shutdown()
  /// is called from another thread).  start() must have succeeded.
  void run();

  /// Asks run() to wind down: queued jobs stay spooled, running jobs are
  /// cancelled at their next finished point (their journals keep every
  /// completed row for the next daemon life).  Safe from any thread, but
  /// NOT from a signal handler (it takes locks) — handlers should write a
  /// byte to signal_fd() instead, which run() treats as this call.
  void request_shutdown();

  /// Write end of the self-pipe; writing one byte is the async-signal-safe
  /// way to trigger request_shutdown().  Valid after start().
  int signal_fd() const { return wake_pipe_[1]; }

  const ServerOptions& options() const { return opts_; }

 private:
  struct Job;

  void recover_spool();
  void worker_loop();
  void run_job(const std::shared_ptr<Job>& job);
  void handle_connection(int fd);
  Json handle_request(const Json& req);

  Json handle_submit(const Json& req);
  Json handle_status(const Json& req);
  Json handle_results(const Json& req);
  Json handle_cancel(const Json& req);
  Json handle_list();
  Json handle_memo_gc(const Json& req);
  Json handle_metrics(const Json& req);
  Json server_status();
  Json job_status(const std::shared_ptr<Job>& job);

  /// Point-in-time gauges (uptime, worker busyness, jobs by state) are set
  /// right before every exposition; counters/histograms record live.
  void refresh_gauges();
  void metrics_file_loop();
  void stop_metrics_thread();

  std::shared_ptr<Job> find_job(const Json& req, Json* error);

  ServerOptions opts_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< self-pipe that unblocks the accept poll

  std::mutex mutex_;  ///< registry, queue, job state transitions
  std::condition_variable queue_cv_;
  std::map<std::string, std::shared_ptr<Job>> jobs_;
  std::vector<std::string> order_;  ///< submission order for `list`
  std::deque<std::shared_ptr<Job>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;

  std::chrono::steady_clock::time_point started_;
  std::atomic<std::uint64_t> submissions_{0};
  std::atomic<std::uint64_t> attached_{0};
  std::atomic<std::uint64_t> memo_hits_{0};
  std::atomic<std::uint64_t> memo_misses_{0};
  std::atomic<std::uint64_t> memo_evictions_{0};
  std::atomic<unsigned> workers_busy_{0};

  // -- runtime telemetry (the `metrics` verb / --metrics-file) --
  obs::MetricsRegistry metrics_;
  obs::Counter* m_submissions_ = nullptr;
  obs::Counter* m_attached_ = nullptr;
  obs::Counter* m_points_ = nullptr;  ///< rows finalized, all jobs
  obs::Counter* m_jobs_done_ = nullptr;
  obs::Counter* m_jobs_failed_ = nullptr;
  obs::Counter* m_jobs_cancelled_ = nullptr;
  obs::Counter* m_memo_hits_ = nullptr;
  obs::Counter* m_memo_misses_ = nullptr;
  obs::Counter* m_memo_evictions_ = nullptr;
  obs::Gauge* g_uptime_ = nullptr;
  obs::Gauge* g_workers_busy_ = nullptr;
  obs::Gauge* g_workers_total_ = nullptr;
  std::thread metrics_thread_;
  std::mutex metrics_mutex_;
  std::condition_variable metrics_cv_;
  bool metrics_stop_ = false;
};

}  // namespace merm::serve
