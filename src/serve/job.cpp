#include "serve/job.hpp"

#include <chrono>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "explore/memo.hpp"
#include "fault/fault.hpp"
#include "gen/stochastic.hpp"
#include "gen/workload_config.hpp"
#include "machine/config.hpp"

namespace merm::serve {

machine::MachineParams resolve_machine(const std::string& spec) {
  if (spec.rfind("preset:", 0) == 0) {
    std::string rest = spec.substr(7);
    std::string name = rest;
    std::uint32_t w = 4;
    std::uint32_t h = 4;
    const auto colon = rest.find(':');
    if (colon != std::string::npos) {
      name = rest.substr(0, colon);
      const std::string dims = rest.substr(colon + 1);
      const auto x = dims.find('x');
      if (x == std::string::npos) {
        throw std::runtime_error("bad preset dims '" + dims + "'");
      }
      w = static_cast<std::uint32_t>(std::stoul(dims.substr(0, x)));
      h = static_cast<std::uint32_t>(std::stoul(dims.substr(x + 1)));
    }
    if (name == "t805") return machine::presets::t805_multicomputer(w, h);
    if (name == "ppc601") return machine::presets::powerpc601_node();
    if (name == "risc") return machine::presets::generic_risc(w, h);
    if (name == "ipsc860") {
      return machine::presets::ipsc860_hypercube(w * h);
    }
    throw std::runtime_error("unknown preset '" + name + "'");
  }
  return machine::parse_config_file(spec);
}

void apply_faults(machine::MachineParams& params, const std::string& spec) {
  if (std::ifstream probe(spec); probe) {
    params = machine::parse_config_file(spec, params);
  } else {
    params.fault = fault::parse_spec(spec);
  }
}

Json JobSpec::to_json() const {
  Json j = Json::object();
  Json ms = Json::array();
  for (const std::string& m : machines) ms.push(Json(m));
  j.set("machines", std::move(ms));
  j.set("workload", Json(workload_text));
  j.set("level", Json(level));
  if (!faults.empty()) j.set("faults", Json(faults));
  if (sweep_threads != 0) j.set("sweep_threads", Json(double(sweep_threads)));
  if (sim_threads != 0) j.set("sim_threads", Json(double(sim_threads)));
  if (sim_partitions != 0) {
    j.set("sim_partitions", Json(double(sim_partitions)));
  }
  j.set("isolate", Json(isolate));
  if (timeout_s > 0) j.set("timeout_s", Json(timeout_s));
  if (retries > 1) j.set("retries", Json(double(retries)));
  if (stall_ms != 0) j.set("stall_ms", Json(double(stall_ms)));
  return j;
}

namespace {

unsigned checked_count(const Json& j, std::string_view key, unsigned def,
                       unsigned max) {
  const double v = j.get_number(key, def);
  if (v < 0 || v > max || v != static_cast<double>(static_cast<unsigned>(v))) {
    throw ProtocolError("field '" + std::string(key) +
                        "': expected an integer in 0.." + std::to_string(max));
  }
  return static_cast<unsigned>(v);
}

}  // namespace

JobSpec JobSpec::from_json(const Json& j) {
  JobSpec s;
  s.machines = j.get_string_list("machines");
  if (s.machines.empty()) {
    throw ProtocolError("submit needs a non-empty 'machines' array");
  }
  s.workload_text = j.get_string("workload");
  if (s.workload_text.empty()) {
    throw ProtocolError(
        "submit needs 'workload': the workload description file's text");
  }
  s.level = j.get_string("level", "detailed");
  if (s.level != "detailed" && s.level != "task") {
    throw ProtocolError("field 'level': expected \"detailed\" or \"task\"");
  }
  s.faults = j.get_string("faults");
  s.sweep_threads = checked_count(j, "sweep_threads", 0, 9999);
  s.sim_threads = checked_count(j, "sim_threads", 0, 9999);
  s.sim_partitions = checked_count(j, "sim_partitions", 0, 9999);
  s.isolate = j.get_bool("isolate", true);
  s.timeout_s = j.get_number("timeout_s", 0.0);
  if (s.timeout_s < 0) throw ProtocolError("field 'timeout_s': negative");
  s.retries = checked_count(j, "retries", 1, 100);
  s.stall_ms = checked_count(j, "stall_ms", 0, 60'000);
  return s;
}

explore::Sweep build_sweep(const JobSpec& spec) {
  const gen::StochasticDescription desc =
      gen::parse_workload_string(spec.workload_text);
  const bool task_level = spec.level == "task";

  explore::Sweep sweep;
  sweep.level = task_level ? node::SimulationLevel::kTaskLevel
                           : node::SimulationLevel::kDetailed;
  // The workload file's bytes *are* its identity: editing the description
  // invalidates cached rows, renaming or copying the file does not.  Same
  // fingerprint format as the batch CLI has always used, so existing memo
  // stores keep working.
  sweep.workload_fingerprint =
      "workload-file:" + spec.level +
      ":sha256=" + explore::sha256_hex(spec.workload_text);
  sweep.workload = [desc, task_level](const machine::MachineParams& params,
                                      std::uint64_t) {
    return task_level
               ? gen::make_stochastic_task_workload(desc, params.node_count())
               : gen::make_stochastic_workload(desc, params.node_count(),
                                               params.node.cpu_count);
  };
  for (const std::string& mspec : spec.machines) {
    machine::MachineParams m = resolve_machine(mspec);
    if (!spec.faults.empty()) apply_faults(m, spec.faults);
    explore::ExperimentPoint& p = sweep.add(std::move(m), mspec);
    // Content-derived seed: a function of what the point *is*, never of
    // where it sits in this particular grid.  Index-derived seeds would
    // give the same machine different memo keys in different grids, which
    // is exactly the sharing a long-lived service exists to exploit.
    const std::string identity = "point-seed:\n" +
                                 machine::write_config_string(p.params) +
                                 "\nlevel=" + spec.level + "\nworkload=" +
                                 sweep.workload_fingerprint;
    const std::string digest = explore::sha256_hex(identity);
    std::uint64_t seed = 0;
    for (int i = 0; i < 16; ++i) {
      const char c = digest[i];
      seed = (seed << 4) |
             static_cast<std::uint64_t>(c <= '9' ? c - '0' : c - 'a' + 10);
    }
    p.seed = seed != 0 ? seed : 1;  // 0 would fall back to index derivation
  }
  if (spec.stall_ms != 0) {
    const auto stall = std::chrono::milliseconds(spec.stall_ms);
    sweep.configure = [stall](core::Workbench&,
                              const explore::ExperimentPoint&, std::size_t) {
      std::this_thread::sleep_for(stall);
    };
  }
  return sweep;
}

explore::SweepOptions engine_options(const JobSpec& spec) {
  explore::SweepOptions opts;
  opts.threads = spec.sweep_threads;
  opts.sim_threads = spec.sim_threads;
  opts.sim_partitions = spec.sim_partitions;
  opts.keep_going = true;
  opts.isolate = spec.isolate ? explore::Isolation::kProcess
                              : explore::Isolation::kNone;
  opts.point_timeout_s = spec.timeout_s;
  opts.max_attempts = spec.retries;
  return opts;
}

std::string job_id(const JobSpec& spec) {
  const explore::Sweep sweep = build_sweep(spec);
  return explore::SweepEngine(engine_options(spec)).grid_hash(sweep);
}

std::string spool_memo_dir(const std::string& spool) { return spool + "/memo"; }

std::string spool_jobs_dir(const std::string& spool) { return spool + "/jobs"; }

std::string spool_job_dir(const std::string& spool, const std::string& id) {
  return spool_jobs_dir(spool) + "/" + id;
}

}  // namespace merm::serve
