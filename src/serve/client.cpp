#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace merm::serve {

Client::Client(std::string socket_path, int timeout_ms)
    : socket_path_(std::move(socket_path)), timeout_ms_(timeout_ms) {}

Json Client::request(const Json& req) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("serve client: socket: ") +
                             std::strerror(errno));
  }
  struct sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw std::runtime_error("serve client: socket path too long: " +
                             socket_path_);
  }
  std::strncpy(addr.sun_path, socket_path_.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("serve client: cannot reach daemon at '" +
                             socket_path_ + "': " + std::strerror(err) +
                             " (is `mermaid_cli serve` running?)");
  }

  if (!write_frame(fd, req)) {
    ::close(fd);
    throw std::runtime_error("serve client: daemon closed the connection");
  }
  LineReader reader(fd, kMaxFrameBytes, timeout_ms_);
  std::string line;
  const LineReader::Status st = reader.next(&line);
  ::close(fd);
  switch (st) {
    case LineReader::Status::kLine:
      return Json::parse(line);
    case LineReader::Status::kEof:
      throw std::runtime_error(
          "serve client: daemon closed the connection without replying");
    case LineReader::Status::kOversized:
      throw std::runtime_error("serve client: response frame exceeds " +
                               std::to_string(kMaxFrameBytes) + " bytes");
    case LineReader::Status::kTimeout:
      throw std::runtime_error("serve client: timed out waiting for a reply");
    case LineReader::Status::kError:
      break;
  }
  throw std::runtime_error(std::string("serve client: read failed: ") +
                           std::strerror(errno));
}

}  // namespace merm::serve
