#include "serve/server.hpp"

#include <dirent.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "explore/journal.hpp"
#include "explore/memo.hpp"

namespace merm::serve {

namespace {

/// Thrown out of the progress hook to cancel a running job; the engine
/// drains in-flight points (their rows still journal) and rethrows it.
struct JobCancelledError {};

void make_dirs(const std::string& dir) {
  std::string path;
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i != dir.size() && dir[i] != '/') continue;
    path = dir.substr(0, i == dir.size() ? i : i + 1);
    if (path.empty() || path == "/") continue;
    if (::mkdir(path.c_str(), 0777) != 0 && errno != EEXIST) {
      throw std::runtime_error("serve: cannot create directory '" + path +
                               "'");
    }
  }
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("serve: cannot read '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// tmp + rename, same publication discipline as the memo store: a reader
/// (or a crash) never sees a half-written spec or result file.
void write_file_atomic(const std::string& path, const std::string& bytes) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("serve: cannot write '" + tmp + "'");
    out << bytes;
    if (!out.flush()) {
      throw std::runtime_error("serve: short write to '" + tmp + "'");
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("serve: cannot publish '" + path + "'");
  }
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

/// One registered job.  Counters are atomics so `status` snapshots never
/// wait on a running sweep; state transitions happen under Server::mutex_.
struct Server::Job {
  std::string id;
  JobSpec spec;
  std::string dir;
  std::size_t total = 0;

  std::atomic<JobState> state{JobState::kQueued};
  std::string error;  ///< guarded by Server::mutex_

  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> memo_hits{0};
  std::atomic<std::size_t> resumed{0};
  std::atomic<bool> cancel{false};

  std::chrono::steady_clock::time_point started{};
  std::atomic<double> final_elapsed_s{0.0};

  /// Rolling fresh-row throughput behind the ETA (memo-hit and resumed
  /// rows are excluded — they finalize in microseconds and would make the
  /// rate absurd).  Guarded by rate_mutex.
  std::mutex rate_mutex;
  explore::ThroughputMeter meter;
  double rate = 0.0;  ///< fresh points/s; 0 = unknown

  /// Point-latency series in the server registry ({job=...}); set when the
  /// job first runs, read by job_status for p50/p90.
  std::atomic<const obs::Histogram*> latency{nullptr};

  void note_progress(const explore::SweepProgress& p) {
    const std::lock_guard<std::mutex> lock(rate_mutex);
    rate = meter.note(p).points_per_s;
  }

  double rolling_rate() {
    const std::lock_guard<std::mutex> lock(rate_mutex);
    return rate;
  }
};

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  // Counters live for the daemon's whole life; gauges are refreshed at
  // scrape time (refresh_gauges).
  m_submissions_ = &metrics_.counter("merm_serve_submissions_total",
                                     "Job submissions received");
  m_attached_ = &metrics_.counter(
      "merm_serve_attached_total",
      "Submissions that attached to an existing identical job");
  m_points_ = &metrics_.counter("merm_serve_points_total",
                                "Sweep rows finalized across all jobs");
  m_jobs_done_ = &metrics_.counter("merm_serve_jobs_finished_total",
                                   "Jobs reaching a terminal state",
                                   {{"state", "done"}});
  m_jobs_failed_ = &metrics_.counter("merm_serve_jobs_finished_total",
                                     "Jobs reaching a terminal state",
                                     {{"state", "failed"}});
  m_jobs_cancelled_ = &metrics_.counter("merm_serve_jobs_finished_total",
                                        "Jobs reaching a terminal state",
                                        {{"state", "cancelled"}});
  m_memo_hits_ =
      &metrics_.counter("merm_memo_hits_total", "Shared memo store hits");
  m_memo_misses_ =
      &metrics_.counter("merm_memo_misses_total", "Shared memo store misses");
  m_memo_evictions_ = &metrics_.counter("merm_memo_evictions_total",
                                        "Entries pruned from the memo store");
  g_uptime_ =
      &metrics_.gauge("merm_serve_uptime_seconds", "Daemon uptime in seconds");
  g_workers_busy_ = &metrics_.gauge("merm_serve_workers_busy",
                                    "Job workers currently running a sweep");
  g_workers_total_ =
      &metrics_.gauge("merm_serve_workers", "Job worker pool size");
}

Server::~Server() {
  stop_metrics_thread();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void Server::start() {
  if (opts_.socket_path.empty() || opts_.spool.empty()) {
    throw std::runtime_error("serve: socket_path and spool are required");
  }
  make_dirs(opts_.spool);
  make_dirs(spool_jobs_dir(opts_.spool));
  make_dirs(spool_memo_dir(opts_.spool));

  // A SIGKILL'd daemon leaves its socket file behind; it is ours (the spool
  // and socket belong together), so replace it.
  ::unlink(opts_.socket_path.c_str());
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("serve: socket: ") +
                             std::strerror(errno));
  }
  struct sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path too long: " +
                             opts_.socket_path);
  }
  std::strncpy(addr.sun_path, opts_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw std::runtime_error("serve: bind '" + opts_.socket_path +
                             "': " + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    throw std::runtime_error(std::string("serve: listen: ") +
                             std::strerror(errno));
  }
  if (::pipe(wake_pipe_) != 0) {
    throw std::runtime_error(std::string("serve: pipe: ") +
                             std::strerror(errno));
  }
  started_ = std::chrono::steady_clock::now();

  recover_spool();

  const unsigned workers = opts_.job_workers != 0 ? opts_.job_workers : 1;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  if (!opts_.metrics_file.empty()) {
    metrics_thread_ = std::thread([this] { metrics_file_loop(); });
  }
  if (opts_.log != nullptr) {
    *opts_.log << "[serve] listening on " << opts_.socket_path << ", spool "
               << opts_.spool << ", " << workers << " job worker(s)\n";
  }
}

void Server::refresh_gauges() {
  g_uptime_->set(seconds_since(started_));
  g_workers_busy_->set(static_cast<double>(workers_busy_.load()));
  g_workers_total_->set(static_cast<double>(workers_.size()));
  std::size_t counts[5] = {0, 0, 0, 0, 0};
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, job] : jobs_) {
      ++counts[static_cast<std::size_t>(job->state.load())];
    }
  }
  static constexpr JobState kStates[] = {JobState::kQueued, JobState::kRunning,
                                         JobState::kDone, JobState::kFailed,
                                         JobState::kCancelled};
  for (const JobState s : kStates) {
    metrics_
        .gauge("merm_serve_jobs", "Registered jobs by state",
               {{"state", to_string(s)}})
        .set(static_cast<double>(counts[static_cast<std::size_t>(s)]));
  }
}

void Server::metrics_file_loop() {
  std::unique_lock<std::mutex> lock(metrics_mutex_);
  for (;;) {
    metrics_cv_.wait_for(
        lock, std::chrono::duration<double>(
                  opts_.metrics_interval_s > 0 ? opts_.metrics_interval_s : 5.0),
        [&] { return metrics_stop_; });
    const bool stopping = metrics_stop_;
    lock.unlock();
    // Publish even on the shutdown pass so the file's last state is final.
    refresh_gauges();
    try {
      write_file_atomic(opts_.metrics_file, metrics_.prometheus());
    } catch (const std::exception& e) {
      if (opts_.log != nullptr) {
        *opts_.log << "[serve] metrics file: " << e.what() << "\n";
      }
    }
    lock.lock();
    if (stopping) return;
  }
}

void Server::stop_metrics_thread() {
  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_stop_ = true;
  }
  metrics_cv_.notify_all();
  if (metrics_thread_.joinable()) metrics_thread_.join();
}

void Server::recover_spool() {
  const std::string jobs_dir = spool_jobs_dir(opts_.spool);
  DIR* d = ::opendir(jobs_dir.c_str());
  if (d == nullptr) return;
  std::vector<std::string> names;
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());  // deterministic recovery order

  for (const std::string& name : names) {
    const std::string dir = jobs_dir + "/" + name;
    const std::string spec_path = dir + "/spec.json";
    if (!file_exists(spec_path)) continue;
    try {
      const JobSpec spec = JobSpec::from_json(Json::parse(read_file(spec_path)));
      const std::string id = job_id(spec);
      if (id != name) {
        // The grid hash covers the code version: a rebuilt daemon cannot
        // honestly resume rows produced by different model code.  Leave the
        // directory for inspection; a fresh submit gets a fresh id.
        if (opts_.log != nullptr) {
          *opts_.log << "[serve] spool job " << name.substr(0, 12)
                     << "... was produced by a different code version; "
                        "ignoring it\n";
        }
        continue;
      }
      auto job = std::make_shared<Job>();
      job->id = id;
      job->spec = spec;
      job->dir = dir;
      job->total = spec.machines.size();
      order_.push_back(id);
      jobs_[id] = job;
      if (file_exists(dir + "/result.csv")) {
        job->state = JobState::kDone;
        // Recover the headline counters from the journal so `status` of a
        // finished job stays truthful across restarts.
        try {
          const auto rows = explore::SweepJournal::load(
              dir + "/sweep.journal", id, job->total);
          job->done = rows.size();
          std::size_t failed = 0;
          for (const auto& [i, row] : rows) {
            if (row.status == explore::PointResult::Status::kFailed) ++failed;
          }
          job->failed = failed;
        } catch (const std::exception&) {
          job->done = job->total;
        }
      } else {
        queue_.push_back(job);
        if (opts_.log != nullptr) {
          *opts_.log << "[serve] recovered unfinished job "
                     << id.substr(0, 12) << "... (" << job->total
                     << " points); re-enqueued\n";
        }
      }
    } catch (const std::exception& e) {
      if (opts_.log != nullptr) {
        *opts_.log << "[serve] cannot recover spool job " << name << ": "
                   << e.what() << "\n";
      }
    }
  }
}

void Server::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      job = queue_.front();
      queue_.pop_front();
      if (job->cancel.load()) {
        job->state = JobState::kCancelled;
        continue;
      }
      job->state = JobState::kRunning;
      job->started = std::chrono::steady_clock::now();
    }
    workers_busy_.fetch_add(1);
    run_job(job);
    workers_busy_.fetch_sub(1);
  }
}

void Server::run_job(const std::shared_ptr<Job>& job) {
  if (opts_.log != nullptr) {
    *opts_.log << "[serve] job " << job->id.substr(0, 12) << "... running ("
               << job->total << " points)\n";
  }
  try {
    const explore::Sweep sweep = build_sweep(job->spec);
    explore::SweepOptions opts = engine_options(job->spec);
    opts.memo_dir = spool_memo_dir(opts_.spool);
    const std::string journal = job->dir + "/sweep.journal";
    const bool resume = file_exists(journal);
    if (!resume) opts.journal_path = journal;
    // The job's sweep records into the daemon registry under {job=...};
    // interning the latency series here (before the engine does) hands
    // job_status a stable handle for its p50/p90 columns.
    const std::string label = job->id.substr(0, 12);
    opts.metrics = &metrics_;
    opts.metrics_label = label;
    job->latency.store(&metrics_.histogram(
        "merm_sweep_point_seconds", explore::point_latency_buckets(),
        "Host latency of freshly executed sweep points", {{"job", label}}));
    opts.on_point_complete = [this, job](const explore::SweepProgress& p) {
      job->done = p.done;
      job->failed = p.failed;
      job->memo_hits = p.memo_hits;
      job->resumed = p.resumed;
      job->note_progress(p);
      m_points_->add();
      if (job->cancel.load()) throw JobCancelledError{};
    };

    explore::SweepEngine engine(opts);
    explore::SweepResult result;
    if (resume) {
      engine.resume_into(sweep, journal, result);
    } else {
      engine.run_into(sweep, result);
    }

    job->done = result.points.size();
    job->failed = result.failed();
    job->resumed = result.resumed_points;
    job->memo_hits = result.memo_hits;
    memo_hits_.fetch_add(result.memo_hits);
    memo_misses_.fetch_add(result.memo_misses);
    m_memo_hits_->add(result.memo_hits);
    m_memo_misses_->add(result.memo_misses);

    // Results are the *deterministic* bytes: host columns excluded, so a
    // fetched file is byte-identical to any other execution of this grid —
    // the batch CLI's --no-host-columns output included.
    std::ostringstream csv;
    result.write_csv(csv, {.host_columns = false});
    write_file_atomic(job->dir + "/result.csv", csv.str());
    std::ostringstream json;
    result.write_json(json, {.host_columns = false});
    write_file_atomic(job->dir + "/result.json", json.str());

    job->final_elapsed_s = seconds_since(job->started);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job->state = JobState::kDone;
    }
    m_jobs_done_->add();
    if (opts_.log != nullptr) {
      *opts_.log << "[serve] job " << job->id.substr(0, 12) << "... done: "
                 << result.completed() << " ok, " << result.failed()
                 << " failed, " << result.memo_hits << " memo hit(s), "
                 << result.resumed_points << " resumed\n";
    }

    if (opts_.memo_max_bytes != 0 || opts_.memo_max_age_s > 0) {
      explore::MemoStore store(spool_memo_dir(opts_.spool));
      const explore::MemoPruneStats pruned = store.prune(
          {.max_bytes = opts_.memo_max_bytes,
           .max_age_s = opts_.memo_max_age_s});
      memo_evictions_.fetch_add(pruned.evicted);
      m_memo_evictions_->add(pruned.evicted);
      if (opts_.log != nullptr && pruned.evicted > 0) {
        *opts_.log << "[serve] memo prune: evicted " << pruned.evicted
                   << " entrie(s), freed " << pruned.bytes_freed
                   << " bytes\n";
      }
    }
  } catch (const JobCancelledError&) {
    job->final_elapsed_s = seconds_since(job->started);
    m_jobs_cancelled_->add();
    const std::lock_guard<std::mutex> lock(mutex_);
    job->state = JobState::kCancelled;
    if (opts_.log != nullptr) {
      *opts_.log << "[serve] job " << job->id.substr(0, 12)
                 << "... cancelled (" << job->done.load() << "/" << job->total
                 << " rows journaled)\n";
    }
  } catch (const std::exception& e) {
    job->final_elapsed_s = seconds_since(job->started);
    m_jobs_failed_->add();
    const std::lock_guard<std::mutex> lock(mutex_);
    job->error = e.what();
    job->state = JobState::kFailed;
    if (opts_.log != nullptr) {
      *opts_.log << "[serve] job " << job->id.substr(0, 12)
                 << "... FAILED: " << e.what() << "\n";
    }
  }
}

void Server::run() {
  for (;;) {
    struct pollfd pfds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(pfds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((pfds[1].revents & POLLIN) != 0) {
      // A byte on the self-pipe is a shutdown request — possibly from a
      // signal handler, for which this is the only safe delivery channel.
      char drain[64];
      [[maybe_unused]] const ssize_t n =
          ::read(wake_pipe_[0], drain, sizeof(drain));
      request_shutdown();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stop_) break;
    }
    if ((pfds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stop_) break;
    }
  }
  // Wind down: wake the workers; running jobs were cancelled by
  // request_shutdown and will journal out quickly.
  queue_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  stop_metrics_thread();  // publishes one final metrics-file snapshot
  if (opts_.log != nullptr) *opts_.log << "[serve] shut down\n";
}

void Server::request_shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    for (const auto& [id, job] : jobs_) {
      const JobState s = job->state.load();
      if (s == JobState::kRunning || s == JobState::kQueued) {
        job->cancel = true;
      }
    }
  }
  queue_cv_.notify_all();
  // Unblock the accept poll.
  if (wake_pipe_[1] >= 0) {
    const char b = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
}

void Server::handle_connection(int fd) {
  LineReader reader(fd, kMaxFrameBytes, opts_.client_timeout_ms);
  std::string line;
  for (;;) {
    const LineReader::Status st = reader.next(&line);
    if (st == LineReader::Status::kOversized) {
      (void)write_frame(fd, error_response("frame exceeds " +
                                           std::to_string(kMaxFrameBytes) +
                                           " bytes"));
      return;
    }
    if (st != LineReader::Status::kLine) return;  // EOF, timeout, error
    Json response;
    bool shutdown_after = false;
    try {
      const Json request = Json::parse(line);
      if (request.get_string("cmd") == "shutdown") shutdown_after = true;
      response = handle_request(request);
    } catch (const ProtocolError& e) {
      response = error_response(std::string("bad frame: ") + e.what());
      shutdown_after = false;
    } catch (const std::exception& e) {
      response = error_response(e.what());
      shutdown_after = false;
    }
    if (!write_frame(fd, response)) return;
    if (shutdown_after) {
      request_shutdown();
      return;
    }
  }
}

Json Server::handle_request(const Json& req) {
  const std::string cmd = req.get_string("cmd");
  if (cmd == "submit") return handle_submit(req);
  if (cmd == "status") return handle_status(req);
  if (cmd == "results") return handle_results(req);
  if (cmd == "cancel") return handle_cancel(req);
  if (cmd == "list") return handle_list();
  if (cmd == "memo-gc") return handle_memo_gc(req);
  if (cmd == "metrics") return handle_metrics(req);
  if (cmd == "shutdown") return ok_response();
  if (cmd.empty()) return error_response("missing 'cmd' field");
  return error_response("unknown cmd '" + cmd + "'");
}

Json Server::handle_submit(const Json& req) {
  const JobSpec spec = JobSpec::from_json(req);
  // Validates machines and workload too: job_id builds the sweep.
  const std::string id = job_id(spec);
  submissions_.fetch_add(1);
  m_submissions_->add();

  std::shared_ptr<Job> job;
  bool attached = false;
  bool requeued = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it != jobs_.end()) {
      job = it->second;
      const JobState s = job->state.load();
      if (s == JobState::kFailed || s == JobState::kCancelled) {
        // Terminal-but-incomplete: run it again.  The journal still holds
        // every finished row, so this is a resume, not a redo.
        job->cancel = false;
        job->error.clear();
        job->state = JobState::kQueued;
        queue_.push_back(job);
        requeued = true;
      } else {
        attached = true;
        attached_.fetch_add(1);
        m_attached_->add();
      }
    } else {
      job = std::make_shared<Job>();
      job->id = id;
      job->spec = spec;
      job->dir = spool_job_dir(opts_.spool, id);
      job->total = spec.machines.size();
      make_dirs(job->dir);
      write_file_atomic(job->dir + "/spec.json", spec.to_json().dump() + "\n");
      jobs_[id] = job;
      order_.push_back(id);
      queue_.push_back(job);
    }
  }
  queue_cv_.notify_one();
  if (opts_.log != nullptr) {
    *opts_.log << "[serve] submit " << id.substr(0, 12) << "... ("
               << spec.machines.size() << " points) -> "
               << (attached ? "attached" : requeued ? "requeued" : "queued")
               << "\n";
  }

  Json r = ok_response();
  r.set("job", Json(id));
  r.set("state", Json(to_string(job->state.load())));
  r.set("total", Json(double(job->total)));
  r.set("attached", Json(attached));
  if (requeued) r.set("requeued", Json(true));
  return r;
}

std::shared_ptr<Server::Job> Server::find_job(const Json& req, Json* error) {
  const std::string id = req.get_string("job");
  if (id.empty()) {
    *error = error_response("missing 'job' field");
    return nullptr;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    *error = error_response("unknown job '" + id + "'");
    return nullptr;
  }
  return it->second;
}

Json Server::job_status(const std::shared_ptr<Job>& job) {
  Json r = ok_response();
  r.set("job", Json(job->id));
  const JobState state = job->state.load();
  r.set("state", Json(to_string(state)));
  r.set("total", Json(double(job->total)));
  const std::size_t done = job->done.load();
  r.set("done", Json(double(done)));
  r.set("failed", Json(double(job->failed.load())));
  r.set("memo_hits", Json(double(job->memo_hits.load())));
  r.set("resumed", Json(double(job->resumed.load())));
  if (state == JobState::kRunning) {
    const double elapsed = seconds_since(job->started);
    r.set("elapsed_s", Json(elapsed));
    const double rate = job->rolling_rate();
    if (rate > 0.0) {
      r.set("points_per_s", Json(rate));
      const double remaining = static_cast<double>(job->total - done);
      r.set("eta_s", Json(remaining / rate));
    }
  } else if (state != JobState::kQueued) {
    r.set("elapsed_s", Json(job->final_elapsed_s.load()));
  }
  if (const obs::Histogram* latency = job->latency.load()) {
    const obs::Histogram::View v = latency->view();
    if (v.count > 0) {
      r.set("point_p50_s", Json(v.quantile(0.5)));
      r.set("point_p90_s", Json(v.quantile(0.9)));
    }
  }
  if (state == JobState::kFailed) {
    const std::lock_guard<std::mutex> lock(mutex_);
    r.set("error", Json(job->error));
  }
  return r;
}

Json Server::server_status() {
  Json r = ok_response();
  r.set("uptime_s", Json(seconds_since(started_)));
  std::size_t queued = 0, running = 0, done = 0, failed = 0, cancelled = 0;
  std::uint64_t live_hits = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, job] : jobs_) {
      switch (job->state.load()) {
        case JobState::kQueued:
          ++queued;
          break;
        case JobState::kRunning:
          ++running;
          live_hits += job->memo_hits.load();
          break;
        case JobState::kDone:
          ++done;
          break;
        case JobState::kFailed:
          ++failed;
          break;
        case JobState::kCancelled:
          ++cancelled;
          break;
      }
    }
    r.set("jobs", Json(double(jobs_.size())));
  }
  r.set("queued", Json(double(queued)));
  r.set("running", Json(double(running)));
  r.set("done", Json(double(done)));
  r.set("failed", Json(double(failed)));
  r.set("cancelled", Json(double(cancelled)));
  r.set("submissions", Json(double(submissions_.load())));
  r.set("attached", Json(double(attached_.load())));
  r.set("memo_hits", Json(double(memo_hits_.load() + live_hits)));
  r.set("memo_misses", Json(double(memo_misses_.load())));
  r.set("memo_evictions", Json(double(memo_evictions_.load())));
  r.set("workers_busy", Json(double(workers_busy_.load())));
  r.set("workers_total", Json(double(workers_.size())));
  return r;
}

Json Server::handle_metrics(const Json& req) {
  const std::string format = req.get_string("format", "prometheus");
  if (format != "prometheus" && format != "json") {
    return error_response("field 'format': expected \"prometheus\" or \"json\"");
  }
  refresh_gauges();
  Json r = ok_response();
  r.set("format", Json(format));
  r.set("data",
        Json(format == "json" ? metrics_.json() : metrics_.prometheus()));
  return r;
}

Json Server::handle_status(const Json& req) {
  if (req.find("job") == nullptr) return server_status();
  Json error;
  const std::shared_ptr<Job> job = find_job(req, &error);
  if (job == nullptr) return error;
  return job_status(job);
}

Json Server::handle_results(const Json& req) {
  Json error;
  const std::shared_ptr<Job> job = find_job(req, &error);
  if (job == nullptr) return error;
  const JobState state = job->state.load();
  if (state != JobState::kDone) {
    return error_response("job '" + job->id + "' is " + to_string(state) +
                          ", results are available once it is done");
  }
  const std::string format = req.get_string("format", "csv");
  if (format != "csv" && format != "json") {
    return error_response("field 'format': expected \"csv\" or \"json\"");
  }
  Json r = ok_response();
  r.set("job", Json(job->id));
  r.set("format", Json(format));
  r.set("data", Json(read_file(job->dir + "/result." + format)));
  return r;
}

Json Server::handle_cancel(const Json& req) {
  Json error;
  const std::shared_ptr<Job> job = find_job(req, &error);
  if (job == nullptr) return error;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const JobState s = job->state.load();
    if (s == JobState::kQueued || s == JobState::kRunning) {
      job->cancel = true;
    }
  }
  Json r = ok_response();
  r.set("job", Json(job->id));
  r.set("state", Json(to_string(job->state.load())));
  r.set("cancelling", Json(job->cancel.load()));
  return r;
}

Json Server::handle_list() {
  std::vector<std::shared_ptr<Job>> jobs;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    jobs.reserve(order_.size());
    for (const std::string& id : order_) {
      const auto it = jobs_.find(id);
      if (it != jobs_.end()) jobs.push_back(it->second);
    }
  }
  Json arr = Json::array();
  for (const std::shared_ptr<Job>& job : jobs) arr.push(job_status(job));
  Json r = ok_response();
  r.set("jobs", std::move(arr));
  return r;
}

Json Server::handle_memo_gc(const Json& req) {
  explore::MemoPruneOptions opts;
  opts.max_bytes =
      static_cast<std::uint64_t>(req.get_number("max_bytes", 0.0));
  opts.max_age_s = req.get_number("max_age_s", 0.0);
  explore::MemoStore store(spool_memo_dir(opts_.spool));
  const explore::MemoPruneStats stats = store.prune(opts);
  memo_evictions_.fetch_add(stats.evicted);
  m_memo_evictions_->add(stats.evicted);
  Json r = ok_response();
  r.set("scanned", Json(double(stats.scanned)));
  r.set("evicted", Json(double(stats.evicted)));
  r.set("bytes_scanned", Json(double(stats.bytes_scanned)));
  r.set("bytes_freed", Json(double(stats.bytes_freed)));
  return r;
}

}  // namespace merm::serve
