// Statistics primitives for the analysis/visualization layer (Fig. 1).
//
// Model components register named metrics in a StatRegistry; the workbench
// prints them post-mortem or samples them at run time (the "run-time
// visualization" path of the paper, here a periodic text/CSV reporter).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace merm::stats {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Streaming mean/min/max/variance (Welford).
class Accumulator {
 public:
  void add(double x) {
    ++count_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    sum_ += x;
  }

  /// Folds another accumulator in (Chan et al. pairwise combination), as if
  /// every sample of `other` had been add()ed here.  Order-insensitive up to
  /// floating-point rounding; lets worker threads accumulate privately and
  /// combine once at the end.
  void merge(const Accumulator& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) / total;
    mean_ += delta * static_cast<double>(other.count_) / total;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void reset() { *this = Accumulator{}; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Mutex-guarded Accumulator for collection across threads (the sweep
/// engine's result aggregation).  Counters and accumulators inside a model
/// stay single-threaded — one simulation never crosses threads — but the
/// layer that gathers results *from* concurrent simulations goes through
/// this.
class SharedAccumulator {
 public:
  void add(double x) {
    const std::lock_guard<std::mutex> lock(mutex_);
    acc_.add(x);
  }
  void merge(const Accumulator& other) {
    const std::lock_guard<std::mutex> lock(mutex_);
    acc_.merge(other);
  }
  /// Consistent copy for reading; take once, then query freely.
  Accumulator snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return acc_;
  }

 private:
  mutable std::mutex mutex_;
  Accumulator acc_;
};

/// Power-of-two bucketed histogram for long-tailed values (latencies,
/// message sizes).  Bucket i counts values in [2^i, 2^(i+1)).
class Log2Histogram {
 public:
  void add(std::uint64_t x) {
    acc_.add(static_cast<double>(x));
    std::size_t bucket = 0;
    while ((1ULL << (bucket + 1)) <= x && bucket + 1 < kBuckets) ++bucket;
    if (x == 0) bucket = 0;
    counts_[bucket] += 1;
  }

  /// Folds another histogram in: bucket-wise count sums plus an Accumulator
  /// merge, as if every sample of `other` had been add()ed here.  Used to
  /// combine per-partition PDES stat shards.
  void merge(const Log2Histogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    acc_.merge(other.acc_);
  }

  const Accumulator& summary() const { return acc_; }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  static constexpr std::size_t bucket_count() { return kBuckets; }

  /// Approximate quantile from bucket boundaries (upper bound of the bucket
  /// containing quantile q).
  std::uint64_t quantile_upper_bound(double q) const;

  void print(std::ostream& os, const std::string& label) const;

 private:
  static constexpr std::size_t kBuckets = 64;
  std::uint64_t counts_[kBuckets] = {};
  Accumulator acc_;
};

/// A (time, value) series with bounded memory: sampled on demand.
class TimeSeries {
 public:
  void record(sim::Tick t, double value) { points_.push_back({t, value}); }
  struct Point {
    sim::Tick time;
    double value;
  };
  const std::vector<Point>& points() const { return points_; }
  void write_csv(std::ostream& os, const std::string& header) const;

 private:
  std::vector<Point> points_;
};

/// Hierarchical metric registry: "node0.cpu.ops", "net.link.0-1.flits".
///
/// Components keep their own Counter/Accumulator members and additionally
/// register them here so generic tooling (reports, CSV, run-time sampler)
/// can enumerate everything.
class StatRegistry {
 public:
  void register_counter(const std::string& name, const Counter* c) {
    counters_[name] = c;
  }
  void register_accumulator(const std::string& name, const Accumulator* a) {
    accumulators_[name] = a;
  }
  /// Distributions report with log-bucketed percentile summaries
  /// (p50/p90/p99 upper bounds) in print_report/write_csv.
  void register_histogram(const std::string& name, const Log2Histogram* h) {
    histograms_[name] = h;
  }

  /// Snapshot of all counter values (sorted by name).
  std::vector<std::pair<std::string, std::uint64_t>> counter_values() const;

  std::uint64_t counter(const std::string& name) const;
  const Accumulator* accumulator(const std::string& name) const;
  const Log2Histogram* histogram(const std::string& name) const;

  /// Human-readable report of every metric.
  void print_report(std::ostream& os) const;
  /// Machine-readable CSV (name,count / name,mean,min,max,stddev,count;
  /// histogram rows add p50/p90/p99 columns).
  void write_csv(std::ostream& os) const;

 private:
  std::map<std::string, const Counter*> counters_;
  std::map<std::string, const Accumulator*> accumulators_;
  std::map<std::string, const Log2Histogram*> histograms_;
};

/// Fixed-width text table builder used by benches to print paper-style rows.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace merm::stats

// The run-time counter sampler moved to the observability subsystem; this
// alias keeps existing stats::CounterSampler users building.
#include "obs/sampler.hpp"

namespace merm::stats {
using CounterSampler [[deprecated("use obs::CounterSampler")]] =
    obs::CounterSampler;
}  // namespace merm::stats
