#include "stats/stats.hpp"

#include <cstdio>
#include <iomanip>

namespace merm::stats {

std::uint64_t Log2Histogram::quantile_upper_bound(double q) const {
  const std::uint64_t total = acc_.count();
  if (total == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= target) return (1ULL << (i + 1)) - 1;
  }
  return std::numeric_limits<std::uint64_t>::max();
}

void Log2Histogram::print(std::ostream& os, const std::string& label) const {
  os << label << ": n=" << acc_.count() << " mean=" << acc_.mean()
     << " min=" << acc_.min() << " max=" << acc_.max() << "\n";
  std::uint64_t peak = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) peak = std::max(peak, counts_[i]);
  if (peak == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts_[i] == 0) continue;
    const int bar =
        static_cast<int>(40.0 * static_cast<double>(counts_[i]) /
                         static_cast<double>(peak));
    os << "  [" << std::setw(20) << (1ULL << i) << ") " << std::setw(10)
       << counts_[i] << ' ' << std::string(static_cast<std::size_t>(bar), '#')
       << "\n";
  }
}

void TimeSeries::write_csv(std::ostream& os, const std::string& header) const {
  os << "time_ps," << header << "\n";
  for (const Point& p : points_) {
    os << p.time << ',' << p.value << "\n";
  }
}

std::vector<std::pair<std::string, std::uint64_t>>
StatRegistry::counter_values() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.emplace_back(name, c->value());
  }
  return out;
}

std::uint64_t StatRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

const Accumulator* StatRegistry::accumulator(const std::string& name) const {
  const auto it = accumulators_.find(name);
  return it == accumulators_.end() ? nullptr : it->second;
}

const Log2Histogram* StatRegistry::histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second;
}

void StatRegistry::print_report(std::ostream& os) const {
  for (const auto& [name, c] : counters_) {
    os << std::left << std::setw(48) << name << ' ' << c->value() << "\n";
  }
  for (const auto& [name, a] : accumulators_) {
    os << std::left << std::setw(48) << name << " mean=" << a->mean()
       << " min=" << a->min() << " max=" << a->max() << " sd=" << a->stddev()
       << " n=" << a->count() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const Accumulator& s = h->summary();
    os << std::left << std::setw(48) << name << " p50<=" <<
        h->quantile_upper_bound(0.50) << " p90<=" <<
        h->quantile_upper_bound(0.90) << " p99<=" <<
        h->quantile_upper_bound(0.99) << " mean=" << s.mean()
       << " max=" << s.max() << " n=" << s.count() << "\n";
  }
}

void StatRegistry::write_csv(std::ostream& os) const {
  os << "metric,kind,value,mean,min,max,stddev,count,p50,p90,p99\n";
  for (const auto& [name, c] : counters_) {
    os << name << ",counter," << c->value() << ",,,,,,,,\n";
  }
  for (const auto& [name, a] : accumulators_) {
    os << name << ",accumulator,," << a->mean() << ',' << a->min() << ','
       << a->max() << ',' << a->stddev() << ',' << a->count() << ",,,\n";
  }
  for (const auto& [name, h] : histograms_) {
    const Accumulator& s = h->summary();
    os << name << ",histogram,," << s.mean() << ',' << s.min() << ','
       << s.max() << ',' << s.stddev() << ',' << s.count() << ','
       << h->quantile_upper_bound(0.50) << ','
       << h->quantile_upper_bound(0.90) << ','
       << h->quantile_upper_bound(0.99) << "\n";
  }
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[i])) << cell
         << " | ";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (std::size_t w : widths) {
    os << std::string(w + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace merm::stats
