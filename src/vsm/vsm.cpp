#include "vsm/vsm.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/logging.hpp"

namespace merm::vsm {

namespace {
const sim::Log& vsm_log() {
  static const sim::Log log("vsm");
  return log;
}

constexpr std::int32_t kVsmBit = 1 << 30;
constexpr int kTypeShift = 26;
constexpr std::int32_t kTypeMask = 0x7;
constexpr std::int32_t kPageMask = (1 << kTypeShift) - 1;
}  // namespace

// ---------------------------------------------------------------- VsmAgent

VsmAgent::VsmAgent(VsmSystem& system, NodeId id, node::CommNode& comm)
    : system_(system), id_(id), comm_(comm) {}

std::int32_t VsmAgent::make_tag(MsgType type, std::uint64_t page) {
  if (page > static_cast<std::uint64_t>(kPageMask)) {
    throw std::out_of_range("VSM page index exceeds tag encoding");
  }
  return kVsmBit | (static_cast<std::int32_t>(type) << kTypeShift) |
         static_cast<std::int32_t>(page);
}

VsmAgent::MsgType VsmAgent::tag_type(std::int32_t tag) {
  return static_cast<MsgType>((tag >> kTypeShift) & kTypeMask);
}

std::uint64_t VsmAgent::tag_page(std::int32_t tag) {
  return static_cast<std::uint64_t>(tag & kPageMask);
}

bool VsmAgent::is_vsm_tag(std::int32_t tag) { return (tag & kVsmBit) != 0; }

bool VsmAgent::is_shared(std::uint64_t addr) const {
  const VsmParams& p = system_.params();
  return addr >= p.shared_base && addr < p.shared_base + p.shared_size;
}

std::uint64_t VsmAgent::page_of(std::uint64_t addr) const {
  return (addr - system_.params().shared_base) / system_.params().page_bytes;
}

NodeId VsmAgent::home_of(std::uint64_t page) const {
  return static_cast<NodeId>(page % system_.node_count());
}

PageMode VsmAgent::mode_of(std::uint64_t addr) const {
  const auto it = page_table_.find(page_of(addr));
  return it == page_table_.end() ? PageMode::kInvalid : it->second;
}

sim::Task<> VsmAgent::ensure(std::uint64_t addr, bool is_write) {
  shared_accesses.add();
  const std::uint64_t page = page_of(addr);
  const auto it = page_table_.find(page);
  const PageMode mode =
      it == page_table_.end() ? PageMode::kInvalid : it->second;
  const bool satisfied =
      is_write ? mode == PageMode::kWrite : mode != PageMode::kInvalid;
  if (satisfied) co_return;  // hit: no cost beyond the normal access

  (is_write ? write_faults : read_faults).add();
  sim::Simulator& sim = system_.simulator();
  vsm_log().debug(sim.now(), "node ", id_, (is_write ? " write" : " read"),
                  " fault on page ", page, " (home ", home_of(page), ")");
  const sim::Tick start = sim.now();
  co_await sim.delay(system_.params().fault_overhead);

  const NodeId home = home_of(page);
  if (home == id_) {
    co_await handle_fault(id_, page, is_write);
  } else {
    const MsgType req = is_write ? MsgType::kWriteReq : MsgType::kReadReq;
    co_await comm_.op_asend(home, system_.params().control_bytes,
                            make_tag(req, page));
    co_await comm_.op_recv(home, make_tag(MsgType::kGrant, page));
  }
  page_table_[page] = is_write ? PageMode::kWrite : PageMode::kRead;
  if (home != id_) {
    // Acknowledge the grant so the home can admit the next transaction for
    // this page (closing the grant-in-flight race).
    co_await comm_.op_asend(home, system_.params().control_bytes,
                            make_tag(MsgType::kInvAck, page));
  }
  fault_latency_ticks.add(static_cast<double>(sim.now() - start));
}

sim::Task<> VsmAgent::handle_fault(NodeId requester, std::uint64_t page,
                                   bool is_write) {
  sim::Simulator& sim = system_.simulator();
  auto& queue = page_queues_[page];
  if (!queue) queue = std::make_unique<sim::FifoResource>();
  co_await queue->acquire();
  co_await sim.delay(system_.params().directory_lookup);

  DirEntry& dir = directory_[page];
  const std::uint64_t ctrl = system_.params().control_bytes;
  const std::uint64_t page_bytes = system_.params().page_bytes;

  // Register the transaction before the first send: acknowledgements can
  // arrive while later sends are still in flight.
  Txn txn;
  pending_txns_[page] = &txn;

  bool requester_had_copy = false;
  if (is_write) {
    for (const NodeId reader : dir.copyset) {
      if (reader == requester) {
        requester_had_copy = true;
        continue;
      }
      if (reader == id_) {
        // The home itself holds a read copy: invalidate locally.
        page_table_[page] = PageMode::kInvalid;
        invalidations_received.add();
        continue;
      }
      ++txn.pending;
      co_await comm_.op_asend(reader, ctrl,
                              make_tag(MsgType::kInvalidate, page));
    }
    if (dir.dirty && dir.owner != requester) {
      if (dir.owner == id_) {
        page_table_[page] = PageMode::kInvalid;
        invalidations_received.add();
      } else {
        ++txn.pending;
        co_await comm_.op_asend(dir.owner, ctrl,
                                make_tag(MsgType::kFetchWrite, page));
      }
    }
  } else {
    if (dir.dirty && dir.owner != requester) {
      if (dir.owner == id_) {
        page_table_[page] = PageMode::kRead;
      } else {
        ++txn.pending;
        co_await comm_.op_asend(dir.owner, ctrl,
                                make_tag(MsgType::kFetchRead, page));
      }
    }
  }

  txn.sealed = true;
  if (txn.pending > 0) {
    co_await txn.done;
  }
  pending_txns_.erase(page);

  // Update the directory before granting.
  if (is_write) {
    dir.copyset.clear();
    dir.dirty = true;
    dir.owner = requester;
  } else {
    if (dir.dirty) {
      // The previous owner downgraded to a reader.
      if (dir.owner != requester) dir.copyset.push_back(dir.owner);
      dir.dirty = false;
      dir.owner = trace::kNoNode;
    }
    if (std::find(dir.copyset.begin(), dir.copyset.end(), requester) ==
        dir.copyset.end()) {
      dir.copyset.push_back(requester);
    }
  }

  if (requester != id_) {
    const bool data_needed = !(is_write && requester_had_copy);
    // Hold the page closed until the requester confirmed installation.
    Txn grant_txn;
    grant_txn.pending = 1;
    grant_txn.sealed = true;
    pending_txns_[page] = &grant_txn;
    co_await comm_.op_asend(requester, data_needed ? page_bytes : ctrl,
                            make_tag(MsgType::kGrant, page));
    co_await grant_txn.done;
    pending_txns_.erase(page);
  }

  page_queues_[page]->release();
}

sim::Process VsmAgent::spawn_fault_handler(NodeId requester,
                                           std::uint64_t page, bool is_write) {
  co_await handle_fault(requester, page, is_write);
}

sim::Process VsmAgent::server() {
  const std::uint64_t ctrl = system_.params().control_bytes;
  const std::uint64_t page_bytes = system_.params().page_bytes;
  for (;;) {
    const node::CommNode::RecvInfo info =
        co_await comm_.op_recv_filtered([](NodeId, std::int32_t tag) {
          return is_vsm_tag(tag) && tag_type(tag) != MsgType::kGrant;
        });
    const MsgType type = tag_type(info.tag);
    const std::uint64_t page = tag_page(info.tag);
    switch (type) {
      case MsgType::kReadReq:
      case MsgType::kWriteReq:
        system_.simulator().spawn(
            spawn_fault_handler(info.src, page, type == MsgType::kWriteReq));
        break;
      case MsgType::kInvalidate:
        invalidations_received.add();
        page_table_[page] = PageMode::kInvalid;
        co_await comm_.op_asend(info.src, ctrl,
                                make_tag(MsgType::kInvAck, page));
        break;
      case MsgType::kFetchRead:
        page_table_[page] = PageMode::kRead;
        co_await comm_.op_asend(info.src, page_bytes,
                                make_tag(MsgType::kWriteback, page));
        break;
      case MsgType::kFetchWrite:
        page_table_[page] = PageMode::kInvalid;
        invalidations_received.add();
        co_await comm_.op_asend(info.src, page_bytes,
                                make_tag(MsgType::kWriteback, page));
        break;
      case MsgType::kInvAck:
      case MsgType::kWriteback: {
        const auto it = pending_txns_.find(page);
        if (it == pending_txns_.end()) {
          throw std::logic_error("VSM ack with no pending transaction");
        }
        Txn& txn = *it->second;
        --txn.pending;
        if (txn.sealed && txn.pending == 0) {
          txn.done.trigger();
        }
        break;
      }
      case MsgType::kGrant:
        throw std::logic_error("grant reached the VSM server");
    }
  }
}

void VsmAgent::register_stats(stats::StatRegistry& reg,
                              const std::string& prefix) {
  reg.register_counter(prefix + ".read_faults", &read_faults);
  reg.register_counter(prefix + ".write_faults", &write_faults);
  reg.register_counter(prefix + ".shared_accesses", &shared_accesses);
  reg.register_counter(prefix + ".invalidations", &invalidations_received);
  reg.register_accumulator(prefix + ".fault_latency_ticks",
                           &fault_latency_ticks);
}

// --------------------------------------------------------------- VsmSystem

VsmSystem::VsmSystem(node::Machine& machine, VsmParams params)
    : machine_(machine), params_(params) {
  const std::uint32_t n = machine_.node_count();
  agents_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    agents_.push_back(std::make_unique<VsmAgent>(
        *this, static_cast<NodeId>(i), machine_.comm_node(i)));
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    machine_.simulator().spawn(agents_[i]->server(),
                               "vsm.server." + std::to_string(i));
  }
}

std::vector<sim::ProcessHandle> VsmSystem::launch_detailed(
    trace::Workload& workload) {
  const std::uint32_t cpus = machine_.cpus_per_node();
  if (workload.node_count() != machine_.node_count() * cpus) {
    throw std::invalid_argument(
        "VSM detailed workload needs node_count*cpus_per_node sources");
  }
  std::vector<sim::ProcessHandle> handles;
  handles.reserve(workload.node_count());
  for (std::uint32_t n = 0; n < machine_.node_count(); ++n) {
    for (std::uint32_t c = 0; c < cpus; ++c) {
      const std::size_t idx = static_cast<std::size_t>(n) * cpus + c;
      handles.push_back(machine_.simulator().spawn(
          machine_.compute_node(n).run(c, *workload.sources[idx],
                                       &machine_.comm_node(n),
                                       /*recorder=*/nullptr, agents_[n].get()),
          "vsm.node" + std::to_string(n) + ".cpu" + std::to_string(c)));
    }
  }
  return handles;
}

std::uint64_t VsmSystem::total_faults() const {
  std::uint64_t total = 0;
  for (const auto& a : agents_) {
    total += a->read_faults.value() + a->write_faults.value();
  }
  return total;
}

std::uint64_t VsmSystem::total_invalidations() const {
  std::uint64_t total = 0;
  for (const auto& a : agents_) {
    total += a->invalidations_received.value();
  }
  return total;
}

void VsmSystem::register_stats(stats::StatRegistry& reg,
                               const std::string& prefix) {
  for (std::uint32_t i = 0; i < node_count(); ++i) {
    agents_[i]->register_stats(reg,
                               prefix + ".node" + std::to_string(i));
  }
}

std::uint32_t VsmSystem::single_writer_violations() const {
  // Collect every page any agent has a table entry for.
  std::uint32_t violations = 0;
  std::unordered_map<std::uint64_t, std::pair<int, int>> holders;  // w, r
  for (const auto& a : agents_) {
    for (const auto& [page, mode] : a->page_table_) {
      if (mode == PageMode::kWrite) holders[page].first += 1;
      if (mode == PageMode::kRead) holders[page].second += 1;
    }
  }
  for (const auto& [page, wr] : holders) {
    const auto [writers, readers] = wr;
    if (writers > 1 || (writers == 1 && readers > 0)) ++violations;
  }
  return violations;
}

}  // namespace merm::vsm
