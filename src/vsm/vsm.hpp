// Virtual shared memory over the message-passing multicomputer.
//
// Section 5.1 of the paper notes that communication annotations still expose
// the physical topology and announces: "we will use a virtual shared memory
// in the future to hide all explicit communication".  This module implements
// that outlook as a home-based, page-granular DSM in the style of Li &
// Hudak's IVY, layered entirely on the communication model: every protocol
// action is ordinary tagged message passing through the node's CommNode, so
// DSM traffic experiences the same NIC costs, routing, switching and
// contention as application messages.
//
// Protocol (single-writer / multiple-reader, sequential consistency):
//  - every page has a home node (page index mod nodes) holding its
//    directory entry {dirty owner | reader copyset};
//  - a read fault sends kReadReq to the home; the home (fetching a dirty
//    owner's copy first if needed) replies with a page-carrying kGrant;
//  - a write fault sends kWriteReq; the home invalidates all readers
//    (kInvalidate / kInvAck), fetches a dirty owner's copy (kFetchWrite /
//    kWriteback), then grants exclusive ownership;
//  - homes serialize transactions per page; requesters block only on their
//    own grant; holder-side handlers never block — so the protocol is
//    deadlock-free by construction.
//
// Because the workbench is tags-only, "page contents" are timing fiction:
// what is modelled is exactly the message traffic, fault software overhead
// and directory latency a real implementation would incur.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "node/compute_node.hpp"
#include "node/machine.hpp"
#include "sim/coro.hpp"
#include "sim/resource.hpp"
#include "stats/stats.hpp"

namespace merm::vsm {

using trace::NodeId;

struct VsmParams {
  std::uint64_t page_bytes = 4096;
  /// Base of the shared region; must match the AddressLayout used by the
  /// trace generator (gen::AddressLayout::shared_base).
  std::uint64_t shared_base = 0x4000'0000'0000ULL;
  std::uint64_t shared_size = 1ULL << 32;
  /// Size of protocol control messages (requests, invalidations, acks).
  std::uint64_t control_bytes = 32;
  /// Software cost of entering the fault handler.
  sim::Tick fault_overhead = 5 * sim::kTicksPerMicrosecond;
  /// Directory lookup/update cost at the home node.
  sim::Tick directory_lookup = sim::kTicksPerMicrosecond;
};

/// Access mode a node holds a page in.
enum class PageMode : std::uint8_t { kInvalid, kRead, kWrite };

class VsmSystem;

/// Per-node DSM agent: the page table, the fault path (ensure) and the
/// protocol server.
class VsmAgent final : public node::SharedMemoryService {
 public:
  VsmAgent(VsmSystem& system, NodeId id, node::CommNode& comm);

  NodeId id() const { return id_; }

  // SharedMemoryService:
  bool is_shared(std::uint64_t addr) const override;
  sim::Task<> ensure(std::uint64_t addr, bool is_write) override;

  /// Current local mode of the page containing `addr`.
  PageMode mode_of(std::uint64_t addr) const;

  // -- statistics --
  stats::Counter read_faults;
  stats::Counter write_faults;
  stats::Counter shared_accesses;     ///< ensure() calls (incl. hits)
  stats::Counter invalidations_received;
  stats::Accumulator fault_latency_ticks;

  void register_stats(stats::StatRegistry& reg, const std::string& prefix);

 private:
  friend class VsmSystem;

  // Protocol message types, encoded in the tag.
  enum class MsgType : std::uint8_t {
    kReadReq = 0,
    kWriteReq,
    kGrant,
    kFetchRead,
    kFetchWrite,
    kWriteback,
    kInvalidate,
    kInvAck,
  };

  static std::int32_t make_tag(MsgType type, std::uint64_t page);
  static MsgType tag_type(std::int32_t tag);
  static std::uint64_t tag_page(std::int32_t tag);
  static bool is_vsm_tag(std::int32_t tag);

  /// Directory entry at the home node.
  struct DirEntry {
    bool dirty = false;
    NodeId owner = trace::kNoNode;   ///< valid when dirty
    std::vector<NodeId> copyset;     ///< readers when clean
  };

  /// In-flight home transaction awaiting remote acknowledgements.  The
  /// handler registers it *before* sending (acks may race the later sends),
  /// increments `pending` per message, and seals it when all messages are
  /// out; the server completes it when sealed and fully acknowledged.
  struct Txn {
    int pending = 0;
    bool sealed = false;
    sim::Event done;
  };

  std::uint64_t page_of(std::uint64_t addr) const;
  NodeId home_of(std::uint64_t page) const;

  /// The home-side fault service; runs at this agent (the home).
  /// `requester` may be this node (local fault at home).
  sim::Task<> handle_fault(NodeId requester, std::uint64_t page,
                           bool is_write);

  sim::Process server();
  sim::Process spawn_fault_handler(NodeId requester, std::uint64_t page,
                                   bool is_write);

  VsmSystem& system_;
  NodeId id_;
  node::CommNode& comm_;

  std::unordered_map<std::uint64_t, PageMode> page_table_;
  std::unordered_map<std::uint64_t, DirEntry> directory_;
  /// Per-page transaction serialization at the home.
  std::unordered_map<std::uint64_t, std::unique_ptr<sim::FifoResource>>
      page_queues_;
  std::unordered_map<std::uint64_t, Txn*> pending_txns_;
};

/// The machine-wide DSM: one agent per node plus launch helpers.
class VsmSystem {
 public:
  VsmSystem(node::Machine& machine, VsmParams params = {});

  const VsmParams& params() const { return params_; }
  node::Machine& machine() { return machine_; }
  sim::Simulator& simulator() { return machine_.simulator(); }
  std::uint32_t node_count() const { return machine_.node_count(); }
  VsmAgent& agent(NodeId n) { return *agents_[static_cast<std::size_t>(n)]; }

  /// Launches a detailed workload whose shared-region loads/stores go
  /// through the DSM (one source per CPU, as Machine::launch_detailed).
  std::vector<sim::ProcessHandle> launch_detailed(trace::Workload& workload);

  // -- aggregates --
  std::uint64_t total_faults() const;
  std::uint64_t total_invalidations() const;
  void register_stats(stats::StatRegistry& reg, const std::string& prefix);

  /// Consistency check for tests: every page is held by at most one writer,
  /// and a writer excludes readers (across all nodes).  Returns the number
  /// of violating pages.
  std::uint32_t single_writer_violations() const;

 private:
  friend class VsmAgent;

  node::Machine& machine_;
  VsmParams params_;
  std::vector<std::unique_ptr<VsmAgent>> agents_;
};

}  // namespace merm::vsm
