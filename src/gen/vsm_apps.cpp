#include "gen/vsm_apps.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "gen/collectives.hpp"

namespace merm::gen {

using trace::DataType;
using trace::OpCode;

namespace {
constexpr DataType kF64 = DataType::kDouble;
}

void vsm_stencil_spmd(Annotator& a, trace::NodeId self, std::uint32_t nodes,
                      const VsmStencilParams& p) {
  const std::uint32_t n = p.n;
  if (n % nodes != 0) {
    throw std::invalid_argument("vsm_stencil: n must divide by node count");
  }
  VarTable& vars = a.vars();
  // Shared grids: identical addresses on every node (SPMD declaration
  // order), coherence by the DSM.
  VarId U = vars.declare_shared("U", kF64, std::uint64_t(n) * n,
                                /*page_align=*/true);
  VarId V = vars.declare_shared("V", kF64, std::uint64_t(n) * n,
                                /*page_align=*/true);
  const VarId quarter = vars.declare_global("c", kF64, 1);

  const std::uint32_t strip = n / nodes;
  const std::uint32_t row_lo =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(self) * strip);
  const std::uint32_t row_hi = std::min<std::uint32_t>(
      n - 1, (static_cast<std::uint32_t>(self) + 1) * strip);

  std::int32_t tag = p.tag_base;
  for (std::uint32_t iter = 0; iter < p.iterations; ++iter) {
    for (std::uint32_t i = row_lo; i < row_hi; ++i) {
      for (std::uint32_t j = 1; j + 1 < n; ++j) {
        const std::uint64_t c = std::uint64_t(i) * n + j;
        a.load(U, c - n);  // may fault to a neighbor's page
        a.load(U, c + n);
        a.arith(OpCode::kAdd, kF64);
        a.load(U, c - 1);
        a.arith(OpCode::kAdd, kF64);
        a.load(U, c + 1);
        a.arith(OpCode::kAdd, kF64);
        a.load(quarter);
        a.arith(OpCode::kMul, kF64);
        a.store(V, c);
      }
    }
    // Phase synchronization: nobody reads V (as next iteration's U) before
    // every writer finished.
    barrier(a, self, nodes, tag);
    tag += kTagsPerCollective;
    std::swap(U, V);
  }
}

void vsm_reduction_spmd(Annotator& a, trace::NodeId self, std::uint32_t nodes,
                        const VsmReductionParams& p) {
  VarTable& vars = a.vars();
  // Slot layout decides the sharing behaviour.
  std::vector<VarId> slots;
  if (p.padded) {
    for (std::uint32_t i = 0; i < nodes; ++i) {
      slots.push_back(vars.declare_shared("slot" + std::to_string(i), kF64, 1,
                                          /*page_align=*/true));
    }
  } else {
    const VarId packed =
        vars.declare_shared("slots", kF64, nodes, /*page_align=*/true);
    for (std::uint32_t i = 0; i < nodes; ++i) slots.push_back(packed);
  }
  const VarId x = vars.declare_global("x", kF64, p.elements);
  const VarId total = vars.declare_shared("total", kF64, 1,
                                          /*page_align=*/true);

  std::int32_t tag = p.tag_base;
  for (std::uint32_t round = 0; round < p.rounds; ++round) {
    // Private accumulation.
    a.load_const(kF64);
    for (std::uint32_t e = 0; e < p.elements; ++e) {
      a.load(x, e);
      a.arith(OpCode::kAdd, kF64);
    }
    // Publish into my slot (a shared write: faults, invalidates readers).
    const std::uint64_t index =
        p.padded ? 0 : static_cast<std::uint64_t>(self);
    a.store(slots[static_cast<std::size_t>(self)], index);
    barrier(a, self, nodes, tag);
    tag += kTagsPerCollective;
    // Node 0 combines all slots (shared reads) into the shared total.
    if (self == 0) {
      a.load_const(kF64);
      for (std::uint32_t i = 0; i < nodes; ++i) {
        a.load(slots[i], p.padded ? 0 : i);
        a.arith(OpCode::kAdd, kF64);
      }
      a.store(total);
    }
    barrier(a, self, nodes, tag);
    tag += kTagsPerCollective;
    // Everyone reads the result (read-sharing of the total page).
    a.load(total);
  }
}

void vsm_broadcast_spmd(Annotator& a, trace::NodeId self, std::uint32_t nodes,
                        const VsmBroadcastParams& p) {
  VarTable& vars = a.vars();
  const VarId block = vars.declare_shared("block", kF64, p.block_doubles,
                                          /*page_align=*/true);
  std::int32_t tag = p.tag_base;
  for (std::uint32_t round = 0; round < p.rounds; ++round) {
    if (self == 0) {
      for (std::uint32_t i = 0; i < p.block_doubles; ++i) {
        a.load_const(kF64);
        a.store(block, i);
      }
    }
    barrier(a, self, nodes, tag);
    tag += kTagsPerCollective;
    if (self != 0) {
      a.load_const(kF64);
      for (std::uint32_t i = 0; i < p.block_doubles; ++i) {
        a.load(block, i);
        a.arith(OpCode::kAdd, kF64);
      }
    }
    barrier(a, self, nodes, tag);
    tag += kTagsPerCollective;
  }
}

}  // namespace merm::gen
