#include "gen/threaded_source.hpp"

#include <exception>
#include <stdexcept>

namespace merm::gen {

namespace {
/// Thrown into the application thread when the source is destroyed before
/// the application finished (e.g. a bounded simulation run).
struct Abandoned {};
}  // namespace

void AppContext::emit(const trace::Operation& op) { owner_.push(op); }

sim::Tick AppContext::now() const {
  std::lock_guard<std::mutex> lock(owner_.mu_);
  return owner_.last_event_time_;
}

ThreadedSource::ThreadedSource(AppFn app, std::size_t queue_capacity)
    : capacity_(queue_capacity) {
  thread_ = std::thread([this, fn = std::move(app)] { thread_main(fn); });
}

ThreadedSource::~ThreadedSource() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    abandoned_ = true;
    cv_app_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void ThreadedSource::thread_main(AppFn app) {
  AppContext ctx(*this);
  try {
    app(ctx);
  } catch (const Abandoned&) {
    // Simulation ended before the application did; unwind quietly.
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    app_error_ = std::current_exception();
  }
  std::lock_guard<std::mutex> lock(mu_);
  app_finished_ = true;
  cv_sim_.notify_all();
}

void ThreadedSource::push(const trace::Operation& op) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_app_.wait(lock,
               [this] { return queue_.size() < capacity_ || abandoned_; });
  if (abandoned_) throw Abandoned{};

  queue_.push_back(op);
  const bool global = trace::is_global_event(op.code);
  if (global) {
    ++globals_emitted_;
    waiting_for_global_ = true;
  }
  cv_sim_.notify_all();

  if (global) {
    // Suspend until the simulator explicitly resumes this "thread" — the
    // physical-time interleaving handshake.
    cv_app_.wait(lock, [this] {
      return globals_completed_ >= globals_emitted_ || abandoned_;
    });
    waiting_for_global_ = false;
    if (abandoned_) throw Abandoned{};
  }
}

std::optional<trace::Operation> ThreadedSource::next() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_sim_.wait(lock, [this] {
    if (!queue_.empty() || app_finished_) return true;
    // The application can only be blocked on an unresolved global event; if
    // the consumer pulls again without resolving it, that's a protocol bug
    // worth failing loudly on rather than deadlocking.
    if (waiting_for_global_ && globals_completed_ < globals_emitted_) {
      return true;
    }
    return false;
  });
  if (app_error_) {
    std::exception_ptr e = app_error_;
    app_error_ = nullptr;
    std::rethrow_exception(e);
  }
  if (queue_.empty()) {
    if (!app_finished_ && waiting_for_global_) {
      throw std::logic_error(
          "ThreadedSource::next() called past an unresolved global event");
    }
    return std::nullopt;
  }
  trace::Operation op = queue_.front();
  queue_.pop_front();
  cv_app_.notify_all();
  return op;
}

void ThreadedSource::global_event_issued(sim::Tick /*t*/) {}

void ThreadedSource::global_event_done(sim::Tick t) {
  std::lock_guard<std::mutex> lock(mu_);
  ++globals_completed_;
  last_event_time_ = t;
  cv_app_.notify_all();
}

}  // namespace merm::gen
