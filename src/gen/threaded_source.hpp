// Physical-time-interleaved trace generation with real threads
// (Sections 2 and 3.1).
//
// "Both trace generators model concurrent execution by means of threads ...
// Whenever a thread encounters a global event, it is suspended until
// explicitly resumed by the simulator."
//
// A ThreadedSource runs one node's instrumented application on a host
// thread.  The thread pushes operations into a bounded queue; local
// (computational) operations may buffer freely — they cannot be affected by
// other processors — but when the application emits a *global event* the
// thread blocks until the architecture simulator reports the event complete
// (global_event_done).  The simulator pulls operations with next(), which
// blocks host-side until the application produced one.  Because the
// application only advances past a global event once the simulator has
// resolved it at the correct simulated time, the generated multiprocessor
// trace "is exactly the one that would be observed if the application was
// actually executed on the target machine".
//
// The suspended application can read the simulated completion time of its
// last global event through AppContext::now() — the feedback arrow of
// Fig. 1 — enabling timing-dependent control flow.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>

#include "gen/annotate.hpp"
#include "trace/stream.hpp"

namespace merm::gen {

class ThreadedSource;

/// Handed to the application function running on the generator thread.
/// Also an OpSink, so an Annotator can write straight into it.
class AppContext final : public OpSink {
 public:
  explicit AppContext(ThreadedSource& owner) : owner_(owner) {}

  /// Emits one operation.  Blocks while the queue is full; for global
  /// events, additionally blocks until the simulator completed the event.
  void emit(const trace::Operation& op) override;

  /// Simulated time at which this node's most recent global event
  /// completed (0 before the first one).
  sim::Tick now() const;

 private:
  ThreadedSource& owner_;
};

class ThreadedSource final : public trace::OperationSource {
 public:
  using AppFn = std::function<void(AppContext&)>;

  /// Spawns the generator thread immediately; it runs ahead until the
  /// operation queue fills or it hits a global event.
  explicit ThreadedSource(AppFn app, std::size_t queue_capacity = 1024);
  ~ThreadedSource() override;

  ThreadedSource(const ThreadedSource&) = delete;
  ThreadedSource& operator=(const ThreadedSource&) = delete;

  std::optional<trace::Operation> next() override;
  void global_event_issued(sim::Tick t) override;
  void global_event_done(sim::Tick t) override;

  /// The generator thread's handshake assumes a single simulator-side
  /// consumer thread; pulling from PDES workers would break it.
  bool pdes_safe() const override { return false; }

 private:
  friend class AppContext;

  void thread_main(AppFn app);
  void push(const trace::Operation& op);  // called from app thread

  mutable std::mutex mu_;
  std::condition_variable cv_app_;   ///< wakes the application thread
  std::condition_variable cv_sim_;   ///< wakes the simulator side
  std::deque<trace::Operation> queue_;
  std::size_t capacity_;
  bool app_finished_ = false;
  bool abandoned_ = false;           ///< source destroyed before app finished
  bool waiting_for_global_ = false;  ///< app blocked on an in-flight event
  std::exception_ptr app_error_;     ///< rethrown from next()
  std::uint64_t globals_emitted_ = 0;
  std::uint64_t globals_completed_ = 0;
  sim::Tick last_event_time_ = 0;

  std::thread thread_;
};

}  // namespace merm::gen
