// Annotated kernels written against the virtual shared memory (Section 5.1's
// outlook): data exchange happens through plain loads/stores to the shared
// region; the only explicit messages are barrier/reduce collectives for
// phase synchronization.  Compare stencil_spmd (explicit halo messages) with
// vsm_stencil_spmd (neighbor rows read directly from shared memory).
#pragma once

#include <cstdint>

#include "gen/annotate.hpp"

namespace merm::gen {

/// Jacobi stencil on a shared n x n grid: each node updates its row strip in
/// place of explicit halo exchange — boundary rows are fetched by the DSM on
/// demand.  Requires n*n*8 bytes * 2 within the shared region.
struct VsmStencilParams {
  std::uint32_t n = 32;
  std::uint32_t iterations = 2;
  /// Tag base for the inter-iteration barriers.
  std::int32_t tag_base = 1 << 20;
};
void vsm_stencil_spmd(Annotator& a, trace::NodeId self, std::uint32_t nodes,
                      const VsmStencilParams& p);

/// Global sum: each node accumulates a private array into a shared slot,
/// then node 0 combines the slots.  Two layouts:
///  - padded = true : one page per slot (no false sharing),
///  - padded = false: all slots in one page (write-fault ping-pong — the
///    classic false-sharing pathology, visible in the fault counters).
struct VsmReductionParams {
  std::uint32_t elements = 256;  ///< private doubles summed per node
  std::uint32_t rounds = 2;
  bool padded = true;
  std::int32_t tag_base = 1 << 21;
};
void vsm_reduction_spmd(Annotator& a, trace::NodeId self, std::uint32_t nodes,
                        const VsmReductionParams& p);

/// Producer/consumer through shared memory: node 0 writes a block, others
/// read it after a barrier (read-sharing: one write fault, n-1 read faults,
/// then invalidation on the next round's write).
struct VsmBroadcastParams {
  std::uint32_t block_doubles = 1024;
  std::uint32_t rounds = 3;
  std::int32_t tag_base = 1 << 22;
};
void vsm_broadcast_spmd(Annotator& a, trace::NodeId self, std::uint32_t nodes,
                        const VsmBroadcastParams& p);

}  // namespace merm::gen
