// The stochastic trace generator (Section 3): produces "realistic synthetic
// traces of operations" from a probabilistic application description —
// "useful when fast-prototyping new architectures" and trivially tunable.
//
// A description is a sequence of identical rounds: a computation phase (an
// operation mix over a data working set, or a single task-level compute) and
// a communication phase drawn from a structured pattern.  Traces for
// different nodes are generated lazily and independently, but the
// communication schedule is derived deterministically from (seed, round,
// pattern), so sends and receives always match across nodes — a property the
// generator tests verify.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sim/random.hpp"
#include "trace/operation.hpp"
#include "trace/stream.hpp"

namespace merm::gen {

/// Relative frequencies of computational operations (arithmetic and memory).
struct OperationMix {
  double load = 0.25;
  double store = 0.10;
  double load_const = 0.05;
  double add = 0.30;
  double sub = 0.10;
  double mul = 0.15;
  double div = 0.05;
  /// Fraction of arithmetic operations performed in double precision.
  double fp_fraction = 0.3;
  /// Fraction of instructions that end a basic block with a taken branch.
  double branch_fraction = 0.1;
};

/// Memory reference behaviour.
struct MemoryPattern {
  std::uint64_t data_working_set = 64 * 1024;
  /// Probability that a data reference is sequential to the previous one
  /// (otherwise it jumps uniformly within the working set).
  double spatial_locality = 0.7;
  std::uint64_t code_working_set = 4 * 1024;
};

enum class CommPattern : std::uint8_t {
  kNone,
  kRing,        ///< exchange with (i±1) mod n
  kShift,       ///< exchange with (i±stride) mod n
  kAllToAll,    ///< every node exchanges with every other
  kGather,      ///< all nodes send to node 0, node 0 scatters back
  kRandomPerm,  ///< a fresh random permutation each round
};

struct CommPhase {
  CommPattern pattern = CommPattern::kRing;
  std::uint32_t stride = 1;           ///< for kShift
  std::uint64_t message_bytes = 1024; ///< fixed size, or mean when exponential
  bool exponential_sizes = false;
  /// Use synchronous (rendezvous) send/recv with even/odd phasing instead of
  /// asend + recv.  Exercises the blocking semantics.
  bool synchronous = false;
};

/// One behavioural phase of a multi-phase description: its own instruction
/// budget, operation mix, memory pattern and communication.
struct StochasticPhase {
  std::uint64_t instructions = 10'000;
  OperationMix mix;
  MemoryPattern memory;
  CommPhase comm;
  /// Task-level alternative for this phase.
  sim::Tick mean_task_ticks = 100 * sim::kTicksPerMicrosecond;
};

struct StochasticDescription {
  /// Computational operations per node per round (instruction level).
  std::uint64_t instructions_per_round = 10'000;
  std::uint32_t rounds = 4;
  OperationMix mix;
  MemoryPattern memory;
  CommPhase comm;

  /// Optional explicit phase sequence; when non-empty, each round runs the
  /// whole sequence (the top-level mix/memory/comm fields are ignored).
  /// Models applications alternating between distinct regimes, e.g. an
  /// FP-heavy solve phase with neighbor exchange followed by an
  /// integer/pointer phase with a gather.
  std::vector<StochasticPhase> phases;

  /// Task-level descriptions emit compute(duration) instead of instructions.
  bool task_level = false;
  /// Mean task duration (exponential) when task_level is set.
  sim::Tick mean_task_ticks = 100 * sim::kTicksPerMicrosecond;

  std::uint64_t seed = 1;

  /// The effective phase sequence (synthesized from the top-level fields
  /// when `phases` is empty).
  std::vector<StochasticPhase> effective_phases() const;
};

/// Lazy per-node synthetic trace.
class StochasticSource final : public trace::OperationSource {
 public:
  StochasticSource(const StochasticDescription& desc, trace::NodeId self,
                   std::uint32_t node_count, bool emit_comm = true);

  std::optional<trace::Operation> next() override;

  /// The communication operations node `self` performs in segment `segment`
  /// (round * phase-count + phase index) — identical on every node that
  /// computes it (the matching guarantee).
  static std::vector<trace::Operation> comm_schedule(
      const StochasticDescription& desc, trace::NodeId self,
      std::uint32_t node_count, std::uint32_t segment);

 private:
  void refill();
  void generate_computation_slice();
  void generate_instruction();

  const StochasticPhase& phase() const {
    return phases_[segment_ % phases_.size()];
  }

  StochasticDescription desc_;
  std::vector<StochasticPhase> phases_;
  std::vector<sim::DiscreteDistribution> op_dists_;  ///< one per phase
  trace::NodeId self_;
  std::uint32_t node_count_;
  bool emit_comm_;
  sim::Rng rng_;

  std::uint32_t segment_ = 0;       ///< rounds * phases consumed so far
  std::uint32_t total_segments_ = 0;
  std::uint64_t instructions_left_ = 0;
  bool in_computation_ = true;
  std::deque<trace::Operation> pending_;

  // memory reference state
  std::uint64_t data_cursor_ = 0;
  std::uint64_t pc_ = 0;
};

/// Builds an instruction-level workload: `cpus_per_node` sources per node;
/// communication is issued by CPU 0 of each node, extra CPUs compute only.
trace::Workload make_stochastic_workload(const StochasticDescription& desc,
                                         std::uint32_t node_count,
                                         std::uint32_t cpus_per_node = 1);

/// Builds a task-level workload (one source per node) from the description,
/// forcing task_level semantics.
trace::Workload make_stochastic_task_workload(StochasticDescription desc,
                                              std::uint32_t node_count);

}  // namespace merm::gen
