#include "gen/direct_execution.hpp"

namespace merm::gen {

using trace::OpCode;
using trace::Operation;

std::vector<Operation> estimate_direct_execution(
    const std::vector<Operation>& ops, const DirectExecutionModel& m) {
  const sim::Clock clock(m.cpu.frequency_hz);
  std::vector<Operation> out;
  sim::Cycles pending = 0;

  auto flush = [&] {
    if (pending > 0) {
      out.push_back(Operation::compute(clock.to_ticks(pending)));
      pending = 0;
    }
  };

  for (const Operation& op : ops) {
    if (trace::is_computational(op.code)) {
      pending += m.cpu.cost(op.code, op.type);
      if (trace::is_memory_access(op.code) ||
          trace::is_instruction_fetch(op.code)) {
        pending += m.assumed_memory_cycles;
      }
    } else if (op.code == OpCode::kCompute) {
      flush();
      out.push_back(op);
    } else {
      flush();
      out.push_back(op);
    }
  }
  flush();
  return out;
}

trace::Workload make_direct_execution_workload(
    const std::vector<std::vector<Operation>>& per_node,
    const DirectExecutionModel& m) {
  trace::Workload w;
  for (const auto& ops : per_node) {
    w.sources.push_back(std::make_unique<trace::VectorSource>(
        estimate_direct_execution(ops, m)));
  }
  return w;
}

}  // namespace merm::gen
