// The variable descriptor table of the annotation translator (Section 5.1).
//
// "Every variable used in the application has an entry in the so-called
// variable descriptor table.  This table determines whether a variable is
// global, local, or a function argument.  It further contains information on
// the addresses of variables, whether they are placed in a register or not
// and the types of the variables."
//
// The table performs the address assignment a compiler would: globals in a
// data segment, locals in stack frames that grow with call depth, and the
// first few scalar arguments in registers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/operation.hpp"

namespace merm::gen {

enum class StorageClass : std::uint8_t {
  kGlobal,
  kLocal,
  kArgument,
  kShared,  ///< virtual-shared-memory region (see src/vsm)
};

/// Index into the variable descriptor table.
using VarId = std::uint32_t;

struct VarDesc {
  std::string name;
  StorageClass storage = StorageClass::kGlobal;
  trace::DataType type = trace::DataType::kInt32;
  std::uint64_t address = 0;   ///< base address (unused when in_register)
  bool in_register = false;    ///< register-allocated: no memory traffic
  std::uint64_t elements = 1;  ///< array length (1 = scalar)

  std::uint64_t element_address(std::uint64_t index) const {
    return address + index * trace::size_of(type);
  }
};

/// Address-space layout used by the translator.  Code, globals and stack
/// live in disjoint regions so cache studies see realistic conflict
/// behaviour.
struct AddressLayout {
  std::uint64_t code_base = 0x0000'1000;
  std::uint64_t data_base = 0x0010'0000;
  std::uint64_t stack_base = 0x7fff'0000;  ///< grows downward
  /// Base of the virtual-shared-memory region; accesses here are serviced
  /// by the DSM layer.  Must agree with vsm::VsmParams::shared_base.
  std::uint64_t shared_base = 0x4000'0000'0000ULL;
};

class VarTable {
 public:
  explicit VarTable(AddressLayout layout = {});

  /// Declares a global scalar/array.
  VarId declare_global(std::string name, trace::DataType type,
                       std::uint64_t elements = 1);

  /// Declares a variable in the virtual shared memory region.  SPMD
  /// programs declaring shared variables in the same order see the same
  /// addresses on every node — the DSM keeps them coherent.
  /// `page_align` starts the variable on a fresh page boundary (for
  /// false-sharing studies).
  VarId declare_shared(std::string name, trace::DataType type,
                       std::uint64_t elements = 1, bool page_align = false,
                       std::uint64_t page_bytes = 4096);

  /// Declares a local in the current frame.
  VarId declare_local(std::string name, trace::DataType type,
                      std::uint64_t elements = 1);

  /// Declares a function argument in the current frame.  The first
  /// `kRegisterArgs` scalar arguments are register-allocated.
  VarId declare_argument(std::string name, trace::DataType type);

  /// Marks a scalar as register-allocated (e.g. a loop counter the compiler
  /// would keep in a register).  Register variables emit no memory traffic.
  void promote_to_register(VarId v);

  /// Enters/leaves a function scope: locals declared after push_frame are
  /// dropped by pop_frame and their stack space is reclaimed.
  void push_frame();
  void pop_frame();

  const VarDesc& operator[](VarId v) const { return vars_[v]; }
  std::size_t size() const { return vars_.size(); }
  std::size_t frame_depth() const { return frames_.size(); }

  const AddressLayout& layout() const { return layout_; }

  /// Number of scalar arguments passed in registers.
  static constexpr std::uint32_t kRegisterArgs = 4;

 private:
  struct Frame {
    std::size_t first_var;       ///< index of first var declared in frame
    std::uint64_t stack_top;     ///< stack pointer on entry
    std::uint32_t args_declared; ///< argument count in this frame
  };

  AddressLayout layout_;
  std::vector<VarDesc> vars_;
  std::vector<Frame> frames_;
  std::uint64_t next_global_ = 0;
  std::uint64_t next_shared_ = 0;
  std::uint64_t stack_top_ = 0;
};

}  // namespace merm::gen
