// The direct-execution baseline (Section 2).
//
// Direct-execution simulators run local instructions natively and only
// *count* their cost, statically estimated at instrumentation time; global
// events alone are simulated.  The paper rejects the technique because
// statically estimated local instructions cannot react to architectural
// parameters — "the performance evaluation of instruction or private data
// caches can only be marginally performed".
//
// We implement it as a comparator: a node's operation trace is folded into a
// task-level trace whose compute() durations charge each local operation its
// issue cost plus a *fixed assumed* memory latency.  Running this through
// the communication model gives direct-execution-style results: fast, and
// blind to cache parameters (bench_accuracy_tradeoff quantifies both).
#pragma once

#include <vector>

#include "machine/params.hpp"
#include "trace/stream.hpp"

namespace merm::gen {

struct DirectExecutionModel {
  machine::CpuParams cpu;
  /// Static per-access memory cost (cycles) added for loads, stores and
  /// instruction fetches — the compile-time estimate that replaces cache
  /// simulation.
  sim::Cycles assumed_memory_cycles = 1;
};

/// Folds one node's operation-level trace into a task-level trace: maximal
/// runs of computational operations become a single compute(duration) with
/// the statically estimated duration; communication operations pass through.
std::vector<trace::Operation> estimate_direct_execution(
    const std::vector<trace::Operation>& ops, const DirectExecutionModel& m);

/// Builds the task-level workload for all nodes.
trace::Workload make_direct_execution_workload(
    const std::vector<std::vector<trace::Operation>>& per_node,
    const DirectExecutionModel& m);

}  // namespace merm::gen
