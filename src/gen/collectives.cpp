#include "gen/collectives.hpp"

#include <stdexcept>

namespace merm::gen {

namespace {
constexpr std::uint64_t kBarrierBytes = 4;  // a token message
}

void barrier(Annotator& a, trace::NodeId self, std::uint32_t nodes,
             std::int32_t tag_base) {
  if (nodes < 2) return;
  const auto me = static_cast<std::uint32_t>(self);
  std::int32_t round = 0;
  for (std::uint32_t dist = 1; dist < nodes; dist <<= 1, ++round) {
    if (round >= kTagsPerCollective) {
      throw std::logic_error("barrier exceeded its tag budget");
    }
    const auto to = static_cast<trace::NodeId>((me + dist) % nodes);
    const auto from =
        static_cast<trace::NodeId>((me + nodes - dist % nodes) % nodes);
    a.asend(kBarrierBytes, to, tag_base + round);
    a.recv(from, tag_base + round);
  }
}

void broadcast(Annotator& a, trace::NodeId self, std::uint32_t nodes,
               trace::NodeId root, std::uint64_t bytes,
               std::int32_t tag_base) {
  if (nodes < 2) return;
  const std::uint32_t r =
      (static_cast<std::uint32_t>(self) + nodes -
       static_cast<std::uint32_t>(root)) %
      nodes;
  std::int32_t round = 0;
  for (std::uint32_t mask = 1; mask < nodes; mask <<= 1, ++round) {
    if (r < mask) {
      const std::uint32_t partner = r + mask;
      if (partner < nodes) {
        const auto to = static_cast<trace::NodeId>(
            (partner + static_cast<std::uint32_t>(root)) % nodes);
        a.asend(bytes, to, tag_base + round);
      }
    } else if (r < 2 * mask) {
      const std::uint32_t partner = r - mask;
      const auto from = static_cast<trace::NodeId>(
          (partner + static_cast<std::uint32_t>(root)) % nodes);
      a.recv(from, tag_base + round);
    }
  }
}

void reduce(Annotator& a, trace::NodeId self, std::uint32_t nodes,
            trace::NodeId root, std::uint64_t bytes, std::int32_t tag_base,
            trace::OpCode combine_op, trace::DataType combine_type) {
  if (nodes < 2) return;
  const std::uint32_t r =
      (static_cast<std::uint32_t>(self) + nodes -
       static_cast<std::uint32_t>(root)) %
      nodes;
  // Mirror of the broadcast tree: receive from children (high rounds first
  // would also work; we run low-to-high like an up-sweep).
  std::uint32_t top_mask = 1;
  while ((top_mask << 1) < nodes) top_mask <<= 1;
  std::int32_t round = 0;
  for (std::uint32_t mask = top_mask; mask >= 1; mask >>= 1, ++round) {
    if (r < mask) {
      const std::uint32_t child = r + mask;
      if (child < nodes) {
        const auto from = static_cast<trace::NodeId>(
            (child + static_cast<std::uint32_t>(root)) % nodes);
        a.recv(from, tag_base + round);
        a.arith(combine_op, combine_type);
      }
    } else if (r < 2 * mask) {
      const std::uint32_t parent = r - mask;
      const auto to = static_cast<trace::NodeId>(
          (parent + static_cast<std::uint32_t>(root)) % nodes);
      a.asend(bytes, to, tag_base + round);
      break;  // after sending up, this node is done
    }
    if (mask == 1) break;
  }
}

}  // namespace merm::gen
