#include "gen/annotate.hpp"

#include <stdexcept>

namespace merm::gen {

using trace::Operation;

Annotator::Annotator(VarTable& vars, OpSink& sink)
    : vars_(vars),
      sink_(sink),
      pc_(vars.layout().code_base),
      next_function_(vars.layout().code_base + 0x10000) {}

FuncId Annotator::declare_function(const std::string& /*name*/,
                                   std::uint32_t approx_instructions) {
  const FuncId f = next_function_;
  next_function_ += static_cast<std::uint64_t>(approx_instructions) *
                    kInstrBytes;
  // Keep functions line-aligned so instruction-cache studies see clean
  // per-function footprints.
  next_function_ = (next_function_ + 63) / 64 * 64;
  return f;
}

void Annotator::fetch() {
  sink_.emit(Operation::ifetch(pc_));
  ++emitted_;
  pc_ += kInstrBytes;
}

void Annotator::load(VarId v, std::uint64_t index) {
  const VarDesc& d = vars_[v];
  if (d.in_register) return;  // operand already in a register: no instruction
  fetch();
  sink_.emit(Operation::load(d.type, d.element_address(index)));
  ++emitted_;
}

void Annotator::store(VarId v, std::uint64_t index) {
  const VarDesc& d = vars_[v];
  if (d.in_register) return;
  fetch();
  sink_.emit(Operation::store(d.type, d.element_address(index)));
  ++emitted_;
}

void Annotator::load_const(trace::DataType type) {
  fetch();
  sink_.emit(Operation::load_const(type));
  ++emitted_;
}

void Annotator::arith(trace::OpCode op, trace::DataType type) {
  if (!trace::is_arithmetic(op)) {
    throw std::invalid_argument("arith() given non-arithmetic opcode");
  }
  fetch();
  sink_.emit(Operation{op, type, 0, trace::kNoNode, 0});
  ++emitted_;
}

void Annotator::binop(trace::OpCode op, VarId dst, VarId a, VarId b,
                      std::uint64_t dst_index, std::uint64_t a_index,
                      std::uint64_t b_index) {
  load(a, a_index);
  load(b, b_index);
  arith(op, vars_[dst].type);
  store(dst, dst_index);
}

void Annotator::fused_multiply_add(VarId a, VarId b, trace::DataType type,
                                   std::uint64_t a_index,
                                   std::uint64_t b_index) {
  load(a, a_index);
  load(b, b_index);
  arith(trace::OpCode::kMul, type);
  arith(trace::OpCode::kAdd, type);
}

void Annotator::branch(std::uint64_t target) {
  sink_.emit(Operation::branch(target));
  ++emitted_;
  pc_ = target;
}

void Annotator::branch_not_taken() {
  // The comparison...
  fetch();
  sink_.emit(Operation::sub(trace::DataType::kInt32));
  ++emitted_;
  // ...and the fall-through branch instruction.
  fetch();
}

void Annotator::call(FuncId f) {
  sink_.emit(Operation::call(f));
  ++emitted_;
  return_stack_.push_back(pc_);
  pc_ = f;
}

void Annotator::ret() {
  if (return_stack_.empty()) {
    throw std::logic_error("ret() without matching call()");
  }
  const std::uint64_t back = return_stack_.back();
  return_stack_.pop_back();
  sink_.emit(Operation::ret(back));
  ++emitted_;
  pc_ = back;
}

void Annotator::send(std::uint64_t bytes, trace::NodeId dest,
                     std::int32_t tag) {
  sink_.emit(Operation::send(bytes, dest, tag));
  ++emitted_;
}

void Annotator::recv(trace::NodeId source, std::int32_t tag) {
  sink_.emit(Operation::recv(source, tag));
  ++emitted_;
}

void Annotator::asend(std::uint64_t bytes, trace::NodeId dest,
                      std::int32_t tag) {
  sink_.emit(Operation::asend(bytes, dest, tag));
  ++emitted_;
}

void Annotator::arecv(trace::NodeId source, std::int32_t tag) {
  sink_.emit(Operation::arecv(source, tag));
  ++emitted_;
}

void Annotator::compute(sim::Tick duration) {
  sink_.emit(Operation::compute(duration));
  ++emitted_;
}

}  // namespace merm::gen
