// The annotation translator (Sections 3 and 5.1): "a library that is linked
// together with the instrumented applications, while the annotations simply
// are calls to the library".
//
// An instrumented application here is ordinary C++ code (the kernels in
// gen/apps.hpp) whose memory and computational behaviour is described by
// calls on an Annotator.  The annotations follow the program's control flow
// — the generator (the running C++ code) evaluates loop and branch
// conditions, so "every invocation of a loop body is individually traced and
// leads to recurring addresses of instruction fetches".
//
// The Annotator is "a kind of generic compiler": using the variable
// descriptor table it translates a source-level reference like load(a[i])
// into the ifetch + memory operations appropriate for the target: register
// variables emit nothing, memory variables emit ifetch(pc) + load(type,
// address).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen/vartable.hpp"
#include "trace/operation.hpp"

namespace merm::gen {

/// Destination of translated operations.
class OpSink {
 public:
  virtual ~OpSink() = default;
  virtual void emit(const trace::Operation& op) = 0;
};

/// Collects operations into a vector (offline trace generation).
class VectorSink final : public OpSink {
 public:
  void emit(const trace::Operation& op) override { ops_.push_back(op); }
  const std::vector<trace::Operation>& ops() const { return ops_; }
  std::vector<trace::Operation> take() { return std::move(ops_); }

 private:
  std::vector<trace::Operation> ops_;
};

/// Identifier of a declared function (its entry address).
using FuncId = std::uint64_t;

class Annotator {
 public:
  Annotator(VarTable& vars, OpSink& sink);

  VarTable& vars() { return vars_; }

  // -- code layout --

  /// Current code address (the program counter of the generated trace).
  std::uint64_t here() const { return pc_; }

  /// Reserves a code region for a function body; call/ret transfer to and
  /// from it.
  FuncId declare_function(const std::string& name,
                          std::uint32_t approx_instructions = 64);

  // -- computational annotations (each emits ifetch(pc) + operation) --

  /// A read of variable `v` (element `index` for arrays).  Register
  /// variables emit nothing — the operand is already in a register.
  void load(VarId v, std::uint64_t index = 0);
  /// A write of variable `v`.
  void store(VarId v, std::uint64_t index = 0);
  /// Load-immediate into a register.
  void load_const(trace::DataType type);
  /// A register-to-register arithmetic instruction.
  void arith(trace::OpCode op, trace::DataType type);

  /// dst = a <op> b — the common expression shape: two loads, the
  /// arithmetic, one store (each component elided for register variables).
  void binop(trace::OpCode op, VarId dst, VarId a, VarId b,
             std::uint64_t dst_index = 0, std::uint64_t a_index = 0,
             std::uint64_t b_index = 0);

  /// dst += a * b with dst register-resident (the inner-product pattern):
  /// loads a and b, multiply, add; no store.
  void fused_multiply_add(VarId a, VarId b, trace::DataType type,
                          std::uint64_t a_index = 0, std::uint64_t b_index = 0);

  // -- control-flow annotations --

  /// A taken branch to `target` (use here() before a loop body to get the
  /// back-edge target).  Resets the program counter: subsequent annotations
  /// re-fetch the loop body's addresses.
  void branch(std::uint64_t target);
  /// A not-taken conditional branch (fetch + fall through): the comparison
  /// and branch instructions of a loop exit test.
  void branch_not_taken();
  void call(FuncId f);
  void ret();

  // -- communication annotations (forwarded untranslated, Section 5.1) --

  void send(std::uint64_t bytes, trace::NodeId dest, std::int32_t tag = 0);
  void recv(trace::NodeId source, std::int32_t tag = 0);
  void asend(std::uint64_t bytes, trace::NodeId dest, std::int32_t tag = 0);
  void arecv(trace::NodeId source, std::int32_t tag = 0);
  void compute(sim::Tick duration);

  /// Operations emitted so far.
  std::uint64_t emitted() const { return emitted_; }

 private:
  static constexpr std::uint64_t kInstrBytes = 4;

  void fetch();  ///< emit ifetch(pc_) and advance pc_

  VarTable& vars_;
  OpSink& sink_;
  std::uint64_t pc_;
  std::uint64_t next_function_;
  std::vector<std::uint64_t> return_stack_;
  std::uint64_t emitted_ = 0;
};

}  // namespace merm::gen
