#include "gen/workload_config.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace merm::gen {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// Internal parse failure carrying the line number; the public entry points
// attach their source context (file path or the legacy stream wording).
struct ParseError {
  int line;
  std::string msg;
};

[[noreturn]] void fail(int line, const std::string& msg) {
  throw ParseError{line, msg};
}

double parse_double(const std::string& v, int line) {
  try {
    std::size_t pos = 0;
    const double d = std::stod(v, &pos);
    if (pos != v.size()) fail(line, "trailing junk in '" + v + "'");
    return d;
  } catch (const std::logic_error&) {
    fail(line, "bad number '" + v + "'");
  }
}

std::uint64_t parse_u64(const std::string& v, int line) {
  try {
    std::size_t pos = 0;
    const std::uint64_t u = std::stoull(v, &pos, 0);
    if (pos != v.size()) fail(line, "trailing junk in '" + v + "'");
    return u;
  } catch (const std::logic_error&) {
    fail(line, "bad integer '" + v + "'");
  }
}

bool parse_bool(const std::string& v, int line) {
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  fail(line, "bad boolean '" + v + "'");
}

CommPattern parse_pattern(const std::string& v, int line) {
  if (v == "none") return CommPattern::kNone;
  if (v == "ring") return CommPattern::kRing;
  if (v == "shift") return CommPattern::kShift;
  if (v == "all_to_all") return CommPattern::kAllToAll;
  if (v == "gather") return CommPattern::kGather;
  if (v == "random_perm") return CommPattern::kRandomPerm;
  fail(line, "unknown pattern '" + v + "'");
}

}  // namespace

const char* to_string(CommPattern p) {
  switch (p) {
    case CommPattern::kNone:
      return "none";
    case CommPattern::kRing:
      return "ring";
    case CommPattern::kShift:
      return "shift";
    case CommPattern::kAllToAll:
      return "all_to_all";
    case CommPattern::kGather:
      return "gather";
    case CommPattern::kRandomPerm:
      return "random_perm";
  }
  return "?";
}

namespace {

StochasticDescription parse_impl(std::istream& is,
                                 const StochasticDescription& base) {
  StochasticDescription d = base;
  std::string section;
  std::string raw;
  int line_no = 0;
  while (std::getline(is, raw)) {
    ++line_no;
    const auto hash = raw.find_first_of(";#");
    const std::string line =
        trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') fail(line_no, "unterminated section");
      section = trim(line.substr(1, line.size() - 2));
      if (section.rfind("phase.", 0) == 0) {
        const auto idx = static_cast<std::size_t>(
            parse_u64(section.substr(6), line_no));
        while (d.phases.size() <= idx) {
          // New phases start from the description's top-level behaviour.
          StochasticPhase p;
          p.instructions = d.instructions_per_round;
          p.mix = d.mix;
          p.memory = d.memory;
          p.comm = d.comm;
          p.mean_task_ticks = d.mean_task_ticks;
          d.phases.push_back(p);
        }
      }
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected key = value");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));

    if (section.empty()) {
      if (key == "instructions_per_round") {
        d.instructions_per_round = parse_u64(value, line_no);
      } else if (key == "rounds") {
        d.rounds = static_cast<std::uint32_t>(parse_u64(value, line_no));
      } else if (key == "seed") {
        d.seed = parse_u64(value, line_no);
      } else if (key == "task_level") {
        d.task_level = parse_bool(value, line_no);
      } else if (key == "mean_task_us") {
        d.mean_task_ticks =
            parse_u64(value, line_no) * sim::kTicksPerMicrosecond;
      } else {
        fail(line_no, "unknown top-level key '" + key + "'");
      }
    } else if (section == "mix") {
      OperationMix& m = d.mix;
      if (key == "load") {
        m.load = parse_double(value, line_no);
      } else if (key == "store") {
        m.store = parse_double(value, line_no);
      } else if (key == "load_const") {
        m.load_const = parse_double(value, line_no);
      } else if (key == "add") {
        m.add = parse_double(value, line_no);
      } else if (key == "sub") {
        m.sub = parse_double(value, line_no);
      } else if (key == "mul") {
        m.mul = parse_double(value, line_no);
      } else if (key == "div") {
        m.div = parse_double(value, line_no);
      } else if (key == "fp_fraction") {
        m.fp_fraction = parse_double(value, line_no);
      } else if (key == "branch_fraction") {
        m.branch_fraction = parse_double(value, line_no);
      } else {
        fail(line_no, "unknown [mix] key '" + key + "'");
      }
    } else if (section == "memory") {
      if (key == "data_working_set") {
        d.memory.data_working_set = parse_u64(value, line_no);
      } else if (key == "spatial_locality") {
        d.memory.spatial_locality = parse_double(value, line_no);
      } else if (key == "code_working_set") {
        d.memory.code_working_set = parse_u64(value, line_no);
      } else {
        fail(line_no, "unknown [memory] key '" + key + "'");
      }
    } else if (section == "comm") {
      if (key == "pattern") {
        d.comm.pattern = parse_pattern(value, line_no);
      } else if (key == "stride") {
        d.comm.stride = static_cast<std::uint32_t>(parse_u64(value, line_no));
      } else if (key == "message_bytes") {
        d.comm.message_bytes = parse_u64(value, line_no);
      } else if (key == "exponential_sizes") {
        d.comm.exponential_sizes = parse_bool(value, line_no);
      } else if (key == "synchronous") {
        d.comm.synchronous = parse_bool(value, line_no);
      } else {
        fail(line_no, "unknown [comm] key '" + key + "'");
      }
    } else if (section.rfind("phase.", 0) == 0) {
      const auto idx =
          static_cast<std::size_t>(parse_u64(section.substr(6), line_no));
      StochasticPhase& p = d.phases[idx];
      if (key == "instructions") {
        p.instructions = parse_u64(value, line_no);
      } else if (key == "mean_task_us") {
        p.mean_task_ticks =
            parse_u64(value, line_no) * sim::kTicksPerMicrosecond;
      } else if (key == "load") {
        p.mix.load = parse_double(value, line_no);
      } else if (key == "store") {
        p.mix.store = parse_double(value, line_no);
      } else if (key == "add") {
        p.mix.add = parse_double(value, line_no);
      } else if (key == "sub") {
        p.mix.sub = parse_double(value, line_no);
      } else if (key == "mul") {
        p.mix.mul = parse_double(value, line_no);
      } else if (key == "div") {
        p.mix.div = parse_double(value, line_no);
      } else if (key == "fp_fraction") {
        p.mix.fp_fraction = parse_double(value, line_no);
      } else if (key == "branch_fraction") {
        p.mix.branch_fraction = parse_double(value, line_no);
      } else if (key == "data_working_set") {
        p.memory.data_working_set = parse_u64(value, line_no);
      } else if (key == "spatial_locality") {
        p.memory.spatial_locality = parse_double(value, line_no);
      } else if (key == "code_working_set") {
        p.memory.code_working_set = parse_u64(value, line_no);
      } else if (key == "pattern") {
        p.comm.pattern = parse_pattern(value, line_no);
      } else if (key == "stride") {
        p.comm.stride = static_cast<std::uint32_t>(parse_u64(value, line_no));
      } else if (key == "message_bytes") {
        p.comm.message_bytes = parse_u64(value, line_no);
      } else if (key == "exponential_sizes") {
        p.comm.exponential_sizes = parse_bool(value, line_no);
      } else if (key == "synchronous") {
        p.comm.synchronous = parse_bool(value, line_no);
      } else {
        fail(line_no, "unknown [phase] key '" + key + "'");
      }
    } else {
      fail(line_no, "unknown section '" + section + "'");
    }
  }
  return d;
}

}  // namespace

StochasticDescription parse_workload(std::istream& is) {
  return parse_workload(is, StochasticDescription{});
}

StochasticDescription parse_workload(std::istream& is,
                                     const StochasticDescription& base) {
  try {
    return parse_impl(is, base);
  } catch (const ParseError& e) {
    throw std::runtime_error("workload config line " + std::to_string(e.line) +
                             ": " + e.msg);
  }
}

StochasticDescription parse_workload_string(const std::string& text) {
  std::istringstream is(text);
  return parse_workload(is);
}

StochasticDescription parse_workload_file(const std::string& path) {
  return parse_workload_file(path, StochasticDescription{});
}

StochasticDescription parse_workload_file(const std::string& path,
                                          const StochasticDescription& base) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("workload config: cannot open '" + path + "'");
  }
  try {
    return parse_impl(is, base);
  } catch (const ParseError& e) {
    throw std::runtime_error(path + ":" + std::to_string(e.line) + ": " +
                             e.msg);
  }
}

void write_workload(std::ostream& os, const StochasticDescription& d) {
  os << "instructions_per_round = " << d.instructions_per_round << "\n";
  os << "rounds = " << d.rounds << "\n";
  os << "seed = " << d.seed << "\n";
  os << "task_level = " << (d.task_level ? "true" : "false") << "\n";
  os << "mean_task_us = " << d.mean_task_ticks / sim::kTicksPerMicrosecond
     << "\n\n";
  os << "[mix]\n";
  os << "load = " << d.mix.load << "\n";
  os << "store = " << d.mix.store << "\n";
  os << "load_const = " << d.mix.load_const << "\n";
  os << "add = " << d.mix.add << "\n";
  os << "sub = " << d.mix.sub << "\n";
  os << "mul = " << d.mix.mul << "\n";
  os << "div = " << d.mix.div << "\n";
  os << "fp_fraction = " << d.mix.fp_fraction << "\n";
  os << "branch_fraction = " << d.mix.branch_fraction << "\n\n";
  os << "[memory]\n";
  os << "data_working_set = " << d.memory.data_working_set << "\n";
  os << "spatial_locality = " << d.memory.spatial_locality << "\n";
  os << "code_working_set = " << d.memory.code_working_set << "\n\n";
  os << "[comm]\n";
  os << "pattern = " << to_string(d.comm.pattern) << "\n";
  os << "stride = " << d.comm.stride << "\n";
  os << "message_bytes = " << d.comm.message_bytes << "\n";
  os << "exponential_sizes = " << (d.comm.exponential_sizes ? "true" : "false")
     << "\n";
  os << "synchronous = " << (d.comm.synchronous ? "true" : "false") << "\n";

  for (std::size_t i = 0; i < d.phases.size(); ++i) {
    const StochasticPhase& p = d.phases[i];
    os << "\n[phase." << i << "]\n";
    os << "instructions = " << p.instructions << "\n";
    os << "mean_task_us = " << p.mean_task_ticks / sim::kTicksPerMicrosecond
       << "\n";
    os << "load = " << p.mix.load << "\n";
    os << "store = " << p.mix.store << "\n";
    os << "add = " << p.mix.add << "\n";
    os << "sub = " << p.mix.sub << "\n";
    os << "mul = " << p.mix.mul << "\n";
    os << "div = " << p.mix.div << "\n";
    os << "fp_fraction = " << p.mix.fp_fraction << "\n";
    os << "branch_fraction = " << p.mix.branch_fraction << "\n";
    os << "data_working_set = " << p.memory.data_working_set << "\n";
    os << "spatial_locality = " << p.memory.spatial_locality << "\n";
    os << "code_working_set = " << p.memory.code_working_set << "\n";
    os << "pattern = " << to_string(p.comm.pattern) << "\n";
    os << "stride = " << p.comm.stride << "\n";
    os << "message_bytes = " << p.comm.message_bytes << "\n";
    os << "exponential_sizes = "
       << (p.comm.exponential_sizes ? "true" : "false") << "\n";
    os << "synchronous = " << (p.comm.synchronous ? "true" : "false") << "\n";
  }
}

std::string write_workload_string(const StochasticDescription& desc) {
  std::ostringstream os;
  write_workload(os, desc);
  return os.str();
}

}  // namespace merm::gen
