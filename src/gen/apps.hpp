// Instrumented application kernels (Section 5).
//
// These are the workbench's "annotated applications": ordinary C++ functions
// whose numerical work is described through Annotator calls.  The C++
// control flow *is* the application's control flow — the generator evaluates
// loop bounds and branch conditions, the architecture simulator only ever
// sees the resulting operation trace.
//
// All kernels are SPMD: the same function runs for every node, parameterized
// by (self, nodes).  Communication patterns are deadlock-free by
// construction (asend+recv, or sync send/recv in an order that cannot
// cycle).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "gen/annotate.hpp"
#include "trace/stream.hpp"

namespace merm::gen {

/// A per-node annotated program.
using AppFn = std::function<void(Annotator& a, trace::NodeId self,
                                 std::uint32_t nodes)>;

/// Dense matrix multiply C = A * B with row-block distribution and ring
/// rotation of B blocks (each node sees every B block after nodes-1
/// exchanges).  `n` must be divisible by `nodes`.
struct MatmulParams {
  std::uint32_t n = 24;  ///< matrices are n x n doubles
};
void matmul_spmd(Annotator& a, trace::NodeId self, std::uint32_t nodes,
                 const MatmulParams& p);

/// Jacobi 5-point stencil on an n x n grid, row-strip distribution with halo
/// exchange each iteration — the coarse-grained compute/communicate
/// alternation the paper's Section 3.2 describes as typical.
struct StencilParams {
  std::uint32_t n = 32;          ///< grid is n x n doubles
  std::uint32_t iterations = 4;
};
void stencil_spmd(Annotator& a, trace::NodeId self, std::uint32_t nodes,
                  const StencilParams& p);

/// Local reduction followed by recursive-doubling allreduce.  `nodes` must
/// be a power of two.
struct AllReduceParams {
  std::uint32_t elements = 256;  ///< doubles reduced locally per node
  std::uint32_t repeats = 1;
};
void allreduce_spmd(Annotator& a, trace::NodeId self, std::uint32_t nodes,
                    const AllReduceParams& p);

/// Synchronous ping-pong between nodes 0 and 1 (other nodes idle): the
/// classic latency microbenchmark, and the blocking-semantics exerciser.
struct PingPongParams {
  std::uint32_t rounds = 8;
  std::uint64_t bytes = 1024;
};
void pingpong(Annotator& a, trace::NodeId self, std::uint32_t nodes,
              const PingPongParams& p);

/// Master-worker: node 0 deals task descriptors round-robin and collects
/// results (any-source receive); workers compute per task.
struct MasterWorkerParams {
  std::uint32_t tasks = 16;
  std::uint32_t task_flops = 512;    ///< multiply-adds per task
  std::uint64_t task_bytes = 256;    ///< descriptor size
  std::uint64_t result_bytes = 64;
};
void master_worker(Annotator& a, trace::NodeId self, std::uint32_t nodes,
                   const MasterWorkerParams& p);

/// Distributed matrix transpose: the all-to-all personalized exchange at
/// the heart of 2D FFTs.  Each node scatters one block to every other node
/// and receives one from each, then permutes locally.  `n` must divide by
/// `nodes`.
struct TransposeParams {
  std::uint32_t n = 32;  ///< matrix is n x n doubles, row-block distributed
};
void transpose_spmd(Annotator& a, trace::NodeId self, std::uint32_t nodes,
                    const TransposeParams& p);

/// Pure local computation over an array working set (no communication):
/// used for single-node (e.g. PowerPC 601) studies and cache sweeps.
struct ComputeKernelParams {
  std::uint32_t array_elements = 4096;  ///< doubles
  std::uint32_t passes = 4;
  std::uint32_t stride = 1;             ///< element stride between accesses
};
void compute_kernel(Annotator& a, trace::NodeId self, std::uint32_t nodes,
                    const ComputeKernelParams& p);

// -- workload builders --

/// Runs each node's program to completion up front and returns the recorded
/// traces (offline generation; valid for timing-independent programs).
trace::Workload make_offline_workload(std::uint32_t nodes, const AppFn& app);

/// Per-node op vectors of an offline run (for trace files and analysis).
std::vector<std::vector<trace::Operation>> record_app_traces(
    std::uint32_t nodes, const AppFn& app);

/// Wraps each node's program in a ThreadedSource: live generation with
/// physical-time interleaving (the paper's actual mechanism).
trace::Workload make_threaded_workload(std::uint32_t nodes, const AppFn& app);

}  // namespace merm::gen
