#include "gen/stochastic.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace merm::gen {

using trace::DataType;
using trace::NodeId;
using trace::OpCode;
using trace::Operation;

namespace {

// Address layout for synthetic traces: code low, data above, disjoint.
constexpr std::uint64_t kCodeBase = 0x1000;
constexpr std::uint64_t kDataBase = 0x100000;

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  // splitmix-style combiner for derived deterministic streams.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (a + 1) +
                    0xbf58476d1ce4e5b9ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t sample_message_bytes(const CommPhase& comm, sim::Rng& rng) {
  if (!comm.exponential_sizes) return comm.message_bytes;
  const double v = rng.exponential(static_cast<double>(comm.message_bytes));
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(v));
}

}  // namespace

std::vector<StochasticPhase> StochasticDescription::effective_phases() const {
  if (!phases.empty()) return phases;
  StochasticPhase p;
  p.instructions = instructions_per_round;
  p.mix = mix;
  p.memory = memory;
  p.comm = comm;
  p.mean_task_ticks = mean_task_ticks;
  return {p};
}

StochasticSource::StochasticSource(const StochasticDescription& desc,
                                   NodeId self, std::uint32_t node_count,
                                   bool emit_comm)
    : desc_(desc),
      phases_(desc.effective_phases()),
      self_(self),
      node_count_(node_count),
      emit_comm_(emit_comm),
      rng_(mix_seed(desc.seed, static_cast<std::uint64_t>(self), 0)),
      pc_(kCodeBase) {
  if (node_count_ == 0) throw std::invalid_argument("node_count == 0");
  op_dists_.reserve(phases_.size());
  for (const StochasticPhase& p : phases_) {
    op_dists_.emplace_back(std::array<double, 7>{
        p.mix.load, p.mix.store, p.mix.load_const, p.mix.add, p.mix.sub,
        p.mix.mul, p.mix.div});
  }
  total_segments_ =
      desc_.rounds * static_cast<std::uint32_t>(phases_.size());
  instructions_left_ = phases_.front().instructions;
}

std::vector<Operation> StochasticSource::comm_schedule(
    const StochasticDescription& desc, NodeId self, std::uint32_t node_count,
    std::uint32_t segment) {
  std::vector<Operation> ops;
  const auto phases = desc.effective_phases();
  const CommPhase& comm = phases[segment % phases.size()].comm;
  const std::uint32_t round = segment;  // unique tag space per segment
  const auto n = node_count;
  const auto i = static_cast<std::uint32_t>(self);
  if (comm.pattern == CommPattern::kNone || n < 2) return ops;

  const auto tag = static_cast<std::int32_t>(round) * 2;
  // The sender of a message samples its size from a stream derived from
  // (seed, round, sender) — receivers never need the size.
  sim::Rng size_rng(mix_seed(desc.seed, round, i + 1));

  auto exchange = [&](std::uint32_t to, std::uint32_t from) {
    const std::uint64_t bytes = sample_message_bytes(comm, size_rng);
    if (comm.synchronous) {
      // Even/odd phasing avoids the all-blocked-in-send rendezvous deadlock.
      if (i % 2 == 0) {
        ops.push_back(Operation::send(bytes, static_cast<NodeId>(to), tag));
        ops.push_back(Operation::recv(static_cast<NodeId>(from), tag));
      } else {
        ops.push_back(Operation::recv(static_cast<NodeId>(from), tag));
        ops.push_back(Operation::send(bytes, static_cast<NodeId>(to), tag));
      }
    } else {
      ops.push_back(Operation::asend(bytes, static_cast<NodeId>(to), tag));
      ops.push_back(Operation::recv(static_cast<NodeId>(from), tag));
    }
  };

  switch (comm.pattern) {
    case CommPattern::kNone:
      break;
    case CommPattern::kRing:
      exchange((i + 1) % n, (i + n - 1) % n);
      break;
    case CommPattern::kShift: {
      const std::uint32_t s = comm.stride % n;
      if (s != 0) exchange((i + s) % n, (i + n - s) % n);
      break;
    }
    case CommPattern::kAllToAll: {
      for (std::uint32_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const std::uint64_t bytes = sample_message_bytes(comm, size_rng);
        ops.push_back(Operation::asend(bytes, static_cast<NodeId>(j), tag));
      }
      for (std::uint32_t j = 0; j < n; ++j) {
        if (j == i) continue;
        ops.push_back(Operation::recv(static_cast<NodeId>(j), tag));
      }
      break;
    }
    case CommPattern::kGather: {
      if (i == 0) {
        for (std::uint32_t j = 1; j < n; ++j) {
          ops.push_back(Operation::recv(static_cast<NodeId>(j), tag));
        }
        // Scatter results back.
        sim::Rng scatter_rng(mix_seed(desc.seed, round, 1));
        for (std::uint32_t j = 1; j < n; ++j) {
          const std::uint64_t bytes = sample_message_bytes(comm, scatter_rng);
          ops.push_back(
              Operation::asend(bytes, static_cast<NodeId>(j), tag + 1));
        }
      } else {
        const std::uint64_t bytes = sample_message_bytes(comm, size_rng);
        ops.push_back(Operation::asend(bytes, 0, tag));
        ops.push_back(Operation::recv(0, tag + 1));
      }
      break;
    }
    case CommPattern::kRandomPerm: {
      // All nodes derive the same permutation from (seed, round).
      sim::Rng perm_rng(mix_seed(desc.seed, round, 0));
      std::vector<std::uint32_t> perm(n);
      for (std::uint32_t k = 0; k < n; ++k) perm[k] = k;
      for (std::uint32_t k = n - 1; k > 0; --k) {
        const auto j =
            static_cast<std::uint32_t>(perm_rng.next_below(k + 1));
        std::swap(perm[k], perm[j]);
      }
      std::vector<std::uint32_t> inverse(n);
      for (std::uint32_t k = 0; k < n; ++k) inverse[perm[k]] = k;
      if (perm[i] != i) {
        sim::Rng my_size_rng(mix_seed(desc.seed, round, perm[i] * n + i));
        const std::uint64_t bytes = sample_message_bytes(comm, my_size_rng);
        ops.push_back(
            Operation::asend(bytes, static_cast<NodeId>(perm[i]), tag));
      }
      if (inverse[i] != i) {
        ops.push_back(Operation::recv(static_cast<NodeId>(inverse[i]), tag));
      }
      break;
    }
  }
  return ops;
}

void StochasticSource::generate_instruction() {
  const StochasticPhase& ph = phase();
  const OperationMix& mix = ph.mix;
  // Fetch of the instruction itself.
  pending_.push_back(Operation::ifetch(pc_));
  pc_ += 4;
  if (pc_ >= kCodeBase + ph.memory.code_working_set) pc_ = kCodeBase;

  const std::size_t kind =
      op_dists_[segment_ % op_dists_.size()].sample(rng_);
  const bool fp = rng_.chance(mix.fp_fraction);
  const DataType arith_type = fp ? DataType::kDouble : DataType::kInt32;
  const DataType mem_type = fp ? DataType::kDouble : DataType::kInt32;

  auto data_address = [&]() {
    const std::uint64_t elem = trace::size_of(mem_type);
    if (!rng_.chance(ph.memory.spatial_locality)) {
      data_cursor_ =
          rng_.next_below(ph.memory.data_working_set / elem) * elem;
    }
    const std::uint64_t addr = kDataBase + data_cursor_;
    data_cursor_ = (data_cursor_ + elem) % ph.memory.data_working_set;
    return addr;
  };

  switch (kind) {
    case 0:
      pending_.push_back(Operation::load(mem_type, data_address()));
      break;
    case 1:
      pending_.push_back(Operation::store(mem_type, data_address()));
      break;
    case 2:
      pending_.push_back(Operation::load_const(arith_type));
      break;
    case 3:
      pending_.push_back(Operation::add(arith_type));
      break;
    case 4:
      pending_.push_back(Operation::sub(arith_type));
      break;
    case 5:
      pending_.push_back(Operation::mul(arith_type));
      break;
    case 6:
      pending_.push_back(Operation::div(arith_type));
      break;
    default:
      break;
  }

  // Occasionally end the basic block with a taken branch within the code
  // working set (recurring ifetch addresses, as the paper describes).
  if (rng_.chance(mix.branch_fraction)) {
    const std::uint64_t target =
        kCodeBase + rng_.next_below(ph.memory.code_working_set / 4) * 4;
    pending_.push_back(Operation::branch(target));
    pc_ = target;
  }
}

void StochasticSource::generate_computation_slice() {
  if (desc_.task_level) {
    const double d =
        rng_.exponential(static_cast<double>(phase().mean_task_ticks));
    pending_.push_back(Operation::compute(
        std::max<sim::Tick>(1, static_cast<sim::Tick>(d))));
    return;
  }
  // Generate a slice of the segment's instructions; refill() is called
  // again until the budget is exhausted.
  const std::uint64_t slice = std::min<std::uint64_t>(instructions_left_, 256);
  for (std::uint64_t k = 0; k < slice; ++k) {
    generate_instruction();
  }
  instructions_left_ -= slice;
}

void StochasticSource::refill() {
  if (segment_ >= total_segments_) return;

  if (in_computation_) {
    if (desc_.task_level) {
      generate_computation_slice();
      in_computation_ = false;
    } else if (instructions_left_ > 0) {
      generate_computation_slice();
      if (instructions_left_ == 0) in_computation_ = false;
    } else {
      in_computation_ = false;
    }
  }
  if (!pending_.empty()) return;

  // Communication for this segment, then advance to the next one.
  if (!in_computation_) {
    if (emit_comm_) {
      auto comm = comm_schedule(desc_, self_, node_count_, segment_);
      for (const auto& op : comm) pending_.push_back(op);
    }
    ++segment_;
    if (segment_ < total_segments_) {
      instructions_left_ = phase().instructions;
    }
    in_computation_ = true;
  }
}

std::optional<Operation> StochasticSource::next() {
  while (pending_.empty() && segment_ < total_segments_) {
    refill();
  }
  if (pending_.empty()) return std::nullopt;
  const Operation op = pending_.front();
  pending_.pop_front();
  return op;
}

trace::Workload make_stochastic_workload(const StochasticDescription& desc,
                                         std::uint32_t node_count,
                                         std::uint32_t cpus_per_node) {
  trace::Workload w;
  for (std::uint32_t n = 0; n < node_count; ++n) {
    for (std::uint32_t c = 0; c < cpus_per_node; ++c) {
      StochasticDescription d = desc;
      d.seed = mix_seed(desc.seed, n, c);
      // Keep the global seed's comm schedule: comm_schedule uses desc.seed,
      // so sources that emit communication must share it.
      const bool comm = c == 0;
      if (comm) d.seed = desc.seed;
      w.sources.push_back(std::make_unique<StochasticSource>(
          d, static_cast<NodeId>(n), node_count, comm));
    }
  }
  return w;
}

trace::Workload make_stochastic_task_workload(StochasticDescription desc,
                                              std::uint32_t node_count) {
  desc.task_level = true;
  trace::Workload w;
  for (std::uint32_t n = 0; n < node_count; ++n) {
    w.sources.push_back(std::make_unique<StochasticSource>(
        desc, static_cast<NodeId>(n), node_count, /*emit_comm=*/true));
  }
  return w;
}

}  // namespace merm::gen
