#include "gen/vartable.hpp"

#include <stdexcept>

namespace merm::gen {

VarTable::VarTable(AddressLayout layout)
    : layout_(layout),
      next_global_(layout.data_base),
      next_shared_(layout.shared_base),
      stack_top_(layout.stack_base) {
  // The outermost "frame" holds main()'s locals.
  frames_.push_back(Frame{0, stack_top_, 0});
}

VarId VarTable::declare_global(std::string name, trace::DataType type,
                               std::uint64_t elements) {
  if (elements == 0) throw std::invalid_argument("zero-element variable");
  VarDesc d;
  d.name = std::move(name);
  d.storage = StorageClass::kGlobal;
  d.type = type;
  d.elements = elements;
  // Align to the element size.
  const std::uint64_t size = trace::size_of(type);
  next_global_ = (next_global_ + size - 1) / size * size;
  d.address = next_global_;
  next_global_ += size * elements;
  vars_.push_back(std::move(d));
  return static_cast<VarId>(vars_.size() - 1);
}

VarId VarTable::declare_shared(std::string name, trace::DataType type,
                               std::uint64_t elements, bool page_align,
                               std::uint64_t page_bytes) {
  if (elements == 0) throw std::invalid_argument("zero-element variable");
  VarDesc d;
  d.name = std::move(name);
  d.storage = StorageClass::kShared;
  d.type = type;
  d.elements = elements;
  const std::uint64_t size = trace::size_of(type);
  if (page_align) {
    next_shared_ = (next_shared_ + page_bytes - 1) / page_bytes * page_bytes;
  } else {
    next_shared_ = (next_shared_ + size - 1) / size * size;
  }
  d.address = next_shared_;
  next_shared_ += size * elements;
  vars_.push_back(std::move(d));
  return static_cast<VarId>(vars_.size() - 1);
}

VarId VarTable::declare_local(std::string name, trace::DataType type,
                              std::uint64_t elements) {
  if (elements == 0) throw std::invalid_argument("zero-element variable");
  VarDesc d;
  d.name = std::move(name);
  d.storage = StorageClass::kLocal;
  d.type = type;
  d.elements = elements;
  const std::uint64_t size = trace::size_of(type);
  stack_top_ -= size * elements;
  stack_top_ = stack_top_ / size * size;  // align downward
  d.address = stack_top_;
  vars_.push_back(std::move(d));
  return static_cast<VarId>(vars_.size() - 1);
}

VarId VarTable::declare_argument(std::string name, trace::DataType type) {
  VarDesc d;
  d.name = std::move(name);
  d.storage = StorageClass::kArgument;
  d.type = type;
  Frame& f = frames_.back();
  if (f.args_declared < kRegisterArgs) {
    d.in_register = true;
  } else {
    const std::uint64_t size = trace::size_of(type);
    stack_top_ -= size;
    stack_top_ = stack_top_ / size * size;
    d.address = stack_top_;
  }
  ++f.args_declared;
  vars_.push_back(std::move(d));
  return static_cast<VarId>(vars_.size() - 1);
}

void VarTable::promote_to_register(VarId v) {
  VarDesc& d = vars_[v];
  if (d.elements != 1) {
    throw std::invalid_argument("cannot register-allocate array '" + d.name +
                                "'");
  }
  d.in_register = true;
}

void VarTable::push_frame() {
  frames_.push_back(Frame{vars_.size(), stack_top_, 0});
}

void VarTable::pop_frame() {
  if (frames_.size() == 1) {
    throw std::logic_error("pop_frame on outermost frame");
  }
  const Frame f = frames_.back();
  frames_.pop_back();
  vars_.resize(f.first_var);
  stack_top_ = f.stack_top;
}

}  // namespace merm::gen
