// Textual stochastic application descriptions.
//
// Fig. 1 treats application descriptions as artifacts independent of the
// architecture: "they only have to be made once, after which they can be
// used to evaluate a wide range of architectures".  Machine configs are text
// (machine/config.hpp); this gives stochastic descriptions the same
// treatment:
//
//   instructions_per_round = 20000
//   rounds = 8
//   seed = 42
//   task_level = false
//   [mix]
//   load = 0.25
//   store = 0.10
//   fp_fraction = 0.3
//   branch_fraction = 0.1
//   [memory]
//   data_working_set = 65536
//   spatial_locality = 0.7
//   code_working_set = 4096
//   [comm]
//   pattern = ring            ; none|ring|shift|all_to_all|gather|random_perm
//   message_bytes = 4096
//   synchronous = false
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "gen/stochastic.hpp"

namespace merm::gen {

/// Parses a description (starting from defaults, or from `base`).  Throws
/// std::runtime_error with a line number on malformed input.
StochasticDescription parse_workload(std::istream& is);
StochasticDescription parse_workload(std::istream& is,
                                     const StochasticDescription& base);
StochasticDescription parse_workload_string(const std::string& text);

/// As parse_workload, reading from a file.  Errors are reported
/// compiler-style as "path:line: message"; a missing or unreadable file
/// throws with the path in the message.
StochasticDescription parse_workload_file(const std::string& path);
StochasticDescription parse_workload_file(const std::string& path,
                                          const StochasticDescription& base);

/// Writes a complete description that parse_workload round-trips.
void write_workload(std::ostream& os, const StochasticDescription& desc);
std::string write_workload_string(const StochasticDescription& desc);

const char* to_string(CommPattern p);

}  // namespace merm::gen
