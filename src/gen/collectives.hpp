// Collective-communication annotations built on the Table-1 message-passing
// operations: barrier, broadcast and reduce.  SPMD kernels (notably the
// virtual-shared-memory programs, which have no other explicit messages)
// use these for phase synchronization.
//
// All collectives are deadlock-free by construction (asend + recv) and
// consume a caller-provided tag base; a collective uses at most
// kTagsPerCollective consecutive tags.
#pragma once

#include <cstdint>

#include "gen/annotate.hpp"

namespace merm::gen {

inline constexpr std::int32_t kTagsPerCollective = 64;

/// Dissemination barrier: ceil(log2 n) rounds of shifted exchanges.  Any
/// node count.
void barrier(Annotator& a, trace::NodeId self, std::uint32_t nodes,
             std::int32_t tag_base);

/// Binomial-tree broadcast of `bytes` from `root`.
void broadcast(Annotator& a, trace::NodeId self, std::uint32_t nodes,
               trace::NodeId root, std::uint64_t bytes, std::int32_t tag_base);

/// Binomial-tree reduction of `bytes` to `root` (each non-leaf combines with
/// `combine_op` on `combine_type` before forwarding).
void reduce(Annotator& a, trace::NodeId self, std::uint32_t nodes,
            trace::NodeId root, std::uint64_t bytes, std::int32_t tag_base,
            trace::OpCode combine_op = trace::OpCode::kAdd,
            trace::DataType combine_type = trace::DataType::kDouble);

}  // namespace merm::gen
