#include "gen/apps.hpp"

#include <stdexcept>

#include "gen/threaded_source.hpp"

namespace merm::gen {

using trace::DataType;
using trace::NodeId;
using trace::OpCode;

namespace {
constexpr DataType kF64 = DataType::kDouble;
constexpr DataType kI32 = DataType::kInt32;

/// Emits the bookkeeping of a counted loop iteration: increment + compare +
/// taken back-edge (or the fall-through exit on the last iteration).
class CountedLoop {
 public:
  CountedLoop(Annotator& a, std::uint64_t trips)
      : a_(a), trips_(trips), head_(a.here()) {}

  /// Call at the end of each body; returns true while the loop continues.
  bool next() {
    ++done_;
    a_.arith(OpCode::kAdd, kI32);  // induction variable update (register)
    if (done_ < trips_) {
      a_.branch(head_);
      return true;
    }
    a_.branch_not_taken();
    return false;
  }

 private:
  Annotator& a_;
  std::uint64_t trips_;
  std::uint64_t done_ = 0;
  std::uint64_t head_;
};
}  // namespace

void matmul_spmd(Annotator& a, NodeId self, std::uint32_t nodes,
                 const MatmulParams& p) {
  const std::uint32_t n = p.n;
  if (n % nodes != 0) {
    throw std::invalid_argument("matmul: n must divide by node count");
  }
  const std::uint32_t rows = n / nodes;  // my rows of A and C; rows per B block

  VarTable& vars = a.vars();
  const VarId A = vars.declare_global("A", kF64, std::uint64_t(rows) * n);
  const VarId B = vars.declare_global("Bblk", kF64, std::uint64_t(rows) * n);
  const VarId C = vars.declare_global("C", kF64, std::uint64_t(rows) * n);
  const std::uint64_t block_bytes = std::uint64_t(rows) * n * 8;

  for (std::uint32_t step = 0; step < nodes; ++step) {
    const std::uint32_t owner = (static_cast<std::uint32_t>(self) + step) %
                                nodes;  // whose B block we hold
    // C[i][j] += A[i][owner_rows + k] * Bblk[k][j]
    for (std::uint32_t i = 0; i < rows; ++i) {
      for (std::uint32_t j = 0; j < n; ++j) {
        a.load(C, std::uint64_t(i) * n + j);  // accumulator
        CountedLoop kloop(a, rows);
        std::uint32_t k = 0;
        do {
          a.fused_multiply_add(A, B, kF64,
                               std::uint64_t(i) * n + owner * rows + k,
                               std::uint64_t(k) * n + j);
          ++k;
        } while (kloop.next());
        a.store(C, std::uint64_t(i) * n + j);
      }
    }
    if (step + 1 < nodes && nodes > 1) {
      // Rotate B blocks backward around the ring.
      const auto prev = static_cast<NodeId>(
          (static_cast<std::uint32_t>(self) + nodes - 1) % nodes);
      const auto next = static_cast<NodeId>(
          (static_cast<std::uint32_t>(self) + 1) % nodes);
      a.asend(block_bytes, prev, static_cast<std::int32_t>(step));
      a.recv(next, static_cast<std::int32_t>(step));
    }
  }
}

void stencil_spmd(Annotator& a, NodeId self, std::uint32_t nodes,
                  const StencilParams& p) {
  const std::uint32_t n = p.n;
  if (n % nodes != 0) {
    throw std::invalid_argument("stencil: n must divide by node count");
  }
  const std::uint32_t strip = n / nodes;     // interior rows owned
  const std::uint32_t rows = strip + 2;      // plus halo rows
  const std::uint64_t row_bytes = std::uint64_t(n) * 8;

  VarTable& vars = a.vars();
  VarId U = vars.declare_global("U", kF64, std::uint64_t(rows) * n);
  VarId V = vars.declare_global("V", kF64, std::uint64_t(rows) * n);
  const VarId quarter = vars.declare_global("c", kF64, 1);

  const bool has_up = self > 0;
  const bool has_down = static_cast<std::uint32_t>(self) + 1 < nodes;

  for (std::uint32_t iter = 0; iter < p.iterations; ++iter) {
    const auto tag = static_cast<std::int32_t>(iter);
    // Halo exchange (asend first: deadlock-free).
    if (has_up) a.asend(row_bytes, self - 1, tag);
    if (has_down) a.asend(row_bytes, self + 1, tag);
    if (has_up) a.recv(self - 1, tag);
    if (has_down) a.recv(self + 1, tag);

    // V[i][j] = c * (U[i-1][j] + U[i+1][j] + U[i][j-1] + U[i][j+1])
    const std::uint32_t lo = has_up ? 1 : 2;          // skip global boundary
    const std::uint32_t hi = has_down ? rows - 1 : rows - 2;
    for (std::uint32_t i = lo; i < hi; ++i) {
      CountedLoop jloop(a, n - 2);
      std::uint32_t j = 1;
      do {
        const std::uint64_t c = std::uint64_t(i) * n + j;
        a.load(U, c - n);
        a.load(U, c + n);
        a.arith(OpCode::kAdd, kF64);
        a.load(U, c - 1);
        a.arith(OpCode::kAdd, kF64);
        a.load(U, c + 1);
        a.arith(OpCode::kAdd, kF64);
        a.load(quarter);
        a.arith(OpCode::kMul, kF64);
        a.store(V, c);
        ++j;
      } while (jloop.next());
    }
    std::swap(U, V);
  }
}

void allreduce_spmd(Annotator& a, NodeId self, std::uint32_t nodes,
                    const AllReduceParams& p) {
  if ((nodes & (nodes - 1)) != 0) {
    throw std::invalid_argument("allreduce: nodes must be a power of two");
  }
  VarTable& vars = a.vars();
  const VarId X = vars.declare_global("X", kF64, p.elements);
  const VarId sum = vars.declare_global("sum", kF64, 1);
  const VarId incoming = vars.declare_global("incoming", kF64, 1);

  for (std::uint32_t rep = 0; rep < p.repeats; ++rep) {
    // Local reduction into a register accumulator.
    a.load_const(kF64);
    CountedLoop loop(a, p.elements);
    std::uint64_t e = 0;
    do {
      a.load(X, e);
      a.arith(OpCode::kAdd, kF64);
      ++e;
    } while (loop.next());
    a.store(sum);

    // Recursive doubling.
    for (std::uint32_t bit = 1; bit < nodes; bit <<= 1) {
      const auto partner = static_cast<NodeId>(
          static_cast<std::uint32_t>(self) ^ bit);
      const auto tag = static_cast<std::int32_t>(rep * 64 + bit);
      a.asend(8, partner, tag);
      a.recv(partner, tag);
      a.binop(OpCode::kAdd, sum, sum, incoming);
    }
  }
}

void pingpong(Annotator& a, NodeId self, std::uint32_t nodes,
              const PingPongParams& p) {
  if (nodes < 2 || self > 1) return;  // spectators trace nothing
  for (std::uint32_t r = 0; r < p.rounds; ++r) {
    const auto tag = static_cast<std::int32_t>(r);
    if (self == 0) {
      a.send(p.bytes, 1, tag);
      a.recv(1, tag);
    } else {
      a.recv(0, tag);
      a.send(p.bytes, 0, tag);
    }
  }
}

void master_worker(Annotator& a, NodeId self, std::uint32_t nodes,
                   const MasterWorkerParams& p) {
  if (nodes < 2) {
    throw std::invalid_argument("master_worker needs >= 2 nodes");
  }
  constexpr std::int32_t kTaskTag = 1;
  constexpr std::int32_t kResultTag = 2;

  if (self == 0) {
    for (std::uint32_t t = 0; t < p.tasks; ++t) {
      const auto worker = static_cast<NodeId>(1 + t % (nodes - 1));
      a.asend(p.task_bytes, worker, kTaskTag);
    }
    for (std::uint32_t t = 0; t < p.tasks; ++t) {
      a.recv(trace::kNoNode, kResultTag);  // any-source collection
    }
    return;
  }

  VarTable& vars = a.vars();
  const VarId buf = vars.declare_global("task", kF64, p.task_flops + 1);
  std::uint32_t my_tasks = p.tasks / (nodes - 1);
  if (static_cast<std::uint32_t>(self) - 1 < p.tasks % (nodes - 1)) {
    ++my_tasks;
  }
  for (std::uint32_t t = 0; t < my_tasks; ++t) {
    a.recv(0, kTaskTag);
    a.load_const(kF64);
    CountedLoop loop(a, p.task_flops);
    std::uint64_t k = 0;
    do {
      a.fused_multiply_add(buf, buf, kF64, k, k + 1);
      ++k;
    } while (loop.next());
    a.asend(p.result_bytes, 0, kResultTag);
  }
}

void transpose_spmd(Annotator& a, NodeId self, std::uint32_t nodes,
                    const TransposeParams& p) {
  const std::uint32_t n = p.n;
  if (n % nodes != 0) {
    throw std::invalid_argument("transpose: n must divide by node count");
  }
  const std::uint32_t rows = n / nodes;
  const std::uint64_t block_bytes =
      std::uint64_t(rows) * rows * 8;  // rows x rows tile per peer

  VarTable& vars = a.vars();
  const VarId A = vars.declare_global("A", kF64, std::uint64_t(rows) * n);
  const VarId B = vars.declare_global("B", kF64, std::uint64_t(rows) * n);

  // Pack + scatter: one tile to every peer (self-tile handled locally).
  for (std::uint32_t peer = 0; peer < nodes; ++peer) {
    if (peer == static_cast<std::uint32_t>(self)) continue;
    // Pack the tile destined for `peer` (strided reads, sequential writes).
    CountedLoop pack(a, rows);
    std::uint32_t r = 0;
    do {
      a.load(A, std::uint64_t(r) * n + peer * rows);
      a.store(B, std::uint64_t(peer) * rows + r);
      ++r;
    } while (pack.next());
    a.asend(block_bytes, static_cast<NodeId>(peer), 0);
  }
  for (std::uint32_t peer = 0; peer < nodes; ++peer) {
    if (peer == static_cast<std::uint32_t>(self)) continue;
    a.recv(static_cast<NodeId>(peer), 0);
    // Unpack the received tile into transposed position.
    CountedLoop unpack(a, rows);
    std::uint32_t r = 0;
    do {
      a.load(B, std::uint64_t(peer) * rows + r);
      a.store(A, std::uint64_t(r) * n + peer * rows);
      ++r;
    } while (unpack.next());
  }
  // Local diagonal tile transpose.
  for (std::uint32_t i = 0; i < rows; ++i) {
    CountedLoop diag(a, rows);
    std::uint32_t j = 0;
    do {
      a.load(A, std::uint64_t(i) * n + self * rows + j);
      a.store(A, std::uint64_t(j) * n + self * rows + i);
      ++j;
    } while (diag.next());
  }
}

void compute_kernel(Annotator& a, NodeId /*self*/, std::uint32_t /*nodes*/,
                    const ComputeKernelParams& p) {
  VarTable& vars = a.vars();
  const VarId X = vars.declare_global("X", kF64, p.array_elements);
  const VarId Y = vars.declare_global("Y", kF64, p.array_elements);

  for (std::uint32_t pass = 0; pass < p.passes; ++pass) {
    CountedLoop loop(a, p.array_elements / p.stride);
    std::uint64_t i = 0;
    do {
      a.load(X, i);
      a.load(Y, i);
      a.arith(OpCode::kMul, kF64);
      a.arith(OpCode::kAdd, kF64);
      a.store(Y, i);
      i += p.stride;
    } while (loop.next());
  }
}

trace::Workload make_offline_workload(std::uint32_t nodes, const AppFn& app) {
  trace::Workload w;
  for (std::uint32_t i = 0; i < nodes; ++i) {
    VarTable vars;
    VectorSink sink;
    Annotator a(vars, sink);
    app(a, static_cast<NodeId>(i), nodes);
    w.sources.push_back(
        std::make_unique<trace::VectorSource>(sink.take()));
  }
  return w;
}

std::vector<std::vector<trace::Operation>> record_app_traces(
    std::uint32_t nodes, const AppFn& app) {
  std::vector<std::vector<trace::Operation>> out;
  for (std::uint32_t i = 0; i < nodes; ++i) {
    VarTable vars;
    VectorSink sink;
    Annotator a(vars, sink);
    app(a, static_cast<NodeId>(i), nodes);
    out.push_back(sink.take());
  }
  return out;
}

trace::Workload make_threaded_workload(std::uint32_t nodes, const AppFn& app) {
  trace::Workload w;
  for (std::uint32_t i = 0; i < nodes; ++i) {
    w.sources.push_back(std::make_unique<ThreadedSource>(
        [app, i, nodes](AppContext& ctx) {
          VarTable vars;
          Annotator a(vars, ctx);
          app(a, static_cast<NodeId>(i), nodes);
        }));
  }
  return w;
}

}  // namespace merm::gen
