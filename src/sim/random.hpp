// Deterministic pseudo-random number generation for the workbench.
//
// All stochastic behaviour (the stochastic trace generator, synthetic traffic
// patterns, randomized tests) flows from Rng so that a simulation with a
// given seed is bit-identical across runs and platforms.  We implement
// xoshiro256** rather than rely on std::mt19937 + std:: distributions because
// the standard distributions are not required to produce identical sequences
// across library implementations.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

namespace merm::sim {

/// xoshiro256** seeded through splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the four state words.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound).  bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's nearly-divisionless method with rejection for exactness.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;  // hi >= lo required
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform real in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) { return lo + uniform() * (hi - lo); }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Normal via Box-Muller (deterministic, no cached spare).
  double normal(double mean, double stddev) {
    double u1;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(6.283185307179586 * u2);
  }

  /// Geometric: number of failures before first success, p in (0, 1].
  std::uint64_t geometric(double p) {
    if (p >= 1.0) return 0;
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return static_cast<std::uint64_t>(std::log(u) / std::log(1.0 - p));
  }

 private:
  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

/// Samples indices in proportion to a fixed weight vector.
///
/// Used by the stochastic trace generator to draw operation kinds from an
/// application's operation-mix description.
class DiscreteDistribution {
 public:
  DiscreteDistribution() = default;
  explicit DiscreteDistribution(std::span<const double> weights);

  /// Number of categories.
  std::size_t size() const { return cumulative_.size(); }
  bool empty() const { return cumulative_.empty(); }

  /// Draws a category index in [0, size()).
  std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> cumulative_;  // normalized, increasing, back() == 1.0
};

/// Zipf-like distribution over [0, n): rank r has weight 1/(r+1)^s.
///
/// Models skewed destination popularity in synthetic traffic.
class ZipfDistribution {
 public:
  ZipfDistribution() = default;
  ZipfDistribution(std::size_t n, double s);

  std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> cumulative_;
};

}  // namespace merm::sim
