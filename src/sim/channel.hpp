// Pearl-style message channels between simulation processes.
//
// A Channel with capacity 0 is a rendezvous: send() completes only when a
// receiver takes the value (synchronous message passing).  A positive
// capacity gives a bounded mailbox (asynchronous message passing); senders
// block only when the mailbox is full.  kUnbounded never blocks senders.
//
// All hand-offs are scheduled through the simulator's event queue at the
// current simulated time, so channel communication preserves the kernel's
// deterministic (time, priority, FIFO) ordering.
#pragma once

#include <cstddef>
#include <deque>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

#include "sim/coro.hpp"

namespace merm::sim {

inline constexpr std::size_t kUnbounded =
    std::numeric_limits<std::size_t>::max();

template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity = 0) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Number of buffered values (excluding values held by blocked senders).
  std::size_t size() const { return buffer_.size(); }
  bool empty() const { return buffer_.empty(); }
  std::size_t capacity() const { return capacity_; }

  /// Number of processes blocked in send()/receive().
  std::size_t blocked_senders() const { return senders_.size(); }
  std::size_t blocked_receivers() const { return receivers_.size(); }

  struct SendAwaiter {
    Channel& chan;
    T value;
    bool await_ready() {
      if (!chan.receivers_.empty()) {
        // Direct hand-off to the longest-waiting receiver.
        RecvAwaiter* r = chan.receivers_.front();
        chan.receivers_.pop_front();
        r->slot.emplace(std::move(value));
        detail::schedule_resume(*r->sim, r->handle, 0, 0);
        return true;
      }
      if (chan.buffer_.size() < chan.capacity_) {
        chan.buffer_.push_back(std::move(value));
        return true;
      }
      return false;
    }
    template <typename Promise>
    void await_suspend(std::coroutine_handle<Promise> h) {
      static_assert(std::is_base_of_v<PromiseBase, Promise>);
      sim = h.promise().sim;
      handle = h;
      chan.senders_.push_back(this);
    }
    void await_resume() const noexcept {}

    Simulator* sim = nullptr;
    std::coroutine_handle<> handle = {};
  };

  struct RecvAwaiter {
    Channel& chan;
    std::optional<T> slot = {};

    bool await_ready() {
      if (!chan.buffer_.empty()) {
        slot.emplace(std::move(chan.buffer_.front()));
        chan.buffer_.pop_front();
        chan.admit_blocked_sender();
        return true;
      }
      if (!chan.senders_.empty()) {
        // Rendezvous (capacity 0): take directly from a blocked sender.
        SendAwaiter* s = chan.senders_.front();
        chan.senders_.pop_front();
        slot.emplace(std::move(s->value));
        detail::schedule_resume(*s->sim, s->handle, 0, 0);
        return true;
      }
      return false;
    }
    template <typename Promise>
    void await_suspend(std::coroutine_handle<Promise> h) {
      static_assert(std::is_base_of_v<PromiseBase, Promise>);
      sim = h.promise().sim;
      handle = h;
      chan.receivers_.push_back(this);
    }
    T await_resume() { return std::move(*slot); }

    Simulator* sim = nullptr;
    std::coroutine_handle<> handle = {};
  };

  /// Sends a value; suspends until the channel can accept it.
  SendAwaiter send(T value) { return SendAwaiter{*this, std::move(value)}; }

  /// Receives a value; suspends until one is available.
  RecvAwaiter receive() { return RecvAwaiter{*this}; }

  /// Non-blocking send: fails if it would suspend.  Only valid for buffered
  /// channels or when a receiver is already waiting.
  bool try_send(T value) {
    if (!receivers_.empty()) {
      RecvAwaiter* r = receivers_.front();
      receivers_.pop_front();
      r->slot.emplace(std::move(value));
      detail::schedule_resume(*r->sim, r->handle, 0, 0);
      return true;
    }
    if (buffer_.size() < capacity_) {
      buffer_.push_back(std::move(value));
      return true;
    }
    return false;
  }

  /// Non-blocking receive.
  std::optional<T> try_receive() {
    if (!buffer_.empty()) {
      std::optional<T> v{std::move(buffer_.front())};
      buffer_.pop_front();
      admit_blocked_sender();
      return v;
    }
    if (!senders_.empty()) {
      SendAwaiter* s = senders_.front();
      senders_.pop_front();
      std::optional<T> v{std::move(s->value)};
      detail::schedule_resume(*s->sim, s->handle, 0, 0);
      return v;
    }
    return std::nullopt;
  }

 private:
  // After a buffered slot frees up, move the longest-blocked sender's value
  // into the buffer and release the sender.
  void admit_blocked_sender() {
    if (senders_.empty() || buffer_.size() >= capacity_) return;
    SendAwaiter* s = senders_.front();
    senders_.pop_front();
    buffer_.push_back(std::move(s->value));
    detail::schedule_resume(*s->sim, s->handle, 0, 0);
  }

  std::size_t capacity_;
  std::deque<T> buffer_;
  std::deque<SendAwaiter*> senders_;
  std::deque<RecvAwaiter*> receivers_;
};

}  // namespace merm::sim
