// Local time cursor: the per-process tick accumulator behind the
// workbench's two-tier time accounting (DESIGN.md, "Two-tier time
// accounting").
//
// A process whose progress cannot be observed by any other process between
// two synchronization points — e.g. the compute process of a single-CPU
// node walking its private caches and uncontended bus — advances this local
// cursor instead of suspending on the global event queue.  flush() converts
// the accumulated ticks into a single real Delay at the next
// synchronization point (communication, DSM, trace interleaving boundary),
// which is exactly where the paper's physical-time interleaving requires a
// globally ordered timestamp.  The effective current time of a deferring
// process is sim.now() + pending().
#pragma once

#include "sim/coro.hpp"
#include "sim/types.hpp"

namespace merm::sim {

class TimeCursor {
 public:
  bool enabled() const { return enabled_; }

  /// Toggled by the owner of the deferral scope (ComputeNode::run enables
  /// it for single-CPU nodes).  Must only be toggled with nothing pending.
  void set_enabled(bool on) { enabled_ = on; }

  /// Ticks accumulated since the last flush.
  Tick pending() const { return pending_; }

  /// Defers `t` ticks of local progress.
  void advance(Tick t) { pending_ += t; }

  /// Converts the accumulated time into one awaitable Delay.  An empty
  /// flush completes inline: the reference schedule had no suspension
  /// there either, so awaiting one would invent an event.
  Delay flush() {
    const Tick t = pending_;
    pending_ = 0;
    return Delay{t, 0, /*inline_zero=*/true};
  }

 private:
  Tick pending_ = 0;
  bool enabled_ = false;
};

}  // namespace merm::sim
