// FIFO-granted exclusive resource: the arbitration primitive shared by the
// bus model, network link virtual channels and the DSM's per-page
// transaction queues.
//
// acquire() returns immediately when free, otherwise suspends the caller
// until every earlier requester has released — strict FIFO grant order, the
// deterministic arbitration policy the models build on.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <type_traits>

#include "sim/coro.hpp"

namespace merm::sim {

class FifoResource {
 public:
  FifoResource() = default;
  FifoResource(const FifoResource&) = delete;
  FifoResource& operator=(const FifoResource&) = delete;
  FifoResource(FifoResource&&) = delete;

  bool busy() const { return busy_; }
  std::size_t waiters() const { return waiters_.size(); }

  /// Plain awaiter, no coroutine frame: a free resource is taken inside
  /// await_ready; a busy one parks the caller's handle in the FIFO, to be
  /// rescheduled by release() with ownership already transferred.
  struct AcquireAwaiter {
    FifoResource& res;

    bool await_ready() const noexcept {
      if (res.busy_) return false;
      res.busy_ = true;
      return true;
    }

    template <typename Promise>
    void await_suspend(std::coroutine_handle<Promise> h) const {
      static_assert(std::is_base_of_v<PromiseBase, Promise>,
                    "FifoResource may only be awaited in sim coroutines");
      res.waiters_.push_back({h.promise().sim, h});
    }

    void await_resume() const noexcept {}
  };

  /// Suspends until this caller holds the resource.
  AcquireAwaiter acquire() { return AcquireAwaiter{*this}; }

  /// Hands the resource to the longest-waiting requester, or frees it.
  void release() {
    if (!waiters_.empty()) {
      const Waiter next = waiters_.front();
      waiters_.pop_front();
      // busy_ stays true: ownership passes directly to the waiter, whose
      // resumption lands on the queue exactly where the old Event-based
      // hand-off scheduled it.
      detail::schedule_resume(*next.sim, next.handle, 0, 0);
    } else {
      busy_ = false;
    }
  }

 private:
  struct Waiter {
    Simulator* sim;
    std::coroutine_handle<> handle;
  };

  bool busy_ = false;
  std::deque<Waiter> waiters_;
};

}  // namespace merm::sim
