// FIFO-granted exclusive resource: the arbitration primitive shared by the
// bus model, network link virtual channels and the DSM's per-page
// transaction queues.
//
// acquire() returns immediately when free, otherwise suspends the caller
// until every earlier requester has released — strict FIFO grant order, the
// deterministic arbitration policy the models build on.
#pragma once

#include <cstddef>
#include <deque>

#include "sim/coro.hpp"

namespace merm::sim {

class FifoResource {
 public:
  FifoResource() = default;
  FifoResource(const FifoResource&) = delete;
  FifoResource& operator=(const FifoResource&) = delete;
  FifoResource(FifoResource&&) = delete;

  bool busy() const { return busy_; }
  std::size_t waiters() const { return waiters_.size(); }

  /// Suspends until this caller holds the resource.
  Task<> acquire() {
    if (!busy_) {
      busy_ = true;
      co_return;
    }
    Event granted;
    waiters_.push_back(&granted);
    co_await granted;
    // Ownership was handed over by release(); busy_ stayed true.
  }

  /// Hands the resource to the longest-waiting requester, or frees it.
  void release() {
    if (!waiters_.empty()) {
      Event* next = waiters_.front();
      waiters_.pop_front();
      next->trigger();
    } else {
      busy_ = false;
    }
  }

 private:
  bool busy_ = false;
  std::deque<Event*> waiters_;
};

}  // namespace merm::sim
