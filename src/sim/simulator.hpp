// The discrete-event simulator: a deterministic event queue plus ownership
// of all spawned processes.
//
// Events are totally ordered by (time, priority, insertion sequence), so two
// runs with the same inputs and seeds produce bit-identical behaviour — the
// property the physical-time-interleaved trace generation of the workbench
// relies on (see tests/sim/determinism_test.cpp).
//
// Queue layout: events are 32-byte PODs in a 4-ary implicit heap (shallower
// sifts and better cache-line locality than the binary std::priority_queue
// of fat elements it replaces).  Callback payloads do not live in the
// event: an event either resumes a coroutine handle or names a pooled
// std::function slot, so the common (coroutine) case never touches a
// std::function.  A same-tick FIFO lane short-circuits the heap for
// priority-0 events scheduled at now() — the dominant case of handing
// control between components within one instant.  Neither changes the event
// order: lane entries all carry (now, 0, ascending seq), and every pop
// compares the lane head against the heap top under the same comparator, so
// the dispatch sequence is identical to a single global heap.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/coro.hpp"
#include "sim/types.hpp"

namespace merm::sim {

/// True when the process runs with the reference (pre-fast-path) scheduler
/// semantics: no zero-delay inlining, no same-tick lane, no local time
/// cursors.  Controlled by the MERM_REFERENCE_SCHED environment variable or
/// the programmatic override below; sampled at Simulator construction.
bool reference_scheduler_enabled();

/// Programmatic override for in-process A/B comparisons (see
/// tests/core/timing_invariance_test.cpp): 1 = reference, 0 = fast,
/// -1 = defer to the environment.
void set_reference_scheduler_override(int mode);

class Simulator {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Current simulated time.
  Tick now() const { return now_; }

  /// False when this simulator was constructed in reference-scheduler mode.
  /// Model code keys its fast paths (zero-delay inlining, time cursors) off
  /// this so one process can run both schedules side by side.
  bool fast_paths() const { return fast_paths_; }

  /// Takes ownership of a process coroutine and schedules its first step at
  /// the current time.  The returned handle stays valid until
  /// collect_finished() or simulator destruction.
  ProcessHandle spawn(Process p, std::string name = {});

  /// Schedules a plain callback.
  void schedule_at(Tick when, std::function<void()> fn, int priority = 0);
  void schedule_in(Tick delay, std::function<void()> fn, int priority = 0);

  /// Schedules the resumption of a suspended coroutine.
  void schedule_resume(std::coroutine_handle<> h, Tick delay, int priority);

  /// Result of a run() call.
  enum class RunResult {
    kIdle,        ///< event queue drained
    kTimeLimit,   ///< reached the `until` bound
    kEventLimit,  ///< processed `max_events`
    kStopped,     ///< stop() was called
  };

  /// Runs until the queue drains, time passes `until`, `max_events` events
  /// have been processed, or stop() is called.  Rethrows the first process
  /// exception.
  RunResult run(Tick until = kTickMax,
                std::uint64_t max_events = std::uint64_t(-1));

  /// Requests run() to return after the current event.
  void stop() { stop_requested_ = true; }

  /// Timestamp of the earliest queued event, or kTickMax when the queue is
  /// empty.  The conservative-PDES coordinator polls this between windows to
  /// compute the global lower bound on virtual time.
  Tick next_event_time() const {
    Tick t = kTickMax;
    if (lane_head_ < lane_.size()) t = lane_[lane_head_].time;
    if (!heap_.empty() && heap_.front().time < t) t = heap_.front().time;
    return t;
  }

  /// Time of the last event actually dispatched.  Unlike now(), this is not
  /// advanced by a run(until) bound that processed nothing, so it is the
  /// correct per-partition contribution to a parallel run's end time.
  Tick last_event_time() const { return last_event_time_; }

  /// Schedules the resumption of a coroutine at an *absolute* time, used by
  /// the PDES engine to inject cross-partition arrivals at window barriers.
  /// `when` must be >= now(); events injected at equal (time, priority) keys
  /// dispatch in injection order (they draw ascending sequence numbers).
  void inject_resume(Tick when, std::coroutine_handle<> h, int priority = 0);

  /// Partition index when this simulator is one of a PDES engine's local
  /// clocks; 0 for a standalone (serial) simulator.
  std::uint32_t partition() const { return partition_; }
  void set_partition(std::uint32_t p) { partition_ = p; }

  /// Total events processed since construction.
  std::uint64_t events_processed() const { return events_processed_; }

  /// Events currently queued (heap + same-tick lane) — the queue occupancy
  /// the host profiler samples.
  std::size_t queue_depth() const {
    return heap_.size() + (lane_.size() - lane_head_);
  }
  /// High-water mark of queue_depth() over the simulator's lifetime.
  std::size_t peak_queue_depth() const { return peak_queue_depth_; }

  /// Number of spawned processes that have not yet finished.
  std::size_t live_processes() const;

  /// Number of process frames currently owned (live or awaiting
  /// collect_finished()) — the quantity the footprint regression watches.
  std::size_t owned_processes() const { return processes_.size(); }

  /// Names of live processes (diagnosing deadlocks in tests).
  std::vector<std::string> live_process_names() const;

  /// Model components register reporters that append one line per blocked
  /// operation (node, operation, peer/tag) to the hang diagnostic.
  using HangReporter = std::function<void(std::vector<std::string>&)>;
  void add_hang_reporter(HangReporter reporter) {
    hang_reporters_.push_back(std::move(reporter));
  }

  /// Describes why the simulation cannot make progress: the event queue has
  /// drained while coroutines are still suspended (a deadlocked rendezvous,
  /// a recv nobody sends to, a partitioned network...).  Empty string when
  /// no process is blocked.  Meaningful after run() returned kIdle.
  std::string hang_diagnostic() const;

  /// Just the registered reporters' lines (no headline, no process-name
  /// fallback) — the PDES engine aggregates these across partitions.
  std::vector<std::string> hang_report_lines() const;

  /// Releases coroutine frames of finished processes.  Invalidates
  /// ProcessHandles of the collected processes.
  void collect_finished();

  /// Sugar: co_await sim.delay(t).  Under the fast-path scheduler a
  /// zero-tick default-priority delay completes inline without suspending.
  Delay delay(Tick t, int priority = 0) const {
    return Delay{t, priority, fast_paths_};
  }

  /// Internal: records a process failure; run() rethrows it.
  void set_error(std::exception_ptr e) {
    if (!error_) error_ = e;
    stop_requested_ = true;
  }

 private:
  struct OwnedProcess {
    std::coroutine_handle<Process::promise_type> handle;
    std::string name;
  };

  /// One scheduled event.  POD: the callback body (when any) lives in the
  /// slot pool, keyed by `slot`.
  struct Ev {
    Tick time;
    std::uint64_t seq;
    std::coroutine_handle<> coro;  // resumed if non-null
    std::int32_t priority;
    std::uint32_t slot;            // slots_ index when coro is null
  };

  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  /// True when `a` dispatches after `b` under the global total order.
  static bool later(const Ev& a, const Ev& b) {
    if (a.time != b.time) return a.time > b.time;
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.seq > b.seq;
  }

  void push(Tick when, int priority, std::coroutine_handle<> h,
            std::uint32_t slot);
  std::uint32_t make_slot(std::function<void()> fn);
  void heap_push(const Ev& ev);
  Ev heap_pop();

  Tick now_ = 0;
  Tick last_event_time_ = 0;
  std::uint32_t partition_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  bool stop_requested_ = false;
  bool fast_paths_ = true;
  std::exception_ptr error_;
  std::vector<Ev> heap_;   // 4-ary implicit min-heap under later()
  std::vector<Ev> lane_;   // FIFO of (now, priority 0) events
  std::size_t lane_head_ = 0;
  std::size_t peak_queue_depth_ = 0;
  std::vector<std::function<void()>> slots_;  // pooled callback bodies
  std::vector<std::uint32_t> free_slots_;
  std::vector<OwnedProcess> processes_;
  std::vector<HangReporter> hang_reporters_;
};

}  // namespace merm::sim
