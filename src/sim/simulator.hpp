// The discrete-event simulator: a deterministic event queue plus ownership
// of all spawned processes.
//
// Events are totally ordered by (time, priority, insertion sequence), so two
// runs with the same inputs and seeds produce bit-identical behaviour — the
// property the physical-time-interleaved trace generation of the workbench
// relies on (see tests/sim/determinism_test.cpp).
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/coro.hpp"
#include "sim/types.hpp"

namespace merm::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Current simulated time.
  Tick now() const { return now_; }

  /// Takes ownership of a process coroutine and schedules its first step at
  /// the current time.  The returned handle stays valid until
  /// collect_finished() or simulator destruction.
  ProcessHandle spawn(Process p, std::string name = {});

  /// Schedules a plain callback.
  void schedule_at(Tick when, std::function<void()> fn, int priority = 0);
  void schedule_in(Tick delay, std::function<void()> fn, int priority = 0);

  /// Schedules the resumption of a suspended coroutine.
  void schedule_resume(std::coroutine_handle<> h, Tick delay, int priority);

  /// Result of a run() call.
  enum class RunResult {
    kIdle,        ///< event queue drained
    kTimeLimit,   ///< reached the `until` bound
    kEventLimit,  ///< processed `max_events`
    kStopped,     ///< stop() was called
  };

  /// Runs until the queue drains, time passes `until`, `max_events` events
  /// have been processed, or stop() is called.  Rethrows the first process
  /// exception.
  RunResult run(Tick until = kTickMax,
                std::uint64_t max_events = std::uint64_t(-1));

  /// Requests run() to return after the current event.
  void stop() { stop_requested_ = true; }

  /// Total events processed since construction.
  std::uint64_t events_processed() const { return events_processed_; }

  /// Number of spawned processes that have not yet finished.
  std::size_t live_processes() const;

  /// Names of live processes (diagnosing deadlocks in tests).
  std::vector<std::string> live_process_names() const;

  /// Model components register reporters that append one line per blocked
  /// operation (node, operation, peer/tag) to the hang diagnostic.
  using HangReporter = std::function<void(std::vector<std::string>&)>;
  void add_hang_reporter(HangReporter reporter) {
    hang_reporters_.push_back(std::move(reporter));
  }

  /// Describes why the simulation cannot make progress: the event queue has
  /// drained while coroutines are still suspended (a deadlocked rendezvous,
  /// a recv nobody sends to, a partitioned network...).  Empty string when
  /// no process is blocked.  Meaningful after run() returned kIdle.
  std::string hang_diagnostic() const;

  /// Releases coroutine frames of finished processes.  Invalidates
  /// ProcessHandles of the collected processes.
  void collect_finished();

  /// Sugar: co_await sim.delay(t).
  Delay delay(Tick t, int priority = 0) const { return Delay{t, priority}; }

  /// Internal: records a process failure; run() rethrows it.
  void set_error(std::exception_ptr e) {
    if (!error_) error_ = e;
    stop_requested_ = true;
  }

 private:
  struct OwnedProcess {
    std::coroutine_handle<Process::promise_type> handle;
    std::string name;
  };

  struct Ev {
    Tick time;
    std::int32_t priority;
    std::uint64_t seq;
    std::coroutine_handle<> coro;       // resumed if non-null
    std::function<void()> fn;           // otherwise invoked
  };

  struct EvLater {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  void push(Tick when, int priority, std::coroutine_handle<> h,
            std::function<void()> fn);

  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  bool stop_requested_ = false;
  std::exception_ptr error_;
  std::priority_queue<Ev, std::vector<Ev>, EvLater> queue_;
  std::vector<OwnedProcess> processes_;
  std::vector<HangReporter> hang_reporters_;
};

}  // namespace merm::sim
