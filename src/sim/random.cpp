#include "sim/random.hpp"

#include <algorithm>
#include <stdexcept>

namespace merm::sim {

DiscreteDistribution::DiscreteDistribution(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("negative weight");
    total += w;
  }
  if (weights.empty() || total <= 0.0) {
    throw std::invalid_argument("DiscreteDistribution needs positive weights");
  }
  cumulative_.reserve(weights.size());
  double acc = 0.0;
  for (double w : weights) {
    acc += w / total;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;
}

std::size_t DiscreteDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                               static_cast<std::ptrdiff_t>(cumulative_.size()) - 1));
}

ZipfDistribution::ZipfDistribution(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution needs n > 0");
  cumulative_.reserve(n);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
  }
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), s) / total;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                               static_cast<std::ptrdiff_t>(cumulative_.size()) - 1));
}

}  // namespace merm::sim
