// Conservative parallel discrete-event simulation (PDES) for a single run.
//
// The engine owns one Simulator ("partition") per model node and executes
// them under window-based bounded-lag synchronization — no null messages:
//
//   1. The coordinator computes T = min over partitions of next_event_time().
//   2. Every partition runs its local events up to T + L - 1, where L is the
//      model's lookahead: the minimum simulated latency any cross-partition
//      interaction can have (here, the minimum single-hop link traversal).
//   3. At the barrier, cross-partition messages posted during the window are
//      merged and injected.  A message posted at local time t carries a
//      delivery time >= t + L > window end, so injections never land inside
//      a window a partition already executed: causality is preserved without
//      rollback.
//
// Cross-partition transfer is a *teleporting coroutine*: awaiting
// Engine::teleport(dst, delay) retargets the coroutine's promise to the
// destination partition's simulator and parks the handle in the source
// partition's outbox, keyed (delivery_time, source_partition, source_seq).
// The coordinator merges all outboxes in that key order, single-threaded,
// so injection order — and therefore every downstream tie-break — is a pure
// function of the simulated content, never of the host thread count.  That
// is the engine's headline property: results are bit-identical for any
// worker count, including 1.
//
// Worker threads are plain std::threads synchronized by one std::barrier;
// every piece of cross-thread state (window bound, outboxes, fault tables)
// is written on one side of a barrier phase and read on the other, which is
// both the correctness argument and why the engine is ThreadSanitizer-clean.
#pragma once

#include <barrier>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sim/coro.hpp"
#include "sim/simulator.hpp"
#include "sim/types.hpp"

namespace merm::sim::pdes {

class Engine {
 public:
  /// `partitions` local virtual clocks driven by `workers` host threads
  /// (clamped to [1, partitions]; 1 runs everything inline on the caller's
  /// thread).  `lookahead` must be > 0: it is both the window length and the
  /// minimum teleport delay the model promises.
  Engine(std::uint32_t partitions, unsigned workers, Tick lookahead);
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  std::uint32_t partition_count() const {
    return static_cast<std::uint32_t>(sims_.size());
  }
  unsigned workers() const { return workers_; }
  Tick lookahead() const { return lookahead_; }

  Simulator& sim(std::uint32_t partition) { return *sims_[partition]; }
  const Simulator& sim(std::uint32_t partition) const {
    return *sims_[partition];
  }

  enum class RunResult {
    kIdle,       ///< every partition drained and no mail is in flight
    kTimeLimit,  ///< the global time bound was reached
  };

  /// The coordinator hook, called between windows with the global minimum
  /// next-event time T (possibly kTickMax when draining) and the run bound.
  /// It applies any pending global state transitions (scripted faults) due
  /// at or before min(T, until) and returns the time of the next pending
  /// transition (kTickMax when none) so no window runs past it.
  using BarrierHook = std::function<Tick(Tick t, Tick until)>;
  void set_barrier_hook(BarrierHook hook) { hook_ = std::move(hook); }

  /// Registers a task run single-threaded at every barrier, before the
  /// cross-partition outboxes are merged (workers are parked on the gate, so
  /// tasks may touch any partition's state).  The network uses this to
  /// resolve cross-partition link reservations in deterministic order.
  void add_barrier_task(std::function<void()> task) {
    barrier_tasks_.push_back(std::move(task));
  }

  /// Number of synchronization windows executed by run() so far.  Each
  /// window costs one full barrier round-trip, so windows() divided by the
  /// simulated duration is the barrier-overhead rate coarse partitioning is
  /// meant to drive down.
  std::uint64_t windows() const { return windows_; }

  /// Host-side runtime profile of a run, collected when enable_profiling()
  /// was called before run().  Strictly observational: nothing here is ever
  /// consulted by the simulation, so profiling cannot perturb simulated
  /// results (worker-count bit-identity holds with it on).  Host times are
  /// nondeterministic; the event/mail counts are not.
  ///
  /// The engine cannot depend on obs/ (obs links sim), so this is a plain
  /// struct; Workbench and the CLI bridge it into a MetricsRegistry.
  struct Profile {
    struct Partition {
      std::uint64_t events = 0;       ///< events dispatched by this partition
      std::uint64_t busy_ns = 0;      ///< host ns executing its windows
      std::uint64_t mail_posted = 0;  ///< cross-partition transfers posted
    };
    std::uint64_t windows = 0;
    std::uint64_t barrier_wait_ns = 0;  ///< coordinator ns parked on the gate
    std::uint64_t mail_delivered = 0;   ///< transfers merged at barriers
    /// Windows where at least one partition recorded busy time; the
    /// denominator of imbalance_mean().
    std::uint64_t measured_windows = 0;
    /// Per-window imbalance = (max partition busy) / (mean partition busy);
    /// 1.0 is a perfectly balanced window, partition_count() is one
    /// partition doing all the work while the rest idle at the barrier.
    double imbalance_sum = 0.0;
    double imbalance_max = 0.0;
    std::vector<Partition> partitions;
    double imbalance_mean() const {
      return measured_windows == 0
                 ? 0.0
                 : imbalance_sum / static_cast<double>(measured_windows);
    }
  };

  /// Turns on per-window host timing (two clock reads per partition-window
  /// plus two per barrier).  Off by default so the hot path stays free.
  void enable_profiling() { profiling_ = true; }
  bool profiling_enabled() const { return profiling_; }
  /// Snapshot of the accumulated profile; call after run() (or at a
  /// barrier — the coordinator owns all profile state between windows).
  Profile profile() const;

  /// Runs all partitions until every queue drains or time passes `until`.
  /// Rethrows the earliest process exception (ties broken by partition id).
  RunResult run(Tick until = kTickMax);

  /// Global end time of the last run: `until` when it hit the time limit,
  /// otherwise the latest event any partition dispatched.
  Tick end_time() const { return end_time_; }

  // -- aggregates over all partitions --
  std::uint64_t events_processed() const;
  std::size_t peak_queue_depth() const;  ///< max over partitions
  std::size_t live_processes() const;
  std::size_t owned_processes() const;
  void collect_finished();

  /// Aggregated hang diagnostic, formatted exactly like the serial
  /// simulator's: one headline with the global blocked-process count, then
  /// every registered reporter's lines (partition order).
  std::string hang_diagnostic() const;

  /// Moves a suspended coroutine (already retargeted to partition `dst`)
  /// into the source partition's outbox for delivery at absolute time
  /// `when`.  Called from whichever worker owns `src`; each worker only
  /// writes its own partitions' outboxes, so no lock is needed.
  void post(std::uint32_t src, std::uint32_t dst, Tick when,
            std::coroutine_handle<> h);

  /// Awaitable that moves the running coroutine to partition `dst`,
  /// resuming it there `delay` ticks later.  `delay` must be >= lookahead().
  struct Teleport {
    Engine& engine;
    std::uint32_t dst;
    Tick delay;

    bool await_ready() const noexcept { return false; }

    template <typename Promise>
    void await_suspend(std::coroutine_handle<Promise> h) const {
      static_assert(std::is_base_of_v<PromiseBase, Promise>);
      Simulator* from = h.promise().sim;
      const Tick when = from->now() + delay;
      h.promise().sim = &engine.sim(dst);
      engine.post(from->partition(), dst, when, h);
    }

    void await_resume() const noexcept {}
  };

  Teleport teleport(std::uint32_t dst_partition, Tick delay) {
    return Teleport{*this, dst_partition, delay};
  }

 private:
  /// One parked cross-partition transfer.  (when, src, seq) is the
  /// deterministic merge key; seq counts posts per source partition.
  struct Mail {
    Tick when;
    std::uint32_t src;
    std::uint32_t dst;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
  };

  void worker_main(unsigned worker);
  void run_partition(std::uint32_t p);
  Tick global_next_event_time() const;
  bool drain_outboxes();  ///< merge + inject; true when any mail moved
  void rethrow_window_error();
  void fold_window_profile();  ///< coordinator, between barrier phases

  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<std::vector<Mail>> outbox_;      ///< [source partition]
  std::vector<std::uint64_t> outbox_seq_;      ///< [source partition]
  unsigned workers_;
  Tick lookahead_;
  BarrierHook hook_;
  std::vector<std::function<void()>> barrier_tasks_;
  Tick end_time_ = 0;
  std::uint64_t windows_ = 0;

  // -- profiling (all coordinator-owned except window_busy_ns_, whose slots
  //    are written by the owning worker inside a window and read by the
  //    coordinator after the close barrier — the usual phase argument) --
  bool profiling_ = false;
  std::vector<std::uint64_t> window_busy_ns_;  ///< [partition], this window
  std::vector<std::uint64_t> part_busy_ns_;    ///< [partition], cumulative
  std::uint64_t barrier_wait_ns_ = 0;
  std::uint64_t mail_delivered_ = 0;
  std::uint64_t measured_windows_ = 0;
  double imbalance_sum_ = 0.0;
  double imbalance_max_ = 0.0;

  // -- worker pool (absent when workers_ == 1) --
  std::vector<std::thread> threads_;
  std::unique_ptr<std::barrier<>> gate_;  ///< workers_ + 1 participants
  Tick window_bound_ = 0;                 ///< written by coordinator
  bool shutdown_ = false;
  std::vector<std::exception_ptr> errors_;  ///< [partition]
  std::vector<Tick> error_times_;           ///< [partition]
};

}  // namespace merm::sim::pdes
