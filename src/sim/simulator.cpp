#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace merm::sim {

namespace detail {

void schedule_resume(Simulator& sim, std::coroutine_handle<> h, Tick delay,
                     int priority) {
  sim.schedule_resume(h, delay, priority);
}

void report_error(Simulator& sim, std::exception_ptr e) { sim.set_error(e); }

Tick current_time(const Simulator& sim) { return sim.now(); }

}  // namespace detail

Simulator::~Simulator() {
  for (OwnedProcess& p : processes_) {
    p.handle.destroy();
  }
}

ProcessHandle Simulator::spawn(Process p, std::string name) {
  auto handle = p.release();
  handle.promise().sim = this;
  processes_.push_back(OwnedProcess{handle, std::move(name)});
  push(now_, 0, handle, nullptr);
  return ProcessHandle{&handle.promise().done};
}

void Simulator::schedule_at(Tick when, std::function<void()> fn,
                            int priority) {
  push(std::max(when, now_), priority, nullptr, std::move(fn));
}

void Simulator::schedule_in(Tick delay, std::function<void()> fn,
                            int priority) {
  push(now_ + delay, priority, nullptr, std::move(fn));
}

void Simulator::schedule_resume(std::coroutine_handle<> h, Tick delay,
                                int priority) {
  push(now_ + delay, priority, h, nullptr);
}

void Simulator::push(Tick when, int priority, std::coroutine_handle<> h,
                     std::function<void()> fn) {
  queue_.push(Ev{when, priority, next_seq_++, h, std::move(fn)});
}

Simulator::RunResult Simulator::run(Tick until, std::uint64_t max_events) {
  stop_requested_ = false;
  std::uint64_t processed_this_run = 0;
  while (!queue_.empty()) {
    if (queue_.top().time > until) {
      now_ = std::max(now_, until);
      return RunResult::kTimeLimit;
    }
    if (processed_this_run >= max_events) return RunResult::kEventLimit;

    Ev ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    if (ev.coro) {
      ev.coro.resume();
    } else {
      ev.fn();
    }
    ++events_processed_;
    ++processed_this_run;

    if (error_) {
      std::exception_ptr e = std::exchange(error_, nullptr);
      std::rethrow_exception(e);
    }
    if (stop_requested_) return RunResult::kStopped;
  }
  return RunResult::kIdle;
}

std::size_t Simulator::live_processes() const {
  std::size_t n = 0;
  for (const OwnedProcess& p : processes_) {
    if (!p.handle.promise().done.triggered()) ++n;
  }
  return n;
}

std::vector<std::string> Simulator::live_process_names() const {
  std::vector<std::string> names;
  for (const OwnedProcess& p : processes_) {
    if (!p.handle.promise().done.triggered()) names.push_back(p.name);
  }
  return names;
}

std::string Simulator::hang_diagnostic() const {
  const std::size_t live = live_processes();
  if (live == 0) return {};

  std::string out = "simulation hang: event queue drained with " +
                    std::to_string(live) + " process(es) still blocked";
  std::vector<std::string> lines;
  for (const HangReporter& reporter : hang_reporters_) {
    reporter(lines);
  }
  if (lines.empty()) {
    // No component-level detail registered: fall back to process names.
    for (const std::string& name : live_process_names()) {
      lines.push_back(name.empty() ? std::string("<unnamed process>") : name);
    }
  }
  for (const std::string& line : lines) {
    out += "\n  " + line;
  }
  return out;
}

void Simulator::collect_finished() {
  auto it = std::remove_if(processes_.begin(), processes_.end(),
                           [](const OwnedProcess& p) {
                             if (p.handle.promise().done.triggered()) {
                               p.handle.destroy();
                               return true;
                             }
                             return false;
                           });
  processes_.erase(it, processes_.end());
}

}  // namespace merm::sim
