#include "sim/simulator.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <utility>

namespace merm::sim {

namespace detail {

void schedule_resume(Simulator& sim, std::coroutine_handle<> h, Tick delay,
                     int priority) {
  sim.schedule_resume(h, delay, priority);
}

void report_error(Simulator& sim, std::exception_ptr e) { sim.set_error(e); }

Tick current_time(const Simulator& sim) { return sim.now(); }

}  // namespace detail

namespace {
// -1 = follow MERM_REFERENCE_SCHED; 0/1 = forced.  Atomic so sweep worker
// threads constructing Simulators may read it concurrently.
std::atomic<int> g_reference_override{-1};
}  // namespace

void set_reference_scheduler_override(int mode) {
  g_reference_override.store(mode, std::memory_order_relaxed);
}

bool reference_scheduler_enabled() {
  const int forced = g_reference_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  const char* env = std::getenv("MERM_REFERENCE_SCHED");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

Simulator::Simulator() : fast_paths_(!reference_scheduler_enabled()) {}

Simulator::~Simulator() {
  for (OwnedProcess& p : processes_) {
    p.handle.destroy();
  }
}

ProcessHandle Simulator::spawn(Process p, std::string name) {
  auto handle = p.release();
  handle.promise().sim = this;
  processes_.push_back(OwnedProcess{handle, std::move(name)});
  push(now_, 0, handle, kNoSlot);
  return ProcessHandle{&handle.promise().done};
}

void Simulator::schedule_at(Tick when, std::function<void()> fn,
                            int priority) {
  push(std::max(when, now_), priority, nullptr, make_slot(std::move(fn)));
}

void Simulator::schedule_in(Tick delay, std::function<void()> fn,
                            int priority) {
  push(now_ + delay, priority, nullptr, make_slot(std::move(fn)));
}

void Simulator::schedule_resume(std::coroutine_handle<> h, Tick delay,
                                int priority) {
  push(now_ + delay, priority, h, kNoSlot);
}

void Simulator::inject_resume(Tick when, std::coroutine_handle<> h,
                              int priority) {
  // Barrier injections arrive strictly after the window the partition just
  // ran, so they can never be in this partition's past.
  push(std::max(when, now_), priority, h, kNoSlot);
}

std::uint32_t Simulator::make_slot(std::function<void()> fn) {
  if (!free_slots_.empty()) {
    const std::uint32_t s = free_slots_.back();
    free_slots_.pop_back();
    slots_[s] = std::move(fn);
    return s;
  }
  slots_.push_back(std::move(fn));
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::push(Tick when, int priority, std::coroutine_handle<> h,
                     std::uint32_t slot) {
  const Ev ev{when, next_seq_++, h, priority, slot};
  // An event keyed exactly (now, 0) sorts after everything already queued
  // with that key (smaller seq) and before any later key, so a plain FIFO
  // holds it in correct total order; run() arbitrates lane vs heap per pop.
  if (fast_paths_ && when == now_ && priority == 0) {
    lane_.push_back(ev);
  } else {
    heap_push(ev);
  }
  const std::size_t depth = heap_.size() + (lane_.size() - lane_head_);
  if (depth > peak_queue_depth_) peak_queue_depth_ = depth;
}

void Simulator::heap_push(const Ev& ev) {
  heap_.push_back(ev);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!later(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

Simulator::Ev Simulator::heap_pop() {
  const Ev top = heap_.front();
  const Ev last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = 4 * i + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t end = std::min(first_child + 4, n);
      for (std::size_t c = first_child + 1; c < end; ++c) {
        if (later(heap_[best], heap_[c])) best = c;
      }
      if (!later(last, heap_[best])) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

Simulator::RunResult Simulator::run(Tick until, std::uint64_t max_events) {
  stop_requested_ = false;
  std::uint64_t processed_this_run = 0;
  for (;;) {
    const bool lane_has = lane_head_ < lane_.size();
    if (!lane_has && heap_.empty()) return RunResult::kIdle;
    bool from_lane = lane_has;
    if (lane_has && !heap_.empty() &&
        later(lane_[lane_head_], heap_.front())) {
      from_lane = false;
    }
    {
      const Ev& next = from_lane ? lane_[lane_head_] : heap_.front();
      if (next.time > until) {
        now_ = std::max(now_, until);
        return RunResult::kTimeLimit;
      }
    }
    if (processed_this_run >= max_events) return RunResult::kEventLimit;

    Ev ev;
    if (from_lane) {
      ev = lane_[lane_head_++];
      if (lane_head_ == lane_.size()) {
        lane_.clear();
        lane_head_ = 0;
      }
    } else {
      ev = heap_pop();
    }
    now_ = ev.time;
    last_event_time_ = ev.time;
    if (ev.coro) {
      ev.coro.resume();
    } else {
      // Move the body out first: the invocation may recycle the slot.
      std::function<void()> fn = std::move(slots_[ev.slot]);
      slots_[ev.slot] = nullptr;
      free_slots_.push_back(ev.slot);
      fn();
    }
    ++events_processed_;
    ++processed_this_run;

    if (error_) {
      std::exception_ptr e = std::exchange(error_, nullptr);
      std::rethrow_exception(e);
    }
    if (stop_requested_) return RunResult::kStopped;
  }
}

std::size_t Simulator::live_processes() const {
  std::size_t n = 0;
  for (const OwnedProcess& p : processes_) {
    if (!p.handle.promise().done.triggered()) ++n;
  }
  return n;
}

std::vector<std::string> Simulator::live_process_names() const {
  std::vector<std::string> names;
  for (const OwnedProcess& p : processes_) {
    if (!p.handle.promise().done.triggered()) names.push_back(p.name);
  }
  return names;
}

std::vector<std::string> Simulator::hang_report_lines() const {
  std::vector<std::string> lines;
  for (const HangReporter& reporter : hang_reporters_) {
    reporter(lines);
  }
  return lines;
}

std::string Simulator::hang_diagnostic() const {
  const std::size_t live = live_processes();
  if (live == 0) return {};

  std::string out = "simulation hang: event queue drained with " +
                    std::to_string(live) + " process(es) still blocked";
  std::vector<std::string> lines = hang_report_lines();
  if (lines.empty()) {
    // No component-level detail registered: fall back to process names.
    for (const std::string& name : live_process_names()) {
      lines.push_back(name.empty() ? std::string("<unnamed process>") : name);
    }
  }
  for (const std::string& line : lines) {
    out += "\n  " + line;
  }
  return out;
}

void Simulator::collect_finished() {
  auto it = std::remove_if(processes_.begin(), processes_.end(),
                           [](const OwnedProcess& p) {
                             if (p.handle.promise().done.triggered()) {
                               p.handle.destroy();
                               return true;
                             }
                             return false;
                           });
  processes_.erase(it, processes_.end());
}

}  // namespace merm::sim
