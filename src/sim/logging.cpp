#include "sim/logging.hpp"

#include <cstdio>

namespace merm::sim {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kOff:
      return "off";
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kTrace:
      return "trace";
  }
  return "?";
}
}  // namespace

Logger::Logger()
    : sink_([](const std::string& line) {
        std::fputs(line.c_str(), stderr);
        std::fputc('\n', stderr);
      }) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::function<void(const std::string&)> sink) {
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_ = std::move(sink);
}

void Logger::write(LogLevel level, Tick time, const std::string& component,
                   const std::string& message) {
  std::string line;
  line.reserve(message.size() + component.size() + 32);
  line += '[';
  line += format_time(time);
  line += "] ";
  line += level_name(level);
  line += ' ';
  line += component;
  line += ": ";
  line += message;
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_(line);
}

}  // namespace merm::sim
