#include "sim/pdes.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace merm::sim::pdes {

namespace {
std::uint64_t host_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

Engine::Engine(std::uint32_t partitions, unsigned workers, Tick lookahead)
    : workers_(std::max(1u, std::min(workers, partitions))),
      lookahead_(lookahead) {
  if (partitions == 0) {
    throw std::invalid_argument("pdes: need at least one partition");
  }
  if (lookahead == 0) {
    throw std::invalid_argument(
        "pdes: zero lookahead cannot bound a window (a zero-latency "
        "cross-partition interaction would violate causality)");
  }
  sims_.reserve(partitions);
  for (std::uint32_t p = 0; p < partitions; ++p) {
    sims_.push_back(std::make_unique<Simulator>());
    sims_.back()->set_partition(p);
  }
  outbox_.resize(partitions);
  outbox_seq_.assign(partitions, 0);
  window_busy_ns_.assign(partitions, 0);
  part_busy_ns_.assign(partitions, 0);
  errors_.resize(partitions);
  error_times_.assign(partitions, kTickMax);
  if (workers_ > 1) {
    gate_ = std::make_unique<std::barrier<>>(
        static_cast<std::ptrdiff_t>(workers_) + 1);
    threads_.reserve(workers_);
    for (unsigned w = 0; w < workers_; ++w) {
      threads_.emplace_back([this, w] { worker_main(w); });
    }
  }
}

Engine::~Engine() {
  if (!threads_.empty()) {
    shutdown_ = true;
    gate_->arrive_and_wait();  // release workers into the shutdown check
    for (std::thread& t : threads_) t.join();
  }
}

void Engine::post(std::uint32_t src, std::uint32_t dst, Tick when,
                  std::coroutine_handle<> h) {
  outbox_[src].push_back(Mail{when, src, dst, outbox_seq_[src]++, h});
}

Tick Engine::global_next_event_time() const {
  Tick t = kTickMax;
  for (const auto& s : sims_) t = std::min(t, s->next_event_time());
  return t;
}

bool Engine::drain_outboxes() {
  // Gather, order by (delivery time, source partition, source seq), and
  // inject single-threaded.  The key is a pure function of simulated
  // content, so destination-side sequence numbers — the final tie-break of
  // the event order — are identical at every worker count.
  std::vector<Mail> mail;
  for (std::vector<Mail>& box : outbox_) {
    mail.insert(mail.end(), box.begin(), box.end());
    box.clear();
  }
  if (mail.empty()) return false;
  mail_delivered_ += mail.size();
  std::sort(mail.begin(), mail.end(), [](const Mail& a, const Mail& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  for (const Mail& m : mail) {
    sims_[m.dst]->inject_resume(m.when, m.handle);
  }
  return true;
}

void Engine::run_partition(std::uint32_t p) {
  const std::uint64_t t0 = profiling_ ? host_now_ns() : 0;
  try {
    sims_[p]->run(window_bound_);
  } catch (...) {
    errors_[p] = std::current_exception();
    error_times_[p] = sims_[p]->now();
  }
  if (profiling_) window_busy_ns_[p] += host_now_ns() - t0;
}

void Engine::worker_main(unsigned worker) {
  for (;;) {
    gate_->arrive_and_wait();  // window open: coordinator published bound
    if (shutdown_) return;
    for (std::uint32_t p = worker; p < partition_count(); p += workers_) {
      run_partition(p);
    }
    gate_->arrive_and_wait();  // window closed: outboxes ready to merge
  }
}

void Engine::rethrow_window_error() {
  // Several partitions may fail inside one window; surface the earliest (by
  // simulated time, partition id as the tie-break) — a deterministic choice
  // because window contents are worker-count-invariant.
  std::uint32_t pick = partition_count();
  for (std::uint32_t p = 0; p < partition_count(); ++p) {
    if (!errors_[p]) continue;
    if (pick == partition_count() || error_times_[p] < error_times_[pick]) {
      pick = p;
    }
  }
  if (pick == partition_count()) return;
  std::exception_ptr e = errors_[pick];
  for (std::uint32_t p = 0; p < partition_count(); ++p) {
    errors_[p] = nullptr;
    error_times_[p] = kTickMax;
  }
  std::rethrow_exception(e);
}

Engine::RunResult Engine::run(Tick until) {
  for (;;) {
    // Barrier tasks first: they may convert parked cross-partition work
    // (e.g. pending link reservations) into outbox mail or direct events.
    for (const auto& task : barrier_tasks_) task();
    drain_outboxes();
    Tick t = global_next_event_time();
    // Let the hook apply scripted transitions due up to min(t, until); it
    // returns the next pending transition so the window stops short of it.
    const Tick cap = hook_ ? hook_(t, until) : kTickMax;
    t = global_next_event_time();  // the hook may not add events, but be safe
    if (t == kTickMax) {
      end_time_ = 0;
      for (const auto& s : sims_) {
        end_time_ = std::max(end_time_, s->last_event_time());
      }
      return RunResult::kIdle;
    }
    if (t > until) {
      end_time_ = until;
      return RunResult::kTimeLimit;
    }
    // Window [t, bound]: every teleport posted from time x >= t lands at
    // x + delay >= t + lookahead > bound, so barrier injections are always
    // in every partition's future.
    Tick bound = t >= kTickMax - lookahead_ ? kTickMax - 1 : t + lookahead_ - 1;
    bound = std::min(bound, until);
    if (cap != kTickMax && cap > 0) bound = std::min(bound, cap - 1);
    window_bound_ = bound;
    ++windows_;

    if (workers_ == 1) {
      for (std::uint32_t p = 0; p < partition_count(); ++p) run_partition(p);
    } else if (profiling_) {
      const std::uint64_t b0 = host_now_ns();
      gate_->arrive_and_wait();  // open: workers read window_bound_
      gate_->arrive_and_wait();  // closed: workers published outboxes/errors
      barrier_wait_ns_ += host_now_ns() - b0;
    } else {
      gate_->arrive_and_wait();  // open: workers read window_bound_
      gate_->arrive_and_wait();  // closed: workers published outboxes/errors
    }
    if (profiling_) fold_window_profile();
    rethrow_window_error();
  }
}

void Engine::fold_window_profile() {
  // Runs between barriers, so the per-window slots are quiescent.  The
  // imbalance ratio uses the mean over *all* partitions: one busy partition
  // among P idle ones scores P, a perfectly level window scores 1.
  std::uint64_t total = 0;
  std::uint64_t peak = 0;
  for (std::uint32_t p = 0; p < partition_count(); ++p) {
    const std::uint64_t busy = window_busy_ns_[p];
    window_busy_ns_[p] = 0;
    part_busy_ns_[p] += busy;
    total += busy;
    peak = std::max(peak, busy);
  }
  if (total == 0) return;
  ++measured_windows_;
  const double mean =
      static_cast<double>(total) / static_cast<double>(partition_count());
  const double ratio = static_cast<double>(peak) / mean;
  imbalance_sum_ += ratio;
  imbalance_max_ = std::max(imbalance_max_, ratio);
}

Engine::Profile Engine::profile() const {
  Profile out;
  out.windows = windows_;
  out.barrier_wait_ns = barrier_wait_ns_;
  out.mail_delivered = mail_delivered_;
  out.measured_windows = measured_windows_;
  out.imbalance_sum = imbalance_sum_;
  out.imbalance_max = imbalance_max_;
  out.partitions.resize(partition_count());
  for (std::uint32_t p = 0; p < partition_count(); ++p) {
    out.partitions[p].events = sims_[p]->events_processed();
    out.partitions[p].busy_ns = part_busy_ns_[p];
    out.partitions[p].mail_posted = outbox_seq_[p];
  }
  return out;
}

std::uint64_t Engine::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& s : sims_) total += s->events_processed();
  return total;
}

std::size_t Engine::peak_queue_depth() const {
  std::size_t peak = 0;
  for (const auto& s : sims_) peak = std::max(peak, s->peak_queue_depth());
  return peak;
}

std::size_t Engine::live_processes() const {
  std::size_t n = 0;
  for (const auto& s : sims_) n += s->live_processes();
  return n;
}

std::size_t Engine::owned_processes() const {
  std::size_t n = 0;
  for (const auto& s : sims_) n += s->owned_processes();
  return n;
}

void Engine::collect_finished() {
  for (const auto& s : sims_) s->collect_finished();
}

std::string Engine::hang_diagnostic() const {
  const std::size_t live = live_processes();
  if (live == 0) return {};
  // Same shape as Simulator::hang_diagnostic(), with partition-order
  // aggregation; model reporters (registered on partition 0 by the machine)
  // walk components in node order, so the text matches the serial run's.
  std::string out = "simulation hang: event queue drained with " +
                    std::to_string(live) + " process(es) still blocked";
  std::vector<std::string> lines;
  for (const auto& s : sims_) {
    for (std::string& line : s->hang_report_lines()) {
      lines.push_back(std::move(line));
    }
  }
  if (lines.empty()) {
    for (const auto& s : sims_) {
      for (const std::string& name : s->live_process_names()) {
        lines.push_back(name.empty() ? std::string("<unnamed process>")
                                     : name);
      }
    }
  }
  for (const std::string& line : lines) {
    out += "\n  " + line;
  }
  return out;
}

}  // namespace merm::sim::pdes
