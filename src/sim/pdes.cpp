#include "sim/pdes.hpp"

#include <algorithm>
#include <stdexcept>

namespace merm::sim::pdes {

Engine::Engine(std::uint32_t partitions, unsigned workers, Tick lookahead)
    : workers_(std::max(1u, std::min(workers, partitions))),
      lookahead_(lookahead) {
  if (partitions == 0) {
    throw std::invalid_argument("pdes: need at least one partition");
  }
  if (lookahead == 0) {
    throw std::invalid_argument(
        "pdes: zero lookahead cannot bound a window (a zero-latency "
        "cross-partition interaction would violate causality)");
  }
  sims_.reserve(partitions);
  for (std::uint32_t p = 0; p < partitions; ++p) {
    sims_.push_back(std::make_unique<Simulator>());
    sims_.back()->set_partition(p);
  }
  outbox_.resize(partitions);
  outbox_seq_.assign(partitions, 0);
  errors_.resize(partitions);
  error_times_.assign(partitions, kTickMax);
  if (workers_ > 1) {
    gate_ = std::make_unique<std::barrier<>>(
        static_cast<std::ptrdiff_t>(workers_) + 1);
    threads_.reserve(workers_);
    for (unsigned w = 0; w < workers_; ++w) {
      threads_.emplace_back([this, w] { worker_main(w); });
    }
  }
}

Engine::~Engine() {
  if (!threads_.empty()) {
    shutdown_ = true;
    gate_->arrive_and_wait();  // release workers into the shutdown check
    for (std::thread& t : threads_) t.join();
  }
}

void Engine::post(std::uint32_t src, std::uint32_t dst, Tick when,
                  std::coroutine_handle<> h) {
  outbox_[src].push_back(Mail{when, src, dst, outbox_seq_[src]++, h});
}

Tick Engine::global_next_event_time() const {
  Tick t = kTickMax;
  for (const auto& s : sims_) t = std::min(t, s->next_event_time());
  return t;
}

bool Engine::drain_outboxes() {
  // Gather, order by (delivery time, source partition, source seq), and
  // inject single-threaded.  The key is a pure function of simulated
  // content, so destination-side sequence numbers — the final tie-break of
  // the event order — are identical at every worker count.
  std::vector<Mail> mail;
  for (std::vector<Mail>& box : outbox_) {
    mail.insert(mail.end(), box.begin(), box.end());
    box.clear();
  }
  if (mail.empty()) return false;
  std::sort(mail.begin(), mail.end(), [](const Mail& a, const Mail& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  for (const Mail& m : mail) {
    sims_[m.dst]->inject_resume(m.when, m.handle);
  }
  return true;
}

void Engine::run_partition(std::uint32_t p) {
  try {
    sims_[p]->run(window_bound_);
  } catch (...) {
    errors_[p] = std::current_exception();
    error_times_[p] = sims_[p]->now();
  }
}

void Engine::worker_main(unsigned worker) {
  for (;;) {
    gate_->arrive_and_wait();  // window open: coordinator published bound
    if (shutdown_) return;
    for (std::uint32_t p = worker; p < partition_count(); p += workers_) {
      run_partition(p);
    }
    gate_->arrive_and_wait();  // window closed: outboxes ready to merge
  }
}

void Engine::rethrow_window_error() {
  // Several partitions may fail inside one window; surface the earliest (by
  // simulated time, partition id as the tie-break) — a deterministic choice
  // because window contents are worker-count-invariant.
  std::uint32_t pick = partition_count();
  for (std::uint32_t p = 0; p < partition_count(); ++p) {
    if (!errors_[p]) continue;
    if (pick == partition_count() || error_times_[p] < error_times_[pick]) {
      pick = p;
    }
  }
  if (pick == partition_count()) return;
  std::exception_ptr e = errors_[pick];
  for (std::uint32_t p = 0; p < partition_count(); ++p) {
    errors_[p] = nullptr;
    error_times_[p] = kTickMax;
  }
  std::rethrow_exception(e);
}

Engine::RunResult Engine::run(Tick until) {
  for (;;) {
    // Barrier tasks first: they may convert parked cross-partition work
    // (e.g. pending link reservations) into outbox mail or direct events.
    for (const auto& task : barrier_tasks_) task();
    drain_outboxes();
    Tick t = global_next_event_time();
    // Let the hook apply scripted transitions due up to min(t, until); it
    // returns the next pending transition so the window stops short of it.
    const Tick cap = hook_ ? hook_(t, until) : kTickMax;
    t = global_next_event_time();  // the hook may not add events, but be safe
    if (t == kTickMax) {
      end_time_ = 0;
      for (const auto& s : sims_) {
        end_time_ = std::max(end_time_, s->last_event_time());
      }
      return RunResult::kIdle;
    }
    if (t > until) {
      end_time_ = until;
      return RunResult::kTimeLimit;
    }
    // Window [t, bound]: every teleport posted from time x >= t lands at
    // x + delay >= t + lookahead > bound, so barrier injections are always
    // in every partition's future.
    Tick bound = t >= kTickMax - lookahead_ ? kTickMax - 1 : t + lookahead_ - 1;
    bound = std::min(bound, until);
    if (cap != kTickMax && cap > 0) bound = std::min(bound, cap - 1);
    window_bound_ = bound;
    ++windows_;

    if (workers_ == 1) {
      for (std::uint32_t p = 0; p < partition_count(); ++p) run_partition(p);
    } else {
      gate_->arrive_and_wait();  // open: workers read window_bound_
      gate_->arrive_and_wait();  // closed: workers published outboxes/errors
    }
    rethrow_window_error();
  }
}

std::uint64_t Engine::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& s : sims_) total += s->events_processed();
  return total;
}

std::size_t Engine::peak_queue_depth() const {
  std::size_t peak = 0;
  for (const auto& s : sims_) peak = std::max(peak, s->peak_queue_depth());
  return peak;
}

std::size_t Engine::live_processes() const {
  std::size_t n = 0;
  for (const auto& s : sims_) n += s->live_processes();
  return n;
}

std::size_t Engine::owned_processes() const {
  std::size_t n = 0;
  for (const auto& s : sims_) n += s->owned_processes();
  return n;
}

void Engine::collect_finished() {
  for (const auto& s : sims_) s->collect_finished();
}

std::string Engine::hang_diagnostic() const {
  const std::size_t live = live_processes();
  if (live == 0) return {};
  // Same shape as Simulator::hang_diagnostic(), with partition-order
  // aggregation; model reporters (registered on partition 0 by the machine)
  // walk components in node order, so the text matches the serial run's.
  std::string out = "simulation hang: event queue drained with " +
                    std::to_string(live) + " process(es) still blocked";
  std::vector<std::string> lines;
  for (const auto& s : sims_) {
    for (std::string& line : s->hang_report_lines()) {
      lines.push_back(std::move(line));
    }
  }
  if (lines.empty()) {
    for (const auto& s : sims_) {
      for (const std::string& name : s->live_process_names()) {
        lines.push_back(name.empty() ? std::string("<unnamed process>")
                                     : name);
      }
    }
  }
  for (const std::string& line : lines) {
    out += "\n  " + line;
  }
  return out;
}

}  // namespace merm::sim::pdes
