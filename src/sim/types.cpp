#include "sim/types.hpp"

#include <array>
#include <cstdio>

namespace merm::sim {

std::string format_time(Tick t) {
  struct Unit {
    Tick scale;
    const char* suffix;
  };
  static constexpr std::array<Unit, 4> units{{{kTicksPerSecond, "s"},
                                              {kTicksPerSecond / 1000, "ms"},
                                              {kTicksPerMicrosecond, "us"},
                                              {kTicksPerNanosecond, "ns"}}};
  for (const Unit& u : units) {
    if (t >= u.scale) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.2f %s",
                    static_cast<double>(t) / static_cast<double>(u.scale),
                    u.suffix);
      return buf;
    }
  }
  return std::to_string(t) + " ps";
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> suffix{"B", "KiB", "MiB", "GiB",
                                                     "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t i = 0;
  while (value >= 1024.0 && i + 1 < suffix.size()) {
    value /= 1024.0;
    ++i;
  }
  char buf[48];
  if (i == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, suffix[i]);
  }
  return buf;
}

}  // namespace merm::sim
