// Coroutine machinery of the Mermaid kernel: the structural replacement for
// the Pearl simulation language's process objects.
//
// A Pearl model is a set of objects, each running its own behaviour in
// virtual time and exchanging synchronous/asynchronous messages.  Here a
// model component is an object owning one or more sim::Process coroutines;
// components exchange messages over sim::Channel and wait on sim::Event.
//
//   sim::Process producer(sim::Simulator& sim, sim::Channel<int>& out) {
//     for (int i = 0; i < 8; ++i) {
//       co_await sim::Delay{10 * sim::kTicksPerNanosecond};
//       co_await out.send(i);
//     }
//   }
//
// Processes are spawned on a Simulator; sub-behaviour can be factored into
// sim::Task<T> coroutines which are awaited like ordinary calls but may
// themselves wait in virtual time.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <optional>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace merm::sim {

class Simulator;

namespace detail {
// Defined in simulator.cpp; indirection keeps this header free of the
// Simulator definition.
void schedule_resume(Simulator& sim, std::coroutine_handle<> h, Tick delay,
                     int priority);
void report_error(Simulator& sim, std::exception_ptr e);
Tick current_time(const Simulator& sim);
}  // namespace detail

/// Common promise state: which simulator the coroutine runs on and, for
/// sub-tasks, who to resume on completion.
struct PromiseBase {
  Simulator* sim = nullptr;
  std::coroutine_handle<> continuation;
};

/// Suspends the awaiting coroutine for a fixed amount of simulated time.
///
/// `inline_zero` is set by Simulator::delay() when the fast-path scheduler
/// is active (and by TimeCursor::flush(), whose empty flush corresponds to
/// no suspension at all in the reference schedule): a zero-tick
/// default-priority delay then completes without suspending.  Brace-
/// initialized Delays keep the conservative always-suspend behaviour.
struct Delay {
  Tick amount = 0;
  int priority = 0;
  bool inline_zero = false;

  bool await_ready() const noexcept {
    return inline_zero && amount == 0 && priority == 0;
  }

  template <typename Promise>
  void await_suspend(std::coroutine_handle<Promise> h) const {
    static_assert(std::is_base_of_v<PromiseBase, Promise>,
                  "Delay may only be awaited inside sim coroutines");
    detail::schedule_resume(*h.promise().sim, h, amount, priority);
  }

  void await_resume() const noexcept {}
};

/// One-shot (or manually re-armed) condition in simulated time.
///
/// Waiters suspended on an Event are released together when trigger() fires;
/// their resumptions are scheduled at the current simulated time in FIFO
/// order.  Awaiting an already-triggered event does not suspend.
class Event {
 public:
  Event() = default;
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool triggered() const { return triggered_; }

  /// Fires the event, releasing all current waiters.
  void trigger() {
    triggered_ = true;
    release_all();
  }

  /// Re-arms a triggered event so it can be waited on and fired again.
  void reset() { triggered_ = false; }

  struct Awaiter {
    Event& event;

    bool await_ready() const noexcept { return event.triggered_; }

    template <typename Promise>
    void await_suspend(std::coroutine_handle<Promise> h) {
      static_assert(std::is_base_of_v<PromiseBase, Promise>);
      event.waiters_.push_back({h.promise().sim, h});
    }

    void await_resume() const noexcept {}
  };

  Awaiter operator co_await() { return Awaiter{*this}; }
  Awaiter wait() { return Awaiter{*this}; }

 private:
  struct Waiter {
    Simulator* sim;
    std::coroutine_handle<> handle;
  };

  void release_all() {
    // Waiters registered while releasing (a released coroutine may re-wait
    // after reset()) must not be released in the same trigger.
    std::vector<Waiter> pending;
    pending.swap(waiters_);
    for (const Waiter& w : pending) {
      detail::schedule_resume(*w.sim, w.handle, 0, 0);
    }
  }

  std::vector<Waiter> waiters_;
  bool triggered_ = false;
};

/// A top-level simulation process.  Fire-and-forget: spawn it on a Simulator
/// which takes ownership of the coroutine frame.
class [[nodiscard]] Process {
 public:
  struct promise_type : PromiseBase {
    Event done;

    Process get_return_object() {
      return Process{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        h.promise().done.trigger();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() {
      // Processes have no awaiting parent: route the error to the simulator,
      // which surfaces it from run().
      detail::report_error(*sim, std::current_exception());
    }
  };

  Process(Process&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process() { destroy(); }

  /// Internal: used by Simulator::spawn.
  std::coroutine_handle<promise_type> release() {
    return std::exchange(handle_, {});
  }

 private:
  explicit Process(std::coroutine_handle<promise_type> h) : handle_(h) {}

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

/// Stable reference to a spawned process, valid until the owning Simulator
/// collects finished processes or is destroyed.
struct ProcessHandle {
  Event* done = nullptr;

  bool finished() const { return done != nullptr && done->triggered(); }
  Event::Awaiter join() { return done->wait(); }
};

namespace detail {

template <typename T>
struct TaskPromiseStorage {
  std::optional<T> value;
  void return_value(T v) { value.emplace(std::move(v)); }
  T take() { return std::move(*value); }
};

template <>
struct TaskPromiseStorage<void> {
  void return_void() noexcept {}
  void take() {}
};

}  // namespace detail

/// A sub-coroutine awaited from a Process (or another Task).  Starts
/// eagerly-on-await, completes by symmetric transfer back to the awaiter, and
/// propagates exceptions through await_resume.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : PromiseBase, detail::TaskPromiseStorage<T> {
    std::exception_ptr exception;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        return h.promise().continuation;
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void unhandled_exception() { exception = std::current_exception(); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  struct Awaiter {
    std::coroutine_handle<promise_type> child;

    bool await_ready() const noexcept { return false; }

    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> parent) {
      static_assert(std::is_base_of_v<PromiseBase, Promise>);
      child.promise().sim = parent.promise().sim;
      child.promise().continuation = parent;
      return child;  // symmetric transfer: start the child immediately
    }

    T await_resume() {
      if (child.promise().exception) {
        std::rethrow_exception(child.promise().exception);
      }
      return child.promise().take();
    }
  };

  Awaiter operator co_await() { return Awaiter{handle_}; }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace merm::sim
