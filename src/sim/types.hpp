// Core time types for the Mermaid discrete-event kernel.
//
// Simulated time is a 64-bit count of picoseconds.  Components that own a
// clock (CPUs, buses, routers, links) convert between their cycle domain and
// ticks through a Clock object, so machines mixing a 20 MHz transputer
// network with a 66 MHz processor are expressed naturally.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace merm::sim {

/// Simulated time in picoseconds.
using Tick = std::uint64_t;

/// One simulated second, in ticks.
inline constexpr Tick kTicksPerSecond = 1'000'000'000'000ULL;
inline constexpr Tick kTicksPerMicrosecond = 1'000'000ULL;
inline constexpr Tick kTicksPerNanosecond = 1'000ULL;

/// Sentinel for "no deadline".
inline constexpr Tick kTickMax = std::numeric_limits<Tick>::max();

/// A cycle count in some component's clock domain.
using Cycles = std::uint64_t;

/// Converts between a component's cycle domain and global ticks.
///
/// The conversion rounds the tick period to whole picoseconds; at the clock
/// rates the workbench models (tens of MHz to a few GHz) the rounding error
/// is below one part in a thousand and, crucially, deterministic.
class Clock {
 public:
  Clock() = default;
  explicit Clock(double frequency_hz)
      : frequency_hz_(frequency_hz),
        period_ticks_(static_cast<Tick>(
            static_cast<double>(kTicksPerSecond) / frequency_hz + 0.5)) {}

  double frequency_hz() const { return frequency_hz_; }

  /// Duration of one cycle in ticks (>= 1 for any frequency <= 1 THz).
  Tick period() const { return period_ticks_; }

  /// Duration of `n` cycles in ticks.
  Tick to_ticks(Cycles n) const { return n * period_ticks_; }

  /// Number of whole cycles elapsed after `t` ticks (floor).
  Cycles to_cycles(Tick t) const { return t / period_ticks_; }

  /// Number of cycles needed to cover `t` ticks (ceiling).
  Cycles to_cycles_ceil(Tick t) const {
    return (t + period_ticks_ - 1) / period_ticks_;
  }

 private:
  double frequency_hz_ = 1e9;
  Tick period_ticks_ = kTicksPerSecond / 1'000'000'000ULL;
};

/// Pretty-prints a tick count as a human-readable duration ("3.20 us").
std::string format_time(Tick t);

/// Pretty-prints a byte count ("1.5 MiB").
std::string format_bytes(std::uint64_t bytes);

}  // namespace merm::sim
