// Minimal leveled logging for simulation components.
//
// Logging is off by default; tests and the run-time "visualization" path of
// the workbench raise the level per component.  Messages carry the current
// simulated time so post-mortem logs double as an event trace.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "sim/types.hpp"

namespace merm::sim {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Global logging configuration.  Not thread-safe by design: the kernel is
/// single-threaded; the threaded trace generator logs only through its
/// simulator-side handshake.
class Logger {
 public:
  static Logger& instance();

  LogLevel level() const { return level_; }
  void set_level(LogLevel level) { level_ = level; }

  /// Redirects output (default: stderr).  The sink receives fully formatted
  /// lines without trailing newline.
  void set_sink(std::function<void(const std::string&)> sink);

  void write(LogLevel level, Tick time, const std::string& component,
             const std::string& message);

 private:
  Logger();

  LogLevel level_ = LogLevel::kOff;
  std::function<void(const std::string&)> sink_;
};

/// Per-component logging front end; cheap to copy.
class Log {
 public:
  Log() = default;
  explicit Log(std::string component) : component_(std::move(component)) {}

  bool enabled(LogLevel level) const {
    return level <= Logger::instance().level();
  }

  template <typename... Args>
  void log(LogLevel level, Tick time, const Args&... args) const {
    if (!enabled(level)) return;
    std::ostringstream os;
    (os << ... << args);
    Logger::instance().write(level, time, component_, os.str());
  }

  template <typename... Args>
  void info(Tick time, const Args&... args) const {
    log(LogLevel::kInfo, time, args...);
  }
  template <typename... Args>
  void debug(Tick time, const Args&... args) const {
    log(LogLevel::kDebug, time, args...);
  }
  template <typename... Args>
  void trace(Tick time, const Args&... args) const {
    log(LogLevel::kTrace, time, args...);
  }
  template <typename... Args>
  void warn(Tick time, const Args&... args) const {
    log(LogLevel::kWarn, time, args...);
  }

 private:
  std::string component_;
};

}  // namespace merm::sim
