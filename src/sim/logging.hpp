// Minimal leveled logging for simulation components.
//
// Logging is off by default; tests and the run-time "visualization" path of
// the workbench raise the level per component.  Messages carry the current
// simulated time so post-mortem logs double as an event trace.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>

#include "sim/types.hpp"

namespace merm::sim {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Global logging configuration.  Each simulation kernel is single-threaded,
/// but the sweep engine runs many kernels on worker threads concurrently, so
/// the shared level is atomic and the sink is serialized: lines from
/// concurrent runs interleave whole, never mid-line.
class Logger {
 public:
  static Logger& instance();

  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }

  /// Redirects output (default: stderr).  The sink receives fully formatted
  /// lines without trailing newline.
  void set_sink(std::function<void(const std::string&)> sink);

  void write(LogLevel level, Tick time, const std::string& component,
             const std::string& message);

 private:
  Logger();

  std::atomic<LogLevel> level_{LogLevel::kOff};
  std::mutex sink_mutex_;
  std::function<void(const std::string&)> sink_;
};

/// Per-component logging front end; cheap to copy.
class Log {
 public:
  Log() = default;
  explicit Log(std::string component) : component_(std::move(component)) {}

  bool enabled(LogLevel level) const {
    return level <= Logger::instance().level();
  }

  template <typename... Args>
  void log(LogLevel level, Tick time, const Args&... args) const {
    if (!enabled(level)) return;
    std::ostringstream os;
    (os << ... << args);
    Logger::instance().write(level, time, component_, os.str());
  }

  template <typename... Args>
  void info(Tick time, const Args&... args) const {
    log(LogLevel::kInfo, time, args...);
  }
  template <typename... Args>
  void debug(Tick time, const Args&... args) const {
    log(LogLevel::kDebug, time, args...);
  }
  template <typename... Args>
  void trace(Tick time, const Args&... args) const {
    log(LogLevel::kTrace, time, args...);
  }
  template <typename... Args>
  void warn(Tick time, const Args&... args) const {
    log(LogLevel::kWarn, time, args...);
  }

 private:
  std::string component_;
};

}  // namespace merm::sim
