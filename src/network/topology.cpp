#include "network/topology.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace merm::network {

using machine::TopologyKind;

namespace {
bool is_pow2(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::uint32_t log2u(std::uint32_t v) {
  std::uint32_t r = 0;
  while ((1u << (r + 1)) <= v) ++r;
  return r;
}
}  // namespace

void Topology::add_bidirectional(NodeId a, NodeId b) {
  auto& pa = ports_[static_cast<std::size_t>(a)];
  auto& pb = ports_[static_cast<std::size_t>(b)];
  const auto port_a = static_cast<std::uint32_t>(pa.size());
  const auto port_b = static_cast<std::uint32_t>(pb.size());
  pa.push_back(PortTarget{b, port_b});
  pb.push_back(PortTarget{a, port_a});
}

Topology Topology::make(const machine::TopologyParams& params) {
  Topology t;
  t.kind_ = params.kind;
  const std::uint32_t n = params.node_count();
  if (n == 0) throw std::invalid_argument("topology with zero nodes");
  t.ports_.resize(n);

  switch (params.kind) {
    case TopologyKind::kRing: {
      if (n == 2) {
        t.add_bidirectional(0, 1);
      } else if (n > 2) {
        for (std::uint32_t i = 0; i < n; ++i) {
          t.add_bidirectional(static_cast<NodeId>(i),
                              static_cast<NodeId>((i + 1) % n));
        }
      }
      break;
    }
    case TopologyKind::kMesh2D:
    case TopologyKind::kTorus2D: {
      const std::uint32_t w = params.dims[0];
      const std::uint32_t h = params.dims[1];
      if (w == 0 || h == 0) throw std::invalid_argument("mesh with zero dim");
      t.width_ = w;
      t.height_ = h;
      const bool torus = params.kind == TopologyKind::kTorus2D;
      auto id = [w](std::uint32_t x, std::uint32_t y) {
        return static_cast<NodeId>(y * w + x);
      };
      for (std::uint32_t y = 0; y < h; ++y) {
        for (std::uint32_t x = 0; x < w; ++x) {
          if (x + 1 < w) t.add_bidirectional(id(x, y), id(x + 1, y));
          if (y + 1 < h) t.add_bidirectional(id(x, y), id(x, y + 1));
        }
      }
      if (torus) {
        // Wrap links; skip when the dimension is too small to need them.
        if (w > 2) {
          for (std::uint32_t y = 0; y < h; ++y) {
            t.add_bidirectional(id(w - 1, y), id(0, y));
          }
        }
        if (h > 2) {
          for (std::uint32_t x = 0; x < w; ++x) {
            t.add_bidirectional(id(x, h - 1), id(x, 0));
          }
        }
      }
      break;
    }
    case TopologyKind::kHypercube: {
      if (!is_pow2(n)) {
        throw std::invalid_argument("hypercube needs power-of-two nodes");
      }
      const std::uint32_t dims = n == 1 ? 0 : log2u(n);
      // Port k of node i connects to node i ^ (1 << k), symmetrically.
      for (std::uint32_t i = 0; i < n; ++i) {
        t.ports_[i].resize(dims);
      }
      for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t k = 0; k < dims; ++k) {
          const std::uint32_t j = i ^ (1u << k);
          t.ports_[i][k] = PortTarget{static_cast<NodeId>(j), k};
        }
      }
      break;
    }
    case TopologyKind::kStar: {
      for (std::uint32_t i = 1; i < n; ++i) {
        t.add_bidirectional(0, static_cast<NodeId>(i));
      }
      break;
    }
    case TopologyKind::kFullyConnected: {
      for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t j = i + 1; j < n; ++j) {
          t.add_bidirectional(static_cast<NodeId>(i), static_cast<NodeId>(j));
        }
      }
      break;
    }
  }

  t.compute_tables();
  return t;
}

void Topology::compute_tables() {
  const std::uint32_t n = node_count();
  constexpr std::uint32_t kUnreachable =
      std::numeric_limits<std::uint32_t>::max();
  next_port_.assign(static_cast<std::size_t>(n) * n, kUnreachable);
  distance_.assign(static_cast<std::size_t>(n) * n, kUnreachable);

  // One BFS per destination over the (symmetric) port graph.
  for (std::uint32_t dest = 0; dest < n; ++dest) {
    auto dist = [&](std::uint32_t v) -> std::uint32_t& {
      return distance_[static_cast<std::size_t>(v) * n + dest];
    };
    dist(dest) = 0;
    std::deque<std::uint32_t> frontier{dest};
    while (!frontier.empty()) {
      const std::uint32_t v = frontier.front();
      frontier.pop_front();
      for (const PortTarget& pt : ports_[v]) {
        const auto u = static_cast<std::uint32_t>(pt.node);
        if (dist(u) == kUnreachable) {
          dist(u) = dist(v) + 1;
          frontier.push_back(u);
        }
      }
    }
    // Next-port: lowest-indexed port that strictly decreases distance.
    for (std::uint32_t here = 0; here < n; ++here) {
      if (here == dest || dist(here) == kUnreachable) continue;
      for (std::uint32_t p = 0; p < ports_[here].size(); ++p) {
        const auto u = static_cast<std::uint32_t>(ports_[here][p].node);
        if (dist(u) + 1 == dist(here)) {
          next_port_[static_cast<std::size_t>(here) * n + dest] = p;
          break;
        }
      }
    }
  }

  // Every pair must be connected in a sane topology.
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(distance_.size());
       ++i) {
    if (distance_[i] == kUnreachable) {
      throw std::logic_error("disconnected topology");
    }
  }
}

namespace {
// Port index on `here` whose neighbor is `next`.
std::uint32_t port_to(const Topology& t, NodeId here, NodeId next) {
  for (std::uint32_t p = 0; p < t.port_count(here); ++p) {
    if (t.neighbor(here, p).node == next) return p;
  }
  throw std::logic_error("dimension-order routing picked a non-neighbor");
}
}  // namespace

std::uint32_t Topology::route_dimension_order(NodeId here, NodeId dest) const {
  const auto n = node_count();
  switch (kind_) {
    case TopologyKind::kRing: {
      const auto h = static_cast<std::uint32_t>(here);
      const auto d = static_cast<std::uint32_t>(dest);
      const std::uint32_t fwd = (d + n - h) % n;
      const std::uint32_t bwd = (h + n - d) % n;
      const std::uint32_t next =
          fwd <= bwd ? (h + 1) % n : (h + n - 1) % n;
      return port_to(*this, here, static_cast<NodeId>(next));
    }
    case TopologyKind::kMesh2D:
    case TopologyKind::kTorus2D: {
      const auto h = static_cast<std::uint32_t>(here);
      const auto d = static_cast<std::uint32_t>(dest);
      const std::uint32_t hx = h % width_;
      const std::uint32_t hy = h / width_;
      const std::uint32_t dx = d % width_;
      const std::uint32_t dy = d / width_;
      std::uint32_t nx = hx;
      std::uint32_t ny = hy;
      if (hx != dx) {
        // Route X first.
        if (kind_ == TopologyKind::kMesh2D) {
          nx = hx < dx ? hx + 1 : hx - 1;
        } else {
          const std::uint32_t fwd = (dx + width_ - hx) % width_;
          const std::uint32_t bwd = (hx + width_ - dx) % width_;
          nx = fwd <= bwd ? (hx + 1) % width_ : (hx + width_ - 1) % width_;
        }
      } else {
        if (kind_ == TopologyKind::kMesh2D) {
          ny = hy < dy ? hy + 1 : hy - 1;
        } else {
          const std::uint32_t fwd = (dy + height_ - hy) % height_;
          const std::uint32_t bwd = (hy + height_ - dy) % height_;
          ny = fwd <= bwd ? (hy + 1) % height_ : (hy + height_ - 1) % height_;
        }
      }
      return port_to(*this, here, static_cast<NodeId>(ny * width_ + nx));
    }
    case TopologyKind::kHypercube: {
      const std::uint32_t diff = static_cast<std::uint32_t>(here) ^
                                 static_cast<std::uint32_t>(dest);
      // e-cube: resolve the lowest differing dimension first; port k is
      // dimension k by construction.
      std::uint32_t k = 0;
      while (((diff >> k) & 1u) == 0) ++k;
      return k;
    }
    case TopologyKind::kStar: {
      if (here == 0) return port_to(*this, here, dest);
      return 0;  // spoke's only port leads to the hub
    }
    case TopologyKind::kFullyConnected:
      return port_to(*this, here, dest);
  }
  throw std::logic_error("unknown topology kind");
}

std::vector<std::uint32_t> Topology::path(machine::RoutingAlgorithm algo,
                                          NodeId src, NodeId dst) const {
  std::vector<std::uint32_t> out;
  NodeId here = src;
  const std::uint32_t limit = 4 * node_count() + 8;
  while (here != dst) {
    if (out.size() > limit) {
      throw std::logic_error("routing livelock detected");
    }
    const std::uint32_t p = route(algo, here, dst);
    out.push_back(p);
    here = neighbor(here, p).node;
  }
  return out;
}

std::uint32_t Topology::diameter() const {
  std::uint32_t d = 0;
  for (std::uint32_t x : distance_) d = std::max(d, x);
  return d;
}

bool Topology::is_wrap_edge(NodeId u, NodeId v) const {
  const auto n = node_count();
  switch (kind_) {
    case TopologyKind::kRing: {
      const auto a = static_cast<std::uint32_t>(u);
      const auto b = static_cast<std::uint32_t>(v);
      return n > 2 && ((a == n - 1 && b == 0) || (a == 0 && b == n - 1));
    }
    case TopologyKind::kTorus2D: {
      const auto a = static_cast<std::uint32_t>(u);
      const auto b = static_cast<std::uint32_t>(v);
      const std::uint32_t ax = a % width_;
      const std::uint32_t ay = a / width_;
      const std::uint32_t bx = b % width_;
      const std::uint32_t by = b / width_;
      if (ay == by && width_ > 2 &&
          ((ax == width_ - 1 && bx == 0) || (ax == 0 && bx == width_ - 1))) {
        return true;
      }
      if (ax == bx && height_ > 2 &&
          ((ay == height_ - 1 && by == 0) ||
           (ay == 0 && by == height_ - 1))) {
        return true;
      }
      return false;
    }
    default:
      return false;
  }
}

int Topology::edge_dimension(NodeId u, NodeId v) const {
  if (kind_ != TopologyKind::kMesh2D && kind_ != TopologyKind::kTorus2D) {
    return 0;
  }
  const auto a = static_cast<std::uint32_t>(u);
  const auto b = static_cast<std::uint32_t>(v);
  return (a / width_) == (b / width_) ? 0 : 1;
}

Topology::PartitionMap Topology::partition_blocks(std::uint32_t parts) const {
  const std::uint32_t n = node_count();
  parts = std::max(1u, std::min(parts, n));

  PartitionMap map;
  map.partition_count = parts;
  map.node_to_partition.resize(n);

  if ((kind_ == TopologyKind::kMesh2D || kind_ == TopologyKind::kTorus2D) &&
      width_ > 0 && height_ > 0) {
    // Tile the grid with px * py axis-aligned rectangles, choosing the
    // factorization of `parts` closest to the grid's own aspect ratio so
    // the blocks are as square as possible (shortest perimeter = fewest
    // cross-partition links).  Because the blocks are axis-aligned and
    // contiguous in both x and y, every XY (dimension-order) route between
    // two nodes of the same block stays inside the block.
    std::uint32_t best_px = 0;
    std::uint32_t best_py = 0;
    std::uint64_t best_score = 0;
    for (std::uint32_t px = 1; px <= parts; ++px) {
      if (parts % px != 0) continue;
      const std::uint32_t py = parts / px;
      if (px > width_ || py > height_) continue;
      // Minimize the total block perimeter ~ py*width + px*height.
      const std::uint64_t score = static_cast<std::uint64_t>(py) * width_ +
                                  static_cast<std::uint64_t>(px) * height_;
      if (best_px == 0 || score < best_score) {
        best_px = px;
        best_py = py;
        best_score = score;
      }
    }
    if (best_px != 0) {
      const std::uint32_t px = best_px;
      const std::uint32_t py = best_py;
      for (std::uint32_t y = 0; y < height_; ++y) {
        for (std::uint32_t x = 0; x < width_; ++x) {
          // Balanced tiling: column band x*px/width, row band y*py/height.
          const std::uint32_t bx =
              static_cast<std::uint32_t>(static_cast<std::uint64_t>(x) * px /
                                         width_);
          const std::uint32_t by =
              static_cast<std::uint32_t>(static_cast<std::uint64_t>(y) * py /
                                         height_);
          map.node_to_partition[y * width_ + x] = by * px + bx;
        }
      }
      map.mapping =
          "grid:" + std::to_string(px) + "x" + std::to_string(py);
      return map;
    }
    // No factorization fits (e.g. parts prime and > width, > height): fall
    // through to linear index blocks, which are still contiguous runs.
  }

  for (std::uint32_t i = 0; i < n; ++i) {
    map.node_to_partition[i] =
        static_cast<std::uint32_t>(static_cast<std::uint64_t>(i) * parts / n);
  }
  map.mapping = "linear:" + std::to_string(parts);
  return map;
}

std::uint32_t Topology::link_count() const {
  std::uint32_t total = 0;
  for (const auto& p : ports_) {
    total += static_cast<std::uint32_t>(p.size());
  }
  return total;  // each bidirectional pair counts as two unidirectional links
}

}  // namespace merm::network
