// Physical interconnect topologies.
//
// "The nodes are connected in a topology reflecting the physical
// interconnect of the multicomputer" (Section 4.2).  A Topology is a static
// port-level graph: node u's output port p connects to node v's input port
// q.  Routing support covers the two configurable strategies of the router
// model: arithmetic dimension-order routing (XY on mesh/torus, e-cube on
// hypercube, shortest direction on ring) and table-based shortest-path
// routing computed by BFS with deterministic tie-breaking.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "machine/params.hpp"
#include "trace/operation.hpp"

namespace merm::network {

using trace::NodeId;

class Topology {
 public:
  /// Builds the port graph for the given parameters.  Throws on invalid
  /// dimensions (e.g. non-power-of-two hypercube).
  static Topology make(const machine::TopologyParams& params);

  machine::TopologyKind kind() const { return kind_; }
  std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(ports_.size());
  }

  struct PortTarget {
    NodeId node = trace::kNoNode;
    std::uint32_t port = 0;
  };

  /// Number of ports (links) on `node`.
  std::uint32_t port_count(NodeId node) const {
    return static_cast<std::uint32_t>(ports_[static_cast<std::size_t>(node)].size());
  }

  /// The (node, input-port) reached through `node`'s output port `port`.
  PortTarget neighbor(NodeId node, std::uint32_t port) const {
    return ports_[static_cast<std::size_t>(node)][port];
  }

  /// Next output port from `here` towards `dest` under dimension-order
  /// routing.  Precondition: here != dest.
  std::uint32_t route_dimension_order(NodeId here, NodeId dest) const;

  /// Next output port under BFS shortest-path routing (lowest-port
  /// tie-break).  Precondition: here != dest.
  std::uint32_t route_shortest_path(NodeId here, NodeId dest) const {
    return next_port_[static_cast<std::size_t>(here) * node_count() +
                      static_cast<std::size_t>(dest)];
  }

  std::uint32_t route(machine::RoutingAlgorithm algo, NodeId here,
                      NodeId dest) const {
    return algo == machine::RoutingAlgorithm::kDimensionOrder
               ? route_dimension_order(here, dest)
               : route_shortest_path(here, dest);
  }

  /// Full path (sequence of output ports) from src to dst; empty when
  /// src == dst.  Throws if the routing function fails to converge (a
  /// routing bug: surfaced loudly rather than hanging the simulation).
  std::vector<std::uint32_t> path(machine::RoutingAlgorithm algo, NodeId src,
                                  NodeId dst) const;

  /// Hop distance under shortest-path routing.
  std::uint32_t hop_distance(NodeId a, NodeId b) const {
    return distance_[static_cast<std::size_t>(a) * node_count() +
                     static_cast<std::size_t>(b)];
  }

  /// Network diameter (max shortest-path distance).
  std::uint32_t diameter() const;

  /// Total number of unidirectional links.
  std::uint32_t link_count() const;

  /// True when the edge u -> v is a wrap-around ("dateline") edge of a ring
  /// or torus dimension.  Wormhole packets switch virtual channel when
  /// crossing a dateline to break cyclic channel dependencies.
  bool is_wrap_edge(NodeId u, NodeId v) const;

  /// Movement axis of the edge u -> v: 0 for X (or the ring), 1 for Y.
  /// Used to reset the dateline VC when dimension-order routing switches
  /// dimensions.  Returns 0 for non-grid topologies.
  int edge_dimension(NodeId u, NodeId v) const;

  /// A node -> partition assignment for coarse-grained PDES, plus a human
  /// readable description of how it was derived (recorded in RunResult so
  /// sweeps can report the mapping a measurement was taken under).
  struct PartitionMap {
    std::vector<std::uint32_t> node_to_partition;  ///< [node]
    std::uint32_t partition_count = 1;
    std::string mapping;  ///< e.g. "grid:2x2" or "linear:4"
  };

  /// Splits the nodes into `parts` contiguous blocks (clamped to
  /// [1, node_count]).  Mesh/torus grids are tiled with axis-aligned
  /// rectangular sub-grids when `parts` factors into px * py with px <=
  /// width and py <= height (XY routes between same-block nodes then stay
  /// inside the block, maximizing intra-partition traffic); everything else
  /// — and grids where no factorization fits — falls back to linear index
  /// blocks.  Every partition is non-empty and the assignment depends only
  /// on the topology and `parts`, never on worker count.
  PartitionMap partition_blocks(std::uint32_t parts) const;

 private:
  Topology() = default;

  void add_bidirectional(NodeId a, NodeId b);
  void compute_tables();

  machine::TopologyKind kind_ = machine::TopologyKind::kMesh2D;
  std::uint32_t width_ = 0;   ///< mesh/torus only
  std::uint32_t height_ = 0;  ///< mesh/torus only
  std::vector<std::vector<PortTarget>> ports_;
  std::vector<std::uint32_t> next_port_;  ///< [here * n + dest]
  std::vector<std::uint32_t> distance_;   ///< [a * n + b]
};

}  // namespace merm::network
