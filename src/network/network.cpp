#include "network/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/pdes.hpp"

namespace merm::network {

using machine::Switching;

Link::Link(sim::Simulator& sim, const machine::LinkParams& params)
    : sim_(sim), params_(params) {
  const std::uint32_t vcs = std::max<std::uint32_t>(1, params.virtual_channels);
  vcs_.reserve(vcs);
  for (std::uint32_t v = 0; v < vcs; ++v) {
    vcs_.push_back(std::make_unique<sim::FifoResource>());
  }
}

sim::Task<> Link::acquire(std::uint32_t vc) { co_await vcs_[vc]->acquire(); }

void Link::release(std::uint32_t vc) { vcs_[vc]->release(); }

sim::Tick Link::serialization(std::uint64_t bytes) const {
  const double seconds =
      static_cast<double>(bytes) / params_.bandwidth_bytes_per_s;
  return static_cast<sim::Tick>(seconds *
                                    static_cast<double>(sim::kTicksPerSecond) +
                                0.5);
}

Network::Network(sim::Simulator& sim, const machine::TopologyParams& topo,
                 const machine::RouterParams& router,
                 const machine::LinkParams& link)
    : sim_(sim),
      router_(router),
      link_params_(link),
      router_clock_(router.frequency_hz),
      topology_(Topology::make(topo)) {
  links_.resize(topology_.node_count());
  for (std::uint32_t n = 0; n < topology_.node_count(); ++n) {
    const auto node = static_cast<NodeId>(n);
    links_[n].reserve(topology_.port_count(node));
    for (std::uint32_t p = 0; p < topology_.port_count(node); ++p) {
      links_[n].push_back(std::make_unique<Link>(sim_, link_params_));
    }
  }
}

std::uint32_t Network::packet_count(std::uint64_t bytes) const {
  if (bytes == 0) return 1;  // zero-payload control message: one packet
  return static_cast<std::uint32_t>(
      (bytes + router_.max_packet_bytes - 1) / router_.max_packet_bytes);
}

sim::Tick Network::zero_load_packet_latency(std::uint64_t payload_bytes,
                                            std::uint32_t hops) const {
  const std::uint64_t pkt = payload_bytes + router_.header_bytes;
  const sim::Tick t_r = router_clock_.to_ticks(router_.routing_decision_cycles);
  Link probe(sim_, link_params_);
  const sim::Tick t_ser = probe.serialization(pkt);
  const sim::Tick t_flit = probe.serialization(router_.flit_bytes);
  const sim::Tick t_prop = link_params_.propagation_delay;
  switch (router_.switching) {
    case Switching::kStoreAndForward:
      return hops * (t_r + t_ser + t_prop);
    case Switching::kWormhole:
    case Switching::kVirtualCutThrough:
      // Header pipelines hop by hop; the body (everything behind the header
      // flit) then streams through in one serialization time.
      return hops * (t_r + t_flit + t_prop) +
             (t_ser > t_flit ? t_ser - t_flit : 0);
  }
  return 0;
}

bool Network::plan_route(NodeId src, NodeId dst, std::vector<Hop>& hops,
                         bool& rerouted) const {
  std::vector<std::uint32_t> route;
  if (fault_ != nullptr && fault_->degraded()) {
    // Arithmetic routing degrades to table routing: walk the injector's
    // fault-aware shortest-path table around dead links/nodes.
    NodeId here = src;
    const std::size_t limit = 4 * topology_.node_count() + 8;
    while (here != dst) {
      const std::uint32_t port = fault_->next_port(here, dst);
      if (port == kNoPort || route.size() >= limit) return false;
      route.push_back(port);
      here = topology_.neighbor(here, port).node;
    }
    rerouted = route != topology_.path(router_.routing, src, dst);
  } else {
    route = topology_.path(router_.routing, src, dst);
  }

  // Dateline virtual-channel selection: a packet starts each dimension on
  // VC 0 and moves to VC 1 when it crosses a wrap-around edge, breaking the
  // cyclic channel dependencies of rings and tori under wormhole switching.
  hops.clear();
  hops.reserve(route.size());
  NodeId here = src;
  std::uint32_t vc = 0;
  int prev_dim = -1;
  for (std::uint32_t port : route) {
    Link& link = *links_[static_cast<std::size_t>(here)][port];
    const NodeId next = topology_.neighbor(here, port).node;
    const int dim = topology_.edge_dimension(here, next);
    if (dim != prev_dim) {
      vc = 0;
      prev_dim = dim;
    }
    if (topology_.is_wrap_edge(here, next)) {
      vc = std::min(vc + 1, link.vc_count() - 1);
    }
    hops.push_back(Hop{&link, vc, here, port, next});
    here = next;
  }
  return true;
}

sim::Task<TransmitOutcome> Network::transmit(NodeId src, NodeId dst,
                                             std::uint64_t bytes,
                                             bool control) {
  messages.add();
  if (src == dst) {
    bytes_delivered.add(bytes);
    co_return TransmitOutcome{};
  }

  TransmitOutcome out;
  std::vector<Hop> hops;
  if (fault_ != nullptr) {
    if (!fault_->node_usable(src) || !fault_->node_usable(dst) ||
        !fault_->reachable(src, dst)) {
      messages_unreachable.add();
      out.delivered = false;
      if (trace_ != nullptr) {
        trace_->instant(trace_tracks_[src], obs::SpanKind::kDrop, sim_.now(),
                        static_cast<std::int64_t>(bytes), dst);
      }
      co_return out;
    }
    if (!control && fault_->draw_drop()) {
      // Lost in transit: the sender notices only via ack timeout.
      messages_dropped.add();
      out.delivered = false;
      if (trace_ != nullptr) {
        trace_->instant(trace_tracks_[src], obs::SpanKind::kDrop, sim_.now(),
                        static_cast<std::int64_t>(bytes), dst);
      }
      co_return out;
    }
  }
  if (!plan_route(src, dst, hops, out.rerouted)) {
    messages_unreachable.add();
    out.delivered = false;
    if (trace_ != nullptr) {
      trace_->instant(trace_tracks_[src], obs::SpanKind::kDrop, sim_.now(),
                      static_cast<std::int64_t>(bytes), dst);
    }
    co_return out;
  }
  if (out.rerouted) {
    messages_rerouted.add();
    if (trace_ != nullptr) {
      trace_->instant(trace_tracks_[src], obs::SpanKind::kReroute, sim_.now(),
                      static_cast<std::int64_t>(bytes), dst);
    }
  }

  const sim::Tick start = sim_.now();
  const std::uint32_t n_packets = packet_count(bytes);
  const std::uint64_t full_payload = router_.max_packet_bytes;

  MessageState st;
  st.remaining = n_packets;
  std::uint64_t left = bytes;
  for (std::uint32_t i = 0; i < n_packets; ++i) {
    const std::uint64_t payload = std::min<std::uint64_t>(left, full_payload);
    left -= payload;
    sim_.spawn(packet_process(hops, payload, &st));
  }
  co_await st.done;

  if (st.lost > 0) {
    // A link or node died under the message mid-flight.
    messages_dropped.add();
    out.delivered = false;
    if (trace_ != nullptr) {
      trace_->span(trace_tracks_[src], obs::SpanKind::kLinkTransit, start,
                   sim_.now(), static_cast<std::int64_t>(bytes), dst, 0);
      trace_->instant(trace_tracks_[src], obs::SpanKind::kDrop, sim_.now(),
                      static_cast<std::int64_t>(bytes), dst);
    }
    co_return out;
  }
  bytes_delivered.add(bytes);
  if (fault_ != nullptr && !control && fault_->draw_corrupt()) {
    messages_corrupted.add();
    out.corrupted = true;
    out.delivered = false;
    if (trace_ != nullptr) {
      trace_->span(trace_tracks_[src], obs::SpanKind::kLinkTransit, start,
                   sim_.now(), static_cast<std::int64_t>(bytes), dst, 0);
      trace_->instant(trace_tracks_[src], obs::SpanKind::kDrop, sim_.now(),
                      static_cast<std::int64_t>(bytes), dst);
    }
    co_return out;
  }
  message_latency_ticks.add(static_cast<double>(sim_.now() - start));
  message_hops.add(static_cast<double>(hops.size()));
  latency_histogram.add((sim_.now() - start) / sim::kTicksPerNanosecond);
  if (trace_ != nullptr) {
    trace_->span(trace_tracks_[src], obs::SpanKind::kLinkTransit, start,
                 sim_.now(), static_cast<std::int64_t>(bytes), dst, 1);
  }
  co_return out;
}

sim::Process Network::packet_process(const std::vector<Hop>& hops,
                                     std::uint64_t payload_bytes,
                                     MessageState* st) {
  packets.add();
  const std::uint64_t pkt_bytes = payload_bytes + router_.header_bytes;
  const sim::Tick t_r = router_clock_.to_ticks(router_.routing_decision_cycles);
  const sim::Tick t_prop = link_params_.propagation_delay;
  bool lost = false;

  switch (router_.switching) {
    case Switching::kStoreAndForward: {
      // One link held at a time: VC 0 suffices (no hold-and-wait chains).
      for (const Hop& h : hops) {
        if (!hop_usable(h)) {
          lost = true;
          break;
        }
        co_await h.link->acquire(0);
        if (!hop_usable(h)) {  // died while the packet queued for the link
          h.link->release(0);
          lost = true;
          break;
        }
        const sim::Tick hold = t_r + h.link->serialization(pkt_bytes) + t_prop;
        co_await sim_.delay(hold);
        h.link->add_busy(hold);
        h.link->packets.add();
        h.link->bytes.add(pkt_bytes);
        h.link->release(0);
      }
      break;
    }
    case Switching::kWormhole:
    case Switching::kVirtualCutThrough: {
      const sim::Tick t_flit =
          hops.front().link->serialization(router_.flit_bytes);
      const sim::Tick t_full = hops.front().link->serialization(pkt_bytes);
      // Body = packet minus the header flit already accounted per hop.
      const sim::Tick t_body = t_full > t_flit ? t_full - t_flit : 0;
      const bool cut_through_buffers =
          router_.switching == Switching::kVirtualCutThrough &&
          static_cast<std::uint64_t>(router_.input_buffer_flits) *
                  router_.flit_bytes >=
              pkt_bytes;

      std::vector<std::pair<Link*, std::uint32_t>> held;
      held.reserve(hops.size());
      std::vector<sim::Tick> header_passed;
      header_passed.reserve(hops.size());
      for (const Hop& h : hops) {
        if (!hop_usable(h)) {
          lost = true;
          break;
        }
        Link* link = h.link;
        const std::uint32_t vc = h.vc;
        co_await link->acquire(vc);
        if (!hop_usable(h)) {
          link->release(vc);
          lost = true;
          break;
        }
        co_await sim_.delay(t_r + t_flit + t_prop);
        header_passed.push_back(sim_.now());
        link->packets.add();
        link->bytes.add(pkt_bytes);
        if (cut_through_buffers) {
          // Tail passes this link t_body after the header did; the packet is
          // then fully buffered downstream and the link frees up.
          link->add_busy(t_body);
          sim_.schedule_in(t_body, [link, vc] { link->release(vc); });
        } else {
          held.emplace_back(link, vc);
        }
      }
      if (!lost) {
        // Body streams behind the header to the destination.
        co_await sim_.delay(t_body);
      }
      for (std::size_t i = 0; i < held.size(); ++i) {
        // held[i] was acquired at hop i; it has been occupied since its
        // header passed until the tail drained at the destination (or the
        // worm was torn down by a fault).
        held[i].first->add_busy(sim_.now() - header_passed[i] + t_flit);
        held[i].first->release(held[i].second);
      }
      break;
    }
  }

  if (lost) {
    packets_dropped.add();
    ++st->lost;
  }
  if (--st->remaining == 0) {
    st->done.trigger();
  }
}

void Network::enable_pdes(sim::pdes::Engine& engine,
                          std::vector<std::uint32_t> node_partition) {
  const std::uint32_t n = topology_.node_count();
  if (node_partition.empty()) {
    if (engine.partition_count() != n) {
      throw std::invalid_argument(
          "network: without a node->partition map the PDES engine must "
          "carry one partition per node (" +
          std::to_string(engine.partition_count()) + " != " +
          std::to_string(n) + ")");
    }
    node_partition.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) node_partition[i] = i;
  }
  if (node_partition.size() != n) {
    throw std::invalid_argument(
        "network: node->partition map must cover every node (" +
        std::to_string(node_partition.size()) + " != " + std::to_string(n) +
        ")");
  }
  for (const std::uint32_t p : node_partition) {
    if (p >= engine.partition_count()) {
      throw std::invalid_argument(
          "network: node->partition map names partition " +
          std::to_string(p) + " but the engine has " +
          std::to_string(engine.partition_count()));
    }
  }
  pdes_ = &engine;
  part_ = std::move(node_partition);
  shards_.clear();
  shards_.resize(engine.partition_count());
  next_free_.assign(links_.size(), {});
  for (std::size_t i = 0; i < links_.size(); ++i) {
    next_free_[i].assign(links_[i].size(), 0);
  }
  pending_.clear();
  pending_.resize(engine.partition_count());
  pending_seq_.assign(engine.partition_count(), 0);
  engine.add_barrier_task([this] { resolve_pending(); });
}

sim::Tick Network::min_hop_lookahead() const {
  Link probe(sim_, link_params_);
  const sim::Tick t_r = router_clock_.to_ticks(router_.routing_decision_cycles);
  return t_r + probe.serialization(router_.header_bytes) +
         link_params_.propagation_delay;
}

sim::Tick Network::pdes_lookahead(
    const std::vector<std::uint32_t>& node_partition) const {
  const std::uint32_t n = topology_.node_count();
  std::uint32_t d_min = 0;
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) {
      if (node_partition[a] == node_partition[b]) continue;
      const std::uint32_t d = topology_.hop_distance(
          static_cast<NodeId>(a), static_cast<NodeId>(b));
      if (d_min == 0 || d < d_min) d_min = d;
    }
  }
  if (d_min == 0) return sim::kTickMax;  // nothing crosses a boundary
  return static_cast<sim::Tick>(d_min) * min_hop_lookahead();
}

Network::PdesVerdict Network::pdes_inject(
    NodeId src, NodeId dst, std::uint64_t bytes, bool control,
    std::function<void(bool delivered)> deliver) {
  const std::uint32_t sp = part_[static_cast<std::size_t>(src)];
  NetShard& shard = shards_[sp];
  shard.messages.add();
  PdesVerdict verdict;
  if (src == dst) {
    // Local delivery never leaves the partition.
    shard.bytes_delivered.add(bytes);
    verdict.injected = true;
    if (deliver) deliver(true);
    return verdict;
  }

  sim::Simulator& ssim = pdes_->sim(sp);
  obs::TraceSink* sink = pdes_sinks_.empty() ? nullptr : pdes_sinks_[sp];
  const auto drop_instant = [&] {
    if (sink != nullptr) {
      sink->instant(trace_tracks_[src], obs::SpanKind::kDrop, ssim.now(),
                    static_cast<std::int64_t>(bytes), dst);
    }
  };

  if (fault_ != nullptr) {
    if (!fault_->node_usable(src) || !fault_->node_usable(dst) ||
        !fault_->reachable(src, dst)) {
      shard.messages_unreachable.add();
      verdict.unreachable = true;
      drop_instant();
      return verdict;
    }
    if (!control && fault_->draw_drop_at(src)) {
      // Lost in transit: the sender notices only via ack timeout.
      shard.messages_dropped.add();
      verdict.dropped = true;
      drop_instant();
      return verdict;
    }
  }
  std::vector<Hop> hops;
  if (!plan_route(src, dst, hops, verdict.rerouted)) {
    shard.messages_unreachable.add();
    verdict.unreachable = true;
    drop_instant();
    return verdict;
  }
  if (verdict.rerouted) {
    shard.messages_rerouted.add();
    if (sink != nullptr) {
      sink->instant(trace_tracks_[src], obs::SpanKind::kReroute, ssim.now(),
                    static_cast<std::int64_t>(bytes), dst);
    }
  }

  // Contention model: each packet reserves every hop against the link
  // ledger (store-and-forward holds; wormhole never reaches this path).
  // When every hop of the route stays inside the source's partition —
  // links are owned by their from-node — the reservation happens right
  // now, on the owning worker, and the arrival is an ordinary local event.
  // A route that crosses a partition boundary (including a fault detour
  // through another partition's nodes) is parked and resolved at the next
  // window barrier, so the shared ledger entries are only ever touched
  // single-threaded.  A cross route covers >= d_min hops by construction,
  // so its arrival always clears the current window.
  bool local = true;
  for (const Hop& h : hops) {
    if (part_[static_cast<std::size_t>(h.from)] != sp ||
        part_[static_cast<std::size_t>(h.to)] != sp) {
      local = false;
      break;
    }
  }
  verdict.injected = true;
  if (local) {
    const sim::Tick start = ssim.now();
    const sim::Tick arrival = reserve_route(hops, bytes, start, shard);
    const auto hop_count = static_cast<std::uint32_t>(hops.size());
    ssim.schedule_at(arrival, [this, src, dst, bytes, hop_count, control,
                               start, d = std::move(deliver)] {
      pdes_arrive(src, dst, bytes, hop_count, control, start, d);
    });
  } else {
    pending_[sp].push_back(PendingXfer{ssim.now(), sp, pending_seq_[sp]++,
                                       src, dst, bytes, control,
                                       std::move(hops), std::move(deliver)});
  }
  return verdict;
}

sim::Tick Network::reserve_route(const std::vector<Hop>& hops,
                                 std::uint64_t bytes, sim::Tick start,
                                 NetShard& shard) {
  // Store-and-forward reservations.  Packet i enters hop h when it has
  // fully arrived there (ready) and the link is free (next_free); both the
  // serial FIFO grant order and this ledger process a single per-link
  // stream in the same order, so on workloads where each directed link
  // carries one message at a time the times match the serial model
  // exactly.  Concurrent streams over one link are serialized in
  // resolution order rather than simulated-request order — the documented
  // approximation.
  const sim::Tick t_r = router_clock_.to_ticks(router_.routing_decision_cycles);
  const sim::Tick t_prop = link_params_.propagation_delay;
  const std::uint32_t n_packets = packet_count(bytes);
  shard.packets.add(n_packets);
  std::uint64_t left = bytes;
  sim::Tick arrival = start;
  for (std::uint32_t i = 0; i < n_packets; ++i) {
    const std::uint64_t payload =
        std::min<std::uint64_t>(left, router_.max_packet_bytes);
    left -= payload;
    const std::uint64_t pkt = payload + router_.header_bytes;
    sim::Tick ready = start;
    for (const Hop& h : hops) {
      const sim::Tick hold = t_r + h.link->serialization(pkt) + t_prop;
      sim::Tick& free_at =
          next_free_[static_cast<std::size_t>(h.from)][h.port];
      const sim::Tick depart = ready > free_at ? ready : free_at;
      free_at = depart + hold;
      ready = depart + hold;
      LinkDelta& d = shard.link_deltas[link_key(h.from, h.port)];
      d.packets += 1;
      d.bytes += pkt;
      d.busy += hold;
    }
    arrival = ready;
  }
  return arrival;
}

void Network::resolve_pending() {
  std::vector<PendingXfer> all;
  for (std::vector<PendingXfer>& box : pending_) {
    all.insert(all.end(), std::make_move_iterator(box.begin()),
               std::make_move_iterator(box.end()));
    box.clear();
  }
  if (all.empty()) return;
  std::sort(all.begin(), all.end(),
            [](const PendingXfer& a, const PendingXfer& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.src_part != b.src_part) return a.src_part < b.src_part;
              return a.seq < b.seq;
            });
  for (PendingXfer& x : all) {
    const sim::Tick arrival =
        reserve_route(x.hops, x.bytes, x.when, shards_[x.src_part]);
    sim::Simulator& dsim =
        pdes_->sim(part_[static_cast<std::size_t>(x.dst)]);
    const auto hop_count = static_cast<std::uint32_t>(x.hops.size());
    dsim.schedule_at(arrival, [this, src = x.src, dst = x.dst,
                               bytes = x.bytes, hop_count,
                               control = x.control, start = x.when,
                               d = std::move(x.deliver)] {
      pdes_arrive(src, dst, bytes, hop_count, control, start, d);
    });
  }
}

void Network::pdes_arrive(NodeId src, NodeId dst, std::uint64_t bytes,
                          std::uint32_t hop_count, bool control,
                          sim::Tick start,
                          const std::function<void(bool)>& deliver) {
  const std::uint32_t dp = part_[static_cast<std::size_t>(dst)];
  NetShard& shard = shards_[dp];
  const sim::Tick now = pdes_->sim(dp).now();
  obs::TraceSink* sink = pdes_sinks_.empty() ? nullptr : pdes_sinks_[dp];
  // Bytes count before the corruption draw, matching the serial order.
  shard.bytes_delivered.add(bytes);
  if (fault_ != nullptr && !control && fault_->draw_corrupt_at(dst)) {
    shard.messages_corrupted.add();
    if (sink != nullptr) {
      sink->span(trace_tracks_[src], obs::SpanKind::kLinkTransit, start, now,
                 static_cast<std::int64_t>(bytes), dst, 0);
      sink->instant(trace_tracks_[src], obs::SpanKind::kDrop, now,
                    static_cast<std::int64_t>(bytes), dst);
    }
    if (deliver) deliver(false);
    return;
  }
  shard.message_latency_ticks.add(static_cast<double>(now - start));
  shard.message_hops.add(static_cast<double>(hop_count));
  shard.latency_histogram.add((now - start) / sim::kTicksPerNanosecond);
  if (sink != nullptr) {
    sink->span(trace_tracks_[src], obs::SpanKind::kLinkTransit, start, now,
               static_cast<std::int64_t>(bytes), dst, 1);
  }
  if (deliver) deliver(true);
}

void Network::attach_trace_pdes(std::vector<obs::TraceSink*> sinks,
                                std::vector<obs::TrackId> tracks) {
  pdes_sinks_ = std::move(sinks);
  trace_tracks_ = std::move(tracks);
}

void Network::fold_pdes_shards() {
  for (NetShard& s : shards_) {
    messages.add(s.messages.value());
    packets.add(s.packets.value());
    bytes_delivered.add(s.bytes_delivered.value());
    message_latency_ticks.merge(s.message_latency_ticks);
    message_hops.merge(s.message_hops);
    latency_histogram.merge(s.latency_histogram);
    messages_dropped.add(s.messages_dropped.value());
    messages_unreachable.add(s.messages_unreachable.value());
    messages_corrupted.add(s.messages_corrupted.value());
    messages_rerouted.add(s.messages_rerouted.value());
    for (const auto& [key, d] : s.link_deltas) {
      Link& link = link_at(static_cast<NodeId>(key >> 32),
                           static_cast<std::uint32_t>(key & 0xffffffffu));
      link.packets.add(d.packets);
      link.bytes.add(d.bytes);
      link.add_busy(d.busy);
    }
    s = NetShard{};  // fold exactly once
  }
}

double Network::mean_link_utilization(sim::Tick now) const {
  if (now == 0) return 0.0;
  std::uint64_t busy = 0;
  std::uint64_t count = 0;
  for (const auto& node_links : links_) {
    for (const auto& link : node_links) {
      busy += link->busy_ticks();
      ++count;
    }
  }
  return count == 0 ? 0.0
                    : static_cast<double>(busy) /
                          (static_cast<double>(count) *
                           static_cast<double>(now));
}

void Network::register_stats(stats::StatRegistry& reg,
                             const std::string& prefix) {
  reg.register_counter(prefix + ".messages", &messages);
  reg.register_counter(prefix + ".packets", &packets);
  reg.register_counter(prefix + ".bytes", &bytes_delivered);
  reg.register_accumulator(prefix + ".latency_ticks", &message_latency_ticks);
  reg.register_accumulator(prefix + ".hops", &message_hops);
  reg.register_histogram(prefix + ".latency_ns", &latency_histogram);
  if (fault_ != nullptr) {
    reg.register_counter(prefix + ".dropped", &messages_dropped);
    reg.register_counter(prefix + ".unreachable", &messages_unreachable);
    reg.register_counter(prefix + ".corrupted", &messages_corrupted);
    reg.register_counter(prefix + ".rerouted", &messages_rerouted);
    reg.register_counter(prefix + ".packets_dropped", &packets_dropped);
  }
}

std::size_t Network::footprint_bytes() const {
  std::size_t total = sizeof(Network);
  for (const auto& node_links : links_) {
    total += node_links.size() * sizeof(Link);
  }
  total += topology_.node_count() * topology_.node_count() * 2 *
           sizeof(std::uint32_t);  // routing tables
  return total;
}

}  // namespace merm::network
