// Fault-injection hook interface for the network layer.
//
// The network must not depend on the fault subsystem (merm_fault links
// against merm_network, not the other way around), so the injection points
// are expressed as this abstract interface.  `fault::FaultPlan` implements
// it; `Network::set_fault_injector` installs it.  A null injector means a
// perfect interconnect — the seed behaviour, bit-identical to before the
// fault subsystem existed (no RNG draws, no table walks).
//
// All queries are answered from state that only mutates inside the
// simulator's event loop, so results are deterministic per seed regardless
// of how many host threads a sweep uses.
#pragma once

#include <cstdint>
#include <limits>

#include "trace/operation.hpp"

namespace merm::network {

/// Sentinel port meaning "no usable route" in degraded routing tables.
inline constexpr std::uint32_t kNoPort =
    std::numeric_limits<std::uint32_t>::max();

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Is the unidirectional link out of `from` through `port` alive?
  virtual bool link_usable(trace::NodeId from, std::uint32_t port) const = 0;

  /// Is the node itself alive (can source, sink, or forward traffic)?
  virtual bool node_usable(trace::NodeId node) const = 0;

  /// True while any link or node is currently down.  When false the network
  /// routes arithmetically exactly as in the fault-free case.
  virtual bool degraded() const = 0;

  /// Can `dst` currently be reached from `src` over live links/nodes?
  virtual bool reachable(trace::NodeId src, trace::NodeId dst) const = 0;

  /// Fault-aware shortest-path routing table: the output port to take from
  /// `here` towards `dst`, avoiding dead elements.  kNoPort if unreachable.
  virtual std::uint32_t next_port(trace::NodeId here,
                                  trace::NodeId dst) const = 0;

  /// One Bernoulli draw per data message: silently lose it in transit?
  /// Non-const: advances the plan's deterministic RNG.
  virtual bool draw_drop() = 0;

  /// One Bernoulli draw per delivered data message: arrived corrupted (the
  /// NIC discards it, forcing the sender's retry path)?
  virtual bool draw_corrupt() = 0;

  /// PDES variants of the draws: taken from a per-node stream owned by the
  /// partition that calls them (drop at the source, corruption at the
  /// destination), so draw order — and therefore every outcome — is
  /// independent of how cross-node events interleave.  Serial injectors can
  /// keep the single-stream defaults.
  virtual bool draw_drop_at(trace::NodeId /*src*/) { return draw_drop(); }
  virtual bool draw_corrupt_at(trace::NodeId /*dst*/) { return draw_corrupt(); }
};

}  // namespace merm::network
