// The communication network: routers, links, and the three switching
// strategies of the router model (Section 4.2).
//
// A message is split into packets (max_packet_bytes of payload plus a
// header); each packet traverses its deterministic route as a coroutine
// process, contending for unidirectional links which are FIFO-granted
// resources.  The switching strategy decides link hold times:
//
//  - store-and-forward: each hop holds its link for routing + full packet
//    serialization + propagation; hops are sequential.
//  - wormhole: links are acquired in path order and all held until the tail
//    drains at the destination; per-hop cost is routing + one flit +
//    propagation, with a single end-to-end serialization of the body.
//    Blocked headers therefore stall the entire held path — wormhole's
//    signature congestion behaviour.
//  - virtual cut-through: like wormhole, but when the downstream input
//    buffer can hold the whole packet, the upstream link is released as soon
//    as the tail has passed it; with undersized buffers VCT degenerates to
//    wormhole (exactly the real mechanism).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "machine/params.hpp"
#include "network/topology.hpp"
#include "sim/coro.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "stats/stats.hpp"

namespace merm::network {

/// One unidirectional link: bandwidth + propagation delay, multiplexed into
/// `virtual_channels` independently-arbitrated virtual channels.  Each VC is
/// a FIFO-granted resource; modelling simplification: a VC in use gets the
/// full link bandwidth (no per-flit interleaving between VCs).
class Link {
 public:
  Link(sim::Simulator& sim, const machine::LinkParams& params);

  std::uint32_t vc_count() const {
    return static_cast<std::uint32_t>(vcs_.size());
  }
  sim::Task<> acquire(std::uint32_t vc = 0);
  void release(std::uint32_t vc = 0);

  /// Time to clock `bytes` onto the wire.
  sim::Tick serialization(std::uint64_t bytes) const;
  sim::Tick propagation() const { return params_.propagation_delay; }

  void add_busy(sim::Tick t) { busy_ticks_ += t; }
  sim::Tick busy_ticks() const { return busy_ticks_; }

  stats::Counter packets;
  stats::Counter bytes;

 private:
  sim::Simulator& sim_;
  machine::LinkParams params_;
  std::vector<std::unique_ptr<sim::FifoResource>> vcs_;
  sim::Tick busy_ticks_ = 0;
};

class Network {
 public:
  Network(sim::Simulator& sim, const machine::TopologyParams& topo,
          const machine::RouterParams& router,
          const machine::LinkParams& link);

  const Topology& topology() const { return topology_; }
  std::uint32_t node_count() const { return topology_.node_count(); }

  /// Simulates the delivery of a `bytes`-byte message; completes, in
  /// simulated time, when the last packet has been ejected at `dst`.
  /// src == dst completes immediately (local delivery is the node's
  /// business).
  sim::Task<> transmit(NodeId src, NodeId dst, std::uint64_t bytes);

  /// Packets a message of `bytes` splits into.
  std::uint32_t packet_count(std::uint64_t bytes) const;

  /// Zero-load latency of a single `bytes`-byte packet over `hops` hops —
  /// the analytic formula the switching tests validate against.
  sim::Tick zero_load_packet_latency(std::uint64_t payload_bytes,
                                     std::uint32_t hops) const;

  Link& link_at(NodeId node, std::uint32_t port) {
    return *links_[static_cast<std::size_t>(node)][port];
  }

  // -- statistics --
  stats::Counter messages;
  stats::Counter packets;
  stats::Counter bytes_delivered;
  stats::Accumulator message_latency_ticks;
  stats::Accumulator message_hops;
  stats::Log2Histogram latency_histogram;  ///< in nanoseconds

  /// Mean link utilization at time `now`.
  double mean_link_utilization(sim::Tick now) const;

  void register_stats(stats::StatRegistry& reg, const std::string& prefix);

  /// Approximate simulator memory for the network model itself.
  std::size_t footprint_bytes() const;

 private:
  sim::Process packet_process(NodeId src, NodeId dst,
                              std::uint64_t payload_bytes,
                              std::uint32_t* remaining, sim::Event* all_done);

  sim::Simulator& sim_;
  machine::RouterParams router_;
  machine::LinkParams link_params_;
  sim::Clock router_clock_;
  Topology topology_;
  std::vector<std::vector<std::unique_ptr<Link>>> links_;
};

}  // namespace merm::network
