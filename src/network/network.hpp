// The communication network: routers, links, and the three switching
// strategies of the router model (Section 4.2).
//
// A message is split into packets (max_packet_bytes of payload plus a
// header); each packet traverses its deterministic route as a coroutine
// process, contending for unidirectional links which are FIFO-granted
// resources.  The switching strategy decides link hold times:
//
//  - store-and-forward: each hop holds its link for routing + full packet
//    serialization + propagation; hops are sequential.
//  - wormhole: links are acquired in path order and all held until the tail
//    drains at the destination; per-hop cost is routing + one flit +
//    propagation, with a single end-to-end serialization of the body.
//    Blocked headers therefore stall the entire held path — wormhole's
//    signature congestion behaviour.
//  - virtual cut-through: like wormhole, but when the downstream input
//    buffer can hold the whole packet, the upstream link is released as soon
//    as the tail has passed it; with undersized buffers VCT degenerates to
//    wormhole (exactly the real mechanism).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "machine/params.hpp"
#include "network/fault_hooks.hpp"
#include "network/topology.hpp"
#include "obs/trace.hpp"
#include "sim/coro.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "stats/stats.hpp"

namespace merm::sim::pdes {
class Engine;
}  // namespace merm::sim::pdes

namespace merm::network {

/// What happened to one transmit() call.  With no fault injector installed
/// every message is `delivered` and the other flags stay false.
struct TransmitOutcome {
  bool delivered = true;  ///< last packet ejected intact at dst
  bool rerouted = false;  ///< took a degraded-mode path around dead elements
  bool corrupted = false; ///< arrived but unusable (delivered stays false)
};

/// One unidirectional link: bandwidth + propagation delay, multiplexed into
/// `virtual_channels` independently-arbitrated virtual channels.  Each VC is
/// a FIFO-granted resource; modelling simplification: a VC in use gets the
/// full link bandwidth (no per-flit interleaving between VCs).
class Link {
 public:
  Link(sim::Simulator& sim, const machine::LinkParams& params);

  std::uint32_t vc_count() const {
    return static_cast<std::uint32_t>(vcs_.size());
  }
  sim::Task<> acquire(std::uint32_t vc = 0);
  void release(std::uint32_t vc = 0);

  /// Time to clock `bytes` onto the wire.
  sim::Tick serialization(std::uint64_t bytes) const;
  sim::Tick propagation() const { return params_.propagation_delay; }

  void add_busy(sim::Tick t) { busy_ticks_ += t; }
  sim::Tick busy_ticks() const { return busy_ticks_; }

  stats::Counter packets;
  stats::Counter bytes;

 private:
  sim::Simulator& sim_;
  machine::LinkParams params_;
  std::vector<std::unique_ptr<sim::FifoResource>> vcs_;
  sim::Tick busy_ticks_ = 0;
};

class Network {
 public:
  Network(sim::Simulator& sim, const machine::TopologyParams& topo,
          const machine::RouterParams& router,
          const machine::LinkParams& link);

  const Topology& topology() const { return topology_; }
  std::uint32_t node_count() const { return topology_.node_count(); }

  /// Simulates the delivery of a `bytes`-byte message; completes, in
  /// simulated time, when the last packet has been ejected at `dst` (or the
  /// message has been lost to an injected fault — see the outcome).
  /// src == dst completes immediately (local delivery is the node's
  /// business).  `control` marks protocol traffic (acknowledgements) that is
  /// exempt from probabilistic drop/corruption, though never from dead links.
  sim::Task<TransmitOutcome> transmit(NodeId src, NodeId dst,
                                      std::uint64_t bytes,
                                      bool control = false);

  /// Installs (or clears, with nullptr) the fault-injection hooks.  The
  /// injector must outlive the network or be cleared before it dies.
  void set_fault_injector(FaultInjector* injector) { fault_ = injector; }
  FaultInjector* fault_injector() const { return fault_; }

  // ---- conservative-PDES path -------------------------------------------
  // Nodes are grouped into partitions (possibly many nodes per partition).
  // Message traffic goes through pdes_inject() instead of transmit(): the
  // FIFO link resources are replaced by a reservation ledger — one
  // next-free tick per unidirectional link — against which each packet
  // reserves every hop in order (depart = max(ready, next_free)), which
  // reproduces the serial store-and-forward contention times exactly when
  // each directed link carries one message stream at a time and
  // approximates them under cross-traffic (see DESIGN.md §8 for the
  // fidelity trade).  Routes whose every hop stays inside the source
  // node's partition reserve immediately, on the owning worker; routes
  // that cross a partition boundary are parked and resolved at the next
  // window barrier, single-threaded, in (when, src_partition, seq) order —
  // a pure function of simulated content, so results are bit-identical at
  // any worker count for a fixed partitioning.

  /// Binds the network to a PDES engine.  `node_partition[n]` names the
  /// partition that owns node n (values < engine.partition_count(); an
  /// empty vector means the legacy one-partition-per-node identity map).
  /// Statistics then accrue into per-partition shards; call
  /// fold_pdes_shards() once after the run.  Registers a barrier task on
  /// the engine, so the network must outlive the engine's last run().
  void enable_pdes(sim::pdes::Engine& engine,
                   std::vector<std::uint32_t> node_partition = {});
  bool pdes_active() const { return pdes_ != nullptr; }

  /// The model's lookahead: the cheapest possible single-hop latency —
  /// one routing decision plus serialization of a bare header plus wire
  /// propagation.  Zero means this configuration cannot bound a PDES window.
  sim::Tick min_hop_lookahead() const;

  /// Window length the given node->partition map supports: the minimum
  /// hop distance between any two nodes in *different* partitions times
  /// min_hop_lookahead().  Every cross-partition interaction covers at
  /// least that distance (fault detours only lengthen routes), so it lower
  /// bounds the cross-partition latency.  Returns sim::kTickMax when no
  /// pair crosses (a single partition): windows are then unbounded.
  sim::Tick pdes_lookahead(
      const std::vector<std::uint32_t>& node_partition) const;

  /// Synchronous outcome of a PDES injection, decided on the source
  /// partition.  Exactly one of the flags is set.
  struct PdesVerdict {
    bool injected = false;     ///< a transit is on its way to dst
    bool rerouted = false;     ///< (with injected) took a degraded path
    bool unreachable = false;  ///< no live route existed at send time
    bool dropped = false;      ///< lost to a drop draw at injection
  };

  /// Fault-checks, routes, and launches a message from src's partition.
  /// When the verdict is `injected`, `deliver(delivered)` later runs on
  /// dst's partition at the arrival time (delivered == false when the
  /// message arrived corrupted); otherwise the message died at injection
  /// and the callback is never invoked.
  PdesVerdict pdes_inject(NodeId src, NodeId dst, std::uint64_t bytes,
                          bool control,
                          std::function<void(bool delivered)> deliver);

  /// PDES tracing: one sink per partition, all sharing one track table.
  /// Source-side instants (drops, reroutes) go to the source node's
  /// partition sink; the transit span is written at arrival on the
  /// destination node's partition sink — both on the per-source-node track
  /// tracks[src].
  void attach_trace_pdes(std::vector<obs::TraceSink*> sinks,
                         std::vector<obs::TrackId> tracks);

  /// Folds the per-partition shards into the public counters and the
  /// per-link counters.  Partition-ordered, so the result is deterministic.
  void fold_pdes_shards();

  /// Packets a message of `bytes` splits into.
  std::uint32_t packet_count(std::uint64_t bytes) const;

  /// Zero-load latency of a single `bytes`-byte packet over `hops` hops —
  /// the analytic formula the switching tests validate against.
  sim::Tick zero_load_packet_latency(std::uint64_t payload_bytes,
                                     std::uint32_t hops) const;

  Link& link_at(NodeId node, std::uint32_t port) {
    return *links_[static_cast<std::size_t>(node)][port];
  }

  // -- statistics --
  stats::Counter messages;
  stats::Counter packets;
  stats::Counter bytes_delivered;
  stats::Accumulator message_latency_ticks;
  stats::Accumulator message_hops;
  stats::Log2Histogram latency_histogram;  ///< in nanoseconds

  // -- fault statistics (stay zero without an injector) --
  stats::Counter messages_dropped;      ///< lost to drop draws or dead hops
  stats::Counter messages_unreachable;  ///< no live route existed at send time
  stats::Counter messages_corrupted;    ///< delivered but discarded
  stats::Counter messages_rerouted;     ///< detoured around dead elements
  stats::Counter packets_dropped;       ///< individual packets lost on hops

  /// Observability hook: each transmit records a kLinkTransit span (plus
  /// kReroute/kDrop instants) on the per-source-node track
  /// `tracks[src]`.  With no sink attached every hook is a branch-on-null.
  void attach_trace(obs::TraceSink* sink, std::vector<obs::TrackId> tracks) {
    trace_ = sink;
    trace_tracks_ = std::move(tracks);
  }

  /// Mean link utilization at time `now`.
  double mean_link_utilization(sim::Tick now) const;

  void register_stats(stats::StatRegistry& reg, const std::string& prefix);

  /// Approximate simulator memory for the network model itself.
  std::size_t footprint_bytes() const;

 private:
  /// One step of a planned route, with the dateline VC pre-selected.
  struct Hop {
    Link* link;
    std::uint32_t vc;
    NodeId from;
    std::uint32_t port;
    NodeId to;
  };

  /// Shared between a message's packets and its transmit() frame.
  struct MessageState {
    std::uint32_t remaining = 0;
    std::uint32_t lost = 0;
    sim::Event done;
  };

  /// Plans the whole route src -> dst once per message (all its packets
  /// follow it).  In degraded mode this walks the injector's fault-aware
  /// table instead of the arithmetic route; returns false when no live path
  /// exists.  Sets `rerouted` when the degraded path differs from the
  /// fault-free one.
  bool plan_route(NodeId src, NodeId dst, std::vector<Hop>& hops,
                  bool& rerouted) const;

  /// Is this hop's link and downstream node currently alive?
  bool hop_usable(const Hop& h) const {
    return fault_ == nullptr ||
           (fault_->link_usable(h.from, h.port) && fault_->node_usable(h.to));
  }

  sim::Process packet_process(const std::vector<Hop>& hops,
                              std::uint64_t payload_bytes, MessageState* st);

  /// Per-partition statistics shard for the PDES path.  Each shard is only
  /// touched by its own partition's worker during a window; folding happens
  /// single-threaded after the run.  Per-link traffic is kept as integer
  /// deltas keyed (node << 32) | port — order-insensitive sums, so the fold
  /// is exact at any worker count.
  struct LinkDelta {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    sim::Tick busy = 0;
  };
  struct NetShard {
    stats::Counter messages;
    stats::Counter packets;
    stats::Counter bytes_delivered;
    stats::Accumulator message_latency_ticks;
    stats::Accumulator message_hops;
    stats::Log2Histogram latency_histogram;
    stats::Counter messages_dropped;
    stats::Counter messages_unreachable;
    stats::Counter messages_corrupted;
    stats::Counter messages_rerouted;
    std::unordered_map<std::uint64_t, LinkDelta> link_deltas;
  };

  static std::uint64_t link_key(NodeId node, std::uint32_t port) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node))
            << 32) |
           port;
  }

  /// A cross-partition transmission parked until the next window barrier.
  /// (when, src_part, seq) is the deterministic resolution key; seq counts
  /// parked transfers per source partition.
  struct PendingXfer {
    sim::Tick when;
    std::uint32_t src_part;
    std::uint64_t seq;
    NodeId src;
    NodeId dst;
    std::uint64_t bytes;
    bool control;
    std::vector<Hop> hops;
    std::function<void(bool)> deliver;
  };

  /// Reserves every hop of `hops` for every packet of a `bytes`-byte
  /// message against the next_free_ ledger, starting at `start`; charges
  /// per-link traffic to `shard` and returns the last packet's arrival
  /// time at the destination.
  sim::Tick reserve_route(const std::vector<Hop>& hops, std::uint64_t bytes,
                          sim::Tick start, NetShard& shard);

  /// Barrier task: resolves all parked cross-partition transfers in
  /// (when, src_partition, seq) order — reservations against the shared
  /// ledger, then an arrival event on the destination's partition.
  void resolve_pending();

  /// Arrival-side accounting + delivery; runs as an event on the
  /// destination node's partition at the reserved arrival time.
  void pdes_arrive(NodeId src, NodeId dst, std::uint64_t bytes,
                   std::uint32_t hop_count, bool control, sim::Tick start,
                   const std::function<void(bool)>& deliver);

  sim::Simulator& sim_;
  machine::RouterParams router_;
  machine::LinkParams link_params_;
  sim::Clock router_clock_;
  Topology topology_;
  std::vector<std::vector<std::unique_ptr<Link>>> links_;
  FaultInjector* fault_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  std::vector<obs::TrackId> trace_tracks_;  ///< one per source node

  sim::pdes::Engine* pdes_ = nullptr;
  std::vector<std::uint32_t> part_;          ///< [node] -> owning partition
  std::vector<NetShard> shards_;             ///< [partition] in PDES mode
  std::vector<obs::TraceSink*> pdes_sinks_;  ///< [partition] in PDES mode
  /// Link reservation ledger, [node][port] -> first free tick.  Entries for
  /// a partition's own links are advanced by its worker mid-window (local
  /// routes); cross-partition resolution advances any entry, but only at
  /// the barrier, single-threaded.
  std::vector<std::vector<sim::Tick>> next_free_;
  std::vector<std::vector<PendingXfer>> pending_;  ///< [source partition]
  std::vector<std::uint64_t> pending_seq_;         ///< [source partition]
};

}  // namespace merm::network
