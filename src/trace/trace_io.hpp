// Trace (de)serialization: a line-oriented text format for inspection and a
// compact binary format for bulk storage.  Multi-node trace files carry one
// section per node.
//
// Text format, one operation per line:
//   load i32 0x1f00
//   send 1024 3 7         (size, dest, tag)
//   compute 250000
#pragma once

#include <cstdio>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "trace/operation.hpp"

namespace merm::trace {

/// Writes one operation as a text line (without newline).
std::string to_text_line(const Operation& op);

/// Parses a text line; returns nullopt for blank lines/comments ('#').
/// Throws std::runtime_error on malformed input.
std::optional<Operation> from_text_line(const std::string& line);

/// Text round-trip for a single node's trace.
void write_text(std::ostream& os, const std::vector<Operation>& ops);
std::vector<Operation> read_text(std::istream& is);

/// Multi-node text traces: "@node <id>" headers separate per-node sections.
void write_text_multi(std::ostream& os,
                      const std::vector<std::vector<Operation>>& per_node);
std::vector<std::vector<Operation>> read_text_multi(std::istream& is);

/// Binary round-trip (little-endian, fixed-width records, versioned header).
void write_binary(std::ostream& os,
                  const std::vector<std::vector<Operation>>& per_node);
std::vector<std::vector<Operation>> read_binary(std::istream& is);

/// Compressed binary format: delta-encoded addresses with variable-length
/// integers.  Operation traces are highly regular (sequential ifetch and
/// data streams), so this typically shrinks detailed traces by 3-5x —
/// relevant because trace storage, not the simulator, dominates memory
/// (paper Section 6).
void write_compressed(std::ostream& os,
                      const std::vector<std::vector<Operation>>& per_node);
std::vector<std::vector<Operation>> read_compressed(std::istream& is);

}  // namespace merm::trace
