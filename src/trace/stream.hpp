// Operation streams: the interface between trace generators (application
// level) and architecture models (architecture level).
//
// An OperationSource produces one simulated processor's trace on demand.
// The feedback arrows of Fig. 1 — the architecture simulator controlling the
// executing application — appear here as global_event_issued()/
// global_event_done() callbacks: a source that runs real application code
// keeps that code suspended between the two, which is exactly the
// physical-time interleaving of Section 3.1.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "trace/operation.hpp"

namespace merm::trace {

/// Pull-interface to one processor's operation trace.
class OperationSource {
 public:
  virtual ~OperationSource() = default;

  /// Next operation, or nullopt at end of trace.  After a global event is
  /// returned, the consumer must complete the
  /// global_event_issued()/global_event_done() protocol before pulling again.
  virtual std::optional<Operation> next() = 0;

  /// Notifies the source that the consumer has begun simulating the global
  /// event it just returned (at simulated time `t`).
  virtual void global_event_issued(sim::Tick t) { (void)t; }

  /// Notifies the source that the global event completed at simulated time
  /// `t`.  Sources backed by live application code resume that code here.
  virtual void global_event_done(sim::Tick t) { (void)t; }

  /// May this source be pulled from a PDES worker thread?  Sources that
  /// synchronize with host threads of their own (the physical-time
  /// interleaved execution-driven mode) must return false; the workbench
  /// then refuses to parallelize the run.
  virtual bool pdes_safe() const { return true; }
};

/// A fixed, pre-recorded trace.  This is classic trace-driven simulation —
/// valid only when the trace has no timing-dependent control flow; the
/// interleaving tests use it as the "naive" baseline.
class VectorSource final : public OperationSource {
 public:
  VectorSource() = default;
  explicit VectorSource(std::vector<Operation> ops) : ops_(std::move(ops)) {}

  void push(const Operation& op) { ops_.push_back(op); }

  std::optional<Operation> next() override {
    if (pos_ >= ops_.size()) return std::nullopt;
    return ops_[pos_++];
  }

  void rewind() { pos_ = 0; }
  std::size_t size() const { return ops_.size(); }

 private:
  std::vector<Operation> ops_;
  std::size_t pos_ = 0;
};

/// Decorator that records every operation flowing through it (for trace
/// files and post-mortem analysis).
class RecordingSource final : public OperationSource {
 public:
  explicit RecordingSource(std::unique_ptr<OperationSource> inner)
      : inner_(std::move(inner)) {}

  std::optional<Operation> next() override {
    auto op = inner_->next();
    if (op) recorded_.push_back(*op);
    return op;
  }
  void global_event_issued(sim::Tick t) override {
    inner_->global_event_issued(t);
  }
  void global_event_done(sim::Tick t) override {
    inner_->global_event_done(t);
  }
  bool pdes_safe() const override { return inner_->pdes_safe(); }

  const std::vector<Operation>& recorded() const { return recorded_; }

 private:
  std::unique_ptr<OperationSource> inner_;
  std::vector<Operation> recorded_;
};

/// A multiprocessor workload: one operation source per node.
struct Workload {
  std::vector<std::unique_ptr<OperationSource>> sources;

  std::size_t node_count() const { return sources.size(); }
};

}  // namespace merm::trace
