// The abstract machine instructions ("operations") of the workbench —
// Table 1 of the paper.
//
// Operations are the currency between the application level and the
// architecture level.  They abstract from any concrete instruction set: a
// load-store register machine with memory transfers, register arithmetic and
// instruction fetching, plus message-passing communication and task-level
// computation.  Because memory *values* are never modelled, loops and
// branches are resolved by the trace generator; the simulator sees each loop
// iteration as individually traced operations with recurring ifetch
// addresses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sim/types.hpp"

namespace merm::trace {

/// Operation kinds (Table 1).
enum class OpCode : std::uint8_t {
  // -- computational: memory transfers --
  kLoad,       ///< load(mem-type, address): memory -> register
  kStore,      ///< store(mem-type, address): register -> memory
  kLoadConst,  ///< load([f]constant): immediate -> register (no memory access)
  // -- computational: register arithmetic --
  kAdd,
  kSub,
  kMul,
  kDiv,
  // -- computational: instruction fetching --
  kIFetch,  ///< ifetch(address)
  kBranch,  ///< branch(address): ifetch with a potential pipeline break
  kCall,    ///< call(address)
  kRet,     ///< ret(address)
  // -- communication: message passing --
  kSend,   ///< send(message-size, destination): synchronous (blocking)
  kRecv,   ///< recv(source): synchronous (blocking)
  kASend,  ///< asend(message-size, destination): asynchronous
  kARecv,  ///< arecv(source): asynchronous (posts a receive)
  // -- communication: task-level computation --
  kCompute,  ///< compute(duration)
};

inline constexpr int kOpCodeCount = static_cast<int>(OpCode::kCompute) + 1;

/// Operand/memory types.  The mem-type of a load/store and the operand type
/// of arithmetic operations.
enum class DataType : std::uint8_t {
  kInt8,
  kInt16,
  kInt32,
  kInt64,
  kFloat,   ///< single-precision FP
  kDouble,  ///< double-precision FP
};

inline constexpr int kDataTypeCount = static_cast<int>(DataType::kDouble) + 1;

/// Size in bytes of a DataType.
constexpr std::uint32_t size_of(DataType t) {
  switch (t) {
    case DataType::kInt8:
      return 1;
    case DataType::kInt16:
      return 2;
    case DataType::kInt32:
      return 4;
    case DataType::kInt64:
      return 8;
    case DataType::kFloat:
      return 4;
    case DataType::kDouble:
      return 8;
  }
  return 4;
}

constexpr bool is_floating(DataType t) {
  return t == DataType::kFloat || t == DataType::kDouble;
}

/// Node identifier within a multicomputer (dense, 0-based).
using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

/// A single trace event.  Kept POD-small: detailed simulations consume
/// hundreds of millions of these.
struct Operation {
  OpCode code = OpCode::kCompute;
  DataType type = DataType::kInt32;
  /// Address for memory/ifetch operations, message size in bytes for
  /// send/asend, duration in ticks for compute.
  std::uint64_t value = 0;
  /// Destination (send/asend) or source (recv/arecv) node; kNoNode otherwise.
  NodeId peer = kNoNode;
  /// Message tag for matching asynchronous receives; 0 for untagged.
  std::int32_t tag = 0;

  friend bool operator==(const Operation&, const Operation&) = default;

  // -- convenience constructors mirroring Table 1 --
  static Operation load(DataType t, std::uint64_t address) {
    return {OpCode::kLoad, t, address, kNoNode, 0};
  }
  static Operation store(DataType t, std::uint64_t address) {
    return {OpCode::kStore, t, address, kNoNode, 0};
  }
  static Operation load_const(DataType t) {
    return {OpCode::kLoadConst, t, 0, kNoNode, 0};
  }
  static Operation add(DataType t) { return {OpCode::kAdd, t, 0, kNoNode, 0}; }
  static Operation sub(DataType t) { return {OpCode::kSub, t, 0, kNoNode, 0}; }
  static Operation mul(DataType t) { return {OpCode::kMul, t, 0, kNoNode, 0}; }
  static Operation div(DataType t) { return {OpCode::kDiv, t, 0, kNoNode, 0}; }
  static Operation ifetch(std::uint64_t address) {
    return {OpCode::kIFetch, DataType::kInt32, address, kNoNode, 0};
  }
  static Operation branch(std::uint64_t address) {
    return {OpCode::kBranch, DataType::kInt32, address, kNoNode, 0};
  }
  static Operation call(std::uint64_t address) {
    return {OpCode::kCall, DataType::kInt32, address, kNoNode, 0};
  }
  static Operation ret(std::uint64_t address) {
    return {OpCode::kRet, DataType::kInt32, address, kNoNode, 0};
  }
  static Operation send(std::uint64_t bytes, NodeId dest, std::int32_t tag = 0) {
    return {OpCode::kSend, DataType::kInt8, bytes, dest, tag};
  }
  static Operation recv(NodeId source, std::int32_t tag = 0) {
    return {OpCode::kRecv, DataType::kInt8, 0, source, tag};
  }
  static Operation asend(std::uint64_t bytes, NodeId dest,
                         std::int32_t tag = 0) {
    return {OpCode::kASend, DataType::kInt8, bytes, dest, tag};
  }
  static Operation arecv(NodeId source, std::int32_t tag = 0) {
    return {OpCode::kARecv, DataType::kInt8, 0, source, tag};
  }
  static Operation compute(sim::Tick duration) {
    return {OpCode::kCompute, DataType::kInt8, duration, kNoNode, 0};
  }
};

/// Classification helpers.
constexpr bool is_memory_access(OpCode c) {
  return c == OpCode::kLoad || c == OpCode::kStore;
}
constexpr bool is_arithmetic(OpCode c) {
  return c == OpCode::kAdd || c == OpCode::kSub || c == OpCode::kMul ||
         c == OpCode::kDiv;
}
constexpr bool is_instruction_fetch(OpCode c) {
  return c == OpCode::kIFetch || c == OpCode::kBranch || c == OpCode::kCall ||
         c == OpCode::kRet;
}
/// Computational operations: handled by the single-node computational model.
constexpr bool is_computational(OpCode c) {
  return is_memory_access(c) || c == OpCode::kLoadConst || is_arithmetic(c) ||
         is_instruction_fetch(c);
}
/// Communication operations: forwarded to the multi-node communication model.
constexpr bool is_communication(OpCode c) {
  return c == OpCode::kSend || c == OpCode::kRecv || c == OpCode::kASend ||
         c == OpCode::kARecv;
}
/// Global events: operations that may affect more than one processor and
/// therefore require physical-time-interleaved trace generation.
constexpr bool is_global_event(OpCode c) { return is_communication(c); }

/// Blocking communication (the issuing processor stalls until completion).
constexpr bool is_blocking(OpCode c) {
  return c == OpCode::kSend || c == OpCode::kRecv;
}

const char* to_string(OpCode c);
const char* to_string(DataType t);
std::optional<OpCode> opcode_from_string(const std::string& s);
std::optional<DataType> datatype_from_string(const std::string& s);

/// Renders an operation in the paper's notation, e.g. "load(double, 0x1f00)".
std::string to_string(const Operation& op);

}  // namespace merm::trace
