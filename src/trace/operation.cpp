#include "trace/operation.hpp"

#include <array>
#include <cstdio>

namespace merm::trace {

namespace {
constexpr std::array<const char*, kOpCodeCount> kOpNames = {
    "load",   "store", "loadc", "add",  "sub",   "mul",
    "div",    "ifetch", "branch", "call", "ret",  "send",
    "recv",   "asend", "arecv", "compute"};

constexpr std::array<const char*, kDataTypeCount> kTypeNames = {
    "i8", "i16", "i32", "i64", "f32", "f64"};
}  // namespace

const char* to_string(OpCode c) {
  return kOpNames[static_cast<std::size_t>(c)];
}

const char* to_string(DataType t) {
  return kTypeNames[static_cast<std::size_t>(t)];
}

std::optional<OpCode> opcode_from_string(const std::string& s) {
  for (int i = 0; i < kOpCodeCount; ++i) {
    if (s == kOpNames[static_cast<std::size_t>(i)]) {
      return static_cast<OpCode>(i);
    }
  }
  return std::nullopt;
}

std::optional<DataType> datatype_from_string(const std::string& s) {
  for (int i = 0; i < kDataTypeCount; ++i) {
    if (s == kTypeNames[static_cast<std::size_t>(i)]) {
      return static_cast<DataType>(i);
    }
  }
  return std::nullopt;
}

std::string to_string(const Operation& op) {
  char buf[96];
  switch (op.code) {
    case OpCode::kLoad:
    case OpCode::kStore:
      std::snprintf(buf, sizeof(buf), "%s(%s, 0x%llx)", to_string(op.code),
                    to_string(op.type),
                    static_cast<unsigned long long>(op.value));
      break;
    case OpCode::kLoadConst:
    case OpCode::kAdd:
    case OpCode::kSub:
    case OpCode::kMul:
    case OpCode::kDiv:
      std::snprintf(buf, sizeof(buf), "%s(%s)", to_string(op.code),
                    to_string(op.type));
      break;
    case OpCode::kIFetch:
    case OpCode::kBranch:
    case OpCode::kCall:
    case OpCode::kRet:
      std::snprintf(buf, sizeof(buf), "%s(0x%llx)", to_string(op.code),
                    static_cast<unsigned long long>(op.value));
      break;
    case OpCode::kSend:
    case OpCode::kASend:
      std::snprintf(buf, sizeof(buf), "%s(%llu, %d, tag=%d)",
                    to_string(op.code),
                    static_cast<unsigned long long>(op.value), op.peer,
                    op.tag);
      break;
    case OpCode::kRecv:
    case OpCode::kARecv:
      std::snprintf(buf, sizeof(buf), "%s(%d, tag=%d)", to_string(op.code),
                    op.peer, op.tag);
      break;
    case OpCode::kCompute:
      std::snprintf(buf, sizeof(buf), "compute(%llu)",
                    static_cast<unsigned long long>(op.value));
      break;
  }
  return buf;
}

}  // namespace merm::trace
