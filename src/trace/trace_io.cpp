#include "trace/trace_io.hpp"

#include <array>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace merm::trace {

namespace {

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

std::uint64_t parse_u64(const std::string& s) {
  return std::stoull(s, nullptr, 0);  // accepts 0x... and decimal
}

[[noreturn]] void malformed(const std::string& line) {
  throw std::runtime_error("malformed trace line: '" + line + "'");
}

}  // namespace

std::string to_text_line(const Operation& op) {
  std::ostringstream os;
  os << to_string(op.code);
  switch (op.code) {
    case OpCode::kLoad:
    case OpCode::kStore:
      os << ' ' << to_string(op.type) << " 0x" << std::hex << op.value;
      break;
    case OpCode::kLoadConst:
    case OpCode::kAdd:
    case OpCode::kSub:
    case OpCode::kMul:
    case OpCode::kDiv:
      os << ' ' << to_string(op.type);
      break;
    case OpCode::kIFetch:
    case OpCode::kBranch:
    case OpCode::kCall:
    case OpCode::kRet:
      os << " 0x" << std::hex << op.value;
      break;
    case OpCode::kSend:
    case OpCode::kASend:
      os << ' ' << op.value << ' ' << op.peer << ' ' << op.tag;
      break;
    case OpCode::kRecv:
    case OpCode::kARecv:
      os << ' ' << op.peer << ' ' << op.tag;
      break;
    case OpCode::kCompute:
      os << ' ' << op.value;
      break;
  }
  return os.str();
}

std::optional<Operation> from_text_line(const std::string& line) {
  const auto toks = split_ws(line);
  if (toks.empty() || toks[0][0] == '#') return std::nullopt;

  const auto code = opcode_from_string(toks[0]);
  if (!code) malformed(line);

  Operation op;
  op.code = *code;
  switch (*code) {
    case OpCode::kLoad:
    case OpCode::kStore: {
      if (toks.size() != 3) malformed(line);
      const auto t = datatype_from_string(toks[1]);
      if (!t) malformed(line);
      op.type = *t;
      op.value = parse_u64(toks[2]);
      break;
    }
    case OpCode::kLoadConst:
    case OpCode::kAdd:
    case OpCode::kSub:
    case OpCode::kMul:
    case OpCode::kDiv: {
      if (toks.size() != 2) malformed(line);
      const auto t = datatype_from_string(toks[1]);
      if (!t) malformed(line);
      op.type = *t;
      break;
    }
    case OpCode::kIFetch:
    case OpCode::kBranch:
    case OpCode::kCall:
    case OpCode::kRet:
      if (toks.size() != 2) malformed(line);
      op.value = parse_u64(toks[1]);
      break;
    case OpCode::kSend:
    case OpCode::kASend:
      if (toks.size() != 4) malformed(line);
      op.type = DataType::kInt8;  // comm ops carry no data type
      op.value = parse_u64(toks[1]);
      op.peer = static_cast<NodeId>(std::stol(toks[2]));
      op.tag = static_cast<std::int32_t>(std::stol(toks[3]));
      break;
    case OpCode::kRecv:
    case OpCode::kARecv:
      if (toks.size() != 3) malformed(line);
      op.type = DataType::kInt8;
      op.peer = static_cast<NodeId>(std::stol(toks[1]));
      op.tag = static_cast<std::int32_t>(std::stol(toks[2]));
      break;
    case OpCode::kCompute:
      if (toks.size() != 2) malformed(line);
      op.type = DataType::kInt8;
      op.value = parse_u64(toks[1]);
      break;
  }
  return op;
}

void write_text(std::ostream& os, const std::vector<Operation>& ops) {
  for (const Operation& op : ops) {
    os << to_text_line(op) << '\n';
  }
}

std::vector<Operation> read_text(std::istream& is) {
  std::vector<Operation> ops;
  std::string line;
  while (std::getline(is, line)) {
    if (auto op = from_text_line(line)) ops.push_back(*op);
  }
  return ops;
}

void write_text_multi(std::ostream& os,
                      const std::vector<std::vector<Operation>>& per_node) {
  for (std::size_t n = 0; n < per_node.size(); ++n) {
    os << "@node " << n << '\n';
    write_text(os, per_node[n]);
  }
}

std::vector<std::vector<Operation>> read_text_multi(std::istream& is) {
  std::vector<std::vector<Operation>> per_node;
  std::string line;
  std::vector<Operation>* current = nullptr;
  while (std::getline(is, line)) {
    if (line.rfind("@node", 0) == 0) {
      per_node.emplace_back();
      current = &per_node.back();
      continue;
    }
    auto op = from_text_line(line);
    if (!op) continue;
    if (current == nullptr) {
      throw std::runtime_error("trace line before any @node header");
    }
    current->push_back(*op);
  }
  return per_node;
}

namespace {

constexpr char kMagic[8] = {'M', 'E', 'R', 'M', 'T', 'R', 'C', '1'};

struct BinRecord {
  std::uint8_t code;
  std::uint8_t type;
  std::int16_t reserved;
  std::int32_t peer;
  std::uint64_t value;
  std::int32_t tag;
  std::int32_t pad;
};
static_assert(sizeof(BinRecord) == 24);

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("truncated binary trace");
  return v;
}

}  // namespace

void write_binary(std::ostream& os,
                  const std::vector<std::vector<Operation>>& per_node) {
  os.write(kMagic, sizeof(kMagic));
  put<std::uint32_t>(os, static_cast<std::uint32_t>(per_node.size()));
  for (const auto& ops : per_node) {
    put<std::uint64_t>(os, ops.size());
    for (const Operation& op : ops) {
      BinRecord r{};
      r.code = static_cast<std::uint8_t>(op.code);
      r.type = static_cast<std::uint8_t>(op.type);
      r.peer = op.peer;
      r.value = op.value;
      r.tag = op.tag;
      put(os, r);
    }
  }
}

std::vector<std::vector<Operation>> read_binary(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("bad binary trace header");
  }
  const auto nodes = get<std::uint32_t>(is);
  std::vector<std::vector<Operation>> per_node(nodes);
  for (auto& ops : per_node) {
    const auto count = get<std::uint64_t>(is);
    ops.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto r = get<BinRecord>(is);
      if (r.code >= kOpCodeCount || r.type >= kDataTypeCount) {
        throw std::runtime_error("corrupt binary trace record");
      }
      Operation op;
      op.code = static_cast<OpCode>(r.code);
      op.type = static_cast<DataType>(r.type);
      op.peer = r.peer;
      op.value = r.value;
      op.tag = r.tag;
      ops.push_back(op);
    }
  }
  return per_node;
}

namespace {

constexpr char kMagic2[8] = {'M', 'E', 'R', 'M', 'T', 'R', 'C', '2'};

void put_varint(std::ostream& os, std::uint64_t v) {
  while (v >= 0x80) {
    const char byte = static_cast<char>((v & 0x7f) | 0x80);
    os.put(byte);
    v >>= 7;
  }
  os.put(static_cast<char>(v));
}

std::uint64_t get_varint(std::istream& is) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const int c = is.get();
    if (c == std::istream::traits_type::eof()) {
      throw std::runtime_error("truncated compressed trace");
    }
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) throw std::runtime_error("varint overflow");
  }
  return v;
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace

void write_compressed(std::ostream& os,
                      const std::vector<std::vector<Operation>>& per_node) {
  os.write(kMagic2, sizeof(kMagic2));
  put_varint(os, per_node.size());
  for (const auto& ops : per_node) {
    put_varint(os, ops.size());
    // Separate delta chains: instruction fetches walk code, data accesses
    // walk arrays — keeping them apart makes both deltas tiny.
    std::uint64_t last_code_addr = 0;
    std::uint64_t last_data_addr = 0;
    for (const Operation& op : ops) {
      os.put(static_cast<char>(static_cast<unsigned>(op.code) |
                               (static_cast<unsigned>(op.type) << 4)));
      if (is_memory_access(op.code)) {
        put_varint(os, zigzag(static_cast<std::int64_t>(op.value) -
                              static_cast<std::int64_t>(last_data_addr)));
        last_data_addr = op.value;
      } else if (is_instruction_fetch(op.code)) {
        put_varint(os, zigzag(static_cast<std::int64_t>(op.value) -
                              static_cast<std::int64_t>(last_code_addr)));
        last_code_addr = op.value;
      } else if (op.code == OpCode::kSend || op.code == OpCode::kASend) {
        put_varint(os, op.value);
        put_varint(os, zigzag(op.peer));
        put_varint(os, zigzag(op.tag));
      } else if (op.code == OpCode::kRecv || op.code == OpCode::kARecv) {
        put_varint(os, zigzag(op.peer));
        put_varint(os, zigzag(op.tag));
      } else if (op.code == OpCode::kCompute) {
        put_varint(os, op.value);
      }
      // Arithmetic and load-const: the tag byte is the whole record.
    }
  }
}

std::vector<std::vector<Operation>> read_compressed(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic2, sizeof(kMagic2)) != 0) {
    throw std::runtime_error("bad compressed trace header");
  }
  const std::uint64_t nodes = get_varint(is);
  std::vector<std::vector<Operation>> per_node(nodes);
  for (auto& ops : per_node) {
    const std::uint64_t count = get_varint(is);
    ops.reserve(count);
    std::uint64_t last_code_addr = 0;
    std::uint64_t last_data_addr = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      const int tag_byte = is.get();
      if (tag_byte == std::istream::traits_type::eof()) {
        throw std::runtime_error("truncated compressed trace");
      }
      const unsigned code_bits = static_cast<unsigned>(tag_byte) & 0x0f;
      const unsigned type_bits = (static_cast<unsigned>(tag_byte) >> 4) & 0x07;
      if (code_bits >= kOpCodeCount || type_bits >= kDataTypeCount) {
        throw std::runtime_error("corrupt compressed trace record");
      }
      Operation op;
      op.code = static_cast<OpCode>(code_bits);
      op.type = static_cast<DataType>(type_bits);
      if (is_memory_access(op.code)) {
        last_data_addr = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(last_data_addr) +
            unzigzag(get_varint(is)));
        op.value = last_data_addr;
      } else if (is_instruction_fetch(op.code)) {
        last_code_addr = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(last_code_addr) +
            unzigzag(get_varint(is)));
        op.value = last_code_addr;
      } else if (op.code == OpCode::kSend || op.code == OpCode::kASend) {
        op.value = get_varint(is);
        op.peer = static_cast<NodeId>(unzigzag(get_varint(is)));
        op.tag = static_cast<std::int32_t>(unzigzag(get_varint(is)));
      } else if (op.code == OpCode::kRecv || op.code == OpCode::kARecv) {
        op.peer = static_cast<NodeId>(unzigzag(get_varint(is)));
        op.tag = static_cast<std::int32_t>(unzigzag(get_varint(is)));
      } else if (op.code == OpCode::kCompute) {
        op.value = get_varint(is);
      }
      if (is_communication(op.code) || op.code == OpCode::kCompute) {
        op.type = DataType::kInt8;
      }
      ops.push_back(op);
    }
  }
  return per_node;
}

}  // namespace merm::trace
