// The node bus (Fig. 3a): "a simple forwarding mechanism, carrying out
// arbitration upon multiple accesses".
//
// Modelled as a FIFO-granted exclusive resource: a transaction occupies the
// bus for arbitration + extra + data-beat cycles in the bus clock domain.
// Contention between CPUs of a multiprocessor node emerges from queueing.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "obs/trace.hpp"
#include "sim/coro.hpp"
#include "sim/cursor.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "stats/stats.hpp"

namespace merm::memory {

class Bus {
 public:
  Bus(sim::Simulator& sim, double frequency_hz, std::uint32_t width_bytes,
      sim::Cycles arbitration_cycles);

  /// Performs one bus transaction transferring `bytes` (0 for pure control
  /// transactions such as coherence broadcasts), holding the bus for
  ///   arbitration + extra_cycles + ceil(bytes / width) beats.
  /// Suspends while earlier transactions drain (FIFO order).
  sim::Task<> transaction(std::uint64_t bytes, sim::Cycles extra_cycles = 0);

  /// Cursor variant: when the caller defers time locally and the bus is
  /// idle with nobody queued — always the case for the sole client of a
  /// single-CPU node — the transaction completes on the cursor without
  /// suspending, recording the identical statistics (zero queue wait, same
  /// occupancy).  Returns false when the general path must run.
  bool try_transaction_fast(std::uint64_t bytes, sim::Cycles extra_cycles,
                            sim::TimeCursor& cursor);

  /// True when a transaction would be granted immediately (bus idle, empty
  /// queue) — the precondition of try_transaction_fast.
  bool uncontended() const { return !grant_.busy() && grant_.waiters() == 0; }

  /// Ticks a transaction would occupy the bus, excluding queueing.
  sim::Tick occupancy(std::uint64_t bytes, sim::Cycles extra_cycles) const;

  const sim::Clock& clock() const { return clock_; }
  std::uint32_t width_bytes() const { return width_; }

  /// Observability hook: contended grants record kBusWait spans on `track`.
  /// With no sink attached the hook is one branch-on-null.
  void attach_trace(obs::TraceSink* sink, obs::TrackId track) {
    trace_ = sink;
    trace_track_ = track;
  }

  // -- statistics --
  stats::Counter transactions;
  stats::Counter bytes_transferred;
  stats::Accumulator queue_wait_ticks;  ///< time spent waiting for grant
  stats::Log2Histogram queue_wait_ns;   ///< grant-wait distribution (ns)
  sim::Tick busy_ticks() const { return busy_ticks_; }
  /// Fraction of time the bus was occupied up to `now`.
  double utilization(sim::Tick now) const {
    return now == 0 ? 0.0
                    : static_cast<double>(busy_ticks_) /
                          static_cast<double>(now);
  }

  void register_stats(stats::StatRegistry& reg, const std::string& prefix);

 private:
  sim::Simulator& sim_;
  sim::Clock clock_;
  std::uint32_t width_;
  sim::Cycles arbitration_cycles_;
  sim::FifoResource grant_;
  sim::Tick busy_ticks_ = 0;
  obs::TraceSink* trace_ = nullptr;
  obs::TrackId trace_track_ = obs::kNoTrack;
};

}  // namespace merm::memory
