#include "memory/cache.hpp"

#include <cassert>
#include <stdexcept>

namespace merm::memory {

const char* to_string(LineState s) {
  switch (s) {
    case LineState::kInvalid:
      return "I";
    case LineState::kShared:
      return "S";
    case LineState::kExclusive:
      return "E";
    case LineState::kModified:
      return "M";
  }
  return "?";
}

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

Cache::Cache(const machine::CacheLevelParams& params, std::string name)
    : params_(params), name_(std::move(name)) {
  if (!is_pow2(params_.line_bytes)) {
    throw std::invalid_argument("cache line size must be a power of two");
  }
  ways_ = params_.associativity == 0
              ? static_cast<std::uint32_t>(params_.size_bytes /
                                           params_.line_bytes)
              : params_.associativity;
  if (ways_ == 0 ||
      params_.size_bytes % (static_cast<std::uint64_t>(params_.line_bytes) *
                            ways_) !=
          0) {
    throw std::invalid_argument("cache size not divisible by line*ways");
  }
  sets_ = params_.size_bytes /
          (static_cast<std::uint64_t>(params_.line_bytes) * ways_);
  if (!is_pow2(sets_)) {
    throw std::invalid_argument("cache set count must be a power of two");
  }
  lines_.resize(sets_ * ways_);
}

Cache::Line* Cache::find(std::uint64_t addr) {
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  Line* base = &lines_[set * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].state != LineState::kInvalid && base[w].tag == tag) {
      return &base[w];
    }
  }
  return nullptr;
}

const Cache::Line* Cache::find(std::uint64_t addr) const {
  return const_cast<Cache*>(this)->find(addr);
}

LineState Cache::probe(std::uint64_t addr) const {
  const Line* line = find(addr);
  return line ? line->state : LineState::kInvalid;
}

bool Cache::touch(std::uint64_t addr, bool is_write) {
  Line* line = find(addr);
  if (line == nullptr) return false;
  line->lru = ++lru_clock_;
  if (is_write) {
    line->state = LineState::kModified;
  }
  return true;
}

Cache::Eviction Cache::fill(std::uint64_t addr, LineState fill) {
  assert(fill != LineState::kInvalid);
  assert(find(addr) == nullptr && "fill of resident line");
  const std::uint64_t set = set_index(addr);
  Line* base = &lines_[set * ways_];
  Line* victim = &base[0];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].state == LineState::kInvalid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }

  Eviction ev;
  if (victim->state != LineState::kInvalid) {
    ev.valid = true;
    ev.dirty = victim->state == LineState::kModified;
    // Reconstruct the victim's base address from tag and set.
    ev.addr = (victim->tag * sets_ + set) * params_.line_bytes;
    evictions.add();
    if (ev.dirty) writebacks.add();
  }
  victim->tag = tag_of(addr);
  victim->state = fill;
  victim->lru = ++lru_clock_;
  return ev;
}

LineState Cache::set_state(std::uint64_t addr, LineState s) {
  Line* line = find(addr);
  if (line == nullptr) return LineState::kInvalid;
  const LineState prev = line->state;
  line->state = s;
  return prev;
}

LineState Cache::invalidate(std::uint64_t addr) {
  Line* line = find(addr);
  if (line == nullptr) return LineState::kInvalid;
  const LineState prev = line->state;
  line->state = LineState::kInvalid;
  invalidations.add();
  return prev;
}

LineState Cache::downgrade(std::uint64_t addr) {
  Line* line = find(addr);
  if (line == nullptr) return LineState::kInvalid;
  const LineState prev = line->state;
  if (prev == LineState::kModified || prev == LineState::kExclusive) {
    line->state = LineState::kShared;
    downgrades.add();
  }
  return prev;
}

std::size_t Cache::resident_lines() const {
  std::size_t n = 0;
  for (const Line& l : lines_) {
    if (l.state != LineState::kInvalid) ++n;
  }
  return n;
}

std::size_t Cache::footprint_bytes() const {
  return lines_.size() * sizeof(Line);
}

void Cache::register_stats(stats::StatRegistry& reg,
                           const std::string& prefix) {
  reg.register_counter(prefix + ".hits", &hits);
  reg.register_counter(prefix + ".misses", &misses);
  reg.register_counter(prefix + ".evictions", &evictions);
  reg.register_counter(prefix + ".writebacks", &writebacks);
  reg.register_counter(prefix + ".invalidations", &invalidations);
  reg.register_counter(prefix + ".downgrades", &downgrades);
}

}  // namespace merm::memory
