// The memory hierarchy of one MIMD node (Fig. 3a): per-CPU L1 caches
// (optionally split I/D), shared lower levels, a bus, and DRAM.
//
// Coherence: when a node has multiple CPUs, the private L1s run a snoopy
// MESI protocol over the node bus, exactly the configuration the paper
// describes ("multiple processors using a common cache hierarchy ... the
// caches provide a snoopy bus protocol").  Other strategies (directories)
// would slot in behind the same access() interface.
//
// Simplifications, documented for calibration purposes:
//  - The L1<->L2 connection is a private port (no bus occupancy); the bus
//    carries DRAM traffic, coherence broadcasts and cache-to-cache copies.
//  - Dirty-victim writebacks occupy the bus synchronously with the access
//    that caused them (no write buffer).
//  - Accesses never straddle a cache line (trace generators emit aligned
//    scalar accesses).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "machine/params.hpp"
#include "memory/bus.hpp"
#include "memory/cache.hpp"
#include "sim/coro.hpp"
#include "sim/cursor.hpp"
#include "sim/simulator.hpp"
#include "stats/stats.hpp"

namespace merm::memory {

enum class AccessType : std::uint8_t { kIFetch, kLoad, kStore };

class MemoryHierarchy {
 public:
  MemoryHierarchy(sim::Simulator& sim, const machine::NodeParams& params);

  /// Simulates one access by CPU `cpu`; completes (in simulated time) when
  /// the access would retire.  Does not include the CPU's issue cost.
  /// Cursor-aware: when cursor(cpu) is enabled, hit latencies and
  /// uncontended bus holds advance the local cursor, and the cursor is
  /// flushed before any bus transaction that must queue.
  sim::Task<> access(std::uint32_t cpu, AccessType type, std::uint64_t addr);

  /// Non-suspending variant covering the hot cases — a pure L1 hit needing
  /// no bus traffic, or (on cacheless nodes) an uncontended bus + DRAM
  /// access.  Charges `issue_ticks` of CPU issue cost plus the access
  /// latency onto cursor(cpu) and records the same statistics access()
  /// would.  Returns false (charging nothing) when the general path is
  /// needed: cursor disabled, miss, coherence action, or write-through
  /// traffic.
  bool try_access_fast(std::uint32_t cpu, AccessType type, std::uint64_t addr,
                       sim::Tick issue_ticks);

  /// Per-CPU local time cursor (two-tier time accounting; enabled by the
  /// node's run loop only when deferral is observationally safe).
  sim::TimeCursor& cursor(std::uint32_t cpu) { return cursors_[cpu]; }

  std::uint32_t cpu_count() const { return cpu_count_; }
  bool coherent() const { return coherent_; }

  /// Level-0 cache used by `cpu` for the given access type (nullptr if the
  /// node has no caches, e.g. the T805 preset).
  Cache* l1(std::uint32_t cpu, AccessType type);
  /// Shared level `i` (1-based: 1 = L2).  nullptr when absent.
  Cache* shared_level(std::size_t i);
  std::size_t level_count() const { return level_count_; }

  Bus& bus() { return bus_; }

  /// Total simulator memory consumed by tag stores (paper Section 6:
  /// footprint excludes data because caches are tags-only).
  std::size_t footprint_bytes() const;

  // -- statistics --
  stats::Counter accesses;
  stats::Counter dram_accesses;
  stats::Accumulator access_latency_ticks;

  void register_stats(stats::StatRegistry& reg, const std::string& prefix);

 private:
  /// Snoop result against peer L1 caches.
  struct SnoopResult {
    bool supplied = false;   ///< a peer copy supplied the line
    bool was_dirty = false;  ///< the supplier held it Modified
    int holders = 0;         ///< peers whose state was changed
  };

  SnoopResult snoop(std::uint32_t requester, AccessType type,
                    std::uint64_t line_addr, bool for_write);

  /// Fills `cache` and charges any dirty-victim writeback on the bus (or
  /// the caller's cursor when deferral is active).
  sim::Task<> fill_with_writeback(Cache& cache, std::uint64_t addr,
                                  LineState state, sim::TimeCursor& cursor);

  sim::Simulator& sim_;
  machine::NodeParams params_;
  sim::Clock cpu_clock_;
  std::uint32_t cpu_count_;
  bool coherent_;
  std::size_t level_count_;

  // Private level-0 caches: per CPU, [cpu] = unified, or with split_l1
  // icaches_[cpu] + dcaches_[cpu].
  std::vector<std::unique_ptr<Cache>> dcaches_;  // or unified
  std::vector<std::unique_ptr<Cache>> icaches_;  // only when split_l1
  std::vector<std::unique_ptr<Cache>> shared_;   // levels 1..n-1

  std::vector<sim::TimeCursor> cursors_;  // one per CPU, default disabled

  Bus bus_;
};

}  // namespace merm::memory
