#include "memory/bus.hpp"

namespace merm::memory {

Bus::Bus(sim::Simulator& sim, double frequency_hz, std::uint32_t width_bytes,
         sim::Cycles arbitration_cycles)
    : sim_(sim),
      clock_(frequency_hz),
      width_(width_bytes),
      arbitration_cycles_(arbitration_cycles) {}

sim::Tick Bus::occupancy(std::uint64_t bytes,
                         sim::Cycles extra_cycles) const {
  const std::uint64_t beats = (bytes + width_ - 1) / width_;
  return clock_.to_ticks(arbitration_cycles_ + extra_cycles + beats);
}

bool Bus::try_transaction_fast(std::uint64_t bytes, sim::Cycles extra_cycles,
                               sim::TimeCursor& cursor) {
  if (!cursor.enabled() || !uncontended()) return false;
  // Uncontended grant: the general path would have acquired immediately and
  // recorded a zero queue wait, so mirror its statistics exactly.
  queue_wait_ticks.add(0.0);
  queue_wait_ns.add(0);
  const sim::Tick hold = occupancy(bytes, extra_cycles);
  cursor.advance(hold);
  busy_ticks_ += hold;
  transactions.add();
  bytes_transferred.add(bytes);
  return true;
}

sim::Task<> Bus::transaction(std::uint64_t bytes, sim::Cycles extra_cycles) {
  const sim::Tick requested = sim_.now();
  co_await grant_.acquire();
  const sim::Tick wait = sim_.now() - requested;
  queue_wait_ticks.add(static_cast<double>(wait));
  queue_wait_ns.add(wait / sim::kTicksPerNanosecond);
  if (trace_ != nullptr && wait > 0) {
    trace_->span(trace_track_, obs::SpanKind::kBusWait, requested, sim_.now(),
                 static_cast<std::int64_t>(bytes));
  }

  const sim::Tick hold = occupancy(bytes, extra_cycles);
  co_await sim_.delay(hold);
  busy_ticks_ += hold;
  transactions.add();
  bytes_transferred.add(bytes);
  grant_.release();
}

void Bus::register_stats(stats::StatRegistry& reg, const std::string& prefix) {
  reg.register_counter(prefix + ".transactions", &transactions);
  reg.register_counter(prefix + ".bytes", &bytes_transferred);
  reg.register_accumulator(prefix + ".queue_wait_ticks", &queue_wait_ticks);
  reg.register_histogram(prefix + ".queue_wait_ns", &queue_wait_ns);
}

}  // namespace merm::memory
