#include "memory/hierarchy.hpp"

#include <stdexcept>

namespace merm::memory {

using machine::WritePolicy;

MemoryHierarchy::MemoryHierarchy(sim::Simulator& sim,
                                 const machine::NodeParams& params)
    : sim_(sim),
      params_(params),
      cpu_clock_(params.cpu.frequency_hz),
      cpu_count_(params.cpu_count),
      coherent_(params.cpu_count > 1 || params.force_coherence),
      level_count_(params.memory.levels.size()),
      cursors_(params.cpu_count),
      bus_(sim, params.memory.bus_frequency_hz, params.memory.bus_width_bytes,
           params.memory.bus_arbitration_cycles) {
  if (cpu_count_ == 0) throw std::invalid_argument("node needs >= 1 CPU");
  const auto& mem = params_.memory;
  if (level_count_ > 0) {
    for (std::uint32_t c = 0; c < cpu_count_; ++c) {
      dcaches_.push_back(std::make_unique<Cache>(
          mem.levels[0], "l1" + std::string(mem.split_l1 ? "d" : "") + "." +
                             std::to_string(c)));
      if (mem.split_l1) {
        icaches_.push_back(std::make_unique<Cache>(
            mem.levels[0], "l1i." + std::to_string(c)));
      }
    }
    for (std::size_t lvl = 1; lvl < level_count_; ++lvl) {
      shared_.push_back(std::make_unique<Cache>(
          mem.levels[lvl], "l" + std::to_string(lvl + 1)));
    }
    // Wire each cache to the level below it: L1s feed the first shared
    // level, shared levels chain, the last level writes back to memory.
    Cache* first_shared = shared_.empty() ? nullptr : shared_[0].get();
    for (auto& c : dcaches_) c->set_below(first_shared);
    for (auto& c : icaches_) c->set_below(first_shared);
    for (std::size_t i = 0; i + 1 < shared_.size(); ++i) {
      shared_[i]->set_below(shared_[i + 1].get());
    }
  }
}

Cache* MemoryHierarchy::l1(std::uint32_t cpu, AccessType type) {
  if (level_count_ == 0) return nullptr;
  if (params_.memory.split_l1 && type == AccessType::kIFetch) {
    return icaches_[cpu].get();
  }
  return dcaches_[cpu].get();
}

Cache* MemoryHierarchy::shared_level(std::size_t i) {
  if (i == 0 || i > shared_.size()) return nullptr;
  return shared_[i - 1].get();
}

std::size_t MemoryHierarchy::footprint_bytes() const {
  std::size_t total = 0;
  for (const auto& c : dcaches_) total += c->footprint_bytes();
  for (const auto& c : icaches_) total += c->footprint_bytes();
  for (const auto& c : shared_) total += c->footprint_bytes();
  return total;
}

MemoryHierarchy::SnoopResult MemoryHierarchy::snoop(std::uint32_t requester,
                                                    AccessType type,
                                                    std::uint64_t line_addr,
                                                    bool for_write) {
  SnoopResult result;
  for (std::uint32_t c = 0; c < cpu_count_; ++c) {
    if (c == requester) continue;
    Cache* peer = l1(c, type);
    const LineState st = peer->probe(line_addr);
    if (st == LineState::kInvalid) continue;
    result.supplied = true;
    ++result.holders;
    if (st == LineState::kModified) result.was_dirty = true;
    if (for_write) {
      peer->invalidate(line_addr);
    } else {
      peer->downgrade(line_addr);
    }
  }
  // With a split L1, data lines may also live in peer *instruction* caches
  // only for ifetches; cross-type snooping is unnecessary because the
  // generators keep code and data address ranges disjoint.
  return result;
}

bool MemoryHierarchy::try_access_fast(std::uint32_t cpu, AccessType type,
                                      std::uint64_t addr,
                                      sim::Tick issue_ticks) {
  sim::TimeCursor& cur = cursors_[cpu];
  if (!cur.enabled()) return false;
  const bool is_write = type == AccessType::kStore;

  if (level_count_ == 0) {
    // Cacheless node: one uncontended bus + DRAM beat per access.
    if (!bus_.uncontended()) return false;
    accesses.add();
    dram_accesses.add();
    cur.advance(issue_ticks);
    const sim::Tick before = cur.pending();
    (void)bus_.try_transaction_fast(bus_.width_bytes(),
                                    params_.memory.dram_access_cycles, cur);
    access_latency_ticks.add(static_cast<double>(cur.pending() - before));
    return true;
  }

  Cache& first = *l1(cpu, type);
  const LineState st = first.probe(addr);
  if (st == LineState::kInvalid) return false;
  const bool write_back =
      first.params().write_policy == WritePolicy::kWriteBack;
  if (is_write &&
      (!write_back || (coherent_ && st == LineState::kShared))) {
    // Write-through propagation or a MESI upgrade: bus traffic, general
    // path.
    return false;
  }

  // Pure L1 hit: identical counters, LRU update and latency to access().
  accesses.add();
  cur.advance(issue_ticks);
  first.hits.add();
  first.touch(addr, is_write && write_back);
  const sim::Tick lookup = cpu_clock_.to_ticks(first.params().hit_cycles);
  cur.advance(lookup);
  access_latency_ticks.add(static_cast<double>(lookup));
  return true;
}

sim::Task<> MemoryHierarchy::fill_with_writeback(Cache& cache,
                                                 std::uint64_t addr,
                                                 LineState state,
                                                 sim::TimeCursor& cursor) {
  const Cache::Eviction ev = cache.fill(cache.line_base(addr), state);
  if (!ev.valid || !ev.dirty) co_return;
  // Dirty victim: push into the next level down, or to memory over the bus.
  if (Cache* below = cache.below()) {
    if (below->probe(ev.addr) != LineState::kInvalid) {
      below->touch(ev.addr, /*is_write=*/true);  // mark dirty below
    } else {
      // Non-inclusive: victim absent below; absorb it (may cascade).
      co_await fill_with_writeback(*below, ev.addr, LineState::kModified,
                                   cursor);
    }
  } else {
    if (!bus_.try_transaction_fast(cache.params().line_bytes, 0, cursor)) {
      co_await cursor.flush();
      co_await bus_.transaction(cache.params().line_bytes);
    }
  }
}

sim::Task<> MemoryHierarchy::access(std::uint32_t cpu, AccessType type,
                                    std::uint64_t addr) {
  accesses.add();
  sim::TimeCursor& cur = cursors_[cpu];
  const sim::Tick start = sim_.now() + cur.pending();
  const bool is_write = type == AccessType::kStore;

  if (level_count_ == 0) {
    // Cacheless node (e.g. T805): every access is a bus + memory access of
    // one bus beat.
    dram_accesses.add();
    if (!bus_.try_transaction_fast(bus_.width_bytes(),
                                   params_.memory.dram_access_cycles, cur)) {
      co_await cur.flush();
      co_await bus_.transaction(bus_.width_bytes(),
                                params_.memory.dram_access_cycles);
    }
    access_latency_ticks.add(
        static_cast<double>(sim_.now() + cur.pending() - start));
    co_return;
  }

  Cache& first = *l1(cpu, type);
  const std::uint64_t line = first.line_base(addr);
  const LineState st = first.probe(addr);

  // L1 lookup cost is paid hit or miss.
  const sim::Tick l1_ticks = cpu_clock_.to_ticks(first.params().hit_cycles);
  if (cur.enabled()) {
    cur.advance(l1_ticks);
  } else {
    co_await sim_.delay(l1_ticks);
  }

  if (st != LineState::kInvalid) {
    first.hits.add();
    const bool write_back_l1 =
        first.params().write_policy == WritePolicy::kWriteBack;
    first.touch(addr, is_write && write_back_l1);
    if (is_write) {
      if (!write_back_l1) {
        // Write-through: propagate the word downwards; line stays clean.
        if (Cache* l2 = shared_.empty() ? nullptr : shared_[0].get()) {
          const sim::Tick l2_ticks =
              cpu_clock_.to_ticks(l2->params().hit_cycles);
          if (cur.enabled()) {
            cur.advance(l2_ticks);
          } else {
            co_await sim_.delay(l2_ticks);
          }
          if (l2->probe(addr) != LineState::kInvalid) {
            l2->touch(addr, l2->params().write_policy ==
                                WritePolicy::kWriteBack);
          }
          if (l2->params().write_policy == WritePolicy::kWriteThrough) {
            if (!bus_.try_transaction_fast(bus_.width_bytes(), 0, cur)) {
              co_await cur.flush();
              co_await bus_.transaction(bus_.width_bytes());
            }
          }
        } else {
          if (!bus_.try_transaction_fast(bus_.width_bytes(), 0, cur)) {
            co_await cur.flush();
            co_await bus_.transaction(bus_.width_bytes());
          }
        }
        if (coherent_) {
          const SnoopResult sr = snoop(cpu, type, line, /*for_write=*/true);
          if (params_.memory.coherence ==
                  machine::CoherenceKind::kDirectory &&
              sr.holders > 0) {
            // Point-to-point invalidations to each tracked sharer (the
            // write-through bus transaction above doubles as the broadcast
            // under snooping).
            for (int i = 0; i < sr.holders; ++i) {
              if (!bus_.try_transaction_fast(0, 0, cur)) {
                co_await cur.flush();
                co_await bus_.transaction(0);
              }
            }
          }
        }
      } else if (coherent_ && st == LineState::kShared) {
        // MESI upgrade: invalidate the other copies before writing.
        if (params_.memory.coherence == machine::CoherenceKind::kSnoopy) {
          // One broadcast transaction; all snoopers react for free.
          if (!bus_.try_transaction_fast(0, 0, cur)) {
            co_await cur.flush();
            co_await bus_.transaction(0);
          }
          snoop(cpu, type, line, /*for_write=*/true);
        } else {
          // Directory: consult the sharer list, then invalidate each holder
          // point to point.
          const SnoopResult sr = snoop(cpu, type, line, /*for_write=*/true);
          if (!bus_.try_transaction_fast(
                  0, params_.memory.directory_lookup_cycles, cur)) {
            co_await cur.flush();
            co_await bus_.transaction(0,
                                      params_.memory.directory_lookup_cycles);
          }
          for (int i = 0; i < sr.holders; ++i) {
            if (!bus_.try_transaction_fast(0, 0, cur)) {
              co_await cur.flush();
              co_await bus_.transaction(0);
            }
          }
        }
      }
    }
    access_latency_ticks.add(
        static_cast<double>(sim_.now() + cur.pending() - start));
    co_return;
  }

  first.misses.add();

  // Snoop peer L1s (multiprocessor nodes only).
  const bool directory =
      params_.memory.coherence == machine::CoherenceKind::kDirectory;
  bool peer_had_copy = false;
  if (coherent_) {
    const SnoopResult sr = snoop(cpu, type, line, is_write);
    const sim::Cycles dir_extra =
        directory ? params_.memory.directory_lookup_cycles : 0;
    if (sr.supplied) {
      peer_had_copy = true;
      // Cache-to-cache supply over the bus; a dirty owner flushes the line;
      // the directory variant additionally pays its lookup.
      const sim::Cycles supply_extra = (sr.was_dirty ? 1 : 0) + dir_extra;
      if (!bus_.try_transaction_fast(first.params().line_bytes, supply_extra,
                                     cur)) {
        co_await cur.flush();
        co_await bus_.transaction(first.params().line_bytes, supply_extra);
      }
      if (directory && is_write && sr.holders > 1) {
        // Extra clean sharers beyond the supplier: point-to-point
        // invalidations (snooping handled them within the broadcast).
        for (int i = 1; i < sr.holders; ++i) {
          if (!bus_.try_transaction_fast(0, 0, cur)) {
            co_await cur.flush();
            co_await bus_.transaction(0);
          }
        }
      }
    } else if (directory) {
      // Even an unshared miss consults the directory on its way to memory.
      if (!bus_.try_transaction_fast(0, dir_extra, cur)) {
        co_await cur.flush();
        co_await bus_.transaction(0, dir_extra);
      }
    }
  }

  if (!peer_had_copy) {
    // Walk the shared levels.
    bool found = false;
    std::size_t found_level = 0;
    for (std::size_t i = 0; i < shared_.size(); ++i) {
      Cache& level = *shared_[i];
      const sim::Tick lvl_ticks =
          cpu_clock_.to_ticks(level.params().hit_cycles);
      if (cur.enabled()) {
        cur.advance(lvl_ticks);
      } else {
        co_await sim_.delay(lvl_ticks);
      }
      if (level.probe(addr) != LineState::kInvalid) {
        level.hits.add();
        level.touch(addr, false);
        found = true;
        found_level = i;
        break;
      }
      level.misses.add();
    }

    if (!found) {
      // Fetch the outermost level's line (or L1's when no shared levels)
      // from DRAM over the bus.
      dram_accesses.add();
      const std::uint32_t fetch_bytes =
          shared_.empty() ? first.params().line_bytes
                          : shared_.back()->params().line_bytes;
      if (!bus_.try_transaction_fast(fetch_bytes,
                                     params_.memory.dram_access_cycles,
                                     cur)) {
        co_await cur.flush();
        co_await bus_.transaction(fetch_bytes,
                                  params_.memory.dram_access_cycles);
      }
      // Allocate in every shared level walked (outermost first).
      for (std::size_t i = shared_.size(); i-- > 0;) {
        co_await fill_with_writeback(*shared_[i], addr, LineState::kExclusive,
                                     cur);
      }
    } else {
      // Allocate in the levels above the hit.
      for (std::size_t i = found_level; i-- > 0;) {
        co_await fill_with_writeback(*shared_[i], addr, LineState::kExclusive,
                                     cur);
      }
    }
  }

  // A peer may have filled this line while our miss was waiting on the bus
  // (the snoop above is stale by now).  Re-resolve coherence state right
  // before the fill — no suspension points from here on, so the fill is
  // atomic with respect to other accesses.  Zero-cost: the timing was
  // charged above; this models the snoop that rides the bus transaction.
  if (coherent_) {
    const SnoopResult final_snoop = snoop(cpu, type, line, is_write);
    peer_had_copy = peer_had_copy || final_snoop.supplied;
  }

  // Finally allocate in L1 (unless policy says not to on write misses).
  const bool allocate =
      !is_write || first.params().allocate_on_write_miss;
  if (allocate) {
    LineState fill_state;
    if (is_write) {
      fill_state = first.params().write_policy == WritePolicy::kWriteBack
                       ? LineState::kModified
                       : LineState::kShared;
    } else {
      fill_state = (coherent_ && peer_had_copy) ? LineState::kShared
                                                : LineState::kExclusive;
    }
    co_await fill_with_writeback(first, addr, fill_state, cur);
  }
  if (is_write && !allocate) {
    // No-allocate write miss: the word goes straight to the level below.
    if (!bus_.try_transaction_fast(bus_.width_bytes(), 0, cur)) {
      co_await cur.flush();
      co_await bus_.transaction(bus_.width_bytes());
    }
  }
  if (is_write && first.params().write_policy == WritePolicy::kWriteThrough &&
      allocate) {
    // Write-through write miss with allocation still propagates the word.
    if (!bus_.try_transaction_fast(bus_.width_bytes(), 0, cur)) {
      co_await cur.flush();
      co_await bus_.transaction(bus_.width_bytes());
    }
  }

  access_latency_ticks.add(
      static_cast<double>(sim_.now() + cur.pending() - start));
}

void MemoryHierarchy::register_stats(stats::StatRegistry& reg,
                                     const std::string& prefix) {
  reg.register_counter(prefix + ".accesses", &accesses);
  reg.register_counter(prefix + ".dram_accesses", &dram_accesses);
  reg.register_accumulator(prefix + ".latency_ticks", &access_latency_ticks);
  for (auto& c : dcaches_) c->register_stats(reg, prefix + "." + c->name());
  for (auto& c : icaches_) c->register_stats(reg, prefix + "." + c->name());
  for (auto& c : shared_) c->register_stats(reg, prefix + "." + c->name());
  bus_.register_stats(reg, prefix + ".bus");
}

}  // namespace merm::memory
