// Tags-only set-associative cache model.
//
// Following the paper's memory-saving design, a cache holds only tags and
// line state, never data: "simulated caches only need to hold addresses
// (tags), not data".  State is MESI so the same structure serves both
// uniprocessor hierarchies (where only I/E/M occur) and snoopy multi-CPU
// nodes.  Replacement is true LRU per set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "machine/params.hpp"
#include "stats/stats.hpp"

namespace merm::memory {

enum class LineState : std::uint8_t {
  kInvalid,
  kShared,
  kExclusive,
  kModified,
};

const char* to_string(LineState s);

class Cache {
 public:
  Cache(const machine::CacheLevelParams& params, std::string name);

  const std::string& name() const { return name_; }
  const machine::CacheLevelParams& params() const { return params_; }

  /// Next level toward memory (nullptr when this is the last level before
  /// DRAM).  Wired once by MemoryHierarchy at construction so dirty-victim
  /// writebacks need no per-eviction level search.
  Cache* below() const { return below_; }
  void set_below(Cache* below) { below_ = below; }

  /// Address of the first byte of the line containing `addr`.
  std::uint64_t line_base(std::uint64_t addr) const {
    return addr & ~static_cast<std::uint64_t>(params_.line_bytes - 1);
  }

  /// Non-destructive probe (no LRU update).
  LineState probe(std::uint64_t addr) const;
  bool contains(std::uint64_t addr) const {
    return probe(addr) != LineState::kInvalid;
  }

  /// Reference a resident line: updates LRU; for writes upgrades
  /// Exclusive -> Modified.  Returns false if the line is not resident.
  bool touch(std::uint64_t addr, bool is_write);

  /// Result of inserting a line on a miss.
  struct Eviction {
    bool valid = false;       ///< a victim line was evicted
    bool dirty = false;       ///< victim was Modified (needs writeback)
    std::uint64_t addr = 0;   ///< victim line base address
  };

  /// Allocates a line in state `fill` (evicting LRU if the set is full).
  /// The line must not already be resident.
  Eviction fill(std::uint64_t addr, LineState fill);

  /// Changes the state of a resident line (coherence actions).  Returns the
  /// previous state, or kInvalid if not resident.
  LineState set_state(std::uint64_t addr, LineState s);

  /// Snoop: invalidate the line if resident.  Returns its previous state.
  LineState invalidate(std::uint64_t addr);

  /// Snoop: Modified/Exclusive -> Shared.  Returns previous state.
  LineState downgrade(std::uint64_t addr);

  /// Number of resident (non-invalid) lines.
  std::size_t resident_lines() const;

  /// Approximate memory consumed by the tag store itself (the quantity the
  /// paper's memory-usage argument is about).
  std::size_t footprint_bytes() const;

  // -- statistics --
  stats::Counter hits;
  stats::Counter misses;
  stats::Counter evictions;
  stats::Counter writebacks;
  stats::Counter invalidations;  ///< snoop-induced invalidations
  stats::Counter downgrades;

  double hit_rate() const {
    const auto total = hits.value() + misses.value();
    return total == 0 ? 0.0
                      : static_cast<double>(hits.value()) /
                            static_cast<double>(total);
  }

  void register_stats(stats::StatRegistry& reg, const std::string& prefix);

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  ///< larger = more recently used
    LineState state = LineState::kInvalid;
  };

  std::uint64_t set_index(std::uint64_t addr) const {
    return (addr / params_.line_bytes) % sets_;
  }
  std::uint64_t tag_of(std::uint64_t addr) const {
    return addr / params_.line_bytes / sets_;
  }

  Line* find(std::uint64_t addr);
  const Line* find(std::uint64_t addr) const;

  machine::CacheLevelParams params_;
  std::string name_;
  Cache* below_ = nullptr;
  std::uint64_t sets_;
  std::uint32_t ways_;
  std::uint64_t lru_clock_ = 0;
  std::vector<Line> lines_;  // sets_ * ways_, set-major
};

}  // namespace merm::memory
