#include "cpu/cpu.hpp"

#include <stdexcept>

namespace merm::cpu {

using trace::OpCode;

Cpu::Cpu(sim::Simulator& sim, const machine::CpuParams& params,
         memory::MemoryHierarchy& memory, std::uint32_t index)
    : sim_(sim),
      params_(params),
      clock_(params.frequency_hz),
      memory_(memory),
      index_(index) {}

sim::Task<> Cpu::execute(const trace::Operation& op) {
  if (!trace::is_computational(op.code)) {
    throw std::logic_error("Cpu::execute given non-computational operation: " +
                           trace::to_string(op));
  }
  const sim::Tick start = sim_.now();
  ops_executed.add();

  const sim::Cycles cost = params_.cost(op.code, op.type);
  issue_cycles.add(cost);
  co_await sim_.delay(clock_.to_ticks(cost));

  if (trace::is_memory_access(op.code)) {
    memory_ops.add();
    co_await memory_.access(index_,
                            op.code == OpCode::kLoad
                                ? memory::AccessType::kLoad
                                : memory::AccessType::kStore,
                            op.value);
  } else if (trace::is_instruction_fetch(op.code)) {
    fetch_ops.add();
    co_await memory_.access(index_, memory::AccessType::kIFetch, op.value);
  } else {
    arith_ops.add();
  }

  busy_ticks_ += sim_.now() - start;
}

void Cpu::register_stats(stats::StatRegistry& reg, const std::string& prefix) {
  reg.register_counter(prefix + ".ops", &ops_executed);
  reg.register_counter(prefix + ".memory_ops", &memory_ops);
  reg.register_counter(prefix + ".fetch_ops", &fetch_ops);
  reg.register_counter(prefix + ".arith_ops", &arith_ops);
  reg.register_counter(prefix + ".issue_cycles", &issue_cycles);
}

}  // namespace merm::cpu
