#include "cpu/cpu.hpp"

#include <stdexcept>

namespace merm::cpu {

using trace::OpCode;

Cpu::Cpu(sim::Simulator& sim, const machine::CpuParams& params,
         memory::MemoryHierarchy& memory, std::uint32_t index)
    : sim_(sim),
      params_(params),
      clock_(params.frequency_hz),
      memory_(memory),
      index_(index) {}

sim::Task<> Cpu::execute(const trace::Operation& op) {
  if (!trace::is_computational(op.code)) {
    throw std::logic_error("Cpu::execute given non-computational operation: " +
                           trace::to_string(op));
  }
  // Effective time includes any locally deferred ticks (cursor mode), so
  // busy accounting is identical whether delays suspend or accumulate.
  sim::TimeCursor& cursor = memory_.cursor(index_);
  const sim::Tick start = sim_.now() + cursor.pending();
  ops_executed.add();

  const sim::Cycles cost = params_.cost(op.code, op.type);
  issue_cycles.add(cost);
  if (cursor.enabled()) {
    cursor.advance(clock_.to_ticks(cost));
  } else {
    co_await sim_.delay(clock_.to_ticks(cost));
  }

  if (trace::is_memory_access(op.code)) {
    memory_ops.add();
    const sim::Tick walk_begin = sim_.now() + cursor.pending();
    co_await memory_.access(index_,
                            op.code == OpCode::kLoad
                                ? memory::AccessType::kLoad
                                : memory::AccessType::kStore,
                            op.value);
    if (trace_ != nullptr) {
      const sim::Tick walk_end = sim_.now() + cursor.pending();
      if (walk_end > walk_begin) {
        trace_->span(trace_track_, obs::SpanKind::kMissWalk, walk_begin,
                     walk_end, static_cast<std::int64_t>(op.value));
      }
    }
  } else if (trace::is_instruction_fetch(op.code)) {
    fetch_ops.add();
    const sim::Tick walk_begin = sim_.now() + cursor.pending();
    co_await memory_.access(index_, memory::AccessType::kIFetch, op.value);
    if (trace_ != nullptr) {
      const sim::Tick walk_end = sim_.now() + cursor.pending();
      if (walk_end > walk_begin) {
        trace_->span(trace_track_, obs::SpanKind::kMissWalk, walk_begin,
                     walk_end, static_cast<std::int64_t>(op.value));
      }
    }
  } else {
    arith_ops.add();
  }

  busy_ticks_ += sim_.now() + cursor.pending() - start;
}

bool Cpu::try_execute_fast(const trace::Operation& op) {
  sim::TimeCursor& cursor = memory_.cursor(index_);
  if (!cursor.enabled() || !trace::is_computational(op.code)) return false;

  const sim::Tick before = cursor.pending();
  const sim::Cycles cost = params_.cost(op.code, op.type);
  const sim::Tick issue_ticks = clock_.to_ticks(cost);

  if (trace::is_memory_access(op.code)) {
    if (!memory_.try_access_fast(index_,
                                 op.code == OpCode::kLoad
                                     ? memory::AccessType::kLoad
                                     : memory::AccessType::kStore,
                                 op.value, issue_ticks)) {
      return false;
    }
    memory_ops.add();
  } else if (trace::is_instruction_fetch(op.code)) {
    if (!memory_.try_access_fast(index_, memory::AccessType::kIFetch,
                                 op.value, issue_ticks)) {
      return false;
    }
    fetch_ops.add();
  } else {
    cursor.advance(issue_ticks);
    arith_ops.add();
  }

  ops_executed.add();
  issue_cycles.add(cost);
  busy_ticks_ += cursor.pending() - before;
  return true;
}

void Cpu::register_stats(stats::StatRegistry& reg, const std::string& prefix) {
  reg.register_counter(prefix + ".ops", &ops_executed);
  reg.register_counter(prefix + ".memory_ops", &memory_ops);
  reg.register_counter(prefix + ".fetch_ops", &fetch_ops);
  reg.register_counter(prefix + ".arith_ops", &arith_ops);
  reg.register_counter(prefix + ".issue_cycles", &issue_cycles);
}

}  // namespace merm::cpu
