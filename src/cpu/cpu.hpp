// The CPU component of the single-node computational model (Fig. 3a).
//
// The CPU executes the computational operation set of Table 1: it charges
// the machine-parameterized issue cost of each abstract instruction and
// drives the memory hierarchy for instruction fetches, loads and stores.
// It deliberately does not model pipeline structure — the paper notes that
// the abstraction level (no register specifiers in operations) precludes
// cycle-accurate pipeline simulation and trades that accuracy for speed.
#pragma once

#include <cstdint>
#include <string>

#include "machine/params.hpp"
#include "memory/hierarchy.hpp"
#include "obs/trace.hpp"
#include "sim/coro.hpp"
#include "sim/simulator.hpp"
#include "stats/stats.hpp"
#include "trace/operation.hpp"

namespace merm::cpu {

class Cpu {
 public:
  Cpu(sim::Simulator& sim, const machine::CpuParams& params,
      memory::MemoryHierarchy& memory, std::uint32_t index);

  /// Executes one computational operation, consuming simulated time.
  /// Communication operations are a precondition violation — the node model
  /// routes those to the communication model instead.
  sim::Task<> execute(const trace::Operation& op);

  /// Non-suspending, frame-free variant for the hot loop: when the memory
  /// hierarchy's cursor for this CPU is enabled and the operation needs no
  /// globally visible action (pure issue cost, L1 hit, or an uncontended
  /// cacheless bus access), the whole operation is charged onto the local
  /// cursor.  Returns false — with nothing charged or counted — when the
  /// general execute() path must run instead.
  bool try_execute_fast(const trace::Operation& op);

  std::uint32_t index() const { return index_; }
  const sim::Clock& clock() const { return clock_; }

  /// Observability hook: slow-path memory walks (execute() only runs one
  /// when the fast path declined — a miss, coherence action or write-through)
  /// record kMissWalk spans on `track`.  The hot loop (try_execute_fast) is
  /// deliberately unhooked.
  void attach_trace(obs::TraceSink* sink, obs::TrackId track) {
    trace_ = sink;
    trace_track_ = track;
  }

  /// Busy time so far (ticks the CPU spent executing operations).
  sim::Tick busy_ticks() const { return busy_ticks_; }
  /// Busy time expressed in this CPU's cycles.
  sim::Cycles busy_cycles() const { return clock_.to_cycles(busy_ticks_); }

  // -- statistics --
  stats::Counter ops_executed;
  stats::Counter memory_ops;   ///< loads + stores
  stats::Counter fetch_ops;    ///< ifetch/branch/call/ret
  stats::Counter arith_ops;    ///< add/sub/mul/div + loadc
  stats::Counter issue_cycles; ///< cycles charged from the cost table

  void register_stats(stats::StatRegistry& reg, const std::string& prefix);

 private:
  sim::Simulator& sim_;
  machine::CpuParams params_;
  sim::Clock clock_;
  memory::MemoryHierarchy& memory_;
  std::uint32_t index_;
  sim::Tick busy_ticks_ = 0;
  obs::TraceSink* trace_ = nullptr;
  obs::TrackId trace_track_ = obs::kNoTrack;
};

}  // namespace merm::cpu
