// Textual machine descriptions.
//
// The workbench's parameterization story: an architecture is a small text
// file, so sweeping a design space is editing (or generating) configs, not
// recompiling models.  The format is INI-like:
//
//   name = t805-4x4
//   [node]
//   cpu_count = 1
//   [cpu]
//   frequency_hz = 20e6
//   cost.load = 2          ; all data types
//   cost.mul.f32 = 11      ; one data type
//   [cache.0]
//   size_bytes = 32768
//   line_bytes = 64
//   associativity = 8
//   hit_cycles = 1
//   write_policy = write_back
//   [memory]
//   bus_frequency_hz = 33e6
//   ...
//   [topology]
//   kind = mesh2d
//   dims = 4 4
//   [router] / [link] / [nic] ...
//   [fault]
//   enabled = true
//   drop_probability = 0.01
//   [fault.link.0]            ; scripted outage of the 2<->3 link
//   from = 2
//   to = 3
//   down_at_us = 100
//   up_at_us = 500            ; omit for a permanent failure
//   [fault.node.0]            ; whole-node crash window
//   node = 5
//   down_at_us = 200
//
// Unknown keys are an error (catches typos in sweep scripts).
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "machine/params.hpp"

namespace merm::machine {

/// Parses a machine description.  Starts from defaults (or from `base` if
/// provided), applies the config on top.  Throws std::runtime_error with a
/// line number on malformed input.
MachineParams parse_config(std::istream& is);
MachineParams parse_config(std::istream& is, const MachineParams& base);
MachineParams parse_config_string(const std::string& text);
MachineParams parse_config_string(const std::string& text,
                                  const MachineParams& base);

/// As parse_config, reading from a file.  Errors are reported
/// compiler-style as "path:line: message"; a missing or unreadable file
/// throws with the path in the message.
MachineParams parse_config_file(const std::string& path);
MachineParams parse_config_file(const std::string& path,
                                const MachineParams& base);

/// Writes a complete config that parse_config round-trips.
void write_config(std::ostream& os, const MachineParams& params);
std::string write_config_string(const MachineParams& params);

const char* to_string(TopologyKind k);
const char* to_string(Switching s);
const char* to_string(RoutingAlgorithm r);
const char* to_string(WritePolicy p);

}  // namespace merm::machine
