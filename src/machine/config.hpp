// Textual machine descriptions.
//
// The workbench's parameterization story: an architecture is a small text
// file, so sweeping a design space is editing (or generating) configs, not
// recompiling models.  The format is INI-like:
//
//   name = t805-4x4
//   [node]
//   cpu_count = 1
//   [cpu]
//   frequency_hz = 20e6
//   cost.load = 2          ; all data types
//   cost.mul.f32 = 11      ; one data type
//   [cache.0]
//   size_bytes = 32768
//   line_bytes = 64
//   associativity = 8
//   hit_cycles = 1
//   write_policy = write_back
//   [memory]
//   bus_frequency_hz = 33e6
//   ...
//   [topology]
//   kind = mesh2d
//   dims = 4 4
//   [router] / [link] / [nic] ...
//
// Unknown keys are an error (catches typos in sweep scripts).
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "machine/params.hpp"

namespace merm::machine {

/// Parses a machine description.  Starts from defaults (or from `base` if
/// provided), applies the config on top.  Throws std::runtime_error with a
/// line number on malformed input.
MachineParams parse_config(std::istream& is);
MachineParams parse_config(std::istream& is, const MachineParams& base);
MachineParams parse_config_string(const std::string& text);
MachineParams parse_config_string(const std::string& text,
                                  const MachineParams& base);

/// Writes a complete config that parse_config round-trips.
void write_config(std::ostream& os, const MachineParams& params);
std::string write_config_string(const MachineParams& params);

const char* to_string(TopologyKind k);
const char* to_string(Switching s);
const char* to_string(RoutingAlgorithm r);
const char* to_string(WritePolicy p);

}  // namespace merm::machine
