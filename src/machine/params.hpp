// Machine parameter tables — the parameterization surface of the workbench.
//
// "Every model has a set of machine parameters that is calibrated with
// published information or by benchmarking" (Section 3).  A MachineParams
// aggregates everything the architecture models consume: per-operation CPU
// cycle costs, cache hierarchy geometry and policies, bus, DRAM, and the
// interconnect (topology, router, links, network interface).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"
#include "trace/operation.hpp"

namespace merm::machine {

using sim::Cycles;

/// CPU timing model parameters: base cycles per operation and type.
///
/// Costs exclude memory-hierarchy time: a load costs `cost(kLoad, t)` issue
/// cycles plus whatever the cache hierarchy charges for the access.
struct CpuParams {
  double frequency_hz = 100e6;

  /// cost_table[opcode][datatype] in cycles.  Communication opcodes are
  /// ignored here (the communication model prices those).
  std::array<std::array<Cycles, trace::kDataTypeCount>, trace::kOpCodeCount>
      cost_table{};

  CpuParams();

  Cycles cost(trace::OpCode c, trace::DataType t) const {
    return cost_table[static_cast<std::size_t>(c)][static_cast<std::size_t>(t)];
  }
  void set_cost(trace::OpCode c, trace::DataType t, Cycles cycles) {
    cost_table[static_cast<std::size_t>(c)][static_cast<std::size_t>(t)] =
        cycles;
  }
  /// Sets the cost of opcode `c` for every data type.
  void set_cost_all_types(trace::OpCode c, Cycles cycles);
};

enum class WritePolicy : std::uint8_t { kWriteThrough, kWriteBack };

/// One cache level.  Caches are tags-only (the paper's memory-saving choice):
/// geometry and policies are modelled, data contents are not.
struct CacheLevelParams {
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 32;
  std::uint32_t associativity = 4;  ///< ways; 0 means fully associative
  Cycles hit_cycles = 1;
  WritePolicy write_policy = WritePolicy::kWriteBack;
  bool allocate_on_write_miss = true;

  std::uint64_t sets() const {
    const std::uint32_t ways =
        associativity == 0
            ? static_cast<std::uint32_t>(size_bytes / line_bytes)
            : associativity;
    return size_bytes / (static_cast<std::uint64_t>(line_bytes) * ways);
  }
};

/// Intra-node cache-coherence strategy for multi-CPU nodes.  The paper's
/// template ships a snoopy bus protocol and notes "other strategies, like
/// directory schemes, can be added with relative ease" — both are provided.
enum class CoherenceKind : std::uint8_t {
  kSnoopy,     ///< bus broadcast; every miss/upgrade is one bus transaction
  kDirectory,  ///< sharer tracking at memory; point-to-point invalidations
};

/// The memory hierarchy of one node (Fig. 3a): optional split L1, further
/// unified levels, a bus, and DRAM.
struct MemoryParams {
  /// If true, level 0 is split into instruction and data caches with
  /// identical parameters `levels[0]`; otherwise level 0 is unified.
  bool split_l1 = false;
  std::vector<CacheLevelParams> levels;  ///< L1 first; may be empty

  /// Bus connecting last cache level (or CPUs) to memory.
  double bus_frequency_hz = 66e6;
  std::uint32_t bus_width_bytes = 8;
  Cycles bus_arbitration_cycles = 1;

  /// DRAM: fixed access latency plus per-bus-width-beat transfer.
  Cycles dram_access_cycles = 8;  ///< in bus cycles
  Cycles dram_beat_cycles = 1;    ///< per bus-width beat, in bus cycles

  /// Coherence strategy (multi-CPU nodes).
  CoherenceKind coherence = CoherenceKind::kSnoopy;
  /// Directory lookup/update latency, in bus cycles (directory scheme only).
  Cycles directory_lookup_cycles = 4;
};

/// A MIMD node: one or more CPUs sharing a cache hierarchy/bus/memory.
struct NodeParams {
  std::uint32_t cpu_count = 1;
  CpuParams cpu;
  MemoryParams memory;
  /// Snoopy-bus coherence is enabled automatically when cpu_count > 1.
  bool force_coherence = false;
};

enum class TopologyKind : std::uint8_t {
  kRing,
  kMesh2D,
  kTorus2D,
  kHypercube,
  kStar,
  kFullyConnected,
};

struct TopologyParams {
  TopologyKind kind = TopologyKind::kMesh2D;
  /// Interpretation depends on kind: mesh/torus use dims[0] x dims[1];
  /// ring/star/fully-connected/hypercube use dims[0] as the node count
  /// (hypercube requires a power of two).
  std::array<std::uint32_t, 2> dims = {2, 2};

  std::uint32_t node_count() const;
};

enum class Switching : std::uint8_t {
  kStoreAndForward,
  kVirtualCutThrough,
  kWormhole,
};

enum class RoutingAlgorithm : std::uint8_t {
  kDimensionOrder,  ///< XY for mesh/torus, e-cube for hypercube
  kShortestPath,    ///< table-based, BFS-computed
};

struct RouterParams {
  Switching switching = Switching::kWormhole;
  RoutingAlgorithm routing = RoutingAlgorithm::kDimensionOrder;
  double frequency_hz = 20e6;
  std::uint32_t max_packet_bytes = 4096;  ///< messages split beyond this
  std::uint32_t header_bytes = 8;
  std::uint32_t flit_bytes = 4;
  Cycles routing_decision_cycles = 2;  ///< per packet per hop
  std::uint32_t input_buffer_flits = 16;
};

struct LinkParams {
  double bandwidth_bytes_per_s = 20e6 / 8.0 * 0.8;  ///< payload bandwidth
  sim::Tick propagation_delay = 50 * sim::kTicksPerNanosecond;
  /// Virtual channels per link.  Rings and tori need >= 2 for deadlock-free
  /// wormhole routing (dateline scheme); ignored by store-and-forward.
  std::uint32_t virtual_channels = 2;
};

/// The node-side network interface: the "abstract processor" software costs.
struct NicParams {
  sim::Tick send_setup = 2 * sim::kTicksPerMicrosecond;
  sim::Tick recv_setup = 2 * sim::kTicksPerMicrosecond;
  double copy_bytes_per_s = 40e6;  ///< memory copy bandwidth at the NIC
};

/// A scripted link outage: both unidirectional links between `a` and `b` go
/// down at `down_at` and come back at `up_at` (kTickMax = never repaired).
struct LinkFaultEvent {
  trace::NodeId a = 0;
  trace::NodeId b = 0;
  sim::Tick down_at = 0;
  sim::Tick up_at = sim::kTickMax;
};

/// A scripted whole-node crash: every link incident to `node` goes down at
/// `down_at`; messages to/from/through the node fail until `up_at`.
struct NodeFaultEvent {
  trace::NodeId node = 0;
  sim::Tick down_at = 0;
  sim::Tick up_at = sim::kTickMax;
};

/// Degraded-mode evaluation knobs (the fault-injection subsystem's
/// configuration surface; see src/fault/).  All stochastic behaviour is
/// seed-driven, so a FaultPlan built from these parameters replays
/// bit-identically across runs and sweep thread counts.
struct FaultParams {
  bool enabled = false;
  std::uint64_t seed = 0x6661756c74ULL;  // "fault"

  /// Per-data-message probabilities, drawn once per message at the network
  /// boundary.  Control traffic (acknowledgements) is exempt.
  double drop_probability = 0.0;     ///< message silently lost in transit
  double corrupt_probability = 0.0;  ///< delivered but discarded by the NIC

  /// Fault tolerance at the NIC: a synchronous send that has not been
  /// acknowledged within ack_timeout retransmits; the timeout doubles with
  /// every attempt (exponential backoff).  Asynchronous sends, whose loss the
  /// NIC observes directly, wait retry_backoff (doubling) between attempts.
  /// After max_retries retransmissions a sync send raises a structured error;
  /// an async send counts a send_failure and gives up.
  sim::Tick ack_timeout = 200 * sim::kTicksPerMicrosecond;
  std::uint32_t max_retries = 4;
  sim::Tick retry_backoff = 50 * sim::kTicksPerMicrosecond;

  std::vector<LinkFaultEvent> link_events;
  std::vector<NodeFaultEvent> node_events;

  /// True when any fault source is actually configured.
  bool any_faults() const {
    return drop_probability > 0.0 || corrupt_probability > 0.0 ||
           !link_events.empty() || !node_events.empty();
  }
};

/// Everything needed to instantiate a multicomputer model.
struct MachineParams {
  std::string name = "generic";
  NodeParams node;
  TopologyParams topology;
  RouterParams router;
  LinkParams link;
  NicParams nic;
  FaultParams fault;

  std::uint32_t node_count() const { return topology.node_count(); }
};

/// Calibrated presets (see DESIGN.md "Substitutions").
namespace presets {

/// A node resembling the Motorola PowerPC 601: 66 MHz, 32 KB unified
/// 8-way L1, 256 KB off-chip L2, 64-bit 33 MHz bus.  Used by the paper's
/// detailed-mode slowdown measurement ("two levels of cache").
MachineParams powerpc601_node();

/// A multicomputer of 20 MHz T805 transputers on a 2D mesh with four
/// 20 Mbit/s bidirectional links per node and store-and-forward switching.
MachineParams t805_multicomputer(std::uint32_t width, std::uint32_t height);

/// A generic modern-ish RISC multicomputer used by tests and examples:
/// 200 MHz CPUs, split L1 + unified L2, wormhole-routed 2D torus.
MachineParams generic_risc(std::uint32_t width, std::uint32_t height);

/// A multicomputer in the style of the Intel iPSC/860: 40 MHz i860 nodes
/// (small unified cache) on a hypercube with cut-through routing.
/// `nodes` must be a power of two.
MachineParams ipsc860_hypercube(std::uint32_t nodes);

}  // namespace presets

}  // namespace merm::machine
