#include "machine/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace merm::machine {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// Internal parse failure carrying the line number; the public entry points
// format it with whatever source context they have (a file path gives the
// compiler-style "path:line:", a bare stream keeps the legacy wording).
struct ParseError {
  int line;
  std::string msg;
};

[[noreturn]] void fail(int line, const std::string& msg) {
  throw ParseError{line, msg};
}

double parse_double(const std::string& v, int line) {
  try {
    std::size_t pos = 0;
    const double d = std::stod(v, &pos);
    if (pos != v.size()) fail(line, "trailing junk in number '" + v + "'");
    return d;
  } catch (const std::logic_error&) {
    fail(line, "bad number '" + v + "'");
  }
}

std::uint64_t parse_u64(const std::string& v, int line) {
  try {
    std::size_t pos = 0;
    const std::uint64_t u = std::stoull(v, &pos, 0);
    if (pos != v.size()) fail(line, "trailing junk in number '" + v + "'");
    return u;
  } catch (const std::logic_error&) {
    fail(line, "bad integer '" + v + "'");
  }
}

bool parse_bool(const std::string& v, int line) {
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  fail(line, "bad boolean '" + v + "'");
}

double parse_probability(const std::string& v, int line) {
  const double p = parse_double(v, line);
  if (p < 0.0 || p > 1.0) {
    fail(line, "probability '" + v + "' not in [0, 1]");
  }
  return p;
}

sim::Tick parse_microseconds(const std::string& v, int line) {
  return parse_u64(v, line) * sim::kTicksPerMicrosecond;
}

trace::NodeId parse_node_id(const std::string& v, int line) {
  const std::uint64_t u = parse_u64(v, line);
  if (u > 0x7fffffffULL) fail(line, "node id '" + v + "' out of range");
  return static_cast<trace::NodeId>(u);
}

TopologyKind parse_topology(const std::string& v, int line) {
  if (v == "ring") return TopologyKind::kRing;
  if (v == "mesh2d") return TopologyKind::kMesh2D;
  if (v == "torus2d") return TopologyKind::kTorus2D;
  if (v == "hypercube") return TopologyKind::kHypercube;
  if (v == "star") return TopologyKind::kStar;
  if (v == "fully_connected") return TopologyKind::kFullyConnected;
  fail(line, "unknown topology '" + v + "'");
}

Switching parse_switching(const std::string& v, int line) {
  if (v == "store_and_forward") return Switching::kStoreAndForward;
  if (v == "virtual_cut_through") return Switching::kVirtualCutThrough;
  if (v == "wormhole") return Switching::kWormhole;
  fail(line, "unknown switching '" + v + "'");
}

RoutingAlgorithm parse_routing(const std::string& v, int line) {
  if (v == "dimension_order") return RoutingAlgorithm::kDimensionOrder;
  if (v == "shortest_path") return RoutingAlgorithm::kShortestPath;
  fail(line, "unknown routing '" + v + "'");
}

WritePolicy parse_write_policy(const std::string& v, int line) {
  if (v == "write_through") return WritePolicy::kWriteThrough;
  if (v == "write_back") return WritePolicy::kWriteBack;
  fail(line, "unknown write policy '" + v + "'");
}

// "cost.mul.f32" -> (kMul, kFloat); "cost.mul" -> (kMul, all types).
void apply_cost_key(CpuParams& cpu, const std::string& key,
                    const std::string& value, int line) {
  std::vector<std::string> parts;
  std::stringstream ss(key);
  std::string part;
  while (std::getline(ss, part, '.')) parts.push_back(part);
  if (parts.size() < 2 || parts.size() > 3 || parts[0] != "cost") {
    fail(line, "bad cost key '" + key + "'");
  }
  const auto opcode = trace::opcode_from_string(parts[1]);
  if (!opcode) fail(line, "unknown opcode '" + parts[1] + "'");
  const Cycles cycles = parse_u64(value, line);
  if (parts.size() == 2) {
    cpu.set_cost_all_types(*opcode, cycles);
  } else {
    const auto type = trace::datatype_from_string(parts[2]);
    if (!type) fail(line, "unknown data type '" + parts[2] + "'");
    cpu.set_cost(*opcode, *type, cycles);
  }
}

MachineParams parse_impl(std::istream& is, const MachineParams& base) {
  MachineParams m = base;
  std::string section;
  std::string raw;
  int line_no = 0;

  while (std::getline(is, raw)) {
    ++line_no;
    // Strip comments.
    const auto hash = raw.find_first_of(";#");
    std::string line = trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') fail(line_no, "unterminated section header");
      section = trim(line.substr(1, line.size() - 2));
      if (section.rfind("cache.", 0) == 0) {
        const std::size_t idx =
            static_cast<std::size_t>(parse_u64(section.substr(6), line_no));
        if (m.node.memory.levels.size() <= idx) {
          m.node.memory.levels.resize(idx + 1);
        }
      } else if (section.rfind("fault.link.", 0) == 0) {
        const std::size_t idx =
            static_cast<std::size_t>(parse_u64(section.substr(11), line_no));
        if (m.fault.link_events.size() <= idx) {
          m.fault.link_events.resize(idx + 1);
        }
      } else if (section.rfind("fault.node.", 0) == 0) {
        const std::size_t idx =
            static_cast<std::size_t>(parse_u64(section.substr(11), line_no));
        if (m.fault.node_events.size() <= idx) {
          m.fault.node_events.resize(idx + 1);
        }
      }
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected key = value");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));

    if (section.empty()) {
      if (key == "name") {
        m.name = value;
      } else {
        fail(line_no, "unknown top-level key '" + key + "'");
      }
    } else if (section == "node") {
      if (key == "cpu_count") {
        m.node.cpu_count = static_cast<std::uint32_t>(parse_u64(value, line_no));
      } else if (key == "force_coherence") {
        m.node.force_coherence = parse_bool(value, line_no);
      } else {
        fail(line_no, "unknown [node] key '" + key + "'");
      }
    } else if (section == "cpu") {
      if (key == "frequency_hz") {
        m.node.cpu.frequency_hz = parse_double(value, line_no);
      } else if (key.rfind("cost.", 0) == 0) {
        apply_cost_key(m.node.cpu, key, value, line_no);
      } else {
        fail(line_no, "unknown [cpu] key '" + key + "'");
      }
    } else if (section.rfind("cache.", 0) == 0) {
      const std::size_t idx =
          static_cast<std::size_t>(parse_u64(section.substr(6), line_no));
      CacheLevelParams& c = m.node.memory.levels[idx];
      if (key == "size_bytes") {
        c.size_bytes = parse_u64(value, line_no);
      } else if (key == "line_bytes") {
        c.line_bytes = static_cast<std::uint32_t>(parse_u64(value, line_no));
      } else if (key == "associativity") {
        c.associativity =
            static_cast<std::uint32_t>(parse_u64(value, line_no));
      } else if (key == "hit_cycles") {
        c.hit_cycles = parse_u64(value, line_no);
      } else if (key == "write_policy") {
        c.write_policy = parse_write_policy(value, line_no);
      } else if (key == "allocate_on_write_miss") {
        c.allocate_on_write_miss = parse_bool(value, line_no);
      } else {
        fail(line_no, "unknown [cache] key '" + key + "'");
      }
    } else if (section == "memory") {
      MemoryParams& mem = m.node.memory;
      if (key == "split_l1") {
        mem.split_l1 = parse_bool(value, line_no);
      } else if (key == "bus_frequency_hz") {
        mem.bus_frequency_hz = parse_double(value, line_no);
      } else if (key == "bus_width_bytes") {
        mem.bus_width_bytes =
            static_cast<std::uint32_t>(parse_u64(value, line_no));
      } else if (key == "bus_arbitration_cycles") {
        mem.bus_arbitration_cycles = parse_u64(value, line_no);
      } else if (key == "dram_access_cycles") {
        mem.dram_access_cycles = parse_u64(value, line_no);
      } else if (key == "dram_beat_cycles") {
        mem.dram_beat_cycles = parse_u64(value, line_no);
      } else if (key == "cache_levels") {
        mem.levels.resize(parse_u64(value, line_no));
      } else if (key == "coherence") {
        if (value == "snoopy") {
          mem.coherence = CoherenceKind::kSnoopy;
        } else if (value == "directory") {
          mem.coherence = CoherenceKind::kDirectory;
        } else {
          fail(line_no, "unknown coherence '" + value + "'");
        }
      } else if (key == "directory_lookup_cycles") {
        mem.directory_lookup_cycles = parse_u64(value, line_no);
      } else {
        fail(line_no, "unknown [memory] key '" + key + "'");
      }
    } else if (section == "topology") {
      if (key == "kind") {
        m.topology.kind = parse_topology(value, line_no);
      } else if (key == "dims") {
        std::stringstream ss(value);
        std::uint32_t a = 0;
        std::uint32_t b = 1;
        if (!(ss >> a)) fail(line_no, "bad dims");
        ss >> b;
        m.topology.dims = {a, b};
      } else {
        fail(line_no, "unknown [topology] key '" + key + "'");
      }
    } else if (section == "router") {
      RouterParams& r = m.router;
      if (key == "switching") {
        r.switching = parse_switching(value, line_no);
      } else if (key == "routing") {
        r.routing = parse_routing(value, line_no);
      } else if (key == "frequency_hz") {
        r.frequency_hz = parse_double(value, line_no);
      } else if (key == "max_packet_bytes") {
        r.max_packet_bytes =
            static_cast<std::uint32_t>(parse_u64(value, line_no));
      } else if (key == "header_bytes") {
        r.header_bytes = static_cast<std::uint32_t>(parse_u64(value, line_no));
      } else if (key == "flit_bytes") {
        r.flit_bytes = static_cast<std::uint32_t>(parse_u64(value, line_no));
      } else if (key == "routing_decision_cycles") {
        r.routing_decision_cycles = parse_u64(value, line_no);
      } else if (key == "input_buffer_flits") {
        r.input_buffer_flits =
            static_cast<std::uint32_t>(parse_u64(value, line_no));
      } else {
        fail(line_no, "unknown [router] key '" + key + "'");
      }
    } else if (section == "link") {
      if (key == "bandwidth_bytes_per_s") {
        m.link.bandwidth_bytes_per_s = parse_double(value, line_no);
      } else if (key == "propagation_delay_ns") {
        m.link.propagation_delay =
            parse_u64(value, line_no) * sim::kTicksPerNanosecond;
      } else if (key == "virtual_channels") {
        m.link.virtual_channels =
            static_cast<std::uint32_t>(parse_u64(value, line_no));
      } else {
        fail(line_no, "unknown [link] key '" + key + "'");
      }
    } else if (section == "nic") {
      if (key == "send_setup_ns") {
        m.nic.send_setup = parse_u64(value, line_no) * sim::kTicksPerNanosecond;
      } else if (key == "recv_setup_ns") {
        m.nic.recv_setup = parse_u64(value, line_no) * sim::kTicksPerNanosecond;
      } else if (key == "copy_bytes_per_s") {
        m.nic.copy_bytes_per_s = parse_double(value, line_no);
      } else {
        fail(line_no, "unknown [nic] key '" + key + "'");
      }
    } else if (section == "fault") {
      FaultParams& f = m.fault;
      if (key == "enabled") {
        f.enabled = parse_bool(value, line_no);
      } else if (key == "seed") {
        f.seed = parse_u64(value, line_no);
      } else if (key == "drop_probability") {
        f.drop_probability = parse_probability(value, line_no);
      } else if (key == "corrupt_probability") {
        f.corrupt_probability = parse_probability(value, line_no);
      } else if (key == "ack_timeout_us") {
        f.ack_timeout = parse_microseconds(value, line_no);
      } else if (key == "max_retries") {
        f.max_retries = static_cast<std::uint32_t>(parse_u64(value, line_no));
      } else if (key == "retry_backoff_us") {
        f.retry_backoff = parse_microseconds(value, line_no);
      } else {
        fail(line_no, "unknown [fault] key '" + key + "'");
      }
    } else if (section.rfind("fault.link.", 0) == 0) {
      const std::size_t idx =
          static_cast<std::size_t>(parse_u64(section.substr(11), line_no));
      LinkFaultEvent& e = m.fault.link_events[idx];
      if (key == "from") {
        e.a = parse_node_id(value, line_no);
      } else if (key == "to") {
        e.b = parse_node_id(value, line_no);
      } else if (key == "down_at_us") {
        e.down_at = parse_microseconds(value, line_no);
      } else if (key == "up_at_us") {
        e.up_at = parse_microseconds(value, line_no);
      } else {
        fail(line_no, "unknown [fault.link] key '" + key + "'");
      }
    } else if (section.rfind("fault.node.", 0) == 0) {
      const std::size_t idx =
          static_cast<std::size_t>(parse_u64(section.substr(11), line_no));
      NodeFaultEvent& e = m.fault.node_events[idx];
      if (key == "node") {
        e.node = parse_node_id(value, line_no);
      } else if (key == "down_at_us") {
        e.down_at = parse_microseconds(value, line_no);
      } else if (key == "up_at_us") {
        e.up_at = parse_microseconds(value, line_no);
      } else {
        fail(line_no, "unknown [fault.node] key '" + key + "'");
      }
    } else {
      fail(line_no, "unknown section '" + section + "'");
    }
  }
  return m;
}

}  // namespace

MachineParams parse_config(std::istream& is) {
  return parse_config(is, MachineParams{});
}

MachineParams parse_config(std::istream& is, const MachineParams& base) {
  try {
    return parse_impl(is, base);
  } catch (const ParseError& e) {
    throw std::runtime_error("machine config line " + std::to_string(e.line) +
                             ": " + e.msg);
  }
}

MachineParams parse_config_string(const std::string& text) {
  std::istringstream is(text);
  return parse_config(is);
}

MachineParams parse_config_string(const std::string& text,
                                  const MachineParams& base) {
  std::istringstream is(text);
  return parse_config(is, base);
}

MachineParams parse_config_file(const std::string& path) {
  return parse_config_file(path, MachineParams{});
}

MachineParams parse_config_file(const std::string& path,
                                const MachineParams& base) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("machine config: cannot open '" + path + "'");
  }
  try {
    return parse_impl(is, base);
  } catch (const ParseError& e) {
    throw std::runtime_error(path + ":" + std::to_string(e.line) + ": " +
                             e.msg);
  }
}

const char* to_string(TopologyKind k) {
  switch (k) {
    case TopologyKind::kRing:
      return "ring";
    case TopologyKind::kMesh2D:
      return "mesh2d";
    case TopologyKind::kTorus2D:
      return "torus2d";
    case TopologyKind::kHypercube:
      return "hypercube";
    case TopologyKind::kStar:
      return "star";
    case TopologyKind::kFullyConnected:
      return "fully_connected";
  }
  return "?";
}

const char* to_string(Switching s) {
  switch (s) {
    case Switching::kStoreAndForward:
      return "store_and_forward";
    case Switching::kVirtualCutThrough:
      return "virtual_cut_through";
    case Switching::kWormhole:
      return "wormhole";
  }
  return "?";
}

const char* to_string(RoutingAlgorithm r) {
  switch (r) {
    case RoutingAlgorithm::kDimensionOrder:
      return "dimension_order";
    case RoutingAlgorithm::kShortestPath:
      return "shortest_path";
  }
  return "?";
}

const char* to_string(WritePolicy p) {
  switch (p) {
    case WritePolicy::kWriteThrough:
      return "write_through";
    case WritePolicy::kWriteBack:
      return "write_back";
  }
  return "?";
}

void write_config(std::ostream& os, const MachineParams& m) {
  os << "name = " << m.name << "\n\n";

  os << "[node]\n";
  os << "cpu_count = " << m.node.cpu_count << "\n";
  os << "force_coherence = " << (m.node.force_coherence ? "true" : "false")
     << "\n\n";

  os << "[cpu]\n";
  os << "frequency_hz = " << m.node.cpu.frequency_hz << "\n";
  for (int c = 0; c < trace::kOpCodeCount; ++c) {
    const auto code = static_cast<trace::OpCode>(c);
    if (trace::is_communication(code) || code == trace::OpCode::kCompute) {
      continue;
    }
    for (int t = 0; t < trace::kDataTypeCount; ++t) {
      const auto type = static_cast<trace::DataType>(t);
      os << "cost." << trace::to_string(code) << '.' << trace::to_string(type)
         << " = " << m.node.cpu.cost(code, type) << "\n";
    }
  }
  os << "\n";

  os << "[memory]\n";
  const MemoryParams& mem = m.node.memory;
  os << "split_l1 = " << (mem.split_l1 ? "true" : "false") << "\n";
  os << "cache_levels = " << mem.levels.size() << "\n";
  os << "bus_frequency_hz = " << mem.bus_frequency_hz << "\n";
  os << "bus_width_bytes = " << mem.bus_width_bytes << "\n";
  os << "bus_arbitration_cycles = " << mem.bus_arbitration_cycles << "\n";
  os << "dram_access_cycles = " << mem.dram_access_cycles << "\n";
  os << "dram_beat_cycles = " << mem.dram_beat_cycles << "\n";
  os << "coherence = "
     << (mem.coherence == CoherenceKind::kSnoopy ? "snoopy" : "directory")
     << "\n";
  os << "directory_lookup_cycles = " << mem.directory_lookup_cycles << "\n\n";

  for (std::size_t i = 0; i < mem.levels.size(); ++i) {
    const CacheLevelParams& c = mem.levels[i];
    os << "[cache." << i << "]\n";
    os << "size_bytes = " << c.size_bytes << "\n";
    os << "line_bytes = " << c.line_bytes << "\n";
    os << "associativity = " << c.associativity << "\n";
    os << "hit_cycles = " << c.hit_cycles << "\n";
    os << "write_policy = " << to_string(c.write_policy) << "\n";
    os << "allocate_on_write_miss = "
       << (c.allocate_on_write_miss ? "true" : "false") << "\n\n";
  }

  os << "[topology]\n";
  os << "kind = " << to_string(m.topology.kind) << "\n";
  os << "dims = " << m.topology.dims[0] << ' ' << m.topology.dims[1] << "\n\n";

  os << "[router]\n";
  os << "switching = " << to_string(m.router.switching) << "\n";
  os << "routing = " << to_string(m.router.routing) << "\n";
  os << "frequency_hz = " << m.router.frequency_hz << "\n";
  os << "max_packet_bytes = " << m.router.max_packet_bytes << "\n";
  os << "header_bytes = " << m.router.header_bytes << "\n";
  os << "flit_bytes = " << m.router.flit_bytes << "\n";
  os << "routing_decision_cycles = " << m.router.routing_decision_cycles
     << "\n";
  os << "input_buffer_flits = " << m.router.input_buffer_flits << "\n\n";

  os << "[link]\n";
  os << "bandwidth_bytes_per_s = " << m.link.bandwidth_bytes_per_s << "\n";
  os << "propagation_delay_ns = "
     << m.link.propagation_delay / sim::kTicksPerNanosecond << "\n";
  os << "virtual_channels = " << m.link.virtual_channels << "\n\n";

  os << "[nic]\n";
  os << "send_setup_ns = " << m.nic.send_setup / sim::kTicksPerNanosecond
     << "\n";
  os << "recv_setup_ns = " << m.nic.recv_setup / sim::kTicksPerNanosecond
     << "\n";
  os << "copy_bytes_per_s = " << m.nic.copy_bytes_per_s << "\n\n";

  const FaultParams& f = m.fault;
  os << "[fault]\n";
  os << "enabled = " << (f.enabled ? "true" : "false") << "\n";
  os << "seed = " << f.seed << "\n";
  os << "drop_probability = " << f.drop_probability << "\n";
  os << "corrupt_probability = " << f.corrupt_probability << "\n";
  os << "ack_timeout_us = " << f.ack_timeout / sim::kTicksPerMicrosecond
     << "\n";
  os << "max_retries = " << f.max_retries << "\n";
  os << "retry_backoff_us = " << f.retry_backoff / sim::kTicksPerMicrosecond
     << "\n";
  for (std::size_t i = 0; i < f.link_events.size(); ++i) {
    const LinkFaultEvent& e = f.link_events[i];
    os << "\n[fault.link." << i << "]\n";
    os << "from = " << e.a << "\n";
    os << "to = " << e.b << "\n";
    os << "down_at_us = " << e.down_at / sim::kTicksPerMicrosecond << "\n";
    if (e.up_at != sim::kTickMax) {
      os << "up_at_us = " << e.up_at / sim::kTicksPerMicrosecond << "\n";
    }
  }
  for (std::size_t i = 0; i < f.node_events.size(); ++i) {
    const NodeFaultEvent& e = f.node_events[i];
    os << "\n[fault.node." << i << "]\n";
    os << "node = " << e.node << "\n";
    os << "down_at_us = " << e.down_at / sim::kTicksPerMicrosecond << "\n";
    if (e.up_at != sim::kTickMax) {
      os << "up_at_us = " << e.up_at / sim::kTicksPerMicrosecond << "\n";
    }
  }
}

std::string write_config_string(const MachineParams& params) {
  std::ostringstream os;
  write_config(os, params);
  return os.str();
}

}  // namespace merm::machine
