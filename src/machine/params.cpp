#include "machine/params.hpp"

#include <stdexcept>

namespace merm::machine {

using trace::DataType;
using trace::OpCode;

CpuParams::CpuParams() {
  // A plausible single-issue load-store default: most operations one cycle,
  // multiplies and divides slower, FP slower than integer.
  set_cost_all_types(OpCode::kLoad, 1);
  set_cost_all_types(OpCode::kStore, 1);
  set_cost_all_types(OpCode::kLoadConst, 1);
  set_cost_all_types(OpCode::kAdd, 1);
  set_cost_all_types(OpCode::kSub, 1);
  set_cost_all_types(OpCode::kMul, 4);
  set_cost_all_types(OpCode::kDiv, 16);
  set_cost_all_types(OpCode::kIFetch, 1);
  set_cost_all_types(OpCode::kBranch, 2);
  set_cost_all_types(OpCode::kCall, 3);
  set_cost_all_types(OpCode::kRet, 3);

  // FP adjustments.
  for (OpCode c : {OpCode::kAdd, OpCode::kSub}) {
    set_cost(c, DataType::kFloat, 3);
    set_cost(c, DataType::kDouble, 3);
  }
  set_cost(OpCode::kMul, DataType::kFloat, 5);
  set_cost(OpCode::kMul, DataType::kDouble, 6);
  set_cost(OpCode::kDiv, DataType::kFloat, 18);
  set_cost(OpCode::kDiv, DataType::kDouble, 31);
}

void CpuParams::set_cost_all_types(OpCode c, Cycles cycles) {
  for (auto& cost : cost_table[static_cast<std::size_t>(c)]) {
    cost = cycles;
  }
}

std::uint32_t TopologyParams::node_count() const {
  switch (kind) {
    case TopologyKind::kMesh2D:
    case TopologyKind::kTorus2D:
      return dims[0] * dims[1];
    case TopologyKind::kRing:
    case TopologyKind::kStar:
    case TopologyKind::kFullyConnected:
    case TopologyKind::kHypercube:
      return dims[0];
  }
  return 0;
}

namespace presets {

MachineParams powerpc601_node() {
  MachineParams m;
  m.name = "ppc601";

  m.node.cpu_count = 1;
  CpuParams& cpu = m.node.cpu;
  cpu.frequency_hz = 66e6;
  // PowerPC 601-flavoured costs (single-issue abstraction of the 3-way
  // machine; the workbench models issue cost, not pipeline structure).
  cpu.set_cost_all_types(OpCode::kLoad, 1);
  cpu.set_cost_all_types(OpCode::kStore, 1);
  cpu.set_cost_all_types(OpCode::kLoadConst, 1);
  cpu.set_cost_all_types(OpCode::kAdd, 1);
  cpu.set_cost_all_types(OpCode::kSub, 1);
  cpu.set_cost(OpCode::kMul, DataType::kInt32, 5);
  cpu.set_cost(OpCode::kMul, DataType::kInt64, 10);
  cpu.set_cost(OpCode::kDiv, DataType::kInt32, 36);
  cpu.set_cost(OpCode::kDiv, DataType::kInt64, 36);
  cpu.set_cost(OpCode::kAdd, DataType::kFloat, 1);
  cpu.set_cost(OpCode::kAdd, DataType::kDouble, 1);
  cpu.set_cost(OpCode::kSub, DataType::kFloat, 1);
  cpu.set_cost(OpCode::kSub, DataType::kDouble, 1);
  cpu.set_cost(OpCode::kMul, DataType::kFloat, 1);
  cpu.set_cost(OpCode::kMul, DataType::kDouble, 2);
  cpu.set_cost(OpCode::kDiv, DataType::kFloat, 17);
  cpu.set_cost(OpCode::kDiv, DataType::kDouble, 31);
  cpu.set_cost_all_types(OpCode::kBranch, 1);
  cpu.set_cost_all_types(OpCode::kCall, 2);
  cpu.set_cost_all_types(OpCode::kRet, 2);

  // 32 KB unified 8-way L1 (64-byte lines, as on the 601) plus a 256 KB
  // direct-mapped off-chip L2 — the "two levels of cache" of Section 6.
  MemoryParams& mem = m.node.memory;
  mem.split_l1 = false;
  mem.levels = {
      CacheLevelParams{32 * 1024, 64, 8, 1, WritePolicy::kWriteBack, true},
      CacheLevelParams{256 * 1024, 64, 1, 8, WritePolicy::kWriteBack, true},
  };
  mem.bus_frequency_hz = 33e6;
  mem.bus_width_bytes = 8;
  mem.bus_arbitration_cycles = 1;
  mem.dram_access_cycles = 6;  // ~180 ns @ 33 MHz
  mem.dram_beat_cycles = 1;

  // Single node: topology degenerates to one node.
  m.topology.kind = TopologyKind::kMesh2D;
  m.topology.dims = {1, 1};
  return m;
}

MachineParams t805_multicomputer(std::uint32_t width, std::uint32_t height) {
  MachineParams m;
  m.name = "t805";

  m.node.cpu_count = 1;
  CpuParams& cpu = m.node.cpu;
  cpu.frequency_hz = 20e6;
  // T805: microcoded stack machine abstracted to load-store costs; FP on-chip.
  cpu.set_cost_all_types(OpCode::kLoad, 2);
  cpu.set_cost_all_types(OpCode::kStore, 2);
  cpu.set_cost_all_types(OpCode::kLoadConst, 1);
  cpu.set_cost_all_types(OpCode::kAdd, 1);
  cpu.set_cost_all_types(OpCode::kSub, 1);
  cpu.set_cost(OpCode::kMul, DataType::kInt32, 38);
  cpu.set_cost(OpCode::kDiv, DataType::kInt32, 39);
  cpu.set_cost(OpCode::kAdd, DataType::kFloat, 6);
  cpu.set_cost(OpCode::kAdd, DataType::kDouble, 6);
  cpu.set_cost(OpCode::kSub, DataType::kFloat, 6);
  cpu.set_cost(OpCode::kSub, DataType::kDouble, 6);
  cpu.set_cost(OpCode::kMul, DataType::kFloat, 11);
  cpu.set_cost(OpCode::kMul, DataType::kDouble, 18);
  cpu.set_cost(OpCode::kDiv, DataType::kFloat, 16);
  cpu.set_cost(OpCode::kDiv, DataType::kDouble, 27);
  cpu.set_cost_all_types(OpCode::kIFetch, 1);
  cpu.set_cost_all_types(OpCode::kBranch, 3);
  cpu.set_cost_all_types(OpCode::kCall, 7);
  cpu.set_cost_all_types(OpCode::kRet, 5);

  // No caches: on-chip SRAM plus external memory behind a 32-bit interface.
  MemoryParams& mem = m.node.memory;
  mem.levels.clear();
  mem.bus_frequency_hz = 20e6;
  mem.bus_width_bytes = 4;
  mem.bus_arbitration_cycles = 0;
  mem.dram_access_cycles = 3;
  mem.dram_beat_cycles = 1;

  m.topology.kind = TopologyKind::kMesh2D;
  m.topology.dims = {width, height};

  RouterParams& r = m.router;
  r.switching = Switching::kStoreAndForward;  // software through-routing
  r.routing = RoutingAlgorithm::kDimensionOrder;
  r.frequency_hz = 20e6;
  r.max_packet_bytes = 512;
  r.header_bytes = 4;
  r.flit_bytes = 1;  // bit-serial links; byte granularity
  r.routing_decision_cycles = 20;
  r.input_buffer_flits = 512;

  // 20 Mbit/s links, ~0.8 efficiency after protocol bits.
  m.link.bandwidth_bytes_per_s = 20e6 / 8.0 * 0.8;
  m.link.propagation_delay = 10 * sim::kTicksPerNanosecond;

  m.nic.send_setup = 5 * sim::kTicksPerMicrosecond;
  m.nic.recv_setup = 5 * sim::kTicksPerMicrosecond;
  m.nic.copy_bytes_per_s = 20e6;
  return m;
}

MachineParams generic_risc(std::uint32_t width, std::uint32_t height) {
  MachineParams m;
  m.name = "generic-risc";

  m.node.cpu_count = 1;
  m.node.cpu = CpuParams{};
  m.node.cpu.frequency_hz = 200e6;

  MemoryParams& mem = m.node.memory;
  mem.split_l1 = true;
  mem.levels = {
      CacheLevelParams{16 * 1024, 32, 2, 1, WritePolicy::kWriteBack, true},
      CacheLevelParams{512 * 1024, 64, 4, 6, WritePolicy::kWriteBack, true},
  };
  mem.bus_frequency_hz = 100e6;
  mem.bus_width_bytes = 8;
  mem.bus_arbitration_cycles = 1;
  mem.dram_access_cycles = 10;
  mem.dram_beat_cycles = 1;

  m.topology.kind = TopologyKind::kTorus2D;
  m.topology.dims = {width, height};

  RouterParams& r = m.router;
  r.switching = Switching::kWormhole;
  r.routing = RoutingAlgorithm::kDimensionOrder;
  r.frequency_hz = 100e6;
  r.max_packet_bytes = 4096;
  r.header_bytes = 8;
  r.flit_bytes = 4;
  r.routing_decision_cycles = 2;
  r.input_buffer_flits = 16;

  m.link.bandwidth_bytes_per_s = 200e6;
  m.link.propagation_delay = 20 * sim::kTicksPerNanosecond;

  m.nic.send_setup = sim::kTicksPerMicrosecond;
  m.nic.recv_setup = sim::kTicksPerMicrosecond;
  m.nic.copy_bytes_per_s = 400e6;
  return m;
}

MachineParams ipsc860_hypercube(std::uint32_t nodes) {
  MachineParams m;
  m.name = "ipsc860";

  m.node.cpu_count = 1;
  CpuParams& cpu = m.node.cpu;
  cpu.frequency_hz = 40e6;
  // i860-flavoured: fast pipelined FP, slow integer multiply/divide.
  cpu.set_cost_all_types(OpCode::kLoad, 1);
  cpu.set_cost_all_types(OpCode::kStore, 1);
  cpu.set_cost_all_types(OpCode::kLoadConst, 1);
  cpu.set_cost_all_types(OpCode::kAdd, 1);
  cpu.set_cost_all_types(OpCode::kSub, 1);
  cpu.set_cost(OpCode::kMul, DataType::kInt32, 10);
  cpu.set_cost(OpCode::kDiv, DataType::kInt32, 38);
  cpu.set_cost(OpCode::kMul, DataType::kFloat, 1);
  cpu.set_cost(OpCode::kMul, DataType::kDouble, 2);
  cpu.set_cost(OpCode::kDiv, DataType::kFloat, 22);
  cpu.set_cost(OpCode::kDiv, DataType::kDouble, 38);
  cpu.set_cost_all_types(OpCode::kBranch, 2);
  cpu.set_cost_all_types(OpCode::kCall, 3);
  cpu.set_cost_all_types(OpCode::kRet, 3);

  // 8 KB unified on-chip cache (2-way, 32-byte lines), 64-bit 40 MHz bus.
  MemoryParams& mem = m.node.memory;
  mem.split_l1 = false;
  mem.levels = {
      CacheLevelParams{8 * 1024, 32, 2, 1, WritePolicy::kWriteBack, true}};
  mem.bus_frequency_hz = 40e6;
  mem.bus_width_bytes = 8;
  mem.bus_arbitration_cycles = 1;
  mem.dram_access_cycles = 4;
  mem.dram_beat_cycles = 1;

  m.topology.kind = TopologyKind::kHypercube;
  m.topology.dims = {nodes, 1};

  RouterParams& r = m.router;
  // The iPSC/860's Direct-Connect Modules do hardware cut-through.
  r.switching = Switching::kVirtualCutThrough;
  r.routing = RoutingAlgorithm::kDimensionOrder;  // e-cube
  r.frequency_hz = 40e6;
  r.max_packet_bytes = 1024;
  r.header_bytes = 8;
  r.flit_bytes = 2;
  r.routing_decision_cycles = 4;
  r.input_buffer_flits = 1024;

  // ~2.8 MB/s sustained per channel.
  m.link.bandwidth_bytes_per_s = 2.8e6;
  m.link.propagation_delay = 30 * sim::kTicksPerNanosecond;
  m.link.virtual_channels = 2;

  // Long software send path (~60 us one-way small-message latency).
  m.nic.send_setup = 25 * sim::kTicksPerMicrosecond;
  m.nic.recv_setup = 25 * sim::kTicksPerMicrosecond;
  m.nic.copy_bytes_per_s = 25e6;
  return m;
}

}  // namespace presets

}  // namespace merm::machine
