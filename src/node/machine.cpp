#include "node/machine.hpp"

#include <stdexcept>

#include "sim/pdes.hpp"

namespace merm::node {

Machine::Machine(sim::Simulator& sim, const machine::MachineParams& params)
    : sim_(sim), params_(params) {
  build(nullptr);
}

Machine::Machine(sim::pdes::Engine& engine,
                 const machine::MachineParams& params,
                 std::vector<std::uint32_t> node_to_partition)
    : sim_(engine.sim(0)),
      params_(params),
      pdes_(&engine),
      node_partition_(std::move(node_to_partition)) {
  build(&engine);
}

void Machine::build(sim::pdes::Engine* engine) {
  // Under PDES the Network object itself is bound to partition 0, but only
  // for parameter math and stat storage — message traffic goes through
  // pdes_inject() and never touches that simulator's queue.
  network_ = std::make_unique<network::Network>(
      sim_, params_.topology, params_.router, params_.link);
  if (engine != nullptr) {
    if (node_partition_.empty()) {
      // Legacy identity map: one partition per node.
      node_partition_.resize(network_->node_count());
      for (std::uint32_t i = 0; i < network_->node_count(); ++i) {
        node_partition_[i] = i;
      }
    }
    network_->enable_pdes(*engine, node_partition_);
  }
  if (params_.fault.enabled) {
    fault_plan_ =
        std::make_unique<fault::FaultPlan>(params_.fault, network_->topology());
    network_->set_fault_injector(fault_plan_.get());
    if (engine != nullptr) {
      // Scripted transitions apply at window barriers (the engine's hook,
      // wired by the workbench); arming them as events on one partition
      // could not stop the other partitions' windows.
      fault_plan_->enable_pdes(network_->node_count());
    } else {
      fault_plan_->arm(sim_);
    }
  }
  const std::uint32_t n = network_->node_count();
  node_sims_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    node_sims_.push_back(engine != nullptr ? &engine->sim(node_partition_[i])
                                           : &sim_);
  }
  comm_nodes_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    comm_nodes_.push_back(std::make_unique<CommNode>(
        *node_sims_[i], static_cast<NodeId>(i), *network_, params_.nic));
  }
  for (auto& cn : comm_nodes_) {
    cn->set_fabric(&comm_nodes_);
    cn->set_fault(&params_.fault);
  }
  compute_nodes_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    compute_nodes_.push_back(std::make_unique<ComputeNode>(
        *node_sims_[i], params_.node, static_cast<NodeId>(i)));
  }
  // When the event queue drains with work still blocked, the hang diagnostic
  // names each blocked communication operation.  The machine must outlive
  // any hang_diagnostic() call (Workbench pairs the two lifetimes).  Under
  // PDES the single reporter lives on partition 0 and walks every node, so
  // the engine's aggregated diagnostic reads exactly like the serial one.
  sim_.add_hang_reporter([this](std::vector<std::string>& lines) {
    for (const auto& cn : comm_nodes_) {
      for (std::string& line : cn->describe_blocked()) {
        lines.push_back(std::move(line));
      }
    }
  });
}

void Machine::fold_pdes_stats() {
  network_->fold_pdes_shards();
  if (fault_plan_ != nullptr) fault_plan_->fold_pdes_draws();
}

void Machine::attach_trace(obs::TraceSink& sink) {
  std::vector<obs::TrackId> net_tracks;
  net_tracks.reserve(node_count());
  for (std::uint32_t n = 0; n < node_count(); ++n) {
    const std::string base = "node" + std::to_string(n);
    std::vector<obs::TrackId> cpu_tracks;
    cpu_tracks.reserve(cpus_per_node());
    for (std::uint32_t c = 0; c < cpus_per_node(); ++c) {
      cpu_tracks.push_back(sink.add_track(base + ".cpu" + std::to_string(c)));
    }
    compute_nodes_[n]->attach_trace(&sink, std::move(cpu_tracks));
    comm_nodes_[n]->attach_trace(&sink, sink.add_track(base + ".comm"));
    net_tracks.push_back(sink.add_track(base + ".net"));
    compute_nodes_[n]->memory().bus().attach_trace(
        &sink, sink.add_track(base + ".bus"));
  }
  network_->attach_trace(&sink, std::move(net_tracks));
}

void Machine::attach_trace_pdes(const std::vector<obs::TraceSink*>& sinks) {
  if (pdes_ == nullptr || sinks.size() != pdes_->partition_count()) {
    throw std::invalid_argument(
        "attach_trace_pdes needs one sink per partition");
  }
  // Register every track in every sink, in the exact order attach_trace
  // uses, so all sinks carry identical track tables and the post-run merge
  // can concatenate per-track event lists without id translation.
  const auto add = [&sinks](const std::string& name) {
    const obs::TrackId id = sinks[0]->add_track(name);
    for (std::size_t s = 1; s < sinks.size(); ++s) sinks[s]->add_track(name);
    return id;
  };
  std::vector<obs::TrackId> net_tracks;
  net_tracks.reserve(node_count());
  for (std::uint32_t n = 0; n < node_count(); ++n) {
    const std::string base = "node" + std::to_string(n);
    std::vector<obs::TrackId> cpu_tracks;
    cpu_tracks.reserve(cpus_per_node());
    for (std::uint32_t c = 0; c < cpus_per_node(); ++c) {
      cpu_tracks.push_back(add(base + ".cpu" + std::to_string(c)));
    }
    obs::TraceSink* sink = sinks[node_partition(n)];
    compute_nodes_[n]->attach_trace(sink, std::move(cpu_tracks));
    comm_nodes_[n]->attach_trace(sink, add(base + ".comm"));
    net_tracks.push_back(add(base + ".net"));
    compute_nodes_[n]->memory().bus().attach_trace(sink, add(base + ".bus"));
  }
  network_->attach_trace_pdes(
      std::vector<obs::TraceSink*>(sinks.begin(), sinks.end()),
      std::move(net_tracks));
}

std::vector<sim::ProcessHandle> Machine::launch_detailed(
    trace::Workload& workload, std::vector<TaskRecorder>* recorders) {
  const std::uint32_t cpus = cpus_per_node();
  if (workload.node_count() != node_count() * cpus) {
    throw std::invalid_argument(
        "detailed workload needs node_count*cpus_per_node sources (got " +
        std::to_string(workload.node_count()) + ", want " +
        std::to_string(node_count() * cpus) + ")");
  }
  if (recorders != nullptr) {
    recorders->clear();
    recorders->resize(workload.node_count());
  }
  if (pdes_ != nullptr) {
    for (const auto& src : workload.sources) {
      if (!src->pdes_safe()) {
        throw std::invalid_argument(
            "workload source is not PDES-safe (execution-driven sources "
            "synchronize with their own host thread); run serially");
      }
    }
  }
  std::vector<sim::ProcessHandle> handles;
  handles.reserve(workload.node_count());
  for (std::uint32_t n = 0; n < node_count(); ++n) {
    for (std::uint32_t c = 0; c < cpus; ++c) {
      const std::size_t idx = static_cast<std::size_t>(n) * cpus + c;
      TaskRecorder* rec =
          recorders != nullptr ? &(*recorders)[idx] : nullptr;
      handles.push_back(node_sims_[n]->spawn(
          compute_nodes_[n]->run(c, *workload.sources[idx],
                                 comm_nodes_[n].get(), rec),
          "node" + std::to_string(n) + ".cpu" + std::to_string(c)));
    }
  }
  return handles;
}

std::vector<sim::ProcessHandle> Machine::launch_task_level(
    trace::Workload& workload) {
  if (workload.node_count() != node_count()) {
    throw std::invalid_argument(
        "task-level workload needs one source per node (got " +
        std::to_string(workload.node_count()) + ", want " +
        std::to_string(node_count()) + ")");
  }
  if (pdes_ != nullptr) {
    for (const auto& src : workload.sources) {
      if (!src->pdes_safe()) {
        throw std::invalid_argument(
            "workload source is not PDES-safe (execution-driven sources "
            "synchronize with their own host thread); run serially");
      }
    }
  }
  std::vector<sim::ProcessHandle> handles;
  handles.reserve(node_count());
  for (std::uint32_t n = 0; n < node_count(); ++n) {
    handles.push_back(
        node_sims_[n]->spawn(comm_nodes_[n]->run(*workload.sources[n]),
                             "node" + std::to_string(n) + ".comm"));
  }
  return handles;
}

bool Machine::all_finished(const std::vector<sim::ProcessHandle>& handles) {
  for (const auto& h : handles) {
    if (!h.finished()) return false;
  }
  return true;
}

std::uint64_t Machine::total_ops_executed() const {
  std::uint64_t total = 0;
  for (const auto& n : compute_nodes_) {
    for (std::uint32_t c = 0; c < n->cpu_count(); ++c) {
      total += const_cast<ComputeNode&>(*n).cpu(c).ops_executed.value();
    }
  }
  for (const auto& cn : comm_nodes_) {
    total += cn->sends.value() + cn->asends.value() + cn->recvs.value() +
             cn->arecvs.value() + cn->compute_ops.value();
  }
  return total;
}

std::uint64_t Machine::total_messages() const {
  return network_->messages.value();
}

std::size_t Machine::footprint_bytes() const {
  std::size_t total = sizeof(Machine) + network_->footprint_bytes();
  for (const auto& n : compute_nodes_) total += n->footprint_bytes();
  total += comm_nodes_.size() * sizeof(CommNode);
  return total;
}

void Machine::register_stats(stats::StatRegistry& reg,
                             const std::string& prefix) {
  network_->register_stats(reg, prefix + ".net");
  if (fault_plan_ != nullptr) {
    fault_plan_->register_stats(reg, prefix + ".fault");
  }
  for (std::uint32_t i = 0; i < node_count(); ++i) {
    const std::string node_prefix = prefix + ".node" + std::to_string(i);
    compute_nodes_[i]->register_stats(reg, node_prefix);
    comm_nodes_[i]->register_stats(reg, node_prefix + ".comm");
  }
}

}  // namespace merm::node
