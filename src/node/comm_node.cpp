#include "node/comm_node.hpp"

#include <stdexcept>

#include "sim/logging.hpp"

namespace merm::node {

namespace {
const sim::Log& comm_log() {
  static const sim::Log log("comm");
  return log;
}
}  // namespace

using trace::OpCode;
using trace::Operation;

CommNode::CommNode(sim::Simulator& sim, NodeId id, network::Network& net,
                   const machine::NicParams& nic)
    : sim_(sim), id_(id), net_(net), nic_(nic) {}

sim::Tick CommNode::copy_time(std::uint64_t bytes) const {
  const double seconds = static_cast<double>(bytes) / nic_.copy_bytes_per_s;
  return static_cast<sim::Tick>(
      seconds * static_cast<double>(sim::kTicksPerSecond) + 0.5);
}

sim::Task<> CommNode::issue(const Operation& op) {
  switch (op.code) {
    case OpCode::kSend:
      co_await op_send(op.peer, op.value, op.tag);
      break;
    case OpCode::kASend:
      co_await op_asend(op.peer, op.value, op.tag);
      break;
    case OpCode::kRecv:
      co_await op_recv(op.peer, op.tag);
      break;
    case OpCode::kARecv:
      co_await op_arecv(op.peer, op.tag);
      break;
    case OpCode::kCompute:
      co_await op_compute(op.value);
      break;
    default:
      throw std::logic_error(
          "CommNode::issue given computational operation: " +
          trace::to_string(op));
  }
}

sim::Process CommNode::transmission(Message msg) {
  const network::TransmitOutcome out =
      co_await net_.transmit(msg.src, msg.dst, msg.bytes);
  if (out.rerouted) reroutes.add();
  if (!out.delivered) {
    // Lost to an injected fault.  Sync senders recover via ack timeout;
    // plain (non-fault-mode) transmissions never take this branch.
    msg_drops.add();
    co_return;
  }
  peer(msg.dst).deliver(msg);
}

sim::Process CommNode::reliable_transmission(Message msg) {
  // Async-send transport under faults: the NIC observes link-level delivery
  // and retries with exponential backoff; exhaustion is a counted failure,
  // not an error (asend has no completion the sender could observe).
  for (std::uint32_t attempt = 0;; ++attempt) {
    const network::TransmitOutcome out =
        co_await net_.transmit(msg.src, msg.dst, msg.bytes);
    if (out.rerouted) reroutes.add();
    if (out.delivered) {
      peer(msg.dst).deliver(msg);
      co_return;
    }
    msg_drops.add();
    if (attempt >= fault_->max_retries) {
      send_failures.add();
      comm_log().debug(sim_.now(), "node ", id_, " asend to ", msg.dst,
                       " tag=", msg.tag, " abandoned after ", attempt + 1,
                       " attempts");
      co_return;
    }
    retries.add();
    if (trace_ != nullptr) {
      trace_->instant(trace_track_, obs::SpanKind::kNicRetry, sim_.now(),
                      attempt + 1, msg.dst, msg.tag);
    }
    co_await sim_.delay(backoff(fault_->retry_backoff, attempt));
  }
}

void CommNode::pdes_transmit(const Message& msg) {
  CommNode* dst_node = &peer(msg.dst);
  const network::Network::PdesVerdict v = net_.pdes_inject(
      id_, msg.dst, msg.bytes, /*control=*/false,
      [dst_node, msg](bool delivered) {
        if (delivered) {
          dst_node->deliver(msg);
        } else {
          // Corrupted in transit.  The serial model books this drop on the
          // sender; here the observer is the destination NIC — the per-node
          // attribution shifts, the total over all nodes does not.
          dst_node->msg_drops.add();
        }
      });
  if (v.rerouted) reroutes.add();
  if (v.dropped || v.unreachable) msg_drops.add();
}

sim::Process CommNode::pdes_reliable_asend(Message msg) {
  msg.seq = next_seq();
  auto ctl = std::make_shared<AckControl>();
  for (std::uint32_t attempt = 0;; ++attempt) {
    ctl->wake.reset();
    CommNode* dst_node = &peer(msg.dst);
    const network::Network::PdesVerdict v = net_.pdes_inject(
        id_, msg.dst, msg.bytes, /*control=*/false,
        [dst_node, msg, ctl](bool delivered) {
          if (delivered) {
            dst_node->pdes_deliver_confirmed(msg, ctl);
          } else {
            dst_node->msg_drops.add();
          }
        });
    if (v.rerouted) reroutes.add();
    if (v.injected) {
      sim_.schedule_in(backoff(fault_->ack_timeout, attempt), [ctl] {
        if (!ctl->acked) ctl->wake.trigger();
      });
      co_await ctl->wake;
      if (ctl->acked) co_return;
    } else {
      msg_drops.add();
    }
    if (attempt >= fault_->max_retries) {
      send_failures.add();
      comm_log().debug(sim_.now(), "node ", id_, " asend to ", msg.dst,
                       " tag=", msg.tag, " abandoned after ", attempt + 1,
                       " attempts");
      co_return;
    }
    retries.add();
    if (trace_ != nullptr) {
      trace_->instant(trace_track_, obs::SpanKind::kNicRetry, sim_.now(),
                      attempt + 1, msg.dst, msg.tag);
    }
    co_await sim_.delay(backoff(fault_->retry_backoff, attempt));
  }
}

void CommNode::pdes_deliver_confirmed(const Message& msg,
                                      std::shared_ptr<AckControl> ctl) {
  deliver(msg);
  net_.pdes_inject(id_, msg.src, 0, /*control=*/true, [ctl](bool) {
    ctl->acked = true;
    ctl->wake.trigger();
  });
}

sim::Process CommNode::ack_return(NodeId to, std::shared_ptr<AckControl> ctl) {
  // Zero-payload acknowledgement packet back to the sync sender.  Control
  // traffic: exempt from probabilistic drops but not from dead links, so in
  // fault mode the ack itself retries (bounded — if the reverse path stays
  // dead the sender's own retransmit/exhaustion machinery takes over).
  const std::uint32_t max_attempts =
      fault_ != nullptr ? fault_->max_retries + 1 : 1;
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    const network::TransmitOutcome out =
        co_await net_.transmit(id_, to, 0, /*control=*/true);
    if (out.delivered) {
      ctl->acked = true;
      ctl->wake.trigger();
      co_return;
    }
    msg_drops.add();
    if (attempt + 1 < max_attempts) {
      retries.add();
      if (trace_ != nullptr) {
        trace_->instant(trace_track_, obs::SpanKind::kNicRetry, sim_.now(),
                        attempt + 1, to, 0);
      }
      co_await sim_.delay(backoff(fault_->retry_backoff, attempt));
    }
  }
}

sim::Task<> CommNode::op_send(NodeId dst, std::uint64_t bytes,
                              std::int32_t tag) {
  sends.add();
  bytes_sent.add(bytes);
  comm_log().debug(sim_.now(), "node ", id_, " send(", bytes, ", ", dst,
                   ", tag=", tag, ")");
  co_await sim_.delay(nic_.send_setup + copy_time(bytes));

  auto ctl = std::make_shared<AckControl>();
  Message msg;
  msg.src = id_;
  msg.dst = dst;
  msg.bytes = bytes;
  msg.tag = tag;
  msg.ack = ctl;

  const sim::Tick blocked_from = sim_.now();
  BlockedOp blocked{dst, tag, bytes, blocked_from};
  blocked_sends_.push_back(&blocked);
  BlockedScope scope{&blocked_sends_, &blocked};
  const obs::SpanToken span =
      trace_ != nullptr
          ? trace_->open(trace_track_, obs::SpanKind::kSendBlock, blocked_from,
                         static_cast<std::int64_t>(bytes), dst, tag)
          : obs::kNoSpan;

  if (dst == id_ || fault_ == nullptr) {
    if (dst == id_) {
      deliver(msg);
    } else if (net_.pdes_active()) {
      pdes_transmit(msg);
    } else {
      sim_.spawn(transmission(msg));
    }
    co_await ctl->wake;
  } else {
    // Rendezvous under faults: retransmit on ack timeout, doubling the
    // timeout each attempt; the receiver suppresses duplicate copies by
    // sequence number (re-acking consumed ones, in case the ack was lost).
    msg.seq = next_seq();
    for (std::uint32_t attempt = 0;; ++attempt) {
      blocked.attempts = attempt + 1;
      ctl->wake.reset();
      if (net_.pdes_active()) {
        pdes_transmit(msg);
      } else {
        sim_.spawn(transmission(msg));
      }
      sim_.schedule_in(backoff(fault_->ack_timeout, attempt), [ctl] {
        if (!ctl->acked) ctl->wake.trigger();
      });
      co_await ctl->wake;
      if (ctl->acked) break;
      timeouts.add();
      if (attempt >= fault_->max_retries) {
        throw RetryExhaustedError(id_, dst, tag, attempt + 1);
      }
      retries.add();
      if (trace_ != nullptr) {
        trace_->instant(trace_track_, obs::SpanKind::kNicRetry, sim_.now(),
                        attempt + 1, dst, tag);
      }
    }
  }
  send_block_ticks.add(static_cast<double>(sim_.now() - blocked_from));
  send_attempts.add(blocked.attempts);
  if (span != obs::kNoSpan) trace_->close(span, sim_.now());
}

sim::Task<> CommNode::op_asend(NodeId dst, std::uint64_t bytes,
                               std::int32_t tag) {
  asends.add();
  bytes_sent.add(bytes);
  co_await sim_.delay(nic_.send_setup + copy_time(bytes));
  Message msg;
  msg.src = id_;
  msg.dst = dst;
  msg.bytes = bytes;
  msg.tag = tag;
  if (dst == id_) {
    deliver(msg);
  } else if (fault_ == nullptr) {
    if (net_.pdes_active()) {
      pdes_transmit(msg);
    } else {
      sim_.spawn(transmission(msg));
    }
  } else if (net_.pdes_active()) {
    sim_.spawn(pdes_reliable_asend(msg));
  } else {
    sim_.spawn(reliable_transmission(msg));
  }
}

sim::Task<> CommNode::op_recv(NodeId src, std::int32_t tag) {
  recvs.add();
  co_await sim_.delay(nic_.recv_setup);

  // Already arrived?
  for (auto it = arrived_.begin(); it != arrived_.end(); ++it) {
    if ((src == trace::kNoNode || src == it->src) && tag == it->tag) {
      const Message msg = *it;
      arrived_.erase(it);
      co_await sim_.delay(copy_time(msg.bytes));
      consume(msg);
      co_return;
    }
  }

  // Block until delivery.
  PendingRecv pr;
  pr.src = src;
  pr.tag = tag;
  pr.since = sim_.now();
  pending_.push_back(&pr);
  const sim::Tick blocked_from = sim_.now();
  const obs::SpanToken span =
      trace_ != nullptr
          ? trace_->open(trace_track_, obs::SpanKind::kRecvBlock, blocked_from,
                         0, src == trace::kNoNode ? -1 : src, tag)
          : obs::kNoSpan;
  co_await pr.ready;
  recv_block_ticks.add(static_cast<double>(sim_.now() - blocked_from));
  if (span != obs::kNoSpan) trace_->close(span, sim_.now());
  co_await sim_.delay(copy_time(pr.matched.bytes));
  consume(pr.matched);
}

sim::Task<CommNode::RecvInfo> CommNode::op_recv_filtered(RecvFilter filter) {
  recvs.add();
  co_await sim_.delay(nic_.recv_setup);

  for (auto it = arrived_.begin(); it != arrived_.end(); ++it) {
    if (filter(it->src, it->tag)) {
      const Message msg = *it;
      arrived_.erase(it);
      co_await sim_.delay(copy_time(msg.bytes));
      consume(msg);
      co_return RecvInfo{msg.src, msg.tag, msg.bytes};
    }
  }

  PendingRecv pr;
  pr.filter = std::move(filter);
  pr.since = sim_.now();
  pending_.push_back(&pr);
  const sim::Tick blocked_from = sim_.now();
  const obs::SpanToken span =
      trace_ != nullptr
          ? trace_->open(trace_track_, obs::SpanKind::kRecvBlock, blocked_from,
                         0, -1, 0)
          : obs::kNoSpan;
  co_await pr.ready;
  recv_block_ticks.add(static_cast<double>(sim_.now() - blocked_from));
  if (span != obs::kNoSpan) trace_->close(span, sim_.now());
  co_await sim_.delay(copy_time(pr.matched.bytes));
  consume(pr.matched);
  co_return RecvInfo{pr.matched.src, pr.matched.tag, pr.matched.bytes};
}

sim::Task<> CommNode::op_arecv(NodeId src, std::int32_t tag) {
  arecvs.add();
  co_await sim_.delay(nic_.recv_setup);

  for (auto it = arrived_.begin(); it != arrived_.end(); ++it) {
    if ((src == trace::kNoNode || src == it->src) && tag == it->tag) {
      const Message msg = *it;
      arrived_.erase(it);
      co_await sim_.delay(copy_time(msg.bytes));
      consume(msg);
      co_return;
    }
  }

  // Post a passive receive: consumption happens on arrival, the processor
  // does not block.
  auto pr = std::make_unique<PendingRecv>();
  pr->src = src;
  pr->tag = tag;
  pr->passive = true;
  passive_.push_back(std::move(pr));
}

sim::Task<> CommNode::op_compute(sim::Tick duration) {
  compute_ops.add();
  compute_ticks_ += duration;
  const sim::Tick begin = sim_.now();
  co_await sim_.delay(duration);
  if (trace_ != nullptr && duration > 0) {
    trace_->span(trace_track_, obs::SpanKind::kCompute, begin, sim_.now());
  }
}

void CommNode::deliver(const Message& msg) {
  comm_log().trace(sim_.now(), "node ", id_, " delivery from ", msg.src,
                   " tag=", msg.tag, " bytes=", msg.bytes);
  // Duplicate suppression: a retransmitted copy of a message we already
  // have (or consumed) must not match a second receive.
  if (msg.seq != 0) {
    const auto [it, fresh] = seq_state_.try_emplace(msg.seq, std::uint8_t{1});
    if (!fresh) {
      duplicates.add();
      if (it->second == 2) {
        // The original was consumed, so its ack was sent and evidently lost
        // (or is slow): re-ack rather than strand the sender.  A duplicate
        // of a merely-delivered message stays silent — the pending
        // consume() owns the acknowledgement.
        acknowledge(msg);
      }
      return;
    }
  }
  // Match active (blocking) receives first, in posting order.
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (matches(**it, msg)) {
      PendingRecv* pr = *it;
      pending_.erase(it);
      pr->matched = msg;
      pr->ready.trigger();
      return;  // consume() runs in the receiver after its copy delay
    }
  }
  // Then passive (arecv) posts.
  for (auto it = passive_.begin(); it != passive_.end(); ++it) {
    if (matches(**it, msg)) {
      passive_.erase(it);
      consume(msg);
      return;
    }
  }
  arrived_.push_back(msg);
  arrived_depth.add(arrived_.size());
}

void CommNode::consume(const Message& msg) {
  if (msg.seq != 0) seq_state_[msg.seq] = 2;
  if (msg.ack != nullptr) acknowledge(msg);
}

void CommNode::acknowledge(const Message& msg) {
  // PDES asend copies carry a dedup seq but no ack control: nothing to do.
  if (msg.ack == nullptr) return;
  if (msg.src == id_) {
    msg.ack->acked = true;
    msg.ack->wake.trigger();
  } else if (net_.pdes_active()) {
    // Runs on the receiver's partition; the arrival callback of the
    // zero-payload control message executes on the *sender's* partition, so
    // the wake trigger stays partition-local.  A dead reverse path is a
    // single counted loss — the sender's own retransmit machinery recovers
    // (a duplicate copy re-acks).
    auto ctl = msg.ack;
    const network::Network::PdesVerdict v =
        net_.pdes_inject(id_, msg.src, 0, /*control=*/true, [ctl](bool) {
          ctl->acked = true;
          ctl->wake.trigger();
        });
    if (!v.injected) msg_drops.add();
  } else {
    sim_.spawn(ack_return(msg.src, msg.ack));
  }
}

sim::Process CommNode::run(trace::OperationSource& source) {
  while (auto op = source.next()) {
    if (trace::is_global_event(op->code)) {
      source.global_event_issued(sim_.now());
      co_await issue(*op);
      source.global_event_done(sim_.now());
    } else {
      co_await issue(*op);
    }
  }
}

std::vector<std::string> CommNode::describe_blocked() const {
  const auto us = [](sim::Tick t) {
    return std::to_string(t / sim::kTicksPerMicrosecond) + "us";
  };
  std::vector<std::string> out;
  for (const BlockedOp* b : blocked_sends_) {
    std::string line = "node " + std::to_string(id_) + ": send to " +
                       std::to_string(b->peer) + " tag=" +
                       std::to_string(b->tag) + " (" +
                       std::to_string(b->bytes) + " bytes) blocked since " +
                       us(b->since);
    if (b->attempts > 1) {
      line += ", " + std::to_string(b->attempts - 1) + " retransmit(s)";
    }
    out.push_back(std::move(line));
  }
  for (const PendingRecv* pr : pending_) {
    std::string line = "node " + std::to_string(id_) + ": ";
    if (pr->filter) {
      line += "filtered recv";
    } else {
      line += "recv from " + (pr->src == trace::kNoNode
                                  ? std::string("<any>")
                                  : std::to_string(pr->src)) +
              " tag=" + std::to_string(pr->tag);
    }
    line += " blocked since " + us(pr->since);
    out.push_back(std::move(line));
  }
  return out;
}

void CommNode::register_stats(stats::StatRegistry& reg,
                              const std::string& prefix) {
  reg.register_counter(prefix + ".sends", &sends);
  reg.register_counter(prefix + ".asends", &asends);
  reg.register_counter(prefix + ".recvs", &recvs);
  reg.register_counter(prefix + ".arecvs", &arecvs);
  reg.register_counter(prefix + ".bytes_sent", &bytes_sent);
  reg.register_counter(prefix + ".compute_ops", &compute_ops);
  reg.register_accumulator(prefix + ".send_block_ticks", &send_block_ticks);
  reg.register_accumulator(prefix + ".recv_block_ticks", &recv_block_ticks);
  reg.register_histogram(prefix + ".arrived_depth", &arrived_depth);
  if (fault_ != nullptr) {
    reg.register_histogram(prefix + ".send_attempts", &send_attempts);
    reg.register_counter(prefix + ".retries", &retries);
    reg.register_counter(prefix + ".timeouts", &timeouts);
    reg.register_counter(prefix + ".msg_drops", &msg_drops);
    reg.register_counter(prefix + ".reroutes", &reroutes);
    reg.register_counter(prefix + ".duplicates", &duplicates);
    reg.register_counter(prefix + ".send_failures", &send_failures);
  }
}

}  // namespace merm::node
