#include "node/comm_node.hpp"

#include <stdexcept>

#include "sim/logging.hpp"

namespace merm::node {

namespace {
const sim::Log& comm_log() {
  static const sim::Log log("comm");
  return log;
}
}  // namespace

using trace::OpCode;
using trace::Operation;

CommNode::CommNode(sim::Simulator& sim, NodeId id, network::Network& net,
                   const machine::NicParams& nic)
    : sim_(sim), id_(id), net_(net), nic_(nic) {}

sim::Tick CommNode::copy_time(std::uint64_t bytes) const {
  const double seconds = static_cast<double>(bytes) / nic_.copy_bytes_per_s;
  return static_cast<sim::Tick>(
      seconds * static_cast<double>(sim::kTicksPerSecond) + 0.5);
}

sim::Task<> CommNode::issue(const Operation& op) {
  switch (op.code) {
    case OpCode::kSend:
      co_await op_send(op.peer, op.value, op.tag);
      break;
    case OpCode::kASend:
      co_await op_asend(op.peer, op.value, op.tag);
      break;
    case OpCode::kRecv:
      co_await op_recv(op.peer, op.tag);
      break;
    case OpCode::kARecv:
      co_await op_arecv(op.peer, op.tag);
      break;
    case OpCode::kCompute:
      co_await op_compute(op.value);
      break;
    default:
      throw std::logic_error(
          "CommNode::issue given computational operation: " +
          trace::to_string(op));
  }
}

sim::Process CommNode::transmission(Message msg) {
  co_await net_.transmit(msg.src, msg.dst, msg.bytes);
  peer(msg.dst).deliver(msg);
}

sim::Process CommNode::ack_return(NodeId to, sim::Event* ack_event) {
  // Zero-payload acknowledgement packet back to the sync sender.
  co_await net_.transmit(id_, to, 0);
  ack_event->trigger();
}

sim::Task<> CommNode::op_send(NodeId dst, std::uint64_t bytes,
                              std::int32_t tag) {
  sends.add();
  bytes_sent.add(bytes);
  comm_log().debug(sim_.now(), "node ", id_, " send(", bytes, ", ", dst,
                   ", tag=", tag, ")");
  co_await sim_.delay(nic_.send_setup + copy_time(bytes));

  sim::Event acked;
  Message msg{id_, dst, bytes, tag, /*needs_ack=*/true, &acked};
  const sim::Tick blocked_from = sim_.now();
  if (dst == id_) {
    deliver(msg);
  } else {
    sim_.spawn(transmission(msg));
  }
  co_await acked;
  send_block_ticks.add(static_cast<double>(sim_.now() - blocked_from));
}

sim::Task<> CommNode::op_asend(NodeId dst, std::uint64_t bytes,
                               std::int32_t tag) {
  asends.add();
  bytes_sent.add(bytes);
  co_await sim_.delay(nic_.send_setup + copy_time(bytes));
  Message msg{id_, dst, bytes, tag, /*needs_ack=*/false, nullptr};
  if (dst == id_) {
    deliver(msg);
  } else {
    sim_.spawn(transmission(msg));
  }
}

sim::Task<> CommNode::op_recv(NodeId src, std::int32_t tag) {
  recvs.add();
  co_await sim_.delay(nic_.recv_setup);

  // Already arrived?
  for (auto it = arrived_.begin(); it != arrived_.end(); ++it) {
    if ((src == trace::kNoNode || src == it->src) && tag == it->tag) {
      const Message msg = *it;
      arrived_.erase(it);
      co_await sim_.delay(copy_time(msg.bytes));
      consume(msg);
      co_return;
    }
  }

  // Block until delivery.
  PendingRecv pr;
  pr.src = src;
  pr.tag = tag;
  pending_.push_back(&pr);
  const sim::Tick blocked_from = sim_.now();
  co_await pr.ready;
  recv_block_ticks.add(static_cast<double>(sim_.now() - blocked_from));
  co_await sim_.delay(copy_time(pr.matched.bytes));
  consume(pr.matched);
}

sim::Task<CommNode::RecvInfo> CommNode::op_recv_filtered(RecvFilter filter) {
  recvs.add();
  co_await sim_.delay(nic_.recv_setup);

  for (auto it = arrived_.begin(); it != arrived_.end(); ++it) {
    if (filter(it->src, it->tag)) {
      const Message msg = *it;
      arrived_.erase(it);
      co_await sim_.delay(copy_time(msg.bytes));
      consume(msg);
      co_return RecvInfo{msg.src, msg.tag, msg.bytes};
    }
  }

  PendingRecv pr;
  pr.filter = std::move(filter);
  pending_.push_back(&pr);
  const sim::Tick blocked_from = sim_.now();
  co_await pr.ready;
  recv_block_ticks.add(static_cast<double>(sim_.now() - blocked_from));
  co_await sim_.delay(copy_time(pr.matched.bytes));
  consume(pr.matched);
  co_return RecvInfo{pr.matched.src, pr.matched.tag, pr.matched.bytes};
}

sim::Task<> CommNode::op_arecv(NodeId src, std::int32_t tag) {
  arecvs.add();
  co_await sim_.delay(nic_.recv_setup);

  for (auto it = arrived_.begin(); it != arrived_.end(); ++it) {
    if ((src == trace::kNoNode || src == it->src) && tag == it->tag) {
      const Message msg = *it;
      arrived_.erase(it);
      co_await sim_.delay(copy_time(msg.bytes));
      consume(msg);
      co_return;
    }
  }

  // Post a passive receive: consumption happens on arrival, the processor
  // does not block.
  auto pr = std::make_unique<PendingRecv>();
  pr->src = src;
  pr->tag = tag;
  pr->passive = true;
  passive_.push_back(std::move(pr));
}

sim::Task<> CommNode::op_compute(sim::Tick duration) {
  compute_ops.add();
  compute_ticks_ += duration;
  co_await sim_.delay(duration);
}

void CommNode::deliver(const Message& msg) {
  comm_log().trace(sim_.now(), "node ", id_, " delivery from ", msg.src,
                   " tag=", msg.tag, " bytes=", msg.bytes);
  // Match active (blocking) receives first, in posting order.
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (matches(**it, msg)) {
      PendingRecv* pr = *it;
      pending_.erase(it);
      pr->matched = msg;
      pr->ready.trigger();
      return;  // consume() runs in the receiver after its copy delay
    }
  }
  // Then passive (arecv) posts.
  for (auto it = passive_.begin(); it != passive_.end(); ++it) {
    if (matches(**it, msg)) {
      passive_.erase(it);
      consume(msg);
      return;
    }
  }
  arrived_.push_back(msg);
}

void CommNode::consume(const Message& msg) {
  if (!msg.needs_ack) return;
  if (msg.src == id_) {
    msg.ack_event->trigger();
  } else {
    sim_.spawn(ack_return(msg.src, msg.ack_event));
  }
}

sim::Process CommNode::run(trace::OperationSource& source) {
  while (auto op = source.next()) {
    if (trace::is_global_event(op->code)) {
      source.global_event_issued(sim_.now());
      co_await issue(*op);
      source.global_event_done(sim_.now());
    } else {
      co_await issue(*op);
    }
  }
}

void CommNode::register_stats(stats::StatRegistry& reg,
                              const std::string& prefix) {
  reg.register_counter(prefix + ".sends", &sends);
  reg.register_counter(prefix + ".asends", &asends);
  reg.register_counter(prefix + ".recvs", &recvs);
  reg.register_counter(prefix + ".arecvs", &arecvs);
  reg.register_counter(prefix + ".bytes_sent", &bytes_sent);
  reg.register_counter(prefix + ".compute_ops", &compute_ops);
  reg.register_accumulator(prefix + ".send_block_ticks", &send_block_ticks);
  reg.register_accumulator(prefix + ".recv_block_ticks", &recv_block_ticks);
}

}  // namespace merm::node
