// The single-node computational model (Fig. 3a): CPUs + cache hierarchy +
// bus + DRAM, executing operation-level traces.
//
// Communication operations are not simulated here; they are forwarded to the
// node's CommNode (Fig. 2's hybrid composition).  A TaskRecorder can observe
// the run and derive the task-level workload — the computational tasks the
// paper describes as "measuring the simulated time between two consecutive
// communication operations".
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/cpu.hpp"
#include "machine/params.hpp"
#include "memory/hierarchy.hpp"
#include "node/comm_node.hpp"
#include "obs/trace.hpp"
#include "sim/coro.hpp"
#include "sim/simulator.hpp"
#include "trace/stream.hpp"

namespace merm::node {

/// Observes a detailed run and emits the equivalent task-level trace:
/// compute(duration) entries between the communication operations.
class TaskRecorder {
 public:
  /// Called when the node starts executing (records the time origin).
  void start(sim::Tick now) { last_mark_ = now; }

  /// Called just before a communication operation is issued.
  void mark_communication(sim::Tick now, const trace::Operation& op) {
    if (now > last_mark_) {
      ops_.push_back(trace::Operation::compute(now - last_mark_));
    }
    ops_.push_back(op);
  }

  /// Called after the communication completed (compute time restarts here:
  /// blocking time is the communication model's business, not a task).
  void resume(sim::Tick now) { last_mark_ = now; }

  /// Called at end of trace.
  void finish(sim::Tick now) {
    if (now > last_mark_) {
      ops_.push_back(trace::Operation::compute(now - last_mark_));
    }
  }

  const std::vector<trace::Operation>& task_trace() const { return ops_; }

 private:
  sim::Tick last_mark_ = 0;
  std::vector<trace::Operation> ops_;
};

/// Interface to a shared-memory runtime service (e.g. the virtual shared
/// memory layer): the node model consults it for loads/stores to shared
/// addresses before performing the local memory access.  This realizes the
/// paper's Section 5.1 outlook — "use a virtual shared memory to hide all
/// explicit communication" — while keeping traces pure load/store.
class SharedMemoryService {
 public:
  virtual ~SharedMemoryService() = default;
  /// True when `addr` lies in the shared region this service manages.
  virtual bool is_shared(std::uint64_t addr) const = 0;
  /// Completes (in simulated time) once the access may proceed locally —
  /// this is where page faults, fetches and invalidations happen.
  virtual sim::Task<> ensure(std::uint64_t addr, bool is_write) = 0;
};

class ComputeNode {
 public:
  ComputeNode(sim::Simulator& sim, const machine::NodeParams& params,
              NodeId id);

  NodeId id() const { return id_; }
  std::uint32_t cpu_count() const {
    return static_cast<std::uint32_t>(cpus_.size());
  }
  cpu::Cpu& cpu(std::uint32_t i) { return *cpus_[i]; }
  memory::MemoryHierarchy& memory() { return *memory_; }

  /// Runs an operation-level trace on CPU `cpu_index`.  Communication
  /// operations are forwarded to `comm` (may be null for pure single-node
  /// studies, in which case encountering one is an error).  When `shm` is
  /// set, loads/stores to its shared region first go through
  /// SharedMemoryService::ensure.
  sim::Process run(std::uint32_t cpu_index, trace::OperationSource& source,
                   CommNode* comm, TaskRecorder* recorder = nullptr,
                   SharedMemoryService* shm = nullptr);

  /// Observability hook: each CPU's run loop records kCompute segment spans
  /// (between communication boundaries, i.e. at TimeCursor flush points) on
  /// cpu_tracks[c], and the CPU itself records kMissWalk spans there.
  void attach_trace(obs::TraceSink* sink,
                    std::vector<obs::TrackId> cpu_tracks);

  /// Simulator memory consumed by this node's model state.
  std::size_t footprint_bytes() const;

  void register_stats(stats::StatRegistry& reg, const std::string& prefix);

 private:
  sim::Simulator& sim_;
  NodeId id_;
  std::unique_ptr<memory::MemoryHierarchy> memory_;
  std::vector<std::unique_ptr<cpu::Cpu>> cpus_;
  obs::TraceSink* trace_ = nullptr;
  std::vector<obs::TrackId> cpu_tracks_;
};

}  // namespace merm::node
