#include "node/compute_node.hpp"

#include <stdexcept>

namespace merm::node {

ComputeNode::ComputeNode(sim::Simulator& sim,
                         const machine::NodeParams& params, NodeId id)
    : sim_(sim),
      id_(id),
      memory_(std::make_unique<memory::MemoryHierarchy>(sim, params)) {
  for (std::uint32_t c = 0; c < params.cpu_count; ++c) {
    cpus_.push_back(
        std::make_unique<cpu::Cpu>(sim, params.cpu, *memory_, c));
  }
}

void ComputeNode::attach_trace(obs::TraceSink* sink,
                               std::vector<obs::TrackId> cpu_tracks) {
  trace_ = sink;
  cpu_tracks_ = std::move(cpu_tracks);
  for (std::size_t c = 0; c < cpus_.size(); ++c) {
    cpus_[c]->attach_trace(sink, cpu_tracks_[c]);
  }
}

sim::Process ComputeNode::run(std::uint32_t cpu_index,
                              trace::OperationSource& source, CommNode* comm,
                              TaskRecorder* recorder,
                              SharedMemoryService* shm) {
  cpu::Cpu& cpu = *cpus_[cpu_index];
  const obs::TrackId track =
      trace_ != nullptr ? cpu_tracks_[cpu_index] : obs::kNoTrack;
  // Two-tier time accounting (DESIGN.md): on a single-CPU node this process
  // is the sole client of the node's caches and bus, so pure compute and
  // hit-latency time may accumulate on a local cursor and is realized as
  // one Delay at each synchronization point below.  Multi-CPU nodes
  // interleave through coherence snoops and bus arbitration, and DSM runs
  // consult globally shared page state on every access, so both stay
  // event-by-event on the global queue.
  sim::TimeCursor& cursor = memory_->cursor(cpu_index);
  cursor.set_enabled(sim_.fast_paths() && memory_->cpu_count() == 1 &&
                     shm == nullptr);
  if (recorder != nullptr) recorder->start(sim_.now());
  // Compute segments span between communication boundaries — the same
  // TimeCursor flush points the TaskRecorder marks, so in cursor mode no
  // extra flushes are introduced and deferred time stays deferred.
  sim::Tick segment_start = sim_.now();

  while (auto op = source.next()) {
    if (trace::is_computational(op->code)) {
      if (shm != nullptr && trace::is_memory_access(op->code) &&
          shm->is_shared(op->value)) {
        // DSM interaction: globally visible, a synchronization point.
        co_await cursor.flush();
        co_await shm->ensure(op->value, op->code == trace::OpCode::kStore);
        co_await cpu.execute(*op);
      } else if (!cpu.try_execute_fast(*op)) {
        co_await cpu.execute(*op);
      }
    } else if (op->code == trace::OpCode::kCompute) {
      // Task-level computation embedded in an instruction-level trace.
      if (cursor.enabled()) {
        cursor.advance(op->value);
      } else {
        co_await sim_.delay(op->value);
      }
    } else {
      // Communication: forward to the communication model.
      if (comm == nullptr) {
        throw std::logic_error(
            "communication operation on a node without a CommNode: " +
            trace::to_string(*op));
      }
      // Trace interleaving boundary: realize local time before the source
      // observes it and the communication becomes globally visible.
      co_await cursor.flush();
      if (recorder != nullptr) recorder->mark_communication(sim_.now(), *op);
      if (trace_ != nullptr && sim_.now() > segment_start) {
        trace_->span(track, obs::SpanKind::kCompute, segment_start,
                     sim_.now());
      }
      source.global_event_issued(sim_.now());
      co_await comm->issue(*op);
      source.global_event_done(sim_.now());
      if (recorder != nullptr) recorder->resume(sim_.now());
      segment_start = sim_.now();
    }
  }
  co_await cursor.flush();
  cursor.set_enabled(false);
  if (recorder != nullptr) recorder->finish(sim_.now());
  if (trace_ != nullptr && sim_.now() > segment_start) {
    trace_->span(track, obs::SpanKind::kCompute, segment_start, sim_.now());
  }
}

std::size_t ComputeNode::footprint_bytes() const {
  return sizeof(ComputeNode) + memory_->footprint_bytes() +
         cpus_.size() * sizeof(cpu::Cpu);
}

void ComputeNode::register_stats(stats::StatRegistry& reg,
                                 const std::string& prefix) {
  memory_->register_stats(reg, prefix + ".mem");
  for (std::size_t c = 0; c < cpus_.size(); ++c) {
    cpus_[c]->register_stats(reg, prefix + ".cpu" + std::to_string(c));
  }
}

}  // namespace merm::node
