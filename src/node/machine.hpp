// Multicomputer assembly (Sections 4.2-4.3).
//
// A Machine instantiates the multi-node communication model (network +
// one CommNode per node) and, for detailed simulation, replicates the
// single-node computational model on every node and wires it to its
// CommNode — the hybrid model of Fig. 2.
//
// The same assembly covers the paper's other configurations:
//  - shared-memory multiprocessor: topology 1x1 with node.cpu_count > 1 —
//    only the computational model is exercised (Section 4.3);
//  - hybrid SMP clusters: node.cpu_count > 1 with a real topology — CPUs of
//    a node share the cache hierarchy, clusters communicate by messages.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "machine/params.hpp"
#include "network/network.hpp"
#include "node/comm_node.hpp"
#include "node/compute_node.hpp"
#include "sim/simulator.hpp"
#include "trace/stream.hpp"

namespace merm::node {

/// The two abstraction levels of the workbench.
enum class SimulationLevel {
  kDetailed,   ///< operation-level: computational + communication models
  kTaskLevel,  ///< task-level: communication model only (fast prototyping)
};

class Machine {
 public:
  Machine(sim::Simulator& sim, const machine::MachineParams& params);

  const machine::MachineParams& params() const { return params_; }
  std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(comm_nodes_.size());
  }
  std::uint32_t cpus_per_node() const { return params_.node.cpu_count; }

  ComputeNode& compute_node(std::uint32_t i) { return *compute_nodes_[i]; }
  CommNode& comm_node(std::uint32_t i) { return *comm_nodes_[i]; }
  network::Network& network() { return *network_; }
  sim::Simulator& simulator() { return sim_; }
  /// The armed fault plan, or nullptr when params.fault is disabled.
  fault::FaultPlan* fault_plan() { return fault_plan_.get(); }

  /// Launches a detailed (operation-level) workload: one source per CPU,
  /// indexed source[node * cpus_per_node + cpu].  Optional recorders (one
  /// per source) derive the task-level traces during the run.
  std::vector<sim::ProcessHandle> launch_detailed(
      trace::Workload& workload,
      std::vector<TaskRecorder>* recorders = nullptr);

  /// Launches a task-level workload: one source per node, driving the
  /// communication model directly.
  std::vector<sim::ProcessHandle> launch_task_level(trace::Workload& workload);

  /// True when every handle's process has finished.  Used by tests to catch
  /// deadlocked workloads (e.g. mismatched send/recv).
  static bool all_finished(const std::vector<sim::ProcessHandle>& handles);

  /// Creates one trace track per model process in a deterministic order
  /// (per node: cpu0..N, comm, net, bus) and distributes the sink to every
  /// component.  Call once, before any run that should be traced.
  void attach_trace(obs::TraceSink& sink);

  // -- aggregates --
  std::uint64_t total_ops_executed() const;
  std::uint64_t total_messages() const;
  /// Simulator memory estimate (model state only; Section 6's footprint).
  std::size_t footprint_bytes() const;

  void register_stats(stats::StatRegistry& reg, const std::string& prefix);

 private:
  sim::Simulator& sim_;
  machine::MachineParams params_;
  std::unique_ptr<network::Network> network_;
  /// Declared after network_ so it is destroyed first (the network holds a
  /// raw FaultInjector pointer into it).
  std::unique_ptr<fault::FaultPlan> fault_plan_;
  std::vector<std::unique_ptr<CommNode>> comm_nodes_;
  std::vector<std::unique_ptr<ComputeNode>> compute_nodes_;
};

}  // namespace merm::node
