// Multicomputer assembly (Sections 4.2-4.3).
//
// A Machine instantiates the multi-node communication model (network +
// one CommNode per node) and, for detailed simulation, replicates the
// single-node computational model on every node and wires it to its
// CommNode — the hybrid model of Fig. 2.
//
// The same assembly covers the paper's other configurations:
//  - shared-memory multiprocessor: topology 1x1 with node.cpu_count > 1 —
//    only the computational model is exercised (Section 4.3);
//  - hybrid SMP clusters: node.cpu_count > 1 with a real topology — CPUs of
//    a node share the cache hierarchy, clusters communicate by messages.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "machine/params.hpp"
#include "network/network.hpp"
#include "node/comm_node.hpp"
#include "node/compute_node.hpp"
#include "sim/simulator.hpp"
#include "trace/stream.hpp"

namespace merm::sim::pdes {
class Engine;
}  // namespace merm::sim::pdes

namespace merm::node {

/// The two abstraction levels of the workbench.
enum class SimulationLevel {
  kDetailed,   ///< operation-level: computational + communication models
  kTaskLevel,  ///< task-level: communication model only (fast prototyping)
};

class Machine {
 public:
  Machine(sim::Simulator& sim, const machine::MachineParams& params);

  /// Conservative-PDES assembly: node n's components live on partition
  /// `node_to_partition[n]` (possibly many nodes per partition — the
  /// coarse-grained mapping), the network runs its reservation-ledger PDES
  /// path, and scripted faults apply at window barriers instead of being
  /// armed as events.  An empty map means the legacy one-partition-per-node
  /// identity (the engine must then carry node_count partitions).  `engine`
  /// must outlive the machine.
  Machine(sim::pdes::Engine& engine, const machine::MachineParams& params,
          std::vector<std::uint32_t> node_to_partition = {});

  const machine::MachineParams& params() const { return params_; }
  std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(comm_nodes_.size());
  }
  std::uint32_t cpus_per_node() const { return params_.node.cpu_count; }

  ComputeNode& compute_node(std::uint32_t i) { return *compute_nodes_[i]; }
  CommNode& comm_node(std::uint32_t i) { return *comm_nodes_[i]; }
  network::Network& network() { return *network_; }
  sim::Simulator& simulator() { return sim_; }
  /// The PDES engine this machine runs on, or nullptr for a serial machine.
  sim::pdes::Engine* pdes_engine() { return pdes_; }
  /// The simulator node `i`'s components are spawned on (its owning
  /// partition under PDES, the shared serial simulator otherwise).
  sim::Simulator& node_simulator(std::uint32_t i) { return *node_sims_[i]; }
  /// The partition owning node `i` (0 for a serial machine).
  std::uint32_t node_partition(std::uint32_t i) const {
    return node_partition_.empty() ? 0 : node_partition_[i];
  }
  /// The armed fault plan, or nullptr when params.fault is disabled.
  fault::FaultPlan* fault_plan() { return fault_plan_.get(); }

  /// Launches a detailed (operation-level) workload: one source per CPU,
  /// indexed source[node * cpus_per_node + cpu].  Optional recorders (one
  /// per source) derive the task-level traces during the run.
  std::vector<sim::ProcessHandle> launch_detailed(
      trace::Workload& workload,
      std::vector<TaskRecorder>* recorders = nullptr);

  /// Launches a task-level workload: one source per node, driving the
  /// communication model directly.
  std::vector<sim::ProcessHandle> launch_task_level(trace::Workload& workload);

  /// True when every handle's process has finished.  Used by tests to catch
  /// deadlocked workloads (e.g. mismatched send/recv).
  static bool all_finished(const std::vector<sim::ProcessHandle>& handles);

  /// Creates one trace track per model process in a deterministic order
  /// (per node: cpu0..N, comm, net, bus) and distributes the sink to every
  /// component.  Call once, before any run that should be traced.
  void attach_trace(obs::TraceSink& sink);

  /// PDES tracing: one sink per *partition* (not per node), each given the
  /// identical track table (same names, same ids, same order as
  /// attach_trace would build), so per-track events merge across
  /// partitions without id translation.  Node n's components record into
  /// its owning partition's sink.
  void attach_trace_pdes(const std::vector<obs::TraceSink*>& sinks);

  /// Folds the network's per-partition stat shards and the fault plan's
  /// per-node draw tallies into the public counters.  Call once, after a
  /// PDES run, before reading any statistic.
  void fold_pdes_stats();

  // -- aggregates --
  std::uint64_t total_ops_executed() const;
  std::uint64_t total_messages() const;
  /// Simulator memory estimate (model state only; Section 6's footprint).
  std::size_t footprint_bytes() const;

  void register_stats(stats::StatRegistry& reg, const std::string& prefix);

 private:
  /// Shared construction body; `engine` is null for the serial assembly.
  void build(sim::pdes::Engine* engine);

  sim::Simulator& sim_;  ///< partition 0's simulator under PDES
  machine::MachineParams params_;
  sim::pdes::Engine* pdes_ = nullptr;
  std::vector<std::uint32_t> node_partition_;  ///< [node]; empty when serial
  std::vector<sim::Simulator*> node_sims_;  ///< [node]; all &sim_ when serial
  std::unique_ptr<network::Network> network_;
  /// Declared after network_ so it is destroyed first (the network holds a
  /// raw FaultInjector pointer into it).
  std::unique_ptr<fault::FaultPlan> fault_plan_;
  std::vector<std::unique_ptr<CommNode>> comm_nodes_;
  std::vector<std::unique_ptr<ComputeNode>> compute_nodes_;
};

}  // namespace merm::node
