// The communication side of a MIMD node (Fig. 3b): the abstract processor
// plus its router interface.
//
// A CommNode executes the communication operation set (send/recv/asend/
// arecv/compute).  It implements message-passing with (source, tag)
// matching:
//
//  - send  (synchronous): the sender pays NIC setup + copy, the message
//    travels the network, and the sender completes only after a matching
//    recv consumed the message and a zero-payload acknowledgement returned —
//    blocking rendezvous semantics.
//  - asend (asynchronous): the sender pays setup + copy and continues; the
//    message is buffered at the destination until received.
//  - recv  (synchronous): blocks until a matching message has fully arrived,
//    then pays setup + copy.
//  - arecv (asynchronous): posts the receive and continues; an already
//    arrived message is consumed immediately (with copy cost), otherwise
//    consumption happens on arrival without blocking the processor.
//  - compute(duration): task-level computation, a pure delay.
//
// `source` may be trace::kNoNode to match a message from any sender.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "machine/params.hpp"
#include "network/network.hpp"
#include "obs/trace.hpp"
#include "sim/coro.hpp"
#include "sim/simulator.hpp"
#include "stats/stats.hpp"
#include "trace/stream.hpp"

namespace merm::node {

using trace::NodeId;

/// A synchronous send exhausted its retransmission budget (fault mode only):
/// the destination stayed unreachable through every backoff window.
class RetryExhaustedError : public std::runtime_error {
 public:
  RetryExhaustedError(NodeId node, NodeId peer, std::int32_t tag,
                      std::uint32_t attempts)
      : std::runtime_error("node " + std::to_string(node) + ": send to " +
                           std::to_string(peer) + " tag=" +
                           std::to_string(tag) + " gave up after " +
                           std::to_string(attempts) +
                           " attempts (injected faults exhausted retries)"),
        node_(node),
        peer_(peer),
        tag_(tag),
        attempts_(attempts) {}

  NodeId node() const { return node_; }
  NodeId peer() const { return peer_; }
  std::int32_t tag() const { return tag_; }
  std::uint32_t attempts() const { return attempts_; }

 private:
  NodeId node_;
  NodeId peer_;
  std::int32_t tag_;
  std::uint32_t attempts_;
};

class CommNode {
 public:
  CommNode(sim::Simulator& sim, NodeId id, network::Network& net,
           const machine::NicParams& nic);

  /// Wires this node to its peers; must be called before any operation.
  void set_fabric(std::vector<std::unique_ptr<CommNode>>* peers) {
    peers_ = peers;
  }

  /// Enables the NIC's fault-tolerance machinery (ack timeout + bounded
  /// retransmission with exponential backoff, duplicate suppression).  Pass
  /// the machine's FaultParams, or nullptr / a disabled struct for the
  /// perfect-interconnect behaviour.  `params` must outlive the node.
  void set_fault(const machine::FaultParams* params) {
    fault_ = (params != nullptr && params->enabled) ? params : nullptr;
  }

  NodeId id() const { return id_; }

  /// Observability hook: blocking sends/recvs record open kSendBlock /
  /// kRecvBlock spans on `track` (left open at seal time when the run hangs
  /// — the hang diagnostic, visualized), retransmissions record kNicRetry
  /// instants.  Branch-on-null with no sink attached.
  void attach_trace(obs::TraceSink* sink, obs::TrackId track) {
    trace_ = sink;
    trace_track_ = track;
  }

  /// Dispatches one communication-model operation (Table 1, lower half).
  sim::Task<> issue(const trace::Operation& op);

  sim::Task<> op_send(NodeId dst, std::uint64_t bytes, std::int32_t tag);
  sim::Task<> op_asend(NodeId dst, std::uint64_t bytes, std::int32_t tag);
  sim::Task<> op_recv(NodeId src, std::int32_t tag);
  sim::Task<> op_arecv(NodeId src, std::int32_t tag);
  sim::Task<> op_compute(sim::Tick duration);

  /// Metadata of a received message (runtime-level receives).
  struct RecvInfo {
    NodeId src = trace::kNoNode;
    std::int32_t tag = 0;
    std::uint64_t bytes = 0;
  };

  /// Receives the first message whose (source, tag) satisfies `filter` —
  /// the runtime-system receive used by services layered over message
  /// passing (e.g. the virtual shared memory protocol servers).  Charges
  /// the same NIC costs as op_recv and returns the matched metadata.
  using RecvFilter = std::function<bool(NodeId src, std::int32_t tag)>;
  sim::Task<RecvInfo> op_recv_filtered(RecvFilter filter);

  /// Runs an entire task-level trace on this node (fast-prototyping mode).
  sim::Process run(trace::OperationSource& source);

  /// Messages buffered here awaiting a matching receive.
  std::size_t unclaimed_messages() const { return arrived_.size(); }
  /// Receives posted and not yet matched.
  std::size_t pending_receives() const { return pending_.size(); }

  /// Human-readable lines for every operation currently blocked on this node
  /// — sync sends awaiting their ack and active receives awaiting a match,
  /// each with peer, tag, and blocked-since time.  Feeds the simulator's
  /// hang diagnostic.
  std::vector<std::string> describe_blocked() const;

  // -- statistics --
  stats::Counter sends;
  stats::Counter asends;
  stats::Counter recvs;
  stats::Counter arecvs;
  stats::Counter bytes_sent;
  stats::Accumulator send_block_ticks;  ///< sync-send wait for ack
  stats::Accumulator recv_block_ticks;  ///< recv wait for arrival
  stats::Counter compute_ops;
  /// Unclaimed-message backlog observed as deliveries queue up.
  stats::Log2Histogram arrived_depth;
  /// Transmission attempts per completed sync send (1 = first try).
  stats::Log2Histogram send_attempts;
  sim::Tick compute_ticks() const { return compute_ticks_; }

  // -- fault-tolerance statistics (stay zero without fault mode) --
  stats::Counter retries;        ///< retransmissions (sync + async + ack)
  stats::Counter timeouts;       ///< ack timeouts that fired unacked
  stats::Counter msg_drops;      ///< transmissions the network lost
  stats::Counter reroutes;       ///< transmissions that detoured
  stats::Counter duplicates;     ///< retransmit copies suppressed on receive
  stats::Counter send_failures;  ///< asends abandoned after max retries

  void register_stats(stats::StatRegistry& reg, const std::string& prefix);

 private:
  /// Shared sender-side completion state for one sync send.  Heap-allocated
  /// (unlike the stack Event it replaces) because timeout callbacks and
  /// retransmit copies may outlive one iteration of the sender's retry loop.
  struct AckControl {
    sim::Event wake;    ///< triggered by the ack or by an ack timeout
    bool acked = false; ///< distinguishes the two wake reasons
  };

  struct Message {
    NodeId src = trace::kNoNode;
    NodeId dst = trace::kNoNode;
    std::uint64_t bytes = 0;
    std::int32_t tag = 0;
    std::uint64_t seq = 0;  ///< nonzero = dedup-tracked (fault-mode sync send)
    std::shared_ptr<AckControl> ack;  ///< null for async sends
  };

  struct PendingRecv {
    NodeId src = trace::kNoNode;  ///< kNoNode = any
    std::int32_t tag = 0;
    RecvFilter filter;       ///< when set, overrides (src, tag) matching
    bool passive = false;    ///< posted by arecv: consume without blocking
    sim::Event ready;        ///< triggered on match (active receives)
    Message matched;
    sim::Tick since = 0;     ///< when the receive blocked (diagnostics)
  };

  /// One sender-side operation currently blocked awaiting the network; lives
  /// on the operation's coroutine frame, registered in blocked_sends_.
  struct BlockedOp {
    NodeId peer = trace::kNoNode;
    std::int32_t tag = 0;
    std::uint64_t bytes = 0;
    sim::Tick since = 0;
    std::uint32_t attempts = 1;
  };

  /// Unregisters a BlockedOp when its frame dies (normally or by exception).
  struct BlockedScope {
    std::vector<const BlockedOp*>* list;
    const BlockedOp* op;
    ~BlockedScope() { std::erase(*list, op); }
  };

  friend class MachineFabricAccess;

  CommNode& peer(NodeId n) { return *(*peers_)[static_cast<std::size_t>(n)]; }

  sim::Tick copy_time(std::uint64_t bytes) const;

  /// Network-side delivery of a fully arrived message.
  void deliver(const Message& msg);
  /// A matching receive consumed `msg`: acknowledge sync senders.
  void consume(const Message& msg);

  bool matches(const PendingRecv& pr, const Message& m) const {
    if (pr.filter) return pr.filter(m.src, m.tag);
    return (pr.src == trace::kNoNode || pr.src == m.src) && pr.tag == m.tag;
  }

  sim::Process transmission(Message msg);
  /// Async-send transport with the NIC's bounded-retry loop (fault mode).
  sim::Process reliable_transmission(Message msg);
  sim::Process ack_return(NodeId to, std::shared_ptr<AckControl> ctl);

  // -- conservative-PDES transport (used when net_.pdes_active()) --
  /// Replaces transmission(): source-side outcomes come back synchronously
  /// in the network verdict; delivery (or the corruption loss) runs on the
  /// destination's partition via the arrival callback.
  void pdes_transmit(const Message& msg);
  /// Replaces reliable_transmission(): the sender cannot observe link-level
  /// delivery across partitions, so the destination NIC confirms arrival
  /// with a zero-payload control message and the sender retries on a
  /// confirm timeout.
  sim::Process pdes_reliable_asend(Message msg);
  /// Destination half of pdes_reliable_asend: deliver, then confirm —
  /// unconditionally, including duplicate copies, so a late confirm can
  /// never strand the sender's retry loop.
  void pdes_deliver_confirmed(const Message& msg,
                              std::shared_ptr<AckControl> ctl);
  /// Acknowledges a consumed sync send (local trigger or ack packet).
  void acknowledge(const Message& msg);

  /// Exponential backoff: base doubled per attempt (shift-capped).
  static sim::Tick backoff(sim::Tick base, std::uint32_t attempt) {
    return base << (attempt < 16 ? attempt : 16);
  }

  /// Globally unique per-sender message sequence number (0 reserved).
  std::uint64_t next_seq() {
    return (static_cast<std::uint64_t>(id_ + 1) << 40) | ++seq_counter_;
  }

  sim::Simulator& sim_;
  NodeId id_;
  network::Network& net_;
  machine::NicParams nic_;
  std::vector<std::unique_ptr<CommNode>>* peers_ = nullptr;
  const machine::FaultParams* fault_ = nullptr;

  std::deque<Message> arrived_;
  std::deque<PendingRecv*> pending_;          ///< active (blocking) receives
  std::deque<std::unique_ptr<PendingRecv>> passive_;  ///< arecv posts
  std::vector<const BlockedOp*> blocked_sends_;
  /// Receiver-side dedup for retransmitted sync sends: seq -> 1 (delivered)
  /// or 2 (consumed; duplicates re-ack in case the original ack was lost).
  std::unordered_map<std::uint64_t, std::uint8_t> seq_state_;
  std::uint64_t seq_counter_ = 0;
  sim::Tick compute_ticks_ = 0;
  obs::TraceSink* trace_ = nullptr;
  obs::TrackId trace_track_ = obs::kNoTrack;
};

}  // namespace merm::node
