// The communication side of a MIMD node (Fig. 3b): the abstract processor
// plus its router interface.
//
// A CommNode executes the communication operation set (send/recv/asend/
// arecv/compute).  It implements message-passing with (source, tag)
// matching:
//
//  - send  (synchronous): the sender pays NIC setup + copy, the message
//    travels the network, and the sender completes only after a matching
//    recv consumed the message and a zero-payload acknowledgement returned —
//    blocking rendezvous semantics.
//  - asend (asynchronous): the sender pays setup + copy and continues; the
//    message is buffered at the destination until received.
//  - recv  (synchronous): blocks until a matching message has fully arrived,
//    then pays setup + copy.
//  - arecv (asynchronous): posts the receive and continues; an already
//    arrived message is consumed immediately (with copy cost), otherwise
//    consumption happens on arrival without blocking the processor.
//  - compute(duration): task-level computation, a pure delay.
//
// `source` may be trace::kNoNode to match a message from any sender.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "machine/params.hpp"
#include "network/network.hpp"
#include "sim/coro.hpp"
#include "sim/simulator.hpp"
#include "stats/stats.hpp"
#include "trace/stream.hpp"

namespace merm::node {

using trace::NodeId;

class CommNode {
 public:
  CommNode(sim::Simulator& sim, NodeId id, network::Network& net,
           const machine::NicParams& nic);

  /// Wires this node to its peers; must be called before any operation.
  void set_fabric(std::vector<std::unique_ptr<CommNode>>* peers) {
    peers_ = peers;
  }

  NodeId id() const { return id_; }

  /// Dispatches one communication-model operation (Table 1, lower half).
  sim::Task<> issue(const trace::Operation& op);

  sim::Task<> op_send(NodeId dst, std::uint64_t bytes, std::int32_t tag);
  sim::Task<> op_asend(NodeId dst, std::uint64_t bytes, std::int32_t tag);
  sim::Task<> op_recv(NodeId src, std::int32_t tag);
  sim::Task<> op_arecv(NodeId src, std::int32_t tag);
  sim::Task<> op_compute(sim::Tick duration);

  /// Metadata of a received message (runtime-level receives).
  struct RecvInfo {
    NodeId src = trace::kNoNode;
    std::int32_t tag = 0;
    std::uint64_t bytes = 0;
  };

  /// Receives the first message whose (source, tag) satisfies `filter` —
  /// the runtime-system receive used by services layered over message
  /// passing (e.g. the virtual shared memory protocol servers).  Charges
  /// the same NIC costs as op_recv and returns the matched metadata.
  using RecvFilter = std::function<bool(NodeId src, std::int32_t tag)>;
  sim::Task<RecvInfo> op_recv_filtered(RecvFilter filter);

  /// Runs an entire task-level trace on this node (fast-prototyping mode).
  sim::Process run(trace::OperationSource& source);

  /// Messages buffered here awaiting a matching receive.
  std::size_t unclaimed_messages() const { return arrived_.size(); }
  /// Receives posted and not yet matched.
  std::size_t pending_receives() const { return pending_.size(); }

  // -- statistics --
  stats::Counter sends;
  stats::Counter asends;
  stats::Counter recvs;
  stats::Counter arecvs;
  stats::Counter bytes_sent;
  stats::Accumulator send_block_ticks;  ///< sync-send wait for ack
  stats::Accumulator recv_block_ticks;  ///< recv wait for arrival
  stats::Counter compute_ops;
  sim::Tick compute_ticks() const { return compute_ticks_; }

  void register_stats(stats::StatRegistry& reg, const std::string& prefix);

 private:
  struct Message {
    NodeId src = trace::kNoNode;
    NodeId dst = trace::kNoNode;
    std::uint64_t bytes = 0;
    std::int32_t tag = 0;
    bool needs_ack = false;
    sim::Event* ack_event = nullptr;  ///< sender-side completion (sync send)
  };

  struct PendingRecv {
    NodeId src = trace::kNoNode;  ///< kNoNode = any
    std::int32_t tag = 0;
    RecvFilter filter;       ///< when set, overrides (src, tag) matching
    bool passive = false;    ///< posted by arecv: consume without blocking
    sim::Event ready;        ///< triggered on match (active receives)
    Message matched;
  };

  friend class MachineFabricAccess;

  CommNode& peer(NodeId n) { return *(*peers_)[static_cast<std::size_t>(n)]; }

  sim::Tick copy_time(std::uint64_t bytes) const;

  /// Network-side delivery of a fully arrived message.
  void deliver(const Message& msg);
  /// A matching receive consumed `msg`: acknowledge sync senders.
  void consume(const Message& msg);

  bool matches(const PendingRecv& pr, const Message& m) const {
    if (pr.filter) return pr.filter(m.src, m.tag);
    return (pr.src == trace::kNoNode || pr.src == m.src) && pr.tag == m.tag;
  }

  sim::Process transmission(Message msg);
  sim::Process ack_return(NodeId to, sim::Event* ack_event);

  sim::Simulator& sim_;
  NodeId id_;
  network::Network& net_;
  machine::NicParams nic_;
  std::vector<std::unique_ptr<CommNode>>* peers_ = nullptr;

  std::deque<Message> arrived_;
  std::deque<PendingRecv*> pending_;          ///< active (blocking) receives
  std::deque<std::unique_ptr<PendingRecv>> passive_;  ///< arecv posts
  sim::Tick compute_ticks_ = 0;
};

}  // namespace merm::node
