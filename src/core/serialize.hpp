// Flat-record serialization for RunResult rows.
//
// The crash-safe sweep layer moves finished rows across three boundaries —
// a pipe out of a forked worker process, an fsync'd write-ahead journal, and
// the on-disk memo store — and a resumed sweep must reproduce the original
// run's output byte for byte.  That rules out printf-rounded doubles and
// ad-hoc quoting: every field here round-trips exactly (doubles travel as
// hexfloats), and a record is one '\t'-separated line whose fields escape
// tabs, newlines and backslashes.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/workbench.hpp"

namespace merm::core {

/// Escapes '\\', '\t', '\n', '\r' so the field can sit inside a one-line
/// tab-separated record.
std::string escape_field(std::string_view s);
std::string unescape_field(std::string_view s);

/// Joins escaped fields with tabs / splits a record line back into unescaped
/// fields.  split_record is the exact inverse of join_record.
std::string join_record(const std::vector<std::string>& fields);
std::vector<std::string> split_record(std::string_view line);

/// Bit-exact double round-trip: hexfloat out, strtod back in.
std::string format_double(double v);
double parse_double(const std::string& s);

/// Writes `s` as a JSON string literal (quotes, backslash and control
/// characters escaped).  Shared by the sweep JSON exporter and the serve
/// protocol, so both sides of the wire agree on one escaping.
void write_json_string(std::ostream& os, std::string_view s);

/// Malformed record fields surface as this (wrong count, bad number, ...).
class RecordError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends RunResult's fields (everything except the trace snapshot, which
/// never crosses a process or crash boundary) to a record under construction.
void append_run_result_fields(std::vector<std::string>& out,
                              const RunResult& r);

/// Parses the fields appended by append_run_result_fields starting at
/// `*pos`; advances `*pos` past them.  Throws RecordError on malformed input.
RunResult parse_run_result_fields(const std::vector<std::string>& fields,
                                  std::size_t* pos);

/// Number of fields append_run_result_fields emits.
std::size_t run_result_field_count();

}  // namespace merm::core
