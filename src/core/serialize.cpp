#include "core/serialize.hpp"

#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace merm::core {

std::string escape_field(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string unescape_field(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out += s[i];
      continue;
    }
    switch (s[++i]) {
      case '\\':
        out += '\\';
        break;
      case 't':
        out += '\t';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      default:
        // Unknown escape: keep both characters rather than guessing.
        out += '\\';
        out += s[i];
    }
  }
  return out;
}

std::string join_record(const std::vector<std::string>& fields) {
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) line += '\t';
    line += escape_field(fields[i]);
  }
  return line;
}

std::vector<std::string> split_record(std::string_view line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == '\t') {
      fields.push_back(unescape_field(line.substr(start, i - start)));
      start = i + 1;
    }
  }
  return fields;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

double parse_double(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    throw RecordError("bad double field '" + s + "'");
  }
  return v;
}

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

namespace {

std::uint64_t parse_u64(const std::string& s) {
  if (s.empty()) throw RecordError("empty integer field");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    throw RecordError("bad integer field '" + s + "'");
  }
  return v;
}

constexpr std::size_t kRunResultFields = 13;

}  // namespace

std::size_t run_result_field_count() { return kRunResultFields; }

void append_run_result_fields(std::vector<std::string>& out,
                              const RunResult& r) {
  out.push_back(r.machine_name);
  out.push_back(r.level == node::SimulationLevel::kDetailed ? "detailed"
                                                            : "task");
  out.push_back(r.completed ? "1" : "0");
  out.push_back(r.hang_diagnostic);
  out.push_back(std::to_string(r.simulated_time));
  out.push_back(std::to_string(r.simulated_cpu_cycles));
  out.push_back(std::to_string(r.events_processed));
  out.push_back(std::to_string(r.operations));
  out.push_back(std::to_string(r.messages));
  out.push_back(format_double(r.host_seconds));
  out.push_back(std::to_string(r.footprint_bytes));
  out.push_back(std::to_string(r.processors));
  out.push_back(std::to_string(r.peak_queue_depth));
}

RunResult parse_run_result_fields(const std::vector<std::string>& fields,
                                  std::size_t* pos) {
  if (*pos + kRunResultFields > fields.size()) {
    throw RecordError("truncated RunResult record");
  }
  std::size_t i = *pos;
  RunResult r;
  r.machine_name = fields[i++];
  const std::string& level = fields[i++];
  if (level == "detailed") {
    r.level = node::SimulationLevel::kDetailed;
  } else if (level == "task") {
    r.level = node::SimulationLevel::kTaskLevel;
  } else {
    throw RecordError("bad level field '" + level + "'");
  }
  r.completed = fields[i++] == "1";
  r.hang_diagnostic = fields[i++];
  r.simulated_time = parse_u64(fields[i++]);
  r.simulated_cpu_cycles = parse_u64(fields[i++]);
  r.events_processed = parse_u64(fields[i++]);
  r.operations = parse_u64(fields[i++]);
  r.messages = parse_u64(fields[i++]);
  r.host_seconds = parse_double(fields[i++]);
  r.footprint_bytes = static_cast<std::size_t>(parse_u64(fields[i++]));
  r.processors = static_cast<std::uint32_t>(parse_u64(fields[i++]));
  r.peak_queue_depth = static_cast<std::size_t>(parse_u64(fields[i++]));
  *pos = i;
  return r;
}

}  // namespace merm::core
