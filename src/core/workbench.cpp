#include "core/workbench.hpp"

#include <iomanip>
#include <stdexcept>

namespace merm::core {

void RunResult::print(std::ostream& os) const {
  os << "== " << machine_name << " ("
     << (level == node::SimulationLevel::kDetailed ? "detailed" : "task-level")
     << ") ==\n";
  os << "  completed:        " << (completed ? "yes" : "NO (blocked)") << "\n";
  if (!hang_diagnostic.empty()) {
    os << "  " << hang_diagnostic << "\n";
  }
  os << "  simulated time:   " << sim::format_time(simulated_time) << " ("
     << simulated_cpu_cycles << " cpu cycles)\n";
  os << "  operations:       " << operations << "\n";
  os << "  messages:         " << messages << "\n";
  os << "  kernel events:    " << events_processed << "\n";
  os << "  host time:        " << std::fixed << std::setprecision(3)
     << host_seconds << " s\n";
  os << "  footprint:        " << sim::format_bytes(footprint_bytes) << "\n";
  os << "  peak queue depth: " << peak_queue_depth << "\n";
  os << "  slowdown/proc:    " << std::setprecision(1)
     << slowdown_per_processor() << " (" << processors << " processors)\n";
}

Workbench::Workbench(machine::MachineParams params)
    : params_(std::move(params)),
      sim_(std::make_unique<sim::Simulator>()),
      machine_(std::make_unique<node::Machine>(*sim_, params_)) {}

void Workbench::audit_run_thread() {
  const std::thread::id self = std::this_thread::get_id();
  if (run_thread_ == std::thread::id{}) {
    run_thread_ = self;
  } else if (run_thread_ != self) {
    throw std::logic_error(
        "Workbench '" + params_.name +
        "' ran on two threads: simulator/StatRegistry/TimeSeries state is "
        "unsynchronized and must stay confined to one job");
  }
}

void Workbench::register_all_stats() {
  machine_->register_stats(registry_, params_.name);
}

obs::TraceSink& Workbench::enable_tracing(std::size_t ring_capacity) {
  if (!sink_) {
    sink_ = std::make_unique<obs::TraceSink>(ring_capacity);
    machine_->attach_trace(*sink_);
  }
  return *sink_;
}

void Workbench::enable_progress(sim::Tick interval, std::ostream* echo) {
  progress_interval_ = interval;
  progress_echo_ = echo;
}

void Workbench::arm_progress(const std::vector<sim::ProcessHandle>& handles) {
  if (progress_interval_ == 0) return;
  // Self-rescheduling sampler; stops once the workload has finished so it
  // cannot keep an otherwise idle simulation alive.
  auto sample = std::make_shared<std::function<void()>>();
  *sample = [this, handles, sample] {
    progress_.record(sim_->now(),
                     static_cast<double>(sim_->events_processed()));
    if (sampler_ != nullptr) sampler_->sample(sim_->now());
    if (progress_echo_ != nullptr) {
      *progress_echo_ << "[progress] t=" << sim::format_time(sim_->now())
                      << " events=" << sim_->events_processed()
                      << " messages=" << machine_->total_messages() << "\n";
    }
    if (!node::Machine::all_finished(handles)) {
      sim_->schedule_in(progress_interval_, *sample);
    }
  };
  sim_->schedule_in(progress_interval_, *sample);
}

RunResult Workbench::run_impl(trace::Workload& workload,
                              node::SimulationLevel level, sim::Tick until,
                              std::vector<node::TaskRecorder>* recorders) {
  audit_run_thread();
  std::vector<sim::ProcessHandle> handles;
  {
    const obs::HostProfiler::Scope scope(profiler_, "launch");
    handles = level == node::SimulationLevel::kDetailed
                  ? machine_->launch_detailed(workload, recorders)
                  : machine_->launch_task_level(workload);
  }
  return finish_run(handles, level, until, machine_->total_ops_executed());
}

vsm::VsmSystem& Workbench::enable_vsm(vsm::VsmParams params) {
  if (!vsm_) {
    vsm_ = std::make_unique<vsm::VsmSystem>(*machine_, params);
  }
  return *vsm_;
}

RunResult Workbench::run_detailed_shared(trace::Workload& workload,
                                         sim::Tick until) {
  audit_run_thread();
  enable_vsm();
  std::vector<sim::ProcessHandle> handles = vsm_->launch_detailed(workload);
  return finish_run(handles, node::SimulationLevel::kDetailed, until,
                    machine_->total_ops_executed());
}

namespace {

/// Records the tick at which the last workload process finished.  Only used
/// for fault-injected runs, where scripted repair events can keep the event
/// queue alive long after the application is done and sim.now() at drain
/// would overstate the time-to-completion.
sim::Process watch_completion(std::vector<sim::ProcessHandle> handles,
                              sim::Simulator& sim,
                              std::shared_ptr<sim::Tick> done_at) {
  for (sim::ProcessHandle& h : handles) co_await h.join();
  *done_at = sim.now();
}

}  // namespace

RunResult Workbench::finish_run(const std::vector<sim::ProcessHandle>& handles,
                                node::SimulationLevel level, sim::Tick until,
                                std::uint64_t ops_before) {
  arm_progress(handles);

  auto workload_done_at = std::make_shared<sim::Tick>(sim::kTickMax);
  if (params_.fault.enabled && !handles.empty()) {
    sim_->spawn(watch_completion(handles, *sim_, workload_done_at));
  }

  HostTimer timer;
  sim::Simulator::RunResult sim_result;
  {
    const obs::HostProfiler::Scope scope(profiler_, "run");
    sim_result = sim_->run(until);
  }
  const double host_seconds = timer.elapsed_seconds();

  RunResult r;
  r.machine_name = params_.name;
  r.level = level;
  r.completed = node::Machine::all_finished(handles);
  const bool hung =
      !r.completed && sim_result == sim::Simulator::RunResult::kIdle;
  // Seal before any hang throw so blocked operations export as open spans
  // even when the caller handles the run as a HangError.
  if (sink_) sink_->seal(sim_->now(), hung);
  if (hung) {
    // The queue drained with work still blocked: a genuine hang, not a
    // time/event-limit cutoff.  Capture who is stuck on what.
    r.hang_diagnostic = sim_->hang_diagnostic();
    if (throw_on_hang_) throw HangError(r.hang_diagnostic);
  }
  r.simulated_time = r.completed && *workload_done_at != sim::kTickMax
                         ? *workload_done_at
                         : sim_->now();
  r.simulated_cpu_cycles =
      sim::Clock(params_.node.cpu.frequency_hz).to_cycles(r.simulated_time);
  r.events_processed = sim_->events_processed();
  r.operations = machine_->total_ops_executed() - ops_before;
  r.messages = machine_->total_messages();
  r.host_seconds = host_seconds;
  r.footprint_bytes = machine_->footprint_bytes();
  r.peak_queue_depth = sim_->peak_queue_depth();
  if (sink_) {
    r.trace = std::make_shared<const obs::TraceData>(sink_->to_data());
  }
  r.processors = level == node::SimulationLevel::kDetailed
                     ? machine_->node_count() * machine_->cpus_per_node()
                     : machine_->node_count();
  if (r.completed && progress_interval_ == 0) {
    // Release the finished workload's coroutine frames so multi-phase runs
    // don't accumulate them.  Skipped while a progress sampler is armed:
    // its pending self-reschedule captured the ProcessHandles that
    // collection would invalidate.
    sim_->collect_finished();
  }
  return r;
}

RunResult Workbench::run_detailed(trace::Workload& workload, sim::Tick until,
                                  std::vector<node::TaskRecorder>* recorders) {
  return run_impl(workload, node::SimulationLevel::kDetailed, until,
                  recorders);
}

RunResult Workbench::run_task_level(trace::Workload& workload,
                                    sim::Tick until) {
  return run_impl(workload, node::SimulationLevel::kTaskLevel, until, nullptr);
}

Workbench::Comparison Workbench::compare(
    const machine::MachineParams& arch_x, const machine::MachineParams& arch_y,
    const std::function<trace::Workload(const machine::MachineParams&)>&
        workload_for,
    node::SimulationLevel level) {
  Comparison c;
  {
    Workbench wx(arch_x);
    trace::Workload w = workload_for(arch_x);
    c.x = level == node::SimulationLevel::kDetailed ? wx.run_detailed(w)
                                                    : wx.run_task_level(w);
  }
  {
    Workbench wy(arch_y);
    trace::Workload w = workload_for(arch_y);
    c.y = level == node::SimulationLevel::kDetailed ? wy.run_detailed(w)
                                                    : wy.run_task_level(w);
  }
  return c;
}

}  // namespace merm::core
