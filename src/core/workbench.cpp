#include "core/workbench.hpp"

#include <algorithm>
#include <iomanip>
#include <stdexcept>
#include <utility>

namespace merm::core {

void RunResult::print(std::ostream& os) const {
  os << "== " << machine_name << " ("
     << (level == node::SimulationLevel::kDetailed ? "detailed" : "task-level")
     << ") ==\n";
  os << "  completed:        " << (completed ? "yes" : "NO (blocked)") << "\n";
  if (!hang_diagnostic.empty()) {
    os << "  " << hang_diagnostic << "\n";
  }
  os << "  simulated time:   " << sim::format_time(simulated_time) << " ("
     << simulated_cpu_cycles << " cpu cycles)\n";
  os << "  operations:       " << operations << "\n";
  os << "  messages:         " << messages << "\n";
  os << "  kernel events:    " << events_processed << "\n";
  os << "  host time:        " << std::fixed << std::setprecision(3)
     << host_seconds << " s\n";
  os << "  footprint:        " << sim::format_bytes(footprint_bytes) << "\n";
  os << "  peak queue depth: " << peak_queue_depth << "\n";
  os << "  slowdown/proc:    " << std::setprecision(1)
     << slowdown_per_processor() << " (" << processors << " processors)\n";
  if (pdes_active) {
    os << "  pdes:             " << pdes_workers << " worker(s) / "
       << pdes_partitions << " partition(s) (" << pdes_mapping << "), "
       << pdes_windows << " windows\n";
  }
}

Workbench::Workbench(machine::MachineParams params)
    : params_(std::move(params)),
      sim_(std::make_unique<sim::Simulator>()),
      machine_(std::make_unique<node::Machine>(*sim_, params_)) {}

void Workbench::audit_run_thread() {
  const std::thread::id self = std::this_thread::get_id();
  if (run_thread_ == std::thread::id{}) {
    run_thread_ = self;
  } else if (run_thread_ != self) {
    throw std::logic_error(
        "Workbench '" + params_.name +
        "' ran on two threads: simulator/StatRegistry/TimeSeries state is "
        "unsynchronized and must stay confined to one job");
  }
}

void Workbench::register_all_stats() {
  machine_->register_stats(registry_, params_.name);
  stats_registered_ = true;
}

Workbench::PdesStatus Workbench::enable_pdes(unsigned sim_threads,
                                             std::uint32_t partitions) {
  PdesStatus st;
  if (engine_) {
    // Already parallel; report the live configuration.
    st.active = true;
    st.workers = engine_->workers();
    st.partitions = engine_->partition_count();
    st.lookahead = engine_->lookahead();
    st.mapping = pdes_status_.mapping;
    st.note = "already enabled";
    return st;
  }
  // Everything below binds to the machine this call replaces, so a late
  // enable_pdes is a programming error, not a fallback case.
  if (run_thread_ != std::thread::id{}) {
    throw std::logic_error("enable_pdes: a run already happened");
  }
  if (sink_ != nullptr) {
    throw std::logic_error(
        "enable_pdes: tracing is already attached to the serial machine; "
        "call enable_pdes before enable_tracing");
  }
  if (vsm_ != nullptr) {
    throw std::logic_error(
        "enable_pdes: virtual shared memory is bound to the serial machine");
  }
  if (stats_registered_) {
    throw std::logic_error(
        "enable_pdes: stats are registered against the serial machine; "
        "call enable_pdes before register_all_stats");
  }
  const std::uint32_t nodes = params_.node_count();
  if (sim_threads == 0) {
    st.note = "sim-threads=0 requests the serial engine";
    pdes_status_ = st;
    return st;
  }
  if (nodes < 2) {
    st.note = "fewer than two nodes: nothing to partition";
    pdes_status_ = st;
    return st;
  }
  if (params_.router.switching != machine::Switching::kStoreAndForward) {
    st.note =
        "wormhole switching couples partitions with sub-lookahead "
        "backpressure; only store-and-forward runs in parallel";
    pdes_status_ = st;
    return st;
  }
  if (progress_interval_ != 0) {
    st.note = "progress sampling reads global state mid-run; run serially";
    pdes_status_ = st;
    return st;
  }
  if (machine_->network().min_hop_lookahead() == 0) {
    st.note = "zero-latency links leave no lookahead window";
    pdes_status_ = st;
    return st;
  }
  // Coarse partitioning: auto means one contiguous block per worker (never
  // more than the node count).  The map is a pure function of the topology
  // and the partition count, so a fixed --sim-partitions pins results
  // regardless of worker count.
  const std::uint32_t want =
      partitions == 0 ? std::min<std::uint32_t>(sim_threads, nodes)
                      : std::min<std::uint32_t>(partitions, nodes);
  network::Topology::PartitionMap map =
      machine_->network().topology().partition_blocks(want);
  // Effective lookahead: the cheapest *cross-partition* interaction.  With
  // a single partition nothing crosses and the window is unbounded (half
  // the tick range; barrier hooks still cap fault-scripted runs).
  sim::Tick lookahead =
      machine_->network().pdes_lookahead(map.node_to_partition);
  if (lookahead == sim::kTickMax) lookahead = sim::kTickMax / 2;
  engine_ = std::make_unique<sim::pdes::Engine>(map.partition_count,
                                                sim_threads, lookahead);
  machine_ = std::make_unique<node::Machine>(*engine_, params_,
                                             map.node_to_partition);
  if (fault::FaultPlan* plan = machine_->fault_plan()) {
    engine_->set_barrier_hook([plan](sim::Tick t, sim::Tick until) {
      return plan->apply_transitions(t, until);
    });
  }
  // The serial simulator is now unreferenced (the PDES machine lives on the
  // engine's partitions); release it so nothing can run on it by accident.
  sim_.reset();
  st.active = true;
  st.workers = engine_->workers();
  st.partitions = engine_->partition_count();
  st.lookahead = lookahead;
  st.mapping = map.mapping;
  st.note = "conservative windows over " + map.mapping + ", lookahead " +
            sim::format_time(lookahead);
  pdes_status_ = st;
  return st;
}

obs::TraceSink& Workbench::enable_tracing(std::size_t ring_capacity) {
  if (engine_) {
    if (pdes_sinks_.empty()) {
      std::vector<obs::TraceSink*> raw;
      raw.reserve(engine_->partition_count());
      for (std::uint32_t p = 0; p < engine_->partition_count(); ++p) {
        pdes_sinks_.push_back(std::make_unique<obs::TraceSink>(ring_capacity));
        raw.push_back(pdes_sinks_.back().get());
      }
      machine_->attach_trace_pdes(raw);
    }
    return *pdes_sinks_.front();
  }
  if (!sink_) {
    sink_ = std::make_unique<obs::TraceSink>(ring_capacity);
    machine_->attach_trace(*sink_);
  }
  return *sink_;
}

void Workbench::enable_progress(sim::Tick interval, std::ostream* echo) {
  if (engine_ != nullptr && interval != 0) {
    throw std::logic_error(
        "enable_progress: progress sampling reads global state mid-run and "
        "cannot attach to a PDES workbench; enable it before enable_pdes");
  }
  progress_interval_ = interval;
  progress_echo_ = echo;
}

void Workbench::arm_progress(const std::vector<sim::ProcessHandle>& handles) {
  if (progress_interval_ == 0) return;
  // Self-rescheduling sampler; stops once the workload has finished so it
  // cannot keep an otherwise idle simulation alive.
  auto sample = std::make_shared<std::function<void()>>();
  *sample = [this, handles, sample] {
    progress_.record(sim_->now(),
                     static_cast<double>(sim_->events_processed()));
    if (sampler_ != nullptr) sampler_->sample(sim_->now());
    if (progress_echo_ != nullptr) {
      *progress_echo_ << "[progress] t=" << sim::format_time(sim_->now())
                      << " events=" << sim_->events_processed()
                      << " messages=" << machine_->total_messages() << "\n";
    }
    if (!node::Machine::all_finished(handles)) {
      sim_->schedule_in(progress_interval_, *sample);
    }
  };
  sim_->schedule_in(progress_interval_, *sample);
}

RunResult Workbench::run_impl(trace::Workload& workload,
                              node::SimulationLevel level, sim::Tick until,
                              std::vector<node::TaskRecorder>* recorders) {
  audit_run_thread();
  std::vector<sim::ProcessHandle> handles;
  {
    const obs::HostProfiler::Scope scope(profiler_, "launch");
    handles = level == node::SimulationLevel::kDetailed
                  ? machine_->launch_detailed(workload, recorders)
                  : machine_->launch_task_level(workload);
  }
  const std::uint64_t ops_before = machine_->total_ops_executed();
  return engine_ != nullptr ? finish_run_pdes(handles, level, until, ops_before)
                            : finish_run(handles, level, until, ops_before);
}

vsm::VsmSystem& Workbench::enable_vsm(vsm::VsmParams params) {
  if (engine_ != nullptr) {
    throw std::logic_error(
        "enable_vsm: the DSM layer routes every shared access through one "
        "directory and is not partitionable; run serially");
  }
  if (!vsm_) {
    vsm_ = std::make_unique<vsm::VsmSystem>(*machine_, params);
  }
  return *vsm_;
}

RunResult Workbench::run_detailed_shared(trace::Workload& workload,
                                         sim::Tick until) {
  audit_run_thread();
  enable_vsm();
  std::vector<sim::ProcessHandle> handles = vsm_->launch_detailed(workload);
  return finish_run(handles, node::SimulationLevel::kDetailed, until,
                    machine_->total_ops_executed());
}

namespace {

/// Records the tick at which the last workload process finished.  Only used
/// for fault-injected runs, where scripted repair events can keep the event
/// queue alive long after the application is done and sim.now() at drain
/// would overstate the time-to-completion.
sim::Process watch_completion(std::vector<sim::ProcessHandle> handles,
                              sim::Simulator& sim,
                              std::shared_ptr<sim::Tick> done_at) {
  for (sim::ProcessHandle& h : handles) co_await h.join();
  *done_at = sim.now();
}

/// Per-partition completion watcher for PDES fault runs.  Each partition
/// writes its own slot; the coordinator reads them after the final barrier,
/// so no synchronization beyond the engine's own is needed.
sim::Process watch_partition(std::vector<sim::ProcessHandle> handles,
                             sim::Simulator& sim,
                             std::shared_ptr<std::vector<sim::Tick>> done_at,
                             std::uint32_t partition) {
  for (sim::ProcessHandle& h : handles) co_await h.join();
  (*done_at)[partition] = sim.now();
}

}  // namespace

RunResult Workbench::finish_run(const std::vector<sim::ProcessHandle>& handles,
                                node::SimulationLevel level, sim::Tick until,
                                std::uint64_t ops_before) {
  arm_progress(handles);

  auto workload_done_at = std::make_shared<sim::Tick>(sim::kTickMax);
  if (params_.fault.enabled && !handles.empty()) {
    sim_->spawn(watch_completion(handles, *sim_, workload_done_at));
  }

  HostTimer timer;
  sim::Simulator::RunResult sim_result;
  {
    const obs::HostProfiler::Scope scope(profiler_, "run");
    sim_result = sim_->run(until);
  }
  const double host_seconds = timer.elapsed_seconds();

  RunResult r;
  r.machine_name = params_.name;
  r.level = level;
  r.completed = node::Machine::all_finished(handles);
  const bool hung =
      !r.completed && sim_result == sim::Simulator::RunResult::kIdle;
  // Seal before any hang throw so blocked operations export as open spans
  // even when the caller handles the run as a HangError.
  if (sink_) sink_->seal(sim_->now(), hung);
  if (hung) {
    // The queue drained with work still blocked: a genuine hang, not a
    // time/event-limit cutoff.  Capture who is stuck on what.
    r.hang_diagnostic = sim_->hang_diagnostic();
    if (throw_on_hang_) throw HangError(r.hang_diagnostic);
  }
  r.simulated_time = r.completed && *workload_done_at != sim::kTickMax
                         ? *workload_done_at
                         : sim_->now();
  r.simulated_cpu_cycles =
      sim::Clock(params_.node.cpu.frequency_hz).to_cycles(r.simulated_time);
  r.events_processed = sim_->events_processed();
  r.operations = machine_->total_ops_executed() - ops_before;
  r.messages = machine_->total_messages();
  r.host_seconds = host_seconds;
  r.footprint_bytes = machine_->footprint_bytes();
  r.peak_queue_depth = sim_->peak_queue_depth();
  if (sink_) {
    r.trace = std::make_shared<const obs::TraceData>(sink_->to_data());
  }
  r.processors = level == node::SimulationLevel::kDetailed
                     ? machine_->node_count() * machine_->cpus_per_node()
                     : machine_->node_count();
  // Serial run: carry the fallback reason (if a PDES request was declined)
  // so callers can tell a requested-but-fallen-back run from a serial one.
  r.pdes_note = pdes_status_.note;
  if (r.completed && progress_interval_ == 0) {
    // Release the finished workload's coroutine frames so multi-phase runs
    // don't accumulate them.  Skipped while a progress sampler is armed:
    // its pending self-reschedule captured the ProcessHandles that
    // collection would invalidate.
    sim_->collect_finished();
  }
  return r;
}

RunResult Workbench::finish_run_pdes(
    const std::vector<sim::ProcessHandle>& handles, node::SimulationLevel level,
    sim::Tick until, std::uint64_t ops_before) {
  const std::uint32_t parts = engine_->partition_count();
  // Group the workload handles by owning partition: detailed spawns
  // cpus_per_node processes on node n, task-level spawns one.
  const std::uint32_t per_node = level == node::SimulationLevel::kDetailed
                                     ? machine_->cpus_per_node()
                                     : 1;
  auto done_at = std::make_shared<std::vector<sim::Tick>>(parts, sim::kTickMax);
  bool watched = false;
  if (params_.fault.enabled && !handles.empty()) {
    // Scripted repair transitions can outlive the workload; record each
    // partition's local completion time so simulated_time reports when the
    // application finished, not when the last repair fired.  Handles are
    // node-major (node * per_node + cpu); group them by owning partition.
    std::vector<std::vector<sim::ProcessHandle>> local(parts);
    for (std::uint32_t n = 0; n < machine_->node_count(); ++n) {
      const std::uint32_t p = machine_->node_partition(n);
      for (std::uint32_t c = 0; c < per_node; ++c) {
        local[p].push_back(handles[static_cast<std::size_t>(n) * per_node + c]);
      }
    }
    for (std::uint32_t p = 0; p < parts; ++p) {
      if (local[p].empty()) continue;
      engine_->sim(p).spawn(
          watch_partition(std::move(local[p]), engine_->sim(p), done_at, p));
    }
    watched = true;
  }

  HostTimer timer;
  sim::pdes::Engine::RunResult sim_result;
  {
    const obs::HostProfiler::Scope scope(profiler_, "run");
    sim_result = engine_->run(until);
  }
  const double host_seconds = timer.elapsed_seconds();
  // Every worker is parked behind the final barrier: from here on the
  // partitions' state is plainly readable.  Fold the sharded statistics
  // before anything consults a counter.
  machine_->fold_pdes_stats();

  RunResult r;
  r.machine_name = params_.name;
  r.level = level;
  r.completed = node::Machine::all_finished(handles);
  const bool hung =
      !r.completed && sim_result == sim::pdes::Engine::RunResult::kIdle;
  const sim::Tick end = engine_->end_time();
  for (auto& s : pdes_sinks_) s->seal(end, hung);
  if (hung) {
    r.hang_diagnostic = engine_->hang_diagnostic();
    if (throw_on_hang_) throw HangError(r.hang_diagnostic);
  }
  sim::Tick workload_end = sim::kTickMax;
  if (watched && r.completed) {
    workload_end = 0;
    for (const sim::Tick t : *done_at) {
      if (t != sim::kTickMax) workload_end = std::max(workload_end, t);
    }
  }
  r.simulated_time = workload_end != sim::kTickMax ? workload_end : end;
  r.simulated_cpu_cycles =
      sim::Clock(params_.node.cpu.frequency_hz).to_cycles(r.simulated_time);
  r.events_processed = engine_->events_processed();
  r.operations = machine_->total_ops_executed() - ops_before;
  r.messages = machine_->total_messages();
  r.host_seconds = host_seconds;
  r.footprint_bytes = machine_->footprint_bytes();
  r.peak_queue_depth = engine_->peak_queue_depth();
  if (!pdes_sinks_.empty()) r.trace = merge_pdes_traces();
  r.processors = level == node::SimulationLevel::kDetailed
                     ? machine_->node_count() * machine_->cpus_per_node()
                     : machine_->node_count();
  r.pdes_active = true;
  r.pdes_workers = engine_->workers();
  r.pdes_partitions = engine_->partition_count();
  r.pdes_windows = engine_->windows();
  r.pdes_mapping = pdes_status_.mapping;
  r.pdes_note = pdes_status_.note;
  if (engine_->profiling_enabled()) {
    r.pdes_profile =
        std::make_shared<sim::pdes::Engine::Profile>(engine_->profile());
  }
  if (r.completed) engine_->collect_finished();
  return r;
}

std::shared_ptr<const obs::TraceData> Workbench::merge_pdes_traces() const {
  std::vector<obs::TraceData> parts;
  parts.reserve(pdes_sinks_.size());
  for (const auto& s : pdes_sinks_) parts.push_back(s->to_data());

  auto merged = std::make_shared<obs::TraceData>();
  merged->hung = parts.front().hung;
  merged->sealed_at = parts.front().sealed_at;
  merged->tracks = parts.front().tracks;  // tables are identical by build
  std::size_t total = 0;
  for (std::size_t p = 0; p < parts.size(); ++p) {
    total += parts[p].events.size();
    if (p == 0) continue;
    for (std::size_t t = 0; t < merged->tracks.size(); ++t) {
      merged->tracks[t].dropped += parts[p].tracks[t].dropped;
    }
  }
  // Preserve the TraceData contract: events track-by-track (per track,
  // partitions concatenated in order — each partition's slice is already
  // deterministic, so the concatenation is too), open spans appended last.
  std::vector<std::vector<obs::TraceEvent>> closed(merged->tracks.size());
  std::vector<obs::TraceEvent> open;
  for (const obs::TraceData& part : parts) {
    for (const obs::TraceEvent& ev : part.events) {
      if ((ev.flags & obs::kFlagOpen) != 0) {
        open.push_back(ev);
      } else {
        closed[ev.track].push_back(ev);
      }
    }
  }
  merged->events.reserve(total);
  for (std::vector<obs::TraceEvent>& track_events : closed) {
    merged->events.insert(merged->events.end(), track_events.begin(),
                          track_events.end());
  }
  merged->events.insert(merged->events.end(), open.begin(), open.end());
  return merged;
}

RunResult Workbench::run_detailed(trace::Workload& workload, sim::Tick until,
                                  std::vector<node::TaskRecorder>* recorders) {
  return run_impl(workload, node::SimulationLevel::kDetailed, until,
                  recorders);
}

RunResult Workbench::run_task_level(trace::Workload& workload,
                                    sim::Tick until) {
  return run_impl(workload, node::SimulationLevel::kTaskLevel, until, nullptr);
}

Workbench::Comparison Workbench::compare(
    const machine::MachineParams& arch_x, const machine::MachineParams& arch_y,
    const std::function<trace::Workload(const machine::MachineParams&)>&
        workload_for,
    node::SimulationLevel level) {
  Comparison c;
  {
    Workbench wx(arch_x);
    trace::Workload w = workload_for(arch_x);
    c.x = level == node::SimulationLevel::kDetailed ? wx.run_detailed(w)
                                                    : wx.run_task_level(w);
  }
  {
    Workbench wy(arch_y);
    trace::Workload w = workload_for(arch_y);
    c.y = level == node::SimulationLevel::kDetailed ? wy.run_detailed(w)
                                                    : wy.run_task_level(w);
  }
  return c;
}

}  // namespace merm::core
