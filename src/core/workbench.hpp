// The Mermaid workbench: the public front end tying the simulation
// environment of Fig. 1 together.
//
// A Workbench instantiates an architecture from MachineParams, accepts a
// workload from either trace generator, runs it at the chosen abstraction
// level (detailed or task-level), and reports simulated results together
// with the simulation-cost metrics of Section 6 (slowdown per simulated
// processor, memory footprint).
//
//   merm::core::Workbench wb(machine::presets::t805_multicomputer(4, 4));
//   auto workload = gen::make_offline_workload(16, my_app);
//   auto result = wb.run_detailed(workload);
//   result.print(std::cout);
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "core/host.hpp"
#include "machine/params.hpp"
#include "node/machine.hpp"
#include "obs/host_profiler.hpp"
#include "obs/trace.hpp"
#include "sim/pdes.hpp"
#include "sim/simulator.hpp"
#include "stats/stats.hpp"
#include "trace/stream.hpp"
#include "vsm/vsm.hpp"

namespace merm::core {

/// Outcome of one simulation run.
struct RunResult {
  std::string machine_name;
  node::SimulationLevel level = node::SimulationLevel::kDetailed;
  bool completed = false;      ///< every workload process finished
  /// When the run hung (event queue drained with processes still blocked):
  /// the simulator's multi-line description of who is blocked on what —
  /// empty for completed or time/event-limited runs.
  std::string hang_diagnostic;
  sim::Tick simulated_time = 0;
  std::uint64_t simulated_cpu_cycles = 0;  ///< simulated_time in CPU cycles
  std::uint64_t events_processed = 0;
  std::uint64_t operations = 0;  ///< operations consumed from the workload
  std::uint64_t messages = 0;
  double host_seconds = 0.0;
  std::size_t footprint_bytes = 0;
  std::uint32_t processors = 1;  ///< simulated processors (nodes * cpus)
  /// High-water mark of the kernel event queue over the run (simulation-cost
  /// metric alongside footprint/slowdown).
  std::size_t peak_queue_depth = 0;
  /// Sealed trace snapshot when tracing was enabled (Workbench::
  /// enable_tracing), null otherwise.  Shared so RunResult stays copyable.
  std::shared_ptr<const obs::TraceData> trace;

  // -- conservative-PDES execution report (zero/empty for serial runs) --
  bool pdes_active = false;
  unsigned pdes_workers = 0;          ///< host worker threads
  std::uint32_t pdes_partitions = 0;  ///< partition-Simulators
  /// Synchronization windows executed (cumulative over the engine's runs);
  /// each window costs one barrier round-trip over all partitions, so
  /// windows / simulated seconds is the barrier-overhead rate.
  std::uint64_t pdes_windows = 0;
  /// How nodes were grouped into partitions, e.g. "grid:2x2" (axis-aligned
  /// sub-grids) or "linear:4" (contiguous index blocks).
  std::string pdes_mapping;
  /// enable_pdes's note: the fallback reason when a PDES request stayed
  /// serial, the configuration summary when active, empty when never asked.
  std::string pdes_note;
  /// Host-side engine profile when Workbench::enable_pdes_profiling() was
  /// called on an active-PDES workbench, null otherwise.  Shared so
  /// RunResult stays copyable.
  std::shared_ptr<const sim::pdes::Engine::Profile> pdes_profile;

  /// Host cycles spent per simulated CPU cycle, per simulated processor —
  /// the paper's slowdown metric.
  double slowdown_per_processor(double host_hz = host_frequency_hz()) const {
    if (simulated_cpu_cycles == 0 || processors == 0) return 0.0;
    return host_seconds * host_hz /
           (static_cast<double>(simulated_cpu_cycles) *
            static_cast<double>(processors));
  }

  /// Simulated target cycles per host second.
  double cycles_per_host_second() const {
    return host_seconds > 0.0
               ? static_cast<double>(simulated_cpu_cycles) / host_seconds
               : 0.0;
  }

  void print(std::ostream& os) const;
};

/// Structured error surfaced when a run hangs and the workbench was asked to
/// throw on hangs (see Workbench::set_throw_on_hang): carries the simulator's
/// per-node blocked-operation diagnostic.
class HangError : public std::runtime_error {
 public:
  explicit HangError(std::string diagnostic)
      : std::runtime_error(diagnostic.empty()
                               ? std::string("simulation hang")
                               : diagnostic),
        diagnostic_(std::move(diagnostic)) {}

  const std::string& diagnostic() const { return diagnostic_; }

 private:
  std::string diagnostic_;
};

class Workbench {
 public:
  explicit Workbench(machine::MachineParams params);

  /// Movable: the simulator and machine live behind stable pointers, so a
  /// Workbench can be built on one thread and handed to a worker (the sweep
  /// engine's job model).  Move *assignment* is deleted — it would tear down
  /// a live simulator under the machine that references it.
  Workbench(Workbench&&) noexcept = default;
  Workbench& operator=(Workbench&&) = delete;

  /// The driving simulator: partition 0 under PDES, the single serial
  /// simulator otherwise.
  sim::Simulator& simulator() {
    return engine_ != nullptr ? engine_->sim(0) : *sim_;
  }
  node::Machine& machine() { return *machine_; }
  const machine::MachineParams& params() const { return params_; }
  stats::StatRegistry& stats() { return registry_; }

  /// Outcome of enable_pdes(): either the run is parallelized (`active`) or
  /// the workbench stays serial and `note` says why.
  struct PdesStatus {
    bool active = false;
    unsigned workers = 0;       ///< host worker threads (clamped)
    std::uint32_t partitions = 0;  ///< partition-Simulators when active
    sim::Tick lookahead = 0;    ///< window length (min cross-partition latency)
    std::string mapping;        ///< node->partition grouping, e.g. "grid:2x2"
    std::string note;           ///< human-readable fallback reason / summary
  };

  /// Switches this workbench to conservative parallel simulation with
  /// `sim_threads` host workers (1 is the serial-equivalent baseline: same
  /// algorithm, same results, no extra threads) over `partitions`
  /// partition-Simulators.  `partitions == 0` means auto:
  /// min(sim_threads, nodes) topology-aware contiguous blocks.  Coarser
  /// partitionings (fewer partitions) widen the lookahead window — it
  /// becomes the minimum *cross-partition* hop latency — and cut barrier
  /// crossings per window from O(nodes) to O(partitions).  Results are
  /// bit-identical across worker counts at any FIXED partitioning; runs
  /// under different partitionings are each valid contended-model results
  /// but may differ in how concurrent streams interleave on shared links.
  /// Must be called before tracing, VSM, stat registration or any run —
  /// those bind to the machine being replaced, so calling late throws
  /// std::logic_error.  Machine or workbench configurations the PDES path
  /// cannot honor (fewer than two nodes, wormhole switching, zero
  /// lookahead, progress sampling, sim_threads == 0) fall back to the
  /// serial engine and report why in the returned status; results stay
  /// valid either way.
  PdesStatus enable_pdes(unsigned sim_threads, std::uint32_t partitions = 0);
  bool pdes_active() const { return engine_ != nullptr; }
  sim::pdes::Engine* pdes_engine() { return engine_.get(); }

  /// Turns on host-side engine profiling (per-partition busy time, barrier
  /// wait, window imbalance), surfaced as RunResult::pdes_profile.  No-op
  /// when the workbench is serial (enable_pdes not called or fell back);
  /// returns whether profiling is actually armed.
  bool enable_pdes_profiling() {
    if (engine_ == nullptr) return false;
    engine_->enable_profiling();
    return true;
  }

  /// Registers all model metrics in stats() under the machine name.
  void register_all_stats();

  /// When enabled, a run whose event queue drains with blocked processes
  /// raises HangError (with the full diagnostic) instead of returning a
  /// RunResult with completed=false.  Off by default for compatibility;
  /// the sweep engine turns it on for fault-injected points.
  void set_throw_on_hang(bool enabled) { throw_on_hang_ = enabled; }
  bool throw_on_hang() const { return throw_on_hang_; }

  /// Enables run-time progress sampling: every `interval` of simulated time
  /// a sample (time, events, messages) is appended to progress_series() and,
  /// if `echo` is set, a one-line report is printed.
  void enable_progress(sim::Tick interval, std::ostream* echo = nullptr);
  const stats::TimeSeries& progress_series() const { return progress_; }

  /// Attaches a counter sampler to the progress schedule (requires
  /// enable_progress); it is sampled once per interval during runs — the
  /// run-time visualization feed of Fig. 1.
  void attach_sampler(obs::CounterSampler* sampler) { sampler_ = sampler; }

  /// Creates the trace sink (idempotent) and attaches it to every model
  /// component; subsequent runs record spans/instants into per-process
  /// tracks and finish with RunResult::trace set.  With tracing never
  /// enabled, every hook is a single branch-on-null.
  obs::TraceSink& enable_tracing(
      std::size_t ring_capacity = obs::TraceSink::kDefaultRingCapacity);
  obs::TraceSink* trace_sink() {
    if (sink_) return sink_.get();
    return pdes_sinks_.empty() ? nullptr : pdes_sinks_.front().get();
  }

  /// Host-side phase timer: launch/run phases are recorded per run.  Host
  /// times are nondeterministic and never feed back into simulated results.
  obs::HostProfiler& host_profiler() { return profiler_; }

  /// Runs a detailed (operation-level) workload to completion (or `until`).
  RunResult run_detailed(trace::Workload& workload,
                         sim::Tick until = sim::kTickMax,
                         std::vector<node::TaskRecorder>* recorders = nullptr);

  /// Runs a task-level workload (communication model only).
  RunResult run_task_level(trace::Workload& workload,
                           sim::Tick until = sim::kTickMax);

  /// Enables the virtual shared memory layer (idempotent); subsequent
  /// run_detailed_shared calls route shared-region accesses through it.
  vsm::VsmSystem& enable_vsm(vsm::VsmParams params = {});
  vsm::VsmSystem* vsm() { return vsm_.get(); }

  /// Runs a detailed workload whose shared-region loads/stores go through
  /// the DSM.  Calls enable_vsm() with defaults if not yet enabled.
  RunResult run_detailed_shared(trace::Workload& workload,
                                sim::Tick until = sim::kTickMax);

  /// Architecture comparison (the "Architecture X / Architecture Y" driver
  /// of Fig. 1): runs workloads from the same generator on two machines.
  struct Comparison {
    RunResult x;
    RunResult y;
    /// Ratio of simulated execution times (y relative to x).
    double speedup_x_over_y() const {
      return x.simulated_time == 0
                 ? 0.0
                 : static_cast<double>(y.simulated_time) /
                       static_cast<double>(x.simulated_time);
    }
  };
  static Comparison compare(
      const machine::MachineParams& arch_x,
      const machine::MachineParams& arch_y,
      const std::function<trace::Workload(const machine::MachineParams&)>&
          workload_for,
      node::SimulationLevel level = node::SimulationLevel::kDetailed);

 private:
  RunResult run_impl(trace::Workload& workload, node::SimulationLevel level,
                     sim::Tick until,
                     std::vector<node::TaskRecorder>* recorders);
  void arm_progress(const std::vector<sim::ProcessHandle>& handles);

  /// Pins the workbench to the first thread that runs it and throws
  /// std::logic_error if a later run arrives on a different thread: the
  /// simulator, StatRegistry and progress TimeSeries are unsynchronized, so
  /// their state must never cross jobs.  Construct-here, run-there (after a
  /// move) is fine; run-here-and-there is not.
  void audit_run_thread();

  RunResult finish_run(const std::vector<sim::ProcessHandle>& handles,
                       node::SimulationLevel level, sim::Tick until,
                       std::uint64_t ops_before);
  RunResult finish_run_pdes(const std::vector<sim::ProcessHandle>& handles,
                            node::SimulationLevel level, sim::Tick until,
                            std::uint64_t ops_before);
  /// Concatenates the per-partition sinks' snapshots into one TraceData with
  /// the shared track table: per track, closed events in partition order;
  /// open (blocked-at-seal) spans appended last, also in partition order.
  std::shared_ptr<const obs::TraceData> merge_pdes_traces() const;

  machine::MachineParams params_;
  std::unique_ptr<sim::Simulator> sim_;
  /// Declared before machine_: a PDES machine references the engine's
  /// partition simulators, so it must be destroyed first.
  std::unique_ptr<sim::pdes::Engine> engine_;
  std::unique_ptr<node::Machine> machine_;
  std::unique_ptr<vsm::VsmSystem> vsm_;
  stats::StatRegistry registry_;
  stats::TimeSeries progress_;
  std::unique_ptr<obs::TraceSink> sink_;
  /// One sink per partition under PDES (identical track tables; merged into
  /// RunResult::trace after the run).  Mutually exclusive with sink_.
  std::vector<std::unique_ptr<obs::TraceSink>> pdes_sinks_;
  bool stats_registered_ = false;
  /// Last enable_pdes outcome (default-initialized when never called);
  /// echoed into RunResult so sweeps can record mapping/fallback per point.
  PdesStatus pdes_status_;
  obs::HostProfiler profiler_;
  obs::CounterSampler* sampler_ = nullptr;
  sim::Tick progress_interval_ = 0;
  std::ostream* progress_echo_ = nullptr;
  bool throw_on_hang_ = false;
  std::thread::id run_thread_{};  ///< id of the thread that ran first
};

}  // namespace merm::core
