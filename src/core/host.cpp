#include "core/host.hpp"

#include <fstream>
#include <string>

namespace merm::core {

namespace {

double read_proc_cpuinfo_hz() {
  std::ifstream in("/proc/cpuinfo");
  if (!in) return 0.0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("cpu MHz", 0) == 0) {
      const auto colon = line.find(':');
      if (colon == std::string::npos) continue;
      try {
        const double mhz = std::stod(line.substr(colon + 1));
        if (mhz > 1.0) return mhz * 1e6;
      } catch (...) {
        continue;
      }
    }
  }
  return 0.0;
}

double calibrate_hz() {
  // A dependent add chain retires close to one op per cycle on any modern
  // out-of-order core; time a fixed count of them.
  volatile std::uint64_t sink = 0;
  constexpr std::uint64_t kOps = 200'000'000;
  HostTimer timer;
  std::uint64_t x = 1;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    x += x >> 3;  // dependent: serializes at ~1-2 ops/cycle
  }
  sink = x;
  (void)sink;
  const double secs = timer.elapsed_seconds();
  if (secs <= 0.0) return 1e9;
  // Two dependent ALU ops per iteration (shift + add).
  return 2.0 * static_cast<double>(kOps) / secs;
}

}  // namespace

double host_frequency_hz() {
  static const double hz = [] {
    const double from_proc = read_proc_cpuinfo_hz();
    return from_proc > 0.0 ? from_proc : calibrate_hz();
  }();
  return hz;
}

}  // namespace merm::core
