// Host-side measurement utilities for the slowdown experiments (Section 6):
// wall-clock timing and an estimate of the host clock frequency, needed to
// express simulation cost as "host cycles per simulated cycle".
#pragma once

#include <chrono>
#include <cstdint>

namespace merm::core {

/// Monotonic wall-clock stopwatch.
class HostTimer {
 public:
  HostTimer() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  double elapsed_seconds() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Host CPU frequency in Hz.  Reads /proc/cpuinfo when available, otherwise
/// calibrates with a timed dependent-arithmetic loop (~1 op/cycle).  Cached
/// after the first call.
double host_frequency_hz();

}  // namespace merm::core
