#include "explore/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <iomanip>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "core/host.hpp"

namespace merm::explore {

std::uint64_t point_seed(std::uint64_t base, std::size_t index) {
  // splitmix64 finalizer over (base, index): well-distributed seeds even for
  // consecutive indices or base seeds.
  std::uint64_t z =
      base + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

ExperimentPoint& Sweep::add(machine::MachineParams params, std::string label) {
  ExperimentPoint p;
  p.label = label.empty() ? params.name : std::move(label);
  p.params = std::move(params);
  p.level = level;
  points.push_back(std::move(p));
  return points.back();
}

const char* to_string(PointResult::Status s) {
  switch (s) {
    case PointResult::Status::kPending:
      return "pending";
    case PointResult::Status::kDone:
      return "done";
    case PointResult::Status::kFailed:
      return "failed";
    case PointResult::Status::kSkipped:
      return "skipped";
  }
  return "?";
}

std::size_t SweepResult::completed() const {
  std::size_t n = 0;
  for (const PointResult& p : points) n += p.done() ? 1 : 0;
  return n;
}

std::size_t SweepResult::failed() const {
  std::size_t n = 0;
  for (const PointResult& p : points) {
    n += p.status == PointResult::Status::kFailed ? 1 : 0;
  }
  return n;
}

namespace {

/// Metric column names in order of first appearance across the grid.
std::vector<std::string> metric_columns(const std::vector<PointResult>& pts) {
  std::vector<std::string> cols;
  for (const PointResult& p : pts) {
    for (const auto& [name, value] : p.metrics) {
      (void)value;
      if (std::find(cols.begin(), cols.end(), name) == cols.end()) {
        cols.push_back(name);
      }
    }
  }
  return cols;
}

const double* find_metric(const PointResult& p, const std::string& name) {
  for (const auto& [n, v] : p.metrics) {
    if (n == name) return &v;
  }
  return nullptr;
}

/// Integral metrics print as integers, everything else with 4 decimals.
std::string format_metric(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  return stats::Table::fmt(v, 4);
}

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << std::hex << std::setw(2) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

stats::Table SweepResult::to_table() const {
  const std::vector<std::string> metrics = metric_columns(points);
  std::vector<std::string> headers = {"point",    "level", "nodes",
                                      "sim time", "ops",   "messages"};
  for (const std::string& m : metrics) headers.push_back(m);
  stats::Table table(std::move(headers));

  for (const PointResult& p : points) {
    std::vector<std::string> row;
    row.push_back(p.label);
    if (p.done()) {
      row.push_back(p.run.level == node::SimulationLevel::kDetailed
                        ? "detailed"
                        : "task-level");
      row.push_back(std::to_string(p.run.processors));
      row.push_back(sim::format_time(p.run.simulated_time));
      row.push_back(std::to_string(p.run.operations));
      row.push_back(std::to_string(p.run.messages));
    } else {
      row.push_back(to_string(p.status));
      for (int i = 0; i < 4; ++i) row.push_back("-");
    }
    for (const std::string& m : metrics) {
      const double* v = find_metric(p, m);
      row.push_back(v != nullptr ? format_metric(*v) : "-");
    }
    table.add_row(std::move(row));
  }
  return table;
}

void SweepResult::write_csv(std::ostream& os) const {
  const std::vector<std::string> metrics = metric_columns(points);
  os << "index,label,status,seed,level,processors,completed,"
        "simulated_time_ps,simulated_cpu_cycles,operations,messages,"
        "events,host_seconds,footprint_bytes";
  for (const std::string& m : metrics) os << ',' << m;
  os << '\n';
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointResult& p = points[i];
    os << i << ',' << p.label << ',' << to_string(p.status) << ',' << p.seed;
    if (p.done()) {
      os << ','
         << (p.run.level == node::SimulationLevel::kDetailed ? "detailed"
                                                             : "task-level")
         << ',' << p.run.processors << ',' << (p.run.completed ? 1 : 0) << ','
         << p.run.simulated_time << ',' << p.run.simulated_cpu_cycles << ','
         << p.run.operations << ',' << p.run.messages << ','
         << p.run.events_processed << ',' << p.run.host_seconds << ','
         << p.run.footprint_bytes;
    } else {
      os << ",,,,,,,,,,";
    }
    for (const std::string& m : metrics) {
      os << ',';
      if (const double* v = find_metric(p, m)) os << *v;
    }
    os << '\n';
  }
}

void SweepResult::write_json(std::ostream& os) const {
  os << "[\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointResult& p = points[i];
    os << "  {\"index\": " << i << ", \"label\": ";
    write_json_string(os, p.label);
    os << ", \"status\": \"" << to_string(p.status) << "\", \"seed\": "
       << p.seed;
    if (p.done()) {
      os << ", \"level\": \""
         << (p.run.level == node::SimulationLevel::kDetailed ? "detailed"
                                                             : "task-level")
         << "\", \"processors\": " << p.run.processors
         << ", \"completed\": " << (p.run.completed ? "true" : "false")
         << ", \"simulated_time_ps\": " << p.run.simulated_time
         << ", \"simulated_cpu_cycles\": " << p.run.simulated_cpu_cycles
         << ", \"operations\": " << p.run.operations
         << ", \"messages\": " << p.run.messages
         << ", \"events\": " << p.run.events_processed
         << ", \"host_seconds\": " << p.run.host_seconds
         << ", \"footprint_bytes\": " << p.run.footprint_bytes;
    }
    if (!p.error.empty()) {
      os << ", \"error\": ";
      write_json_string(os, p.error);
    }
    if (!p.metrics.empty()) {
      os << ", \"metrics\": {";
      for (std::size_t m = 0; m < p.metrics.size(); ++m) {
        if (m != 0) os << ", ";
        write_json_string(os, p.metrics[m].first);
        os << ": " << p.metrics[m].second;
      }
      os << '}';
    }
    os << '}' << (i + 1 < points.size() ? "," : "") << '\n';
  }
  os << "]\n";
}

unsigned SweepEngine::resolved_threads(std::size_t jobs) const {
  unsigned n = opts_.threads != 0 ? opts_.threads
                                  : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  if (jobs < n) n = static_cast<unsigned>(jobs);
  return n == 0 ? 1 : n;
}

void SweepEngine::for_each(std::size_t count,
                           const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const unsigned threads = resolved_threads(count);

  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancel{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto worker = [&] {
    for (;;) {
      if (cancel.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        cancel.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  if (first_error) std::rethrow_exception(first_error);
}

void SweepEngine::run_into(const Sweep& sweep, SweepResult& out) {
  const std::size_t count = sweep.points.size();
  out = SweepResult{};
  out.points.resize(count);
  out.threads = resolved_threads(count);
  for (std::size_t i = 0; i < count; ++i) {
    const ExperimentPoint& p = sweep.points[i];
    out.points[i].label = p.label.empty() ? p.params.name : p.label;
    out.points[i].seed =
        p.seed != 0 ? p.seed : point_seed(sweep.base_seed, i);
  }

  stats::SharedAccumulator host_times;
  std::mutex progress_mutex;
  std::atomic<std::size_t> finished{0};
  core::HostTimer timer;

  const auto body = [&](std::size_t i) {
    const ExperimentPoint& point = sweep.points[i];
    PointResult& pr = out.points[i];
    try {
      const WorkloadFactory& factory =
          point.workload ? point.workload : sweep.workload;
      if (!factory) {
        throw std::invalid_argument("sweep point '" + pr.label +
                                    "' has no workload factory");
      }
      core::Workbench wb(point.params);
      // A fault-injected point that deadlocks (e.g. a partition nobody can
      // route around) must surface as a failure row, not a silent
      // completed=false result.
      wb.set_throw_on_hang(sweep.fail_on_hang || point.params.fault.enabled);
      // Parallelize inside the point before configure/tracing bind to the
      // machine; incompatible points simply stay serial.
      if (opts_.sim_threads != 0) wb.enable_pdes(opts_.sim_threads);
      if (sweep.configure) sweep.configure(wb, point, i);
      trace::Workload workload = factory(point.params, pr.seed);
      pr.run = point.level == node::SimulationLevel::kDetailed
                   ? wb.run_detailed(workload)
                   : wb.run_task_level(workload);
      // Drop the point's finished coroutine frames before probing; a large
      // grid otherwise carries every completed workload's frames to the end
      // of the sweep.
      wb.simulator().collect_finished();
      if (sweep.probe) pr.metrics = sweep.probe(wb, pr.run);
      if (opts_.host_metrics) {
        const obs::HostProfiler& prof = wb.host_profiler();
        pr.metrics.emplace_back("host.launch_s",
                                prof.total_seconds("launch"));
        pr.metrics.emplace_back("host.run_s", prof.total_seconds("run"));
        pr.metrics.emplace_back(
            "host.events_per_s",
            pr.run.host_seconds > 0.0
                ? static_cast<double>(pr.run.events_processed) /
                      pr.run.host_seconds
                : 0.0);
        pr.metrics.emplace_back(
            "host.peak_queue",
            static_cast<double>(pr.run.peak_queue_depth));
      }
      if (sweep.inspect) sweep.inspect(wb, pr.run, i);
      pr.status = PointResult::Status::kDone;
    } catch (const std::exception& e) {
      pr.status = PointResult::Status::kFailed;
      pr.error = e.what();
      if (!opts_.keep_going) throw;
    } catch (...) {
      pr.status = PointResult::Status::kFailed;
      pr.error = "unknown exception";
      if (!opts_.keep_going) throw;
    }
    if (pr.status == PointResult::Status::kFailed) {
      const std::size_t done = finished.fetch_add(1) + 1;
      if (opts_.progress != nullptr) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        *opts_.progress << "[sweep] " << done << "/" << count << " "
                        << pr.label << " FAILED: " << pr.error << "\n";
      }
      return;  // keep_going: the failure row is the result
    }
    host_times.add(pr.run.host_seconds);
    const std::size_t done = finished.fetch_add(1) + 1;
    if (opts_.progress != nullptr) {
      const std::lock_guard<std::mutex> lock(progress_mutex);
      *opts_.progress << "[sweep] " << done << "/" << count << " " << pr.label
                      << " sim=" << sim::format_time(pr.run.simulated_time)
                      << " host=" << stats::Table::fmt(pr.run.host_seconds, 3)
                      << "s\n";
    }
  };

  const auto finalize = [&] {
    for (PointResult& pr : out.points) {
      if (pr.status == PointResult::Status::kPending) {
        pr.status = PointResult::Status::kSkipped;
      }
    }
    out.point_host_seconds = host_times.snapshot();
    out.host_seconds = timer.elapsed_seconds();
  };

  try {
    for_each(count, body);
  } catch (...) {
    finalize();
    throw;
  }
  finalize();
}

SweepResult SweepEngine::run(const Sweep& sweep) {
  SweepResult out;
  run_into(sweep, out);
  return out;
}

namespace {

/// Shared flag-value parser for every thread-count option: accepts 1..9999,
/// anything else (including garbage) leaves `fallback` in place.
unsigned parse_thread_count(const std::string& v, unsigned fallback) {
  try {
    const unsigned long n = std::stoul(v);
    return n > 0 && n < 10'000 ? static_cast<unsigned>(n) : fallback;
  } catch (...) {
    return fallback;
  }
}

/// Matches `--<name>=V` / `--<name> V`; fills `*out` on a well-formed value.
bool match_flag(const std::string& name, int argc, char** argv, int i,
                unsigned* out) {
  const std::string arg = argv[i];
  const std::string eq = "--" + name + "=";
  if (arg.rfind(eq, 0) == 0) {
    *out = parse_thread_count(arg.substr(eq.size()), *out);
    return true;
  }
  if (arg == "--" + name && i + 1 < argc) {
    *out = parse_thread_count(argv[i + 1], *out);
    return true;
  }
  return false;
}

}  // namespace

HostThreads host_threads_from_args(int argc, char** argv,
                                   HostThreads fallback) {
  HostThreads t = fallback;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (match_flag("sweep-threads", argc, argv, i, &t.sweep_threads)) continue;
    if (match_flag("sim-threads", argc, argv, i, &t.sim_threads)) continue;
    // Back-compat: the pre-PDES single axis meant "points in flight".
    if (match_flag("threads", argc, argv, i, &t.sweep_threads)) continue;
    if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
      t.sweep_threads = parse_thread_count(arg.substr(2), t.sweep_threads);
    }
  }
  return t;
}

unsigned threads_from_args(int argc, char** argv, unsigned fallback) {
  return host_threads_from_args(argc, argv, HostThreads{fallback, 0})
      .sweep_threads;
}

}  // namespace merm::explore
