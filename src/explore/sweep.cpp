#include "explore/sweep.hpp"

#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <cxxabi.h>
#include <exception>
#include <iomanip>
#include <mutex>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <typeinfo>

#include "core/host.hpp"
#include "core/serialize.hpp"
#include "explore/journal.hpp"
#include "explore/memo.hpp"
#include "machine/config.hpp"

namespace merm::explore {

std::uint64_t point_seed(std::uint64_t base, std::size_t index) {
  // splitmix64 finalizer over (base, index): well-distributed seeds even for
  // consecutive indices or base seeds.
  std::uint64_t z =
      base + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

const std::vector<double>& point_latency_buckets() {
  // Sweep points span sub-millisecond task-level runs to minute-scale
  // detailed meshes; roughly-2.5x steps keep the histogram at 15 buckets.
  static const std::vector<double> kBuckets = {
      0.001, 0.0025, 0.005, 0.025, 0.05, 0.1, 0.25, 0.5,
      1.0,   2.5,    5.0,   10.0,  30.0, 60.0, 120.0};
  return kBuckets;
}

ExperimentPoint& Sweep::add(machine::MachineParams params, std::string label) {
  ExperimentPoint p;
  p.label = label.empty() ? params.name : std::move(label);
  p.params = std::move(params);
  p.level = level;
  points.push_back(std::move(p));
  return points.back();
}

const char* to_string(PointResult::Status s) {
  switch (s) {
    case PointResult::Status::kPending:
      return "pending";
    case PointResult::Status::kDone:
      return "done";
    case PointResult::Status::kFailed:
      return "failed";
    case PointResult::Status::kSkipped:
      return "skipped";
  }
  return "?";
}

std::size_t SweepResult::completed() const {
  std::size_t n = 0;
  for (const PointResult& p : points) n += p.done() ? 1 : 0;
  return n;
}

std::size_t SweepResult::failed() const {
  std::size_t n = 0;
  for (const PointResult& p : points) {
    n += p.status == PointResult::Status::kFailed ? 1 : 0;
  }
  return n;
}

namespace {

/// Metric column names in order of first appearance across the grid.
std::vector<std::string> metric_columns(const std::vector<PointResult>& pts) {
  std::vector<std::string> cols;
  for (const PointResult& p : pts) {
    for (const auto& [name, value] : p.metrics) {
      (void)value;
      if (std::find(cols.begin(), cols.end(), name) == cols.end()) {
        cols.push_back(name);
      }
    }
  }
  return cols;
}

const double* find_metric(const PointResult& p, const std::string& name) {
  for (const auto& [n, v] : p.metrics) {
    if (n == name) return &v;
  }
  return nullptr;
}

/// Integral metrics print as integers, everything else with 4 decimals.
std::string format_metric(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  return stats::Table::fmt(v, 4);
}

/// One CSV cell: newlines flatten to literal "\n" so a multi-line hang
/// diagnostic cannot break row-per-line consumers, and cells containing
/// commas or quotes get standard CSV quoting.
std::string csv_field(const std::string& s) {
  std::string flat;
  flat.reserve(s.size());
  for (const char c : s) {
    if (c == '\n') {
      flat += "\\n";
    } else if (c != '\r') {
      flat += c;
    }
  }
  if (flat.find_first_of(",\"") == std::string::npos) return flat;
  std::string quoted = "\"";
  for (const char c : flat) {
    if (c == '"') quoted += "\"\"";
    quoted += c == '"' ? '"' : c;
  }
  quoted += '"';
  return quoted;
}

void write_json_string(std::ostream& os, const std::string& s) {
  core::write_json_string(os, s);
}

}  // namespace

stats::Table SweepResult::to_table() const {
  const std::vector<std::string> metrics = metric_columns(points);
  std::vector<std::string> headers = {"point",    "level", "nodes",
                                      "sim time", "ops",   "messages"};
  for (const std::string& m : metrics) headers.push_back(m);
  stats::Table table(std::move(headers));

  for (const PointResult& p : points) {
    std::vector<std::string> row;
    row.push_back(p.label);
    if (p.done()) {
      row.push_back(p.run.level == node::SimulationLevel::kDetailed
                        ? "detailed"
                        : "task-level");
      row.push_back(std::to_string(p.run.processors));
      row.push_back(sim::format_time(p.run.simulated_time));
      row.push_back(std::to_string(p.run.operations));
      row.push_back(std::to_string(p.run.messages));
    } else {
      row.push_back(to_string(p.status));
      for (int i = 0; i < 4; ++i) row.push_back("-");
    }
    for (const std::string& m : metrics) {
      const double* v = find_metric(p, m);
      row.push_back(v != nullptr ? format_metric(*v) : "-");
    }
    table.add_row(std::move(row));
  }
  return table;
}

void SweepResult::write_csv(std::ostream& os, const WriteOptions& w) const {
  const std::vector<std::string> metrics = metric_columns(points);
  os << "index,label,status,seed,level,processors,completed,"
        "simulated_time_ps,simulated_cpu_cycles,operations,messages,events";
  if (w.host_columns) os << ",host_seconds,footprint_bytes";
  os << ",error_type,error,hang_diagnostic,attempts";
  for (const std::string& m : metrics) os << ',' << m;
  os << '\n';
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointResult& p = points[i];
    os << i << ',' << csv_field(p.label) << ',' << to_string(p.status) << ','
       << p.seed;
    if (p.done()) {
      os << ','
         << (p.run.level == node::SimulationLevel::kDetailed ? "detailed"
                                                             : "task-level")
         << ',' << p.run.processors << ',' << (p.run.completed ? 1 : 0) << ','
         << p.run.simulated_time << ',' << p.run.simulated_cpu_cycles << ','
         << p.run.operations << ',' << p.run.messages << ','
         << p.run.events_processed;
      if (w.host_columns) {
        os << ',' << p.run.host_seconds << ',' << p.run.footprint_bytes;
      }
    } else {
      os << ",,,,,,,,";
      if (w.host_columns) os << ",,";
    }
    os << ',' << csv_field(p.error_type) << ',' << csv_field(p.error) << ','
       << csv_field(p.hang_diagnostic) << ',';
    if (p.attempts > 0) os << p.attempts;
    for (const std::string& m : metrics) {
      os << ',';
      if (const double* v = find_metric(p, m)) os << *v;
    }
    os << '\n';
  }
}

void SweepResult::write_json(std::ostream& os, const WriteOptions& w) const {
  os << "[\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointResult& p = points[i];
    os << "  {\"index\": " << i << ", \"label\": ";
    write_json_string(os, p.label);
    os << ", \"status\": \"" << to_string(p.status) << "\", \"seed\": "
       << p.seed;
    if (p.done()) {
      os << ", \"level\": \""
         << (p.run.level == node::SimulationLevel::kDetailed ? "detailed"
                                                             : "task-level")
         << "\", \"processors\": " << p.run.processors
         << ", \"completed\": " << (p.run.completed ? "true" : "false")
         << ", \"simulated_time_ps\": " << p.run.simulated_time
         << ", \"simulated_cpu_cycles\": " << p.run.simulated_cpu_cycles
         << ", \"operations\": " << p.run.operations
         << ", \"messages\": " << p.run.messages
         << ", \"events\": " << p.run.events_processed;
      if (w.host_columns) {
        os << ", \"host_seconds\": " << p.run.host_seconds
           << ", \"footprint_bytes\": " << p.run.footprint_bytes;
      }
    }
    if (!p.error_type.empty()) {
      os << ", \"error_type\": ";
      write_json_string(os, p.error_type);
    }
    if (!p.error.empty()) {
      os << ", \"error\": ";
      write_json_string(os, p.error);
    }
    if (!p.hang_diagnostic.empty()) {
      os << ", \"hang_diagnostic\": ";
      write_json_string(os, p.hang_diagnostic);
    }
    if (p.attempts > 0) os << ", \"attempts\": " << p.attempts;
    if (!p.metrics.empty()) {
      os << ", \"metrics\": {";
      for (std::size_t m = 0; m < p.metrics.size(); ++m) {
        if (m != 0) os << ", ";
        write_json_string(os, p.metrics[m].first);
        os << ": " << p.metrics[m].second;
      }
      os << '}';
    }
    os << '}' << (i + 1 < points.size() ? "," : "") << '\n';
  }
  os << "]\n";
}

unsigned SweepEngine::resolved_threads(std::size_t jobs) const {
  unsigned n = opts_.threads != 0 ? opts_.threads
                                  : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  if (jobs < n) n = static_cast<unsigned>(jobs);
  return n == 0 ? 1 : n;
}

void SweepEngine::for_each(std::size_t count,
                           const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const unsigned threads = resolved_threads(count);

  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancel{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto worker = [&] {
    for (;;) {
      if (cancel.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        cancel.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  if (first_error) std::rethrow_exception(first_error);
}

namespace {

std::string demangled(const char* mangled) {
  int status = 0;
  char* d = abi::__cxa_demangle(mangled, nullptr, nullptr, &status);
  std::string out = status == 0 && d != nullptr ? d : mangled;
  std::free(d);
  return out;
}

std::string signal_label(int sig) {
  switch (sig) {
    case SIGABRT:
      return "SIGABRT";
    case SIGSEGV:
      return "SIGSEGV";
    case SIGBUS:
      return "SIGBUS";
    case SIGFPE:
      return "SIGFPE";
    case SIGILL:
      return "SIGILL";
    case SIGKILL:
      return "SIGKILL";
    case SIGTERM:
      return "SIGTERM";
    default:
      return "SIG" + std::to_string(sig);
  }
}

/// Runs one point in-process, finalizing `pr` to kDone or kFailed; never
/// throws.  On failure the thrown exception also lands in *eptr (when given)
/// so a !keep_going caller can rethrow the original object.
void execute_point(const Sweep& sweep, const SweepOptions& opts,
                   const ExperimentPoint& point, std::size_t index,
                   PointResult& pr, std::exception_ptr* eptr) {
  pr.attempts = 1;
  try {
    const WorkloadFactory& factory =
        point.workload ? point.workload : sweep.workload;
    if (!factory) {
      throw std::invalid_argument("sweep point '" + pr.label +
                                  "' has no workload factory");
    }
    core::Workbench wb(point.params);
    // A fault-injected point that deadlocks (e.g. a partition nobody can
    // route around) must surface as a failure row, not a silent
    // completed=false result.
    wb.set_throw_on_hang(sweep.fail_on_hang || point.params.fault.enabled);
    // Parallelize inside the point before configure/tracing bind to the
    // machine; incompatible points simply stay serial.
    bool pdes_fell_back = false;
    if (opts.sim_threads != 0) {
      const core::Workbench::PdesStatus st =
          wb.enable_pdes(opts.sim_threads, opts.sim_partitions);
      pdes_fell_back = !st.active;
    }
    if (sweep.configure) sweep.configure(wb, point, index);
    trace::Workload workload = factory(point.params, pr.seed);
    pr.run = point.level == node::SimulationLevel::kDetailed
                 ? wb.run_detailed(workload)
                 : wb.run_task_level(workload);
    // Drop the point's finished coroutine frames before probing; a large
    // grid otherwise carries every completed workload's frames to the end
    // of the sweep.
    wb.simulator().collect_finished();
    if (sweep.probe) pr.metrics = sweep.probe(wb, pr.run);
    if (opts.pdes_columns && opts.sim_threads != 0) {
      pr.metrics.emplace_back("pdes.fallback", pdes_fell_back ? 1.0 : 0.0);
    }
    if (opts.host_metrics) {
      const obs::HostProfiler& prof = wb.host_profiler();
      pr.metrics.emplace_back("host.launch_s", prof.total_seconds("launch"));
      pr.metrics.emplace_back("host.run_s", prof.total_seconds("run"));
      pr.metrics.emplace_back(
          "host.events_per_s",
          pr.run.host_seconds > 0.0
              ? static_cast<double>(pr.run.events_processed) /
                    pr.run.host_seconds
              : 0.0);
      pr.metrics.emplace_back("host.peak_queue",
                              static_cast<double>(pr.run.peak_queue_depth));
    }
    if (sweep.inspect) sweep.inspect(wb, pr.run, index);
    pr.status = PointResult::Status::kDone;
  } catch (const std::exception& e) {
    pr.status = PointResult::Status::kFailed;
    pr.error = e.what();
    pr.error_type = demangled(typeid(e).name());
    if (const auto* hang = dynamic_cast<const core::HangError*>(&e)) {
      pr.hang_diagnostic = hang->diagnostic();
    }
    if (eptr != nullptr) *eptr = std::current_exception();
  } catch (...) {
    pr.status = PointResult::Status::kFailed;
    pr.error = "unknown exception";
    pr.error_type = "unknown";
    if (eptr != nullptr) *eptr = std::current_exception();
  }
}

/// What one forked attempt produced.
struct ChildOutcome {
  enum class Kind {
    kRow,       ///< complete row line received, child exited cleanly
    kCrashed,   ///< child terminated by a signal before delivering a row
    kTimeout,   ///< wall-clock budget elapsed; child was SIGKILLed
    kProtocol,  ///< child exited without a (complete) row
  };
  Kind kind = Kind::kProtocol;
  std::string row_line;
  int signal = 0;
  std::string detail;
};

/// The forked child inherits every descriptor the engine holds — other
/// points' pipes, the journal — and a long-lived child keeping an unrelated
/// pipe's write end open would stall that point's EOF.  Close everything but
/// our own pipe immediately.
void close_other_fds(int keep) {
  long max_fd = ::sysconf(_SC_OPEN_MAX);
  if (max_fd <= 0 || max_fd > 1024) max_fd = 1024;
  for (int fd = 3; fd < max_fd; ++fd) {
    if (fd != keep) ::close(fd);
  }
}

ChildOutcome run_child_once(const Sweep& sweep, const SweepOptions& opts,
                            const ExperimentPoint& point, std::size_t index,
                            const PointResult& seeded) {
  ChildOutcome out;
  int fds[2];
  if (::pipe(fds) != 0) {
    out.detail = std::string("pipe: ") + std::strerror(errno);
    return out;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    out.detail = std::string("fork: ") + std::strerror(errno);
    return out;
  }
  if (pid == 0) {
    // Child: run the point and ship the encoded row back over the pipe.
    // _exit (not exit) so inherited atexit state never runs twice, and a
    // crash anywhere in the model is simply our termination signal.
    close_other_fds(fds[1]);
    PointResult pr = seeded;
    execute_point(sweep, opts, point, index, pr, nullptr);
    const std::string line = encode_point_row(pr) + "\n";
    std::size_t off = 0;
    while (off < line.size()) {
      const ssize_t n = ::write(fds[1], line.data() + off, line.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::_exit(3);
      }
      off += static_cast<std::size_t>(n);
    }
    ::_exit(0);
  }

  // Parent: collect the row, enforcing the wall-clock budget.
  ::close(fds[1]);
  std::string buf;
  bool timed_out = false;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(opts.point_timeout_s));
  for (;;) {
    int wait_ms = -1;
    if (opts.point_timeout_s > 0) {
      const auto left = deadline - std::chrono::steady_clock::now();
      const long ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(left).count();
      if (ms <= 0) {
        timed_out = true;
        ::kill(pid, SIGKILL);
        break;
      }
      wait_ms = static_cast<int>(std::min<long>(ms, 60'000));
    }
    struct pollfd pfd {
      fds[0], POLLIN, 0
    };
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;  // recheck the deadline
    char chunk[4096];
    const ssize_t n = ::read(fds[0], chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF: child closed its end
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fds[0]);
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }

  if (timed_out) {
    out.kind = ChildOutcome::Kind::kTimeout;
    return out;
  }
  if (WIFSIGNALED(status)) {
    out.kind = ChildOutcome::Kind::kCrashed;
    out.signal = WTERMSIG(status);
    return out;
  }
  const std::size_t nl = buf.find('\n');
  if (WIFEXITED(status) && WEXITSTATUS(status) == 0 &&
      nl != std::string::npos) {
    out.kind = ChildOutcome::Kind::kRow;
    out.row_line = buf.substr(0, nl);
    return out;
  }
  out.detail = "child exited with status " +
               std::to_string(WIFEXITED(status) ? WEXITSTATUS(status) : -1) +
               " without a result row";
  return out;
}

/// Runs one point in a forked child with bounded retry: crashes and
/// timeouts re-run (the point is deterministic, so a genuine model bug fails
/// identically and gets recorded as poisoned after max_attempts; a transient
/// host condition — OOM kill, scheduling stall — gets another chance after
/// exponential backoff).  Deterministic model failures (a clean exception
/// row from the child) never retry.
void run_point_isolated(const Sweep& sweep, const SweepOptions& opts,
                        const ExperimentPoint& point, std::size_t index,
                        PointResult& pr) {
  const unsigned max_attempts = std::max(1u, opts.max_attempts);
  double backoff = opts.retry_backoff_s > 0 ? opts.retry_backoff_s : 0.05;
  for (unsigned attempt = 1;; ++attempt) {
    const ChildOutcome o = run_child_once(sweep, opts, point, index, pr);

    std::string kind;
    std::string message;
    int sig = 0;
    switch (o.kind) {
      case ChildOutcome::Kind::kRow:
        try {
          PointResult row = decode_point_row(o.row_line);
          row.label = pr.label;
          row.seed = pr.seed;
          row.attempts = attempt;
          pr = std::move(row);
          return;
        } catch (const core::RecordError& e) {
          kind = "child-error";
          message = std::string("garbled result row: ") + e.what();
        }
        break;
      case ChildOutcome::Kind::kCrashed:
        sig = o.signal;
        kind = "signal:" + signal_label(o.signal);
        message = "point crashed: killed by " + signal_label(o.signal) +
                  " (signal " + std::to_string(o.signal) + ")";
        break;
      case ChildOutcome::Kind::kTimeout:
        kind = "timeout";
        message = "point exceeded the " +
                  stats::Table::fmt(opts.point_timeout_s, 3) +
                  " s wall-clock timeout and was killed";
        break;
      case ChildOutcome::Kind::kProtocol:
        kind = "child-error";
        message = o.detail.empty() ? "child failed to return a result row"
                                   : o.detail;
        break;
    }

    if (attempt >= max_attempts) {
      pr.status = PointResult::Status::kFailed;
      pr.attempts = attempt;
      pr.exit_signal = sig;
      if (max_attempts > 1) {
        pr.error_type = "poisoned:" + kind;
        pr.error = "poisoned after " + std::to_string(attempt) +
                   " attempts; last failure: " + message;
      } else {
        pr.error_type = kind;
        pr.error = message;
      }
      return;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    backoff *= 2;
  }
}

}  // namespace

std::string SweepEngine::point_key(const Sweep& sweep, std::size_t index,
                                   std::uint64_t seed) const {
  const ExperimentPoint& p = sweep.points[index];
  std::string blob = "machine-config:\n";
  blob += machine::write_config_string(p.params);
  blob += "\nlevel=";
  blob += p.level == node::SimulationLevel::kDetailed ? "detailed" : "task";
  blob += "\nseed=" + std::to_string(seed);
  blob += "\nworkload=" + sweep.workload_fingerprint;
  if (opts_.sim_threads != 0) {
    // The PDES contended network resolves stream interleaving per
    // partitioning, so the partition count (auto resolved exactly as
    // enable_pdes resolves it) is part of the point's identity.  The worker
    // count is not: results are bit-identical across it at any fixed
    // partitioning.  Serial points keep the legacy key.
    const std::uint32_t requested =
        opts_.sim_partitions != 0 ? opts_.sim_partitions : opts_.sim_threads;
    blob += "\nengine=pdes/" +
            std::to_string(
                std::min<std::uint32_t>(requested, p.params.node_count()));
  }
  // A per-point factory override is invisible to the sweep-wide fingerprint;
  // mark it so such points at least never collide with un-overridden ones.
  if (p.workload) blob += "\npoint-workload-override=1";
  blob += "\ncode=" + code_version();
  return sha256_hex(blob);
}

std::string SweepEngine::grid_hash(const Sweep& sweep) const {
  std::string all;
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    const ExperimentPoint& p = sweep.points[i];
    const std::uint64_t seed =
        p.seed != 0 ? p.seed : point_seed(sweep.base_seed, i);
    all += point_key(sweep, i, seed);
    all += '\n';
  }
  return sha256_hex(all);
}

void SweepEngine::run_into(const Sweep& sweep, SweepResult& out) {
  run_into_impl(sweep, out, nullptr);
}

void SweepEngine::resume_into(const Sweep& sweep,
                              const std::string& journal_path,
                              SweepResult& out) {
  run_into_impl(sweep, out, &journal_path);
}

SweepResult SweepEngine::resume(const Sweep& sweep,
                                const std::string& journal_path) {
  SweepResult out;
  resume_into(sweep, journal_path, out);
  return out;
}

void SweepEngine::run_into_impl(const Sweep& sweep, SweepResult& out,
                                const std::string* resume_journal) {
  const std::size_t count = sweep.points.size();
  if (opts_.isolate == Isolation::kNone) {
    if (opts_.point_timeout_s > 0) {
      throw std::invalid_argument(
          "SweepOptions::point_timeout_s requires Isolation::kProcess: a "
          "hung in-process point cannot be killed without its pool thread");
    }
    if (opts_.max_attempts > 1) {
      throw std::invalid_argument(
          "SweepOptions::max_attempts > 1 requires Isolation::kProcess: "
          "only crash/timeout outcomes are retried");
    }
  }
  if (!opts_.memo_dir.empty() && sweep.workload_fingerprint.empty()) {
    throw std::invalid_argument(
        "SweepOptions::memo_dir requires Sweep::workload_fingerprint: a "
        "workload std::function cannot be content-hashed, so the caller "
        "must name what the factory generates");
  }

  out = SweepResult{};
  out.points.resize(count);
  out.threads = resolved_threads(count);
  for (std::size_t i = 0; i < count; ++i) {
    const ExperimentPoint& p = sweep.points[i];
    out.points[i].label = p.label.empty() ? p.params.name : p.label;
    out.points[i].seed = p.seed != 0 ? p.seed : point_seed(sweep.base_seed, i);
  }

  // Content-hash identity: per-point keys feed the memo store; their
  // concatenation is the journal's grid hash.
  const bool journaling =
      resume_journal != nullptr || !opts_.journal_path.empty();
  std::vector<std::string> keys;
  std::string grid_hash;
  if (journaling || !opts_.memo_dir.empty()) {
    keys.reserve(count);
    std::string all;
    for (std::size_t i = 0; i < count; ++i) {
      keys.push_back(point_key(sweep, i, out.points[i].seed));
      all += keys[i];
      all += '\n';
    }
    grid_hash = sha256_hex(all);
  }

  std::optional<SweepJournal> journal;
  if (resume_journal != nullptr) {
    auto rows = SweepJournal::load(*resume_journal, grid_hash, count);
    journal.emplace(SweepJournal::append_to(*resume_journal, grid_hash,
                                            count));
    for (auto& [i, row] : rows) {
      row.label = out.points[i].label;
      row.seed = out.points[i].seed;
      row.resumed = true;
      out.points[i] = std::move(row);
      ++out.resumed_points;
    }
  } else if (!opts_.journal_path.empty()) {
    journal.emplace(
        SweepJournal::create(opts_.journal_path, grid_hash, count));
  }

  std::vector<std::size_t> pending;
  pending.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (out.points[i].status == PointResult::Status::kPending) {
      pending.push_back(i);
    }
  }

  std::optional<MemoStore> memo;
  if (!opts_.memo_dir.empty()) memo.emplace(opts_.memo_dir);

  stats::SharedAccumulator host_times;
  for (const PointResult& p : out.points) {
    if (p.resumed && p.done()) host_times.add(p.run.host_seconds);
  }
  std::mutex progress_mutex;
  std::atomic<std::size_t> finished{count - pending.size()};
  // Cumulative failure/memo counts for the progress hook; replayed journal
  // rows seed the failure count so a resumed sweep reports grid-true totals.
  std::atomic<std::size_t> failed_live{0};
  std::atomic<std::size_t> memo_live{0};
  for (const PointResult& p : out.points) {
    if (p.resumed && p.status == PointResult::Status::kFailed) {
      failed_live.fetch_add(1);
    }
  }
  core::HostTimer timer;

  // Sweep-level telemetry: instruments are interned once here (registration
  // locks), then rows record through the returned handles lock-free.
  obs::Counter* m_points_done = nullptr;
  obs::Counter* m_points_failed = nullptr;
  obs::Counter* m_memo_hits = nullptr;
  obs::Histogram* m_point_seconds = nullptr;
  if (opts_.metrics != nullptr) {
    obs::MetricLabels base;
    if (!opts_.metrics_label.empty()) base.emplace_back("job", opts_.metrics_label);
    auto with_result = [&base](const char* result) {
      obs::MetricLabels l = base;
      l.emplace_back("result", result);
      return l;
    };
    m_points_done = &opts_.metrics->counter(
        "merm_sweep_points_total", "Finalized sweep rows by result",
        with_result("done"));
    m_points_failed = &opts_.metrics->counter(
        "merm_sweep_points_total", "Finalized sweep rows by result",
        with_result("failed"));
    m_memo_hits = &opts_.metrics->counter(
        "merm_sweep_memo_replays_total",
        "Rows replayed from the memo store instead of simulating", base);
    m_point_seconds = &opts_.metrics->histogram(
        "merm_sweep_point_seconds", point_latency_buckets(),
        "Host latency of freshly executed sweep points", base);
  }

  /// Journal, count and report a row that just reached its final state.
  const auto finalize_row = [&](std::size_t i, PointResult& pr) {
    if (opts_.memo_columns && pr.done()) {
      pr.metrics.emplace_back("memo.hit", pr.memo_hit ? 1.0 : 0.0);
    }
    if (journal) journal->append(i, pr);
    if (pr.done()) host_times.add(pr.run.host_seconds);
    if (pr.status == PointResult::Status::kFailed) failed_live.fetch_add(1);
    if (pr.memo_hit) memo_live.fetch_add(1);
    if (opts_.metrics != nullptr) {
      if (pr.done()) m_points_done->add();
      if (pr.status == PointResult::Status::kFailed) m_points_failed->add();
      if (pr.memo_hit) m_memo_hits->add();
      // Replayed rows carry the *original* run's host time (or none): only
      // fresh executions inform the latency distribution.
      if (pr.done() && !pr.memo_hit && !pr.resumed) {
        m_point_seconds->observe(pr.run.host_seconds);
      }
    }
    const std::size_t done = finished.fetch_add(1) + 1;
    if (opts_.progress != nullptr) {
      const std::lock_guard<std::mutex> lock(progress_mutex);
      if (pr.done()) {
        *opts_.progress << "[sweep] " << done << "/" << count << " "
                        << pr.label
                        << " sim=" << sim::format_time(pr.run.simulated_time)
                        << " host="
                        << stats::Table::fmt(pr.run.host_seconds, 3) << "s"
                        << (pr.memo_hit ? " (memo hit)" : "") << "\n";
      } else {
        *opts_.progress << "[sweep] " << done << "/" << count << " "
                        << pr.label << " FAILED"
                        << (pr.error_type.empty() ? ""
                                                  : " [" + pr.error_type + "]")
                        << ": " << pr.error << "\n";
      }
    }
    if (opts_.on_point_complete) {
      SweepProgress prog;
      prog.total = count;
      prog.done = done;
      prog.failed = failed_live.load();
      prog.memo_hits = memo_live.load();
      prog.resumed = out.resumed_points;
      prog.index = i;
      prog.row = &pr;
      const std::lock_guard<std::mutex> lock(progress_mutex);
      opts_.on_point_complete(prog);
    }
  };

  const auto body = [&](std::size_t slot) {
    const std::size_t i = pending[slot];
    const ExperimentPoint& point = sweep.points[i];
    PointResult& pr = out.points[i];

    // Memo lookup first: a hit replays the stored row without simulating.
    if (memo) {
      if (const std::optional<std::string> hit = memo->lookup(keys[i])) {
        try {
          PointResult cached = decode_point_row(*hit);
          cached.label = pr.label;
          cached.seed = pr.seed;
          cached.memo_hit = true;
          pr = std::move(cached);
          finalize_row(i, pr);
          return;
        } catch (const core::RecordError&) {
          // Corrupt entry: fall through and re-run; store() overwrites it.
        }
      }
    }

    std::exception_ptr eptr;
    if (opts_.isolate == Isolation::kProcess) {
      run_point_isolated(sweep, opts_, point, i, pr);
    } else {
      execute_point(sweep, opts_, point, i, pr, &eptr);
    }
    if (memo && pr.done()) memo->store(keys[i], encode_point_row(pr));
    finalize_row(i, pr);
    if (pr.status == PointResult::Status::kFailed && !opts_.keep_going) {
      if (eptr) std::rethrow_exception(eptr);
      throw std::runtime_error(pr.error);
    }
  };

  const auto finalize = [&] {
    for (PointResult& pr : out.points) {
      if (pr.status == PointResult::Status::kPending) {
        pr.status = PointResult::Status::kSkipped;
      }
    }
    out.point_host_seconds = host_times.snapshot();
    out.host_seconds = timer.elapsed_seconds();
    if (memo) {
      out.memo_hits = memo->hits();
      out.memo_misses = memo->misses();
    }
  };

  try {
    for_each(pending.size(), body);
  } catch (...) {
    finalize();
    throw;
  }
  finalize();
}

SweepResult SweepEngine::run(const Sweep& sweep) {
  SweepResult out;
  run_into(sweep, out);
  return out;
}

namespace {

/// Shared flag-value parser for every thread-count option: a plain integer
/// in 1..9999, anything else throws — "--sweep-threads=0" silently running
/// a sweep on the engine default is exactly the kind of typo that wastes a
/// night of compute.
unsigned parse_thread_count(const std::string& flag, const std::string& v) {
  const bool digits =
      !v.empty() && v.size() <= 5 &&
      v.find_first_not_of("0123456789") == std::string::npos;
  const unsigned long n = digits ? std::stoul(v) : 0;
  if (!digits || n == 0 || n >= 10'000) {
    throw std::invalid_argument(flag +
                                ": expected a thread count in 1..9999, got '" +
                                v + "'");
  }
  return static_cast<unsigned>(n);
}

/// Matches `--<name>=V` / `--<name> V`; fills `*out` or throws on a
/// malformed or missing value.
bool match_flag(const std::string& name, int argc, char** argv, int i,
                unsigned* out) {
  const std::string arg = argv[i];
  const std::string flag = "--" + name;
  if (arg.rfind(flag + "=", 0) == 0) {
    *out = parse_thread_count(flag, arg.substr(flag.size() + 1));
    return true;
  }
  if (arg == flag) {
    if (i + 1 >= argc) {
      throw std::invalid_argument(flag + " needs a value");
    }
    *out = parse_thread_count(flag, argv[i + 1]);
    return true;
  }
  return false;
}

/// `--sim-partitions` value: "auto" (the enable_pdes default, 0) or a plain
/// integer in 1..9999.  Same strictness as the thread flags — a garbled
/// partition count must not silently fall back to auto.
std::uint32_t parse_partition_count(const std::string& flag,
                                    const std::string& v) {
  if (v == "auto") return 0;
  const bool digits =
      !v.empty() && v.size() <= 5 &&
      v.find_first_not_of("0123456789") == std::string::npos;
  const unsigned long n = digits ? std::stoul(v) : 0;
  if (!digits || n == 0 || n >= 10'000) {
    throw std::invalid_argument(
        flag + ": expected 'auto' or a partition count in 1..9999, got '" + v +
        "'");
  }
  return static_cast<std::uint32_t>(n);
}

/// Matches `--sim-partitions=V` / `--sim-partitions V`.
bool match_partition_flag(int argc, char** argv, int i, std::uint32_t* out) {
  const std::string arg = argv[i];
  const std::string flag = "--sim-partitions";
  if (arg.rfind(flag + "=", 0) == 0) {
    *out = parse_partition_count(flag, arg.substr(flag.size() + 1));
    return true;
  }
  if (arg == flag) {
    if (i + 1 >= argc) {
      throw std::invalid_argument(flag + " needs a value");
    }
    *out = parse_partition_count(flag, argv[i + 1]);
    return true;
  }
  return false;
}

}  // namespace

HostThreads host_threads_from_args(int argc, char** argv,
                                   HostThreads fallback) {
  HostThreads t = fallback;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (match_flag("sweep-threads", argc, argv, i, &t.sweep_threads)) continue;
    if (match_flag("sim-threads", argc, argv, i, &t.sim_threads)) continue;
    if (match_partition_flag(argc, argv, i, &t.sim_partitions)) continue;
    // Back-compat: the pre-PDES single axis meant "points in flight".
    if (match_flag("threads", argc, argv, i, &t.sweep_threads)) continue;
    if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
      t.sweep_threads = parse_thread_count("-j", arg.substr(2));
    }
  }
  return t;
}

unsigned threads_from_args(int argc, char** argv, unsigned fallback) {
  return host_threads_from_args(argc, argv, HostThreads{fallback, 0})
      .sweep_threads;
}

}  // namespace merm::explore
