#include "explore/memo.hpp"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>
#include <utime.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace merm::explore {

namespace {

// SHA-256 (FIPS 180-4), single-shot.  Self-contained so the memo store has
// no dependency the container might lack; speed is irrelevant next to the
// simulations it deduplicates.
struct Sha256 {
  static constexpr std::array<std::uint32_t, 64> kK = {
      0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
      0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
      0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
      0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
      0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
      0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
      0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
      0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
      0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
      0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
      0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

  std::array<std::uint32_t, 8> h = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                    0xa54ff53a, 0x510e527f, 0x9b05688c,
                                    0x1f83d9ab, 0x5be0cd19};

  static std::uint32_t rotr(std::uint32_t x, unsigned n) {
    return (x >> n) | (x << (32 - n));
  }

  void block(const unsigned char* p) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (std::uint32_t(p[4 * i]) << 24) |
             (std::uint32_t(p[4 * i + 1]) << 16) |
             (std::uint32_t(p[4 * i + 2]) << 8) | std::uint32_t(p[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4], f = h[5],
                  g = h[6], hh = h[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = hh + s1 + ch + kK[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      hh = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
    h[5] += f;
    h[6] += g;
    h[7] += hh;
  }
};

}  // namespace

std::string sha256_hex(std::string_view data) {
  Sha256 s;
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  std::size_t n = data.size();
  std::size_t off = 0;
  while (n - off >= 64) {
    s.block(bytes + off);
    off += 64;
  }
  // Final block(s): message tail, 0x80, zero pad, 64-bit bit length.
  unsigned char tail[128] = {0};
  const std::size_t rest = n - off;
  std::memcpy(tail, bytes + off, rest);
  tail[rest] = 0x80;
  const std::size_t total = rest + 1 + 8 <= 64 ? 64 : 128;
  const std::uint64_t bits = std::uint64_t(n) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[total - 1 - i] = static_cast<unsigned char>(bits >> (8 * i));
  }
  s.block(tail);
  if (total == 128) s.block(tail + 64);

  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (const std::uint32_t word : s.h) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out += hex[(word >> shift) & 0xf];
    }
  }
  return out;
}

std::string code_version() {
  if (const char* env = std::getenv("MERM_CODE_VERSION");
      env != nullptr && *env != '\0') {
    return env;
  }
#ifdef MERM_CODE_VERSION
  return MERM_CODE_VERSION;
#else
  return "unknown";
#endif
}

namespace {

void make_dirs(const std::string& dir) {
  // mkdir -p without <filesystem>: create each prefix, tolerate existing.
  std::string path;
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i != dir.size() && dir[i] != '/') continue;
    path = dir.substr(0, i == dir.size() ? i : i + 1);
    if (path.empty() || path == "/") continue;
    if (::mkdir(path.c_str(), 0777) != 0 && errno != EEXIST) {
      throw std::runtime_error("memo store: cannot create directory '" +
                               path + "'");
    }
  }
  struct stat st{};
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    throw std::runtime_error("memo store: '" + dir + "' is not a directory");
  }
}

constexpr const char* kEntryMagic = "merm-memo v1";

}  // namespace

MemoStore::MemoStore(std::string dir) : dir_(std::move(dir)) {
  make_dirs(dir_);
}

std::string MemoStore::entry_path(const std::string& key_hash) const {
  return dir_ + "/" + key_hash + ".row";
}

std::optional<std::string> MemoStore::lookup(const std::string& key_hash) {
  std::ifstream in(entry_path(key_hash));
  if (in) {
    std::string magic;
    std::string row;
    if (std::getline(in, magic) && std::getline(in, row) &&
        magic == std::string(kEntryMagic) + " " + key_hash && !row.empty()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      // Touch the entry so prune()'s mtime-ordered eviction is LRU, not
      // oldest-written: a key every overlapping sweep keeps hitting must
      // outlive one nobody has asked for in a week.
      ::utime(entry_path(key_hash).c_str(), nullptr);
      return row;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void MemoStore::store(const std::string& key_hash,
                      const std::string& row_line) {
  const std::string path = entry_path(key_hash);
  // Unique tmp name per writer so concurrent sweeps never clobber each
  // other's half-written entry; the rename publishes a complete file.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("memo store: cannot write '" + tmp + "'");
    }
    out << kEntryMagic << ' ' << key_hash << '\n' << row_line << '\n';
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("memo store: cannot publish '" + path + "'");
  }
}

MemoPruneStats MemoStore::prune(const MemoPruneOptions& opts) {
  struct Entry {
    std::string name;  // file name within the store
    std::time_t mtime = 0;
    std::uint64_t bytes = 0;
  };

  MemoPruneStats stats;
  std::vector<Entry> entries;
  {
    DIR* d = ::opendir(dir_.c_str());
    if (d == nullptr) {
      throw std::runtime_error("memo store: cannot scan '" + dir_ + "'");
    }
    std::time_t now = std::time(nullptr);
    while (const dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      const std::string path = dir_ + "/" + name;
      // Writers that died between open and rename leave ".tmp.<pid>" files
      // behind; anything stale enough to be orphaned (not a live writer's
      // window) goes with the pass.
      if (name.find(".tmp.") != std::string::npos) {
        struct stat st{};
        if (::stat(path.c_str(), &st) == 0 && now - st.st_mtime > 3600) {
          ::unlink(path.c_str());
        }
        continue;
      }
      if (name.size() <= 4 || name.compare(name.size() - 4, 4, ".row") != 0) {
        continue;
      }
      struct stat st{};
      if (::stat(path.c_str(), &st) != 0) continue;
      entries.push_back({name, st.st_mtime,
                         static_cast<std::uint64_t>(st.st_size)});
    }
    ::closedir(d);
  }

  // Oldest first; name breaks mtime ties so a pass is deterministic.
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.mtime != b.mtime ? a.mtime < b.mtime : a.name < b.name;
  });

  std::uint64_t total = 0;
  for (const Entry& e : entries) total += e.bytes;
  stats.scanned = entries.size();
  stats.bytes_scanned = total;

  const std::time_t now = std::time(nullptr);
  for (const Entry& e : entries) {
    const bool too_old =
        opts.max_age_s > 0.0 &&
        static_cast<double>(now - e.mtime) > opts.max_age_s;
    const bool over_budget = opts.max_bytes > 0 && total > opts.max_bytes;
    if (!too_old && !over_budget) {
      // Entries are sorted oldest-first: once one is young enough and the
      // store fits, everything after it stays too.
      break;
    }
    if (::unlink((dir_ + "/" + e.name).c_str()) != 0) continue;
    total -= e.bytes;
    stats.bytes_freed += e.bytes;
    ++stats.evicted;
  }
  evictions_.fetch_add(stats.evicted, std::memory_order_relaxed);
  return stats;
}

}  // namespace merm::explore
