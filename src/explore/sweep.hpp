// Parallel design-space exploration (the "Architecture X / Architecture Y"
// campaign driver of Fig. 1, scaled out).
//
// A Sweep is a grid of experiment points — machine parameterizations times a
// workload factory times an abstraction level.  The SweepEngine executes the
// grid on a fixed-size pool of host threads; every point gets a fresh,
// thread-confined Workbench and a seed derived deterministically from the
// point's *index*, so results are bit-identical to running the same grid
// serially, in any order, on any thread count (see tests/explore/).
//
//   explore::Sweep sweep;
//   sweep.workload = [](const machine::MachineParams& p, std::uint64_t) {
//     return gen::make_offline_workload(p.node_count(), my_app);
//   };
//   sweep.add(machine::presets::t805_multicomputer(2, 2));
//   sweep.add(machine::presets::generic_risc(2, 2));
//   explore::SweepEngine engine({.threads = 4});
//   explore::SweepResult result = engine.run(sweep);
//   result.to_table().print(std::cout);
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/workbench.hpp"
#include "machine/params.hpp"
#include "node/machine.hpp"
#include "obs/metrics.hpp"
#include "stats/stats.hpp"
#include "trace/stream.hpp"

namespace merm::explore {

/// Builds the workload for one experiment point.  Called on the worker
/// thread that runs the point; `seed` is the point's deterministic seed, for
/// factories with stochastic content.  Must not touch state shared with
/// other points.
using WorkloadFactory = std::function<trace::Workload(
    const machine::MachineParams& params, std::uint64_t seed)>;

/// Extracts named metrics from the workbench right after its run, while the
/// model state is still alive (hit rates, link utilization, busy fractions).
/// Runs on the worker thread; must only touch the passed workbench.
using MetricProbe = std::function<std::vector<std::pair<std::string, double>>(
    core::Workbench& wb, const core::RunResult& r)>;

/// One point of the design-space grid.
struct ExperimentPoint {
  std::string label;  ///< row label; Sweep::add defaults it to params.name
  machine::MachineParams params;
  node::SimulationLevel level = node::SimulationLevel::kDetailed;
  std::uint64_t seed = 0;        ///< 0 = derive from base_seed and index
  WorkloadFactory workload;      ///< overrides Sweep::workload when set
};

/// Prepares a point's fresh workbench before its run (enable tracing, attach
/// samplers, tweak progress).  Runs on the worker thread; must only touch
/// the passed workbench.
using PointConfigure = std::function<void(
    core::Workbench& wb, const ExperimentPoint& point, std::size_t index)>;

/// Examines a point's workbench after its run and probe, while the model is
/// still alive — e.g. exporting the point's trace to a per-point file.
using PointInspect = std::function<void(
    core::Workbench& wb, const core::RunResult& r, std::size_t index)>;

/// Deterministic per-point seed: splitmix64 finalization of (base, index).
/// A function of grid position only — never of execution order, thread id,
/// or wall clock — which is what keeps parallel sweeps bit-identical to
/// serial ones.
std::uint64_t point_seed(std::uint64_t base, std::size_t index);

/// A grid of experiment points sharing a workload factory and defaults.
struct Sweep {
  WorkloadFactory workload;      ///< default factory for every point
  node::SimulationLevel level = node::SimulationLevel::kDetailed;
  std::uint64_t base_seed = 0x6d65726dULL;  // "merm"
  MetricProbe probe;             ///< optional post-run metric extraction
  PointConfigure configure;      ///< optional pre-run workbench setup
  PointInspect inspect;          ///< optional post-run workbench inspection
  /// Caller-supplied identity of the workload factory (an app name, a hash
  /// of the workload file — anything that changes when the generated traffic
  /// would).  Mixed into every point's content-hash key: required non-empty
  /// for memoization (SweepOptions::memo_dir), since a std::function cannot
  /// be hashed, and recommended for journaled sweeps to strengthen the
  /// resume grid check.
  std::string workload_fingerprint;
  /// Treat a hung run (event queue drained, processes blocked) as a point
  /// failure carrying the hang diagnostic, rather than a "done" point with
  /// completed=false.  Implied for points whose params.fault is enabled —
  /// degraded-mode sweeps must not silently report a hung point as a result.
  bool fail_on_hang = false;

  std::vector<ExperimentPoint> points;

  /// Appends a point using the sweep-wide level and factory.
  ExperimentPoint& add(machine::MachineParams params, std::string label = {});

  std::size_t size() const { return points.size(); }
};

/// Outcome of one experiment point.
struct PointResult {
  enum class Status {
    kPending,  ///< not yet executed
    kDone,     ///< ran to the workbench's notion of completion
    kFailed,   ///< the job threw; `error` holds what()
    kSkipped,  ///< cancelled because an earlier point failed
  };

  Status status = Status::kPending;
  std::string label;
  std::uint64_t seed = 0;
  core::RunResult run;  ///< valid only when status == kDone
  std::vector<std::pair<std::string, double>> metrics;
  std::string error;
  /// Structured failure classification, in its own column rather than
  /// flattened into `error`: the demangled exception type for in-process
  /// failures ("merm::core::HangError", "std::runtime_error", ...), or for
  /// isolated points "signal:SIGABRT"-style crash captures, "timeout", and
  /// "poisoned:<kind>" once bounded retries are exhausted.
  std::string error_type;
  /// The simulator's blocked-operation report when the failure was a hang;
  /// empty otherwise.  Dedicated column so the multi-line diagnostic never
  /// has to be fished back out of the error message.
  std::string hang_diagnostic;
  /// Executions consumed (1 = first attempt succeeded or failed
  /// deterministically; >1 = crash/timeout retries happened).
  unsigned attempts = 0;
  /// Signal that terminated the last isolated attempt (SIGABRT, SIGSEGV,
  /// SIGKILL from the OOM killer...), 0 when the child exited normally.
  int exit_signal = 0;
  /// Row was replayed from the content-hash memo store (not re-simulated).
  bool memo_hit = false;
  /// Row was replayed from a journal by SweepEngine::resume.
  bool resumed = false;

  bool done() const { return status == Status::kDone; }
};

const char* to_string(PointResult::Status s);

/// Column selection for CSV/JSON export.
struct WriteOptions {
  /// Include the host-cost columns (host_seconds, footprint_bytes).  They
  /// are nondeterministic run to run, so byte-identity comparisons — a
  /// resumed sweep against an uninterrupted one, two memoized sweeps —
  /// should export with host_columns = false.
  bool host_columns = true;
};

/// All point results, in grid order regardless of completion order.
struct SweepResult {
  std::vector<PointResult> points;
  double host_seconds = 0.0;  ///< wall clock for the whole sweep
  unsigned threads = 1;       ///< pool size actually used

  /// Distribution of per-point host times (collected thread-safely).
  stats::Accumulator point_host_seconds;

  /// Memo-store traffic for this sweep (0/0 when memoization was off).
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  /// Points replayed from the journal by resume() instead of re-running.
  std::size_t resumed_points = 0;

  std::size_t completed() const;
  std::size_t failed() const;

  /// Paper-style summary table: one row per point, the headline RunResult
  /// columns plus every probed metric.
  stats::Table to_table() const;

  /// One row per point; metric columns are the union over all points.
  void write_csv(std::ostream& os, const WriteOptions& opts = {}) const;

  /// Array of objects, one per point.
  void write_json(std::ostream& os, const WriteOptions& opts = {}) const;
};

/// Snapshot handed to SweepOptions::on_point_complete each time a row
/// reaches its final state.  All counts are cumulative for the whole grid,
/// so a consumer can render "done/total, failed, memo" and derive throughput
/// and an ETA without any bookkeeping of its own.
struct SweepProgress {
  std::size_t total = 0;     ///< grid size
  std::size_t done = 0;      ///< rows finalized so far, incl. journal replays
  std::size_t failed = 0;    ///< failed rows so far
  std::size_t memo_hits = 0; ///< rows replayed from the memo store so far
  std::size_t resumed = 0;   ///< rows replayed from the journal before the run
  std::size_t index = 0;     ///< grid index of the row that just finalized
  /// The row that just finalized; valid only for the duration of the call.
  const PointResult* row = nullptr;
};

/// How each experiment point is executed relative to the engine process.
enum class Isolation {
  /// In the engine's own process on a pool thread (the default, cheapest).
  kNone,
  /// In a forked child, its finished row returned over a pipe.  A point that
  /// segfaults, abort()s or is OOM-killed becomes a structured failure row
  /// (exit signal captured) instead of taking the whole sweep down, and
  /// wall-clock timeouts become enforceable (the child is killed).  Results
  /// are bit-identical to in-process execution: the child runs the same
  /// deterministic simulation.
  kProcess,
};

struct SweepOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().  The pool is
  /// additionally clamped to the number of points.
  unsigned threads = 0;
  /// PDES workers *inside* each point's run (Workbench::enable_pdes); 0
  /// keeps every point on the serial engine.  Points the PDES path cannot
  /// honor (wormhole switching, single node, ...) fall back to serial
  /// automatically.  Note the two engines are separately deterministic:
  /// results are bit-identical across any sim_threads >= 1 *at a fixed
  /// partitioning* (see sim_partitions), and across any `threads`; the PDES
  /// contended network resolves concurrent streams in barrier order, so it
  /// is not bit-identical to the serial engine on general traffic (see
  /// DESIGN.md "Conservative PDES").
  unsigned sim_threads = 0;
  /// Partition count for each point's PDES engine (Workbench::enable_pdes
  /// second argument); 0 = auto, min(sim_threads, nodes) coarse blocks.
  /// Sweeps that compare results across different sim_threads values must
  /// pin this: the auto default ties the partitioning — and therefore the
  /// contended-network stream interleaving — to the worker count.
  std::uint32_t sim_partitions = 0;
  /// If set, one line per finished point ("[sweep] 3/12 ...").
  std::ostream* progress = nullptr;
  /// If set, called once per finalized row (done, failed, memo replay) with
  /// cumulative counts — the programmatic sibling of `progress`, built for
  /// live status displays and the sweep service's progress/ETA stream.
  /// Calls are serialized under an internal mutex and may come from any pool
  /// thread.  A hook that throws cancels the sweep exactly like a point
  /// failure with keep_going = false — the cancellation lever the service's
  /// `cancel` command is built on (completed rows stay journaled).
  std::function<void(const SweepProgress&)> on_point_complete;
  /// When true, a point that throws (a hang, RetryExhaustedError, a bad
  /// config...) is recorded as a per-point failure row and the rest of the
  /// grid keeps running; run()/run_into() then return normally.  When false
  /// (default) the first failure cancels unstarted points and is rethrown.
  bool keep_going = false;
  /// When true, each done point gains host-cost metric columns
  /// (host.launch_s, host.run_s, host.events_per_s, host.peak_queue) from
  /// the workbench's profiler.  Off by default: host times are
  /// nondeterministic, and the default output must stay byte-identical
  /// between serial and threaded sweeps.
  bool host_metrics = false;
  /// Process isolation for every point (see Isolation).  Note that under
  /// kProcess the point's configure/probe/inspect hooks run inside the
  /// forked child: their side effects on captured state do not propagate
  /// back, only the row (and any files they write) does.
  Isolation isolate = Isolation::kNone;
  /// Per-point wall-clock budget in seconds; 0 = unlimited.  Requires
  /// Isolation::kProcess (a hung in-process point cannot be killed without
  /// taking the pool thread with it) — run() throws std::invalid_argument
  /// otherwise.
  double point_timeout_s = 0.0;
  /// Executions allowed per point before it is recorded as poisoned.  Only
  /// crash and timeout outcomes retry (a clean exception out of the model is
  /// deterministic and re-running it would fail identically); retries >1
  /// require Isolation::kProcess.  0 is treated as 1.
  unsigned max_attempts = 1;
  /// Sleep before the first retry; doubles each further retry (exponential
  /// backoff, so a point crashing on a transient host condition — memory
  /// pressure, a dying disk — gets breathing room without stalling forever).
  double retry_backoff_s = 0.05;
  /// When set, every finalized row is appended (fsync'd) to this write-ahead
  /// journal as it completes; run() truncates any previous file, resume()
  /// replays it.  Convention: `<out>.journal` next to the output file.
  std::string journal_path;
  /// When set, finished points are memoized in this directory keyed on
  /// content hash (config + workload fingerprint + seed + code version), and
  /// later sweeps — this one re-run, or any overlapping grid — replay them
  /// as cache hits.  Requires Sweep::workload_fingerprint to be non-empty.
  std::string memo_dir;
  /// Adds a "memo.hit" metric column (1 = row replayed from the store) to
  /// done points.  Off by default: the column differs between the miss run
  /// and the hit run, which would break byte-identity of repeated sweeps.
  bool memo_columns = false;
  /// Adds a "pdes.fallback" metric column (1 = the point requested PDES but
  /// fell back to the serial engine — wormhole switching, single node,
  /// zero-latency links...) to done points.  Off by default so existing
  /// sweep outputs keep their columns; only meaningful with sim_threads > 0.
  bool pdes_columns = false;
  /// When set, the engine records sweep-level runtime telemetry into this
  /// registry as rows finalize: merm_sweep_points_total{result=...},
  /// merm_sweep_memo_replays_total, and a merm_sweep_point_seconds histogram of
  /// freshly executed point latencies.  Recording is thread-sharded, so pool
  /// workers write without locks; the registry must outlive run().  Purely
  /// host-side — never consulted by any simulation, so results stay
  /// bit-identical with it attached.
  obs::MetricsRegistry* metrics = nullptr;
  /// Label value ({job="..."}) attached to this sweep's series, so one
  /// registry (the serve daemon's) can hold many concurrent sweeps; empty =
  /// unlabelled series.
  std::string metrics_label;
};

/// Bucket bounds (seconds) of the merm_sweep_point_seconds histogram; shared
/// with the daemon so its p50/p90 job columns read the same series.
const std::vector<double>& point_latency_buckets();

/// Executes experiment grids on a thread pool.
///
/// Error handling mirrors Simulator::set_error: the first job that throws is
/// captured via std::exception_ptr, remaining *unstarted* jobs are cancelled
/// cooperatively (in-flight ones finish), and the first error is rethrown to
/// the caller once the pool has drained.
class SweepEngine {
 public:
  explicit SweepEngine(SweepOptions opts = {}) : opts_(opts) {}

  /// Runs every point of the sweep.  Rethrows the first point's exception.
  SweepResult run(const Sweep& sweep);

  /// As run(), but fills `out` in place so completed point results survive
  /// when an exception propagates (out.points[i].status tells which).
  void run_into(const Sweep& sweep, SweepResult& out);

  /// Resumes a journaled sweep after a crash or kill: rows recorded in the
  /// journal at `journal_path` (written by a previous run with
  /// SweepOptions::journal_path set) are replayed without re-running, the
  /// remaining points execute normally, and new rows are appended to the
  /// same journal.  The final result — and its CSV/JSON export — is
  /// byte-identical to what the uninterrupted run would have produced
  /// (export with WriteOptions{.host_columns = false} when comparing across
  /// separate runs).  Throws std::runtime_error if the journal is missing or
  /// belongs to a different grid.
  SweepResult resume(const Sweep& sweep, const std::string& journal_path);
  void resume_into(const Sweep& sweep, const std::string& journal_path,
                   SweepResult& out);

  /// Generic deterministic fan-out: body(i) once for each i in [0, count),
  /// claimed in index order from the pool.  body must confine its effects to
  /// its own index.  First exception cancels unclaimed indices and is
  /// rethrown after the pool drains.
  void for_each(std::size_t count,
                const std::function<void(std::size_t)>& body);

  /// Runs value-returning jobs, preserving index order in the output.
  template <typename T>
  std::vector<T> run_jobs(const std::vector<std::function<T()>>& jobs) {
    std::vector<T> out(jobs.size());
    for_each(jobs.size(), [&](std::size_t i) { out[i] = jobs[i](); });
    return out;
  }

  /// Pool size that a grid of `jobs` points would use.
  unsigned resolved_threads(std::size_t jobs) const;

  const SweepOptions& options() const { return opts_; }

  /// Content-hash key of one grid point: SHA-256 over the full machine
  /// config, abstraction level, per-point seed, the sweep's workload
  /// fingerprint, the code version, and — when sim_threads > 0 — the PDES
  /// engine identity (resolved partition count; worker count is excluded
  /// because results are invariant across it at a fixed partitioning).
  /// What the memo store and the journal grid hash are built from.
  std::string point_key(const Sweep& sweep, std::size_t index,
                        std::uint64_t seed) const;

  /// Identity of the whole grid under this engine's options: SHA-256 over
  /// every point_key in grid order.  This is exactly the hash the journal
  /// header carries, so external tooling (the sweep service's spool, a
  /// hand-rolled journal) can name a sweep without running it.
  std::string grid_hash(const Sweep& sweep) const;

 private:
  void run_into_impl(const Sweep& sweep, SweepResult& out,
                     const std::string* resume_journal);

  SweepOptions opts_;
};

/// The two host-parallelism axes a driver can expose: threads *across*
/// experiment points (the sweep pool) and threads *inside* one simulation
/// (conservative PDES).  0 means "engine default" on both axes.
struct HostThreads {
  unsigned sweep_threads = 0;  ///< SweepOptions::threads
  unsigned sim_threads = 0;    ///< SweepOptions::sim_threads / enable_pdes
  std::uint32_t sim_partitions = 0;  ///< SweepOptions::sim_partitions; 0=auto
};

/// Parses both thread axes (and the PDES partitioning knob) from argv:
///   --sweep-threads=N | --sweep-threads N   points in flight at once
///   --sim-threads=N   | --sim-threads N     PDES workers per simulation
///   --sim-partitions=N|auto                 PDES partitions per simulation
///   --threads=N | --threads N | -jN         back-compat alias for
///                                           --sweep-threads
/// Absent flags leave the fallback value in place.  A present flag whose
/// value is not a plain integer in 1..9999 (zero, negative, garbage,
/// missing) throws std::invalid_argument naming the flag — silently running
/// a "--sweep-threads=0" sweep single-threaded hid typos for two PRs.
/// --sim-partitions additionally accepts the literal "auto" (same as
/// leaving it unset: min(sim_threads, nodes) coarse blocks).
HostThreads host_threads_from_args(int argc, char** argv,
                                   HostThreads fallback = {});

/// Parses a `--threads=N` / `--threads N` / `-jN` flag from a driver's argv;
/// returns `fallback` (default 0 = auto) when absent or malformed.  Thin
/// wrapper over host_threads_from_args for single-axis drivers.
unsigned threads_from_args(int argc, char** argv, unsigned fallback = 0);

}  // namespace merm::explore
