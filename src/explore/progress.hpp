// Rolling throughput/ETA estimation over a sweep's progress stream — the
// one implementation behind `mermaid_cli sweep --progress` and the serve
// daemon's per-job ETA.
//
// The subtlety both callers used to get wrong: memo-hit and journal-resumed
// rows finalize in microseconds, so feeding them into the rate window makes
// a resumed sweep report absurd points/s (and an ETA of nothing) for the
// first window.  The meter therefore counts only *freshly executed* rows
// toward the rate; replayed rows still shrink the remaining-work estimate,
// they just cannot claim to predict how fast real simulation goes.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>

#include "explore/sweep.hpp"

namespace merm::explore {

class ThroughputMeter {
 public:
  using Clock = std::chrono::steady_clock;

  /// `window` = fresh completions the rolling rate looks back over.
  explicit ThroughputMeter(std::size_t window = 32)
      : window_(window < 2 ? 2 : window) {}

  struct Estimate {
    /// Fresh points per second over the window; 0 until two fresh rows
    /// have completed (no basis for a rate yet).
    double points_per_s = 0.0;
    /// Seconds to finish the remaining rows at that rate; < 0 = unknown.
    double eta_s = -1.0;
    std::size_t fresh = 0;  ///< freshly executed rows seen so far
  };

  /// Feeds one on_point_complete callback; returns the updated estimate.
  Estimate note(const SweepProgress& p) { return note(p, Clock::now()); }
  /// Injectable-clock variant (tests drive this one deterministically).
  Estimate note(const SweepProgress& p, Clock::time_point now);

 private:
  std::size_t window_;
  std::size_t fresh_ = 0;
  std::deque<Clock::time_point> times_;
};

}  // namespace merm::explore
