#include "explore/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "core/serialize.hpp"

namespace merm::explore {

namespace {

constexpr const char* kMagic = "merm-sweep-journal v1";
constexpr const char* kRowVersion = "r1";

PointResult::Status parse_status(const std::string& s) {
  if (s == "done") return PointResult::Status::kDone;
  if (s == "failed") return PointResult::Status::kFailed;
  if (s == "skipped") return PointResult::Status::kSkipped;
  if (s == "pending") return PointResult::Status::kPending;
  throw core::RecordError("bad status field '" + s + "'");
}

std::uint64_t parse_u64_field(const std::string& s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (s.empty() || end == s.c_str() || *end != '\0') {
    throw core::RecordError("bad integer field '" + s + "'");
  }
  return v;
}

/// FNV-1a 64 over the line payload: cheap torn-write detection, not
/// tamper-proofing (the journal lives next to the output it protects).
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string checksum_hex(std::string_view payload) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a(payload)));
  return buf;
}

std::string header_line(const std::string& grid_hash, std::size_t points) {
  return std::string(kMagic) + " grid=" + grid_hash +
         " points=" + std::to_string(points);
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("journal '" + path + "': " + what);
}

}  // namespace

std::string encode_point_row(const PointResult& p) {
  std::vector<std::string> f;
  f.reserve(10 + core::run_result_field_count() + 2 * p.metrics.size());
  f.push_back(kRowVersion);
  f.push_back(to_string(p.status));
  f.push_back(p.label);
  f.push_back(std::to_string(p.seed));
  f.push_back(std::to_string(p.attempts));
  f.push_back(std::to_string(p.exit_signal));
  f.push_back(p.error_type);
  f.push_back(p.error);
  f.push_back(p.hang_diagnostic);
  core::append_run_result_fields(f, p.run);
  f.push_back(std::to_string(p.metrics.size()));
  for (const auto& [name, value] : p.metrics) {
    f.push_back(name);
    f.push_back(core::format_double(value));
  }
  return core::join_record(f);
}

PointResult decode_point_row(const std::string& line) {
  const std::vector<std::string> f = core::split_record(line);
  if (f.size() < 10 + core::run_result_field_count()) {
    throw core::RecordError("truncated point row");
  }
  if (f[0] != kRowVersion) {
    throw core::RecordError("unknown row version '" + f[0] + "'");
  }
  PointResult p;
  std::size_t i = 1;
  p.status = parse_status(f[i++]);
  p.label = f[i++];
  p.seed = parse_u64_field(f[i++]);
  p.attempts = static_cast<unsigned>(parse_u64_field(f[i++]));
  p.exit_signal = static_cast<int>(parse_u64_field(f[i++]));
  p.error_type = f[i++];
  p.error = f[i++];
  p.hang_diagnostic = f[i++];
  p.run = core::parse_run_result_fields(f, &i);
  const std::size_t n_metrics = parse_u64_field(f[i++]);
  if (i + 2 * n_metrics != f.size()) {
    throw core::RecordError("bad metric count in point row");
  }
  p.metrics.reserve(n_metrics);
  for (std::size_t m = 0; m < n_metrics; ++m) {
    const std::string& name = f[i++];
    p.metrics.emplace_back(name, core::parse_double(f[i++]));
  }
  return p;
}

SweepJournal SweepJournal::create(const std::string& path,
                                  const std::string& grid_hash,
                                  std::size_t points) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND,
                        0666);
  if (fd < 0) fail(path, std::strerror(errno));
  SweepJournal j(fd, path);
  const std::string line = header_line(grid_hash, points) + "\n";
  if (::write(fd, line.data(), line.size()) !=
      static_cast<ssize_t>(line.size())) {
    fail(path, "cannot write header");
  }
  ::fsync(fd);
  return j;
}

SweepJournal SweepJournal::append_to(const std::string& path,
                                     const std::string& grid_hash,
                                     std::size_t points) {
  {
    std::ifstream in(path);
    if (!in) fail(path, "does not exist (nothing to resume)");
    std::string header;
    std::getline(in, header);
    if (header != header_line(grid_hash, points)) {
      fail(path,
           "header names a different sweep (grid of points, seeds, configs "
           "or code version changed); refusing to resume");
    }
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) fail(path, std::strerror(errno));
  return SweepJournal(fd, path);
}

SweepJournal::SweepJournal(SweepJournal&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

SweepJournal::~SweepJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void SweepJournal::append(std::size_t index, const PointResult& row) {
  const std::string payload =
      std::to_string(index) + '\t' + encode_point_row(row);
  const std::string line = payload + "\t#" + checksum_hex(payload) + "\n";
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(path_, std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) fail(path_, std::strerror(errno));
}

std::map<std::size_t, PointResult> SweepJournal::load(
    const std::string& path, const std::string& grid_hash,
    std::size_t points) {
  std::ifstream in(path);
  if (!in) fail(path, "does not exist (nothing to resume)");
  std::string line;
  if (!std::getline(in, line) || line != header_line(grid_hash, points)) {
    fail(path,
         "header names a different sweep (grid of points, seeds, configs or "
         "code version changed); refusing to resume");
  }
  std::map<std::size_t, PointResult> rows;
  std::size_t row_lines = 0;
  while (std::getline(in, line)) {
    // "<index>\t<row fields...>\t#<fnv64>"
    const std::size_t hash_pos = line.rfind("\t#");
    if (hash_pos == std::string::npos ||
        line.substr(hash_pos + 2) != checksum_hex(line.substr(0, hash_pos))) {
      break;  // torn or corrupt tail: everything before it is still good
    }
    // A torn tail is recoverable; *extra* checksum-valid rows are not.  A
    // grid of N points can journal at most N rows, so a duplicated tail
    // (torn write + blind re-append, a copy-paste of journals, ...) means
    // the file no longer describes one run of this sweep — refuse rather
    // than silently replaying whichever duplicate happens to load last.
    if (++row_lines > points) {
      fail(path, "holds " + std::to_string(row_lines) +
                     "+ rows for a grid of " + std::to_string(points) +
                     " points (duplicated or foreign tail); refusing to "
                     "resume from it");
    }
    const std::size_t tab = line.find('\t');
    try {
      const std::size_t index =
          static_cast<std::size_t>(parse_u64_field(line.substr(0, tab)));
      if (index >= points) break;
      rows[index] =
          decode_point_row(line.substr(tab + 1, hash_pos - tab - 1));
    } catch (const core::RecordError&) {
      break;
    }
  }
  return rows;
}

}  // namespace merm::explore
