// Content-hash memoization for sweep points.
//
// Because every experiment point is a pure function of (machine config,
// workload identity, seed, code version) — PR 1's bit-identical determinism
// is what makes that true — a finished row can be cached on disk and
// replayed into any later sweep whose point hashes the same, across
// processes and across overlapping grids.  The store is a directory of
// one-file-per-key rows written atomically (tmp + rename), so concurrent
// sweeps sharing a --memo-dir never see half a row.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace merm::explore {

/// Hex digest of SHA-256(data) — the content hash behind memo keys, journal
/// grid identity, and workload fingerprints.
std::string sha256_hex(std::string_view data);

/// Identity of the simulator code producing rows: the MERM_CODE_VERSION
/// environment variable when set (useful to pin a version across rebuilds,
/// or to isolate test stores), otherwise the git revision baked in at
/// configure time, otherwise "unknown".  Part of every memo key so a store
/// never replays rows produced by different model code.
std::string code_version();

/// Size/age bounds for MemoStore::prune.  Zero means "no bound on this
/// axis"; pruning with both bounds zero is a no-op scan.
struct MemoPruneOptions {
  std::uint64_t max_bytes = 0;  ///< keep total entry bytes at or under this
  double max_age_s = 0.0;       ///< evict entries not touched for this long
};

/// What one prune pass saw and did.
struct MemoPruneStats {
  std::uint64_t scanned = 0;        ///< entries examined
  std::uint64_t evicted = 0;        ///< entries removed
  std::uint64_t bytes_scanned = 0;  ///< total entry bytes before the pass
  std::uint64_t bytes_freed = 0;    ///< entry bytes removed
};

/// On-disk map from point-key hash to an encoded finished row.
class MemoStore {
 public:
  /// Opens (and creates, including parents) the store directory.  Throws
  /// std::runtime_error when the directory cannot be created.
  explicit MemoStore(std::string dir);

  /// Returns the stored row line for `key_hash`, or nullopt.  Unreadable or
  /// corrupt entries count as misses (and are left for a future store() to
  /// overwrite).  Thread-safe.
  std::optional<std::string> lookup(const std::string& key_hash);

  /// Persists `row_line` under `key_hash` atomically.  A concurrent store to
  /// the same key is harmless: both writers hold identical bytes (same key,
  /// deterministic row), and rename is atomic.  Thread-safe.
  void store(const std::string& key_hash, const std::string& row_line);

  /// Bounds a long-lived shared store: evicts entries older than
  /// `max_age_s`, then the least-recently-used entries (by mtime — lookup
  /// refreshes it, so a hot entry stays) until the store fits `max_bytes`.
  /// Eviction order is deterministic: oldest first, ties broken by name.
  /// Racing sweeps are safe — a concurrently re-stored entry simply
  /// reappears, and an eviction under a reader costs that reader one miss
  /// (the row re-runs and is re-stored).  Returns what the pass did.
  MemoPruneStats prune(const MemoPruneOptions& opts);

  const std::string& dir() const { return dir_; }
  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }
  /// Entries removed by prune() calls on this handle.
  std::uint64_t evictions() const { return evictions_.load(); }

 private:
  std::string entry_path(const std::string& key_hash) const;

  std::string dir_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace merm::explore
