// Content-hash memoization for sweep points.
//
// Because every experiment point is a pure function of (machine config,
// workload identity, seed, code version) — PR 1's bit-identical determinism
// is what makes that true — a finished row can be cached on disk and
// replayed into any later sweep whose point hashes the same, across
// processes and across overlapping grids.  The store is a directory of
// one-file-per-key rows written atomically (tmp + rename), so concurrent
// sweeps sharing a --memo-dir never see half a row.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace merm::explore {

/// Hex digest of SHA-256(data) — the content hash behind memo keys, journal
/// grid identity, and workload fingerprints.
std::string sha256_hex(std::string_view data);

/// Identity of the simulator code producing rows: the MERM_CODE_VERSION
/// environment variable when set (useful to pin a version across rebuilds,
/// or to isolate test stores), otherwise the git revision baked in at
/// configure time, otherwise "unknown".  Part of every memo key so a store
/// never replays rows produced by different model code.
std::string code_version();

/// On-disk map from point-key hash to an encoded finished row.
class MemoStore {
 public:
  /// Opens (and creates, including parents) the store directory.  Throws
  /// std::runtime_error when the directory cannot be created.
  explicit MemoStore(std::string dir);

  /// Returns the stored row line for `key_hash`, or nullopt.  Unreadable or
  /// corrupt entries count as misses (and are left for a future store() to
  /// overwrite).  Thread-safe.
  std::optional<std::string> lookup(const std::string& key_hash);

  /// Persists `row_line` under `key_hash` atomically.  A concurrent store to
  /// the same key is harmless: both writers hold identical bytes (same key,
  /// deterministic row), and rename is atomic.  Thread-safe.
  void store(const std::string& key_hash, const std::string& row_line);

  const std::string& dir() const { return dir_; }
  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }

 private:
  std::string entry_path(const std::string& key_hash) const;

  std::string dir_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace merm::explore
