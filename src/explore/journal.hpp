// Write-ahead journal for crash-safe sweeps, and the finished-row codec it
// shares with the memo store and the process-isolation pipe.
//
// The journal is `<out>.journal`-style sidecar state: an fsync'd append of
// every finalized row (done *and* failed — both are deterministic outcomes
// that must not re-run on resume), headed by a grid hash binding the file to
// one specific sweep (per-point config + level + seed + workload fingerprint
// + code version).  SweepEngine::resume() replays journaled rows and runs
// only the rest, producing byte-identical CSV/JSON to an uninterrupted run.
//
// Crash model: appends are single write() calls followed by fsync, and the
// loader stops at the first malformed or checksum-failing line, so a row is
// either durably present or ignored — a SIGKILL mid-append costs at most the
// row being written.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>

#include "explore/sweep.hpp"

namespace merm::explore {

/// Encodes a finalized point row (status, error columns, RunResult fields,
/// metrics — everything except the trace snapshot) as one record line.
std::string encode_point_row(const PointResult& p);

/// Inverse of encode_point_row; throws core::RecordError on malformed input.
PointResult decode_point_row(const std::string& line);

/// Append-only journal of finalized rows.  Thread-safe; every append is
/// fsync'd before it returns, so a row acknowledged to the engine survives
/// the process.
class SweepJournal {
 public:
  /// Creates (truncating any previous file) a journal for a sweep whose
  /// identity is `grid_hash` over `points` points.
  static SweepJournal create(const std::string& path,
                             const std::string& grid_hash, std::size_t points);

  /// Opens an existing journal for appending.  Throws std::runtime_error if
  /// the file is missing or its header names a different grid.
  static SweepJournal append_to(const std::string& path,
                                const std::string& grid_hash,
                                std::size_t points);

  /// Loads the finalized rows of an existing journal, keyed by grid index.
  /// Verifies the header against (grid_hash, points); tolerates a torn final
  /// line (the crash case) by stopping there.
  static std::map<std::size_t, PointResult> load(const std::string& path,
                                                 const std::string& grid_hash,
                                                 std::size_t points);

  SweepJournal(SweepJournal&& other) noexcept;
  SweepJournal& operator=(SweepJournal&&) = delete;
  ~SweepJournal();

  /// Durably appends one finalized row.
  void append(std::size_t index, const PointResult& row);

  const std::string& path() const { return path_; }

 private:
  SweepJournal(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
  std::mutex mutex_;
};

}  // namespace merm::explore
