#include "explore/progress.hpp"

namespace merm::explore {

ThroughputMeter::Estimate ThroughputMeter::note(const SweepProgress& p,
                                                Clock::time_point now) {
  const bool replayed =
      p.row != nullptr && (p.row->memo_hit || p.row->resumed);
  if (!replayed) {
    ++fresh_;
    times_.push_back(now);
    while (times_.size() > window_) times_.pop_front();
  }
  Estimate est;
  est.fresh = fresh_;
  if (times_.size() >= 2) {
    const double span =
        std::chrono::duration<double>(times_.back() - times_.front()).count();
    if (span > 0.0) {
      est.points_per_s =
          static_cast<double>(times_.size() - 1) / span;
    }
  }
  if (est.points_per_s > 0.0 && p.total >= p.done) {
    est.eta_s = static_cast<double>(p.total - p.done) / est.points_per_s;
  }
  return est;
}

}  // namespace merm::explore
