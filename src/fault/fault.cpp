#include "fault/fault.hpp"

#include <algorithm>
#include <charconv>
#include <deque>
#include <stdexcept>

namespace merm::fault {

namespace {
bool valid_node(trace::NodeId id, std::uint32_t n) {
  return id >= 0 && static_cast<std::uint32_t>(id) < n;
}
}  // namespace

FaultPlan::FaultPlan(const machine::FaultParams& params,
                     const network::Topology& topology)
    : params_(params), topo_(topology), rng_(params.seed) {
  const std::uint32_t n = topo_.node_count();
  link_down_.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    link_down_[v].assign(topo_.port_count(static_cast<NodeId>(v)), 0);
  }
  node_down_.assign(n, 0);

  // Validate the script eagerly: a typo'd node id should fail at build time,
  // not silently schedule a no-op.
  for (const machine::LinkFaultEvent& e : params_.link_events) {
    if (!valid_node(e.a, n) || !valid_node(e.b, n)) {
      throw std::invalid_argument("fault plan: link event references node " +
                                  std::to_string(std::max(e.a, e.b)) +
                                  " outside topology of " + std::to_string(n) +
                                  " nodes");
    }
    port_towards(e.a, e.b);  // throws when not adjacent
    port_towards(e.b, e.a);
    if (e.up_at <= e.down_at && e.up_at != sim::kTickMax) {
      throw std::invalid_argument(
          "fault plan: link repair must come after failure");
    }
  }
  for (const machine::NodeFaultEvent& e : params_.node_events) {
    if (!valid_node(e.node, n)) {
      throw std::invalid_argument("fault plan: node event references node " +
                                  std::to_string(e.node) +
                                  " outside topology of " + std::to_string(n) +
                                  " nodes");
    }
    if (e.up_at <= e.down_at && e.up_at != sim::kTickMax) {
      throw std::invalid_argument(
          "fault plan: node repair must come after crash");
    }
  }
}

void FaultPlan::arm(sim::Simulator& sim) {
  // Priority -1: a fault transition at time T applies before any regular
  // model event at T, so "kill the link at 100us" means exactly that.
  for (const machine::LinkFaultEvent& e : params_.link_events) {
    sim.schedule_at(
        e.down_at,
        [this, e] {
          set_link_state(e.a, e.b, true);
          links_failed.add();
          recompute_tables();
        },
        -1);
    if (e.up_at != sim::kTickMax) {
      sim.schedule_at(
          e.up_at,
          [this, e] {
            set_link_state(e.a, e.b, false);
            links_repaired.add();
            recompute_tables();
          },
          -1);
    }
  }
  for (const machine::NodeFaultEvent& e : params_.node_events) {
    sim.schedule_at(
        e.down_at,
        [this, e] {
          set_node_state(e.node, true);
          nodes_failed.add();
          recompute_tables();
        },
        -1);
    if (e.up_at != sim::kTickMax) {
      sim.schedule_at(
          e.up_at,
          [this, e] {
            set_node_state(e.node, false);
            nodes_repaired.add();
            recompute_tables();
          },
          -1);
    }
  }
}

void FaultPlan::enable_pdes(std::uint32_t node_count) {
  // Per-node draw streams: splitmix-style spread of the plan seed so node
  // streams are decorrelated but still pure functions of (seed, node).
  pdes_draws_.clear();
  pdes_draws_.reserve(node_count);
  for (std::uint32_t n = 0; n < node_count; ++n) {
    pdes_draws_.push_back(NodeDraws{
        sim::Rng(params_.seed ^ (0x9e3779b97f4a7c15ULL * (n + 1))), 0, 0});
  }

  // Build the transition list in the exact order arm() schedules its events
  // (per link event: down then up; then node events), stable-sorted by time
  // — same-time transitions therefore apply in the same order the serial
  // event queue would have dispatched them.
  transitions_.clear();
  next_transition_ = 0;
  for (const machine::LinkFaultEvent& e : params_.link_events) {
    transitions_.push_back({e.down_at, [this, e] {
                              set_link_state(e.a, e.b, true);
                              links_failed.add();
                              recompute_tables();
                            }});
    if (e.up_at != sim::kTickMax) {
      transitions_.push_back({e.up_at, [this, e] {
                                set_link_state(e.a, e.b, false);
                                links_repaired.add();
                                recompute_tables();
                              }});
    }
  }
  for (const machine::NodeFaultEvent& e : params_.node_events) {
    transitions_.push_back({e.down_at, [this, e] {
                              set_node_state(e.node, true);
                              nodes_failed.add();
                              recompute_tables();
                            }});
    if (e.up_at != sim::kTickMax) {
      transitions_.push_back({e.up_at, [this, e] {
                                set_node_state(e.node, false);
                                nodes_repaired.add();
                                recompute_tables();
                              }});
    }
  }
  std::stable_sort(transitions_.begin(), transitions_.end(),
                   [](const Transition& a, const Transition& b) {
                     return a.at < b.at;
                   });
}

sim::Tick FaultPlan::apply_transitions(sim::Tick t, sim::Tick until) {
  // A transition at exactly t applies before the window starting at t runs,
  // reproducing arm()'s priority -1 ("the fault precedes the model events of
  // its tick").  When every queue has drained (t == kTickMax) the remaining
  // transitions up to `until` still apply, so failure/repair counters match
  // the serial run even past the last model event.
  const sim::Tick through = std::min(t, until);
  while (next_transition_ < transitions_.size() &&
         transitions_[next_transition_].at <= through) {
    transitions_[next_transition_].apply();
    ++next_transition_;
  }
  return next_transition_ < transitions_.size()
             ? transitions_[next_transition_].at
             : sim::kTickMax;
}

bool FaultPlan::draw_drop_at(NodeId src) {
  if (pdes_draws_.empty()) return draw_drop();
  if (params_.drop_probability <= 0.0) return false;
  NodeDraws& d = pdes_draws_[static_cast<std::size_t>(src)];
  const bool hit = d.rng.chance(params_.drop_probability);
  if (hit) ++d.drops;
  return hit;
}

bool FaultPlan::draw_corrupt_at(NodeId dst) {
  if (pdes_draws_.empty()) return draw_corrupt();
  if (params_.corrupt_probability <= 0.0) return false;
  NodeDraws& d = pdes_draws_[static_cast<std::size_t>(dst)];
  const bool hit = d.rng.chance(params_.corrupt_probability);
  if (hit) ++d.corruptions;
  return hit;
}

void FaultPlan::fold_pdes_draws() {
  for (NodeDraws& d : pdes_draws_) {
    drops_drawn.add(d.drops);
    corruptions_drawn.add(d.corruptions);
    d.drops = 0;
    d.corruptions = 0;
  }
}

bool FaultPlan::reachable(NodeId src, NodeId dst) const {
  if (src == dst) return node_usable(src);
  if (down_elements_ == 0) return true;  // live graph == full graph
  return distance(src, dst) != kUnreachable;
}

std::uint32_t FaultPlan::next_port(NodeId here, NodeId dst) const {
  return next_port_[static_cast<std::size_t>(here) * topo_.node_count() +
                    static_cast<std::size_t>(dst)];
}

std::uint32_t FaultPlan::distance(NodeId src, NodeId dst) const {
  if (down_elements_ == 0) return topo_.hop_distance(src, dst);
  return distance_[static_cast<std::size_t>(src) * topo_.node_count() +
                   static_cast<std::size_t>(dst)];
}

bool FaultPlan::draw_drop() {
  // Short-circuit keeps the RNG untouched when the probability is zero, so
  // adding scripted-only faults never perturbs stochastic workloads.
  if (params_.drop_probability <= 0.0) return false;
  const bool hit = rng_.chance(params_.drop_probability);
  if (hit) drops_drawn.add();
  return hit;
}

bool FaultPlan::draw_corrupt() {
  if (params_.corrupt_probability <= 0.0) return false;
  const bool hit = rng_.chance(params_.corrupt_probability);
  if (hit) corruptions_drawn.add();
  return hit;
}

void FaultPlan::register_stats(stats::StatRegistry& reg,
                               const std::string& prefix) {
  reg.register_counter(prefix + ".links_failed", &links_failed);
  reg.register_counter(prefix + ".links_repaired", &links_repaired);
  reg.register_counter(prefix + ".nodes_failed", &nodes_failed);
  reg.register_counter(prefix + ".nodes_repaired", &nodes_repaired);
  reg.register_counter(prefix + ".drops_drawn", &drops_drawn);
  reg.register_counter(prefix + ".corruptions_drawn", &corruptions_drawn);
}

std::uint32_t FaultPlan::port_towards(NodeId from, NodeId to) const {
  for (std::uint32_t p = 0; p < topo_.port_count(from); ++p) {
    if (topo_.neighbor(from, p).node == to) return p;
  }
  throw std::invalid_argument("fault plan: nodes " + std::to_string(from) +
                              " and " + std::to_string(to) +
                              " are not adjacent in the topology");
}

void FaultPlan::adjust(std::uint32_t& counter, bool down) {
  if (down) {
    if (counter++ == 0) ++down_elements_;
  } else {
    if (--counter == 0) --down_elements_;
  }
}

void FaultPlan::set_link_state(NodeId a, NodeId b, bool down) {
  adjust(link_down_[static_cast<std::size_t>(a)][port_towards(a, b)], down);
  adjust(link_down_[static_cast<std::size_t>(b)][port_towards(b, a)], down);
}

void FaultPlan::set_node_state(NodeId node, bool down) {
  adjust(node_down_[static_cast<std::size_t>(node)], down);
}

void FaultPlan::recompute_tables() {
  const std::uint32_t n = topo_.node_count();
  next_port_.assign(static_cast<std::size_t>(n) * n, network::kNoPort);
  distance_.assign(static_cast<std::size_t>(n) * n, kUnreachable);
  if (down_elements_ == 0) return;  // callers fall back to the full tables

  // One BFS per destination over the live subgraph, mirroring
  // Topology::compute_tables (same lowest-port tie-break, so a degraded
  // table with nothing actually on the route matches the fault-free path).
  for (std::uint32_t dest = 0; dest < n; ++dest) {
    if (node_down_[dest] != 0) continue;
    auto dist = [&](std::uint32_t v) -> std::uint32_t& {
      return distance_[static_cast<std::size_t>(v) * n + dest];
    };
    dist(dest) = 0;
    std::deque<std::uint32_t> frontier{dest};
    while (!frontier.empty()) {
      const std::uint32_t v = frontier.front();
      frontier.pop_front();
      // BFS runs dest -> source, so an edge u -> v is usable for routing
      // when u's outgoing link towards v is alive.
      for (std::uint32_t p = 0; p < topo_.port_count(static_cast<NodeId>(v));
           ++p) {
        const auto u =
            static_cast<std::uint32_t>(topo_.neighbor(static_cast<NodeId>(v), p).node);
        if (node_down_[u] != 0) continue;
        const std::uint32_t back =
            port_towards(static_cast<NodeId>(u), static_cast<NodeId>(v));
        if (link_down_[u][back] != 0) continue;
        if (dist(u) == kUnreachable) {
          dist(u) = dist(v) + 1;
          frontier.push_back(u);
        }
      }
    }
    for (std::uint32_t here = 0; here < n; ++here) {
      if (here == dest || dist(here) == kUnreachable) continue;
      for (std::uint32_t p = 0; p < topo_.port_count(static_cast<NodeId>(here));
           ++p) {
        if (link_down_[here][p] != 0) continue;
        const auto u = static_cast<std::uint32_t>(
            topo_.neighbor(static_cast<NodeId>(here), p).node);
        if (node_down_[u] != 0) continue;
        if (dist(u) != kUnreachable && dist(u) + 1 == dist(here)) {
          next_port_[static_cast<std::size_t>(here) * n + dest] = p;
          break;
        }
      }
    }
  }
}

namespace {

[[noreturn]] void spec_fail(const std::string& token, const char* why) {
  throw std::invalid_argument("fault spec: bad token '" + token + "': " + why);
}

std::uint64_t parse_u64(const std::string& token, const std::string& text) {
  std::uint64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) spec_fail(token, "expected an integer");
  return value;
}

double parse_prob(const std::string& token, const std::string& text) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    spec_fail(token, "expected a probability");
  }
  if (used != text.size() || value < 0.0 || value > 1.0) {
    spec_fail(token, "probability must be in [0, 1]");
  }
  return value;
}

/// Parses "A-B@D[:U]" / "N@D[:U]" time windows (microseconds).
void parse_window(const std::string& token, const std::string& text,
                  sim::Tick& down_at, sim::Tick& up_at) {
  const std::size_t at = text.find('@');
  if (at == std::string::npos) spec_fail(token, "missing @DOWN_us");
  const std::string window = text.substr(at + 1);
  const std::size_t colon = window.find(':');
  down_at = parse_u64(token, window.substr(0, colon)) *
            sim::kTicksPerMicrosecond;
  up_at = sim::kTickMax;
  if (colon != std::string::npos) {
    up_at = parse_u64(token, window.substr(colon + 1)) *
            sim::kTicksPerMicrosecond;
    if (up_at <= down_at) spec_fail(token, "repair time must follow failure");
  }
}

}  // namespace

machine::FaultParams parse_spec(const std::string& spec) {
  machine::FaultParams params;
  params.enabled = true;

  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string token =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (token.empty()) continue;

    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) spec_fail(token, "expected key=value");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);

    if (key == "drop") {
      params.drop_probability = parse_prob(token, value);
    } else if (key == "corrupt") {
      params.corrupt_probability = parse_prob(token, value);
    } else if (key == "seed") {
      params.seed = parse_u64(token, value);
    } else if (key == "timeout_us") {
      params.ack_timeout = parse_u64(token, value) * sim::kTicksPerMicrosecond;
    } else if (key == "retries") {
      params.max_retries = static_cast<std::uint32_t>(parse_u64(token, value));
    } else if (key == "backoff_us") {
      params.retry_backoff =
          parse_u64(token, value) * sim::kTicksPerMicrosecond;
    } else if (key == "link") {
      const std::size_t dash = value.find('-');
      const std::size_t at = value.find('@');
      if (dash == std::string::npos || at == std::string::npos || dash > at) {
        spec_fail(token, "expected link=A-B@DOWN_us[:UP_us]");
      }
      machine::LinkFaultEvent e;
      e.a = static_cast<NodeId>(parse_u64(token, value.substr(0, dash)));
      e.b = static_cast<NodeId>(
          parse_u64(token, value.substr(dash + 1, at - dash - 1)));
      parse_window(token, value, e.down_at, e.up_at);
      params.link_events.push_back(e);
    } else if (key == "node") {
      const std::size_t at = value.find('@');
      if (at == std::string::npos) {
        spec_fail(token, "expected node=N@DOWN_us[:UP_us]");
      }
      machine::NodeFaultEvent e;
      e.node = static_cast<NodeId>(parse_u64(token, value.substr(0, at)));
      parse_window(token, value, e.down_at, e.up_at);
      params.node_events.push_back(e);
    } else {
      spec_fail(token, "unknown key");
    }
  }
  return params;
}

}  // namespace merm::fault
