// The fault-injection subsystem: deterministic, seed-driven degraded-mode
// evaluation for the workbench.
//
// A FaultPlan is compiled from machine::FaultParams against a concrete
// Topology and installed into the Network as its FaultInjector.  It owns
// three kinds of faults:
//
//  - scripted link outages (both directions of a bidirectional pair),
//  - scripted whole-node crashes (the node neither sources, sinks, nor
//    forwards traffic), and
//  - per-message Bernoulli drop/corruption draws from a dedicated Rng.
//
// Scripted transitions are armed as simulator events, so all fault state
// changes — and therefore every RNG draw order — happen inside the
// deterministic event loop: a given (FaultParams, workload) pair replays
// bit-identically across repeated runs and across SweepEngine thread counts.
//
// While any element is down the plan maintains a fault-aware shortest-path
// routing table (BFS over the live subgraph, lowest-port tie-break, exactly
// mirroring Topology::compute_tables); the Network walks it instead of the
// arithmetic route, which is how messages detour around dead links.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "machine/params.hpp"
#include "network/fault_hooks.hpp"
#include "network/topology.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stats/stats.hpp"

namespace merm::fault {

using trace::NodeId;

class FaultPlan : public network::FaultInjector {
 public:
  /// Compiles `params` against the topology.  Throws std::invalid_argument
  /// when a scripted event references a node or link that does not exist.
  FaultPlan(const machine::FaultParams& params,
            const network::Topology& topology);

  /// Schedules every scripted down/up transition on `sim`.  Call once,
  /// before the run starts.  Transitions fire at priority -1 so a fault at
  /// time T affects everything else happening at T.
  void arm(sim::Simulator& sim);

  // ---- conservative-PDES mode -------------------------------------------

  /// Switches the plan to PDES operation: scripted transitions are *not*
  /// armed as events but applied by the engine's barrier hook (see
  /// apply_transitions), and the probabilistic draws move to per-node
  /// streams so their order is partition-local.  Call instead of arm().
  void enable_pdes(std::uint32_t node_count);

  /// The engine's BarrierHook body: applies every scripted transition due at
  /// or before min(t, until) — in the same order arm() would have fired them
  /// (stable by time) — and returns the time of the next pending transition
  /// (kTickMax when none), so no window runs past it.  Runs on the
  /// coordinator between windows; the fault tables it mutates are read-only
  /// inside windows.
  sim::Tick apply_transitions(sim::Tick t, sim::Tick until);

  /// Folds the per-node draw tallies into drops_drawn/corruptions_drawn.
  void fold_pdes_draws();

  bool draw_drop_at(NodeId src) override;
  bool draw_corrupt_at(NodeId dst) override;

  const machine::FaultParams& params() const { return params_; }

  // -- FaultInjector --
  bool link_usable(NodeId from, std::uint32_t port) const override {
    return link_down_[static_cast<std::size_t>(from)][port] == 0;
  }
  bool node_usable(NodeId node) const override {
    return node_down_[static_cast<std::size_t>(node)] == 0;
  }
  bool degraded() const override { return down_elements_ > 0; }
  bool reachable(NodeId src, NodeId dst) const override;
  std::uint32_t next_port(NodeId here, NodeId dst) const override;
  bool draw_drop() override;
  bool draw_corrupt() override;

  /// Fault-aware hop distance (kUnreachable when partitioned).  Exposed for
  /// tests and diagnostics.
  std::uint32_t distance(NodeId src, NodeId dst) const;
  static constexpr std::uint32_t kUnreachable =
      std::numeric_limits<std::uint32_t>::max();

  // -- statistics --
  stats::Counter links_failed;
  stats::Counter links_repaired;
  stats::Counter nodes_failed;
  stats::Counter nodes_repaired;
  stats::Counter drops_drawn;
  stats::Counter corruptions_drawn;

  void register_stats(stats::StatRegistry& reg, const std::string& prefix);

 private:
  /// Output port on `from` whose link reaches `to`; throws if not adjacent.
  std::uint32_t port_towards(NodeId from, NodeId to) const;

  /// Marks/unmarks both unidirectional links of the pair.  Down states nest
  /// (counters), so overlapping scripted outages compose correctly.
  void set_link_state(NodeId a, NodeId b, bool down);
  void set_node_state(NodeId node, bool down);
  void adjust(std::uint32_t& counter, bool down);

  /// Rebuilds the fault-aware tables over the live subgraph.
  void recompute_tables();

  machine::FaultParams params_;
  const network::Topology& topo_;
  sim::Rng rng_;

  std::vector<std::vector<std::uint32_t>> link_down_;  ///< [node][port] depth
  std::vector<std::uint32_t> node_down_;               ///< [node] depth
  std::uint32_t down_elements_ = 0;

  std::vector<std::uint32_t> next_port_;  ///< [here * n + dest], kNoPort
  std::vector<std::uint32_t> distance_;   ///< [src * n + dest], kUnreachable

  // -- PDES state (empty unless enable_pdes() was called) --
  struct NodeDraws {
    sim::Rng rng;
    std::uint64_t drops = 0;
    std::uint64_t corruptions = 0;
  };
  struct Transition {
    sim::Tick at;
    std::function<void()> apply;
  };
  std::vector<NodeDraws> pdes_draws_;    ///< [node]
  std::vector<Transition> transitions_;  ///< stable-sorted by time
  std::size_t next_transition_ = 0;
};

/// Parses a compact command-line fault spec into FaultParams (with
/// enabled=true).  Comma-separated tokens:
///
///   drop=P            per-message drop probability in [0, 1]
///   corrupt=P         per-message corruption probability in [0, 1]
///   seed=N            RNG seed for the probabilistic draws
///   timeout_us=N      sync-send ack timeout, microseconds
///   retries=N         max retransmissions before giving up
///   backoff_us=N      async-send retry backoff, microseconds
///   link=A-B@D[:U]    link A<->B down at D us, repaired at U us (never
///                     repaired when :U is omitted)
///   node=N@D[:U]      node N crashes at D us, recovers at U us
///
/// Example: "link=0-1@100:500,drop=0.01,retries=6,seed=7"
/// Throws std::invalid_argument on malformed input.
machine::FaultParams parse_spec(const std::string& spec);

}  // namespace merm::fault
