#include "obs/host_profiler.hpp"

namespace merm::obs {

void HostProfiler::begin(std::string name) {
  Phase p;
  p.name = std::move(name);
  p.begin_s = elapsed_seconds();
  p.depth = static_cast<int>(stack_.size());
  stack_.push_back(phases_.size());
  phases_.push_back(std::move(p));
}

void HostProfiler::end() {
  if (stack_.empty()) return;  // unbalanced end(): ignore rather than throw
  Phase& p = phases_[stack_.back()];
  stack_.pop_back();
  p.dur_s = elapsed_seconds() - p.begin_s;
}

double HostProfiler::total_seconds(const std::string& name) const {
  double total = 0.0;
  for (const Phase& p : phases_) {
    if (p.name == name) total += p.dur_s;
  }
  return total;
}

void HostProfiler::reset() {
  phases_.clear();
  stack_.clear();
  origin_ = Clock::now();
}

}  // namespace merm::obs
