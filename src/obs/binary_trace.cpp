#include "obs/binary_trace.hpp"

#include <cstring>
#include <limits>
#include <stdexcept>

namespace merm::obs {

namespace {

constexpr char kMagic[4] = {'M', 'O', 'B', 'T'};
constexpr std::uint32_t kVersion = 1;

void put_bytes(std::ostream& os, const void* p, std::size_t n) {
  os.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
}

template <typename T>
void put_le(std::ostream& os, T v) {
  unsigned char buf[sizeof(T)];
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf[i] = static_cast<unsigned char>(
        static_cast<std::uint64_t>(v) >> (8 * i) & 0xff);
  }
  put_bytes(os, buf, sizeof(T));
}

void get_bytes(std::istream& is, void* p, std::size_t n) {
  is.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(is.gcount()) != n) {
    throw std::runtime_error("truncated MOBT trace");
  }
}

template <typename T>
T get_le(std::istream& is) {
  unsigned char buf[sizeof(T)];
  get_bytes(is, buf, sizeof(T));
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  }
  return static_cast<T>(v);
}

}  // namespace

void write_binary_trace(std::ostream& os, const TraceData& data) {
  put_bytes(os, kMagic, sizeof(kMagic));
  put_le<std::uint32_t>(os, kVersion);
  put_le<std::uint32_t>(os, data.hung ? 1 : 0);
  put_le<std::uint64_t>(os, data.sealed_at);
  put_le<std::uint32_t>(os, static_cast<std::uint32_t>(data.tracks.size()));
  for (const TraceData::Track& t : data.tracks) {
    put_le<std::uint32_t>(os, static_cast<std::uint32_t>(t.name.size()));
    put_bytes(os, t.name.data(), t.name.size());
    put_le<std::uint64_t>(os, t.dropped);
  }
  put_le<std::uint64_t>(os, data.events.size());
  for (const TraceEvent& ev : data.events) {
    put_le<std::uint64_t>(os, ev.begin);
    put_le<std::uint64_t>(os, ev.end);
    put_le<std::uint64_t>(os, static_cast<std::uint64_t>(ev.a));
    put_le<std::uint32_t>(os, static_cast<std::uint32_t>(ev.b));
    put_le<std::uint32_t>(os, static_cast<std::uint32_t>(ev.c));
    put_le<std::uint16_t>(os, ev.track);
    put_le<std::uint8_t>(os, static_cast<std::uint8_t>(ev.kind));
    put_le<std::uint8_t>(os, ev.flags);
  }
}

TraceData read_binary_trace(std::istream& is) {
  char magic[4];
  get_bytes(is, magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not a MOBT trace (bad magic)");
  }
  const auto version = get_le<std::uint32_t>(is);
  if (version != kVersion) {
    throw std::runtime_error("unsupported MOBT version " +
                             std::to_string(version));
  }
  TraceData data;
  data.hung = get_le<std::uint32_t>(is) != 0;
  data.sealed_at = get_le<std::uint64_t>(is);
  const auto n_tracks = get_le<std::uint32_t>(is);
  data.tracks.resize(n_tracks);
  for (TraceData::Track& t : data.tracks) {
    const auto len = get_le<std::uint32_t>(is);
    if (len > (1u << 20)) throw std::runtime_error("corrupt MOBT track name");
    t.name.resize(len);
    get_bytes(is, t.name.data(), len);
    t.dropped = get_le<std::uint64_t>(is);
  }
  const auto n_events = get_le<std::uint64_t>(is);
  if (n_events > std::numeric_limits<std::uint32_t>::max()) {
    throw std::runtime_error("corrupt MOBT event count");
  }
  data.events.resize(static_cast<std::size_t>(n_events));
  for (TraceEvent& ev : data.events) {
    ev.begin = get_le<std::uint64_t>(is);
    ev.end = get_le<std::uint64_t>(is);
    ev.a = static_cast<std::int64_t>(get_le<std::uint64_t>(is));
    ev.b = static_cast<std::int32_t>(get_le<std::uint32_t>(is));
    ev.c = static_cast<std::int32_t>(get_le<std::uint32_t>(is));
    ev.track = get_le<std::uint16_t>(is);
    ev.kind = static_cast<SpanKind>(get_le<std::uint8_t>(is));
    ev.flags = get_le<std::uint8_t>(is);
  }
  return data;
}

}  // namespace merm::obs
