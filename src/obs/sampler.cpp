#include "obs/sampler.hpp"

#include <ostream>

#include "stats/stats.hpp"

namespace merm::obs {

CounterSampler::CounterSampler(const stats::StatRegistry& registry,
                               std::vector<std::string> counter_names)
    : registry_(registry), names_(std::move(counter_names)) {}

void CounterSampler::sample(sim::Tick t) {
  Row row;
  row.time = t;
  row.values.reserve(names_.size());
  for (const std::string& name : names_) {
    row.values.push_back(registry_.counter(name));
  }
  rows_.push_back(std::move(row));
}

void CounterSampler::write_csv(std::ostream& os) const {
  os << "time_ps";
  for (const std::string& name : names_) os << ',' << name;
  os << "\n";
  for (const Row& row : rows_) {
    os << row.time;
    for (const std::uint64_t v : row.values) os << ',' << v;
    os << "\n";
  }
}

void CounterSampler::write_csv_deltas(std::ostream& os) const {
  os << "time_ps";
  for (const std::string& name : names_) os << ',' << name;
  os << "\n";
  for (std::size_t i = 1; i < rows_.size(); ++i) {
    os << rows_[i].time;
    for (std::size_t c = 0; c < names_.size(); ++c) {
      os << ',' << (rows_[i].values[c] - rows_[i - 1].values[c]);
    }
    os << "\n";
  }
}

void CounterSampler::write_csv_rates(std::ostream& os) const {
  os << "time_ps";
  for (const std::string& name : names_) os << ',' << name << "_per_s";
  os << "\n";
  for (std::size_t i = 1; i < rows_.size(); ++i) {
    const sim::Tick dt = rows_[i].time - rows_[i - 1].time;
    if (dt == 0) continue;  // guard: no interval, no rate
    const double seconds =
        static_cast<double>(dt) / static_cast<double>(sim::kTicksPerSecond);
    os << rows_[i].time;
    for (std::size_t c = 0; c < names_.size(); ++c) {
      const double delta =
          static_cast<double>(rows_[i].values[c] - rows_[i - 1].values[c]);
      os << ',' << delta / seconds;
    }
    os << "\n";
  }
}

}  // namespace merm::obs
