// Compact binary trace format ("MOBT"): the post-mortem interchange form.
//
// Fixed little-endian layout, 36 bytes per event — a 4x4 detailed run with
// full rings serializes in a few MB where the Chrome JSON would be tens.
// trace_tool converts MOBT files to Chrome JSON offline, so production runs
// can record cheaply and visualize later.  write/read round-trip exactly
// (byte-identical re-serialization), which is also what the sweep
// determinism test hashes.
#pragma once

#include <istream>
#include <ostream>

#include "obs/trace.hpp"

namespace merm::obs {

/// Serializes `data`; byte-deterministic for identical traces.
void write_binary_trace(std::ostream& os, const TraceData& data);

/// Parses a MOBT stream.  Throws std::runtime_error on bad magic, version,
/// or truncation.
TraceData read_binary_trace(std::istream& is);

}  // namespace merm::obs
