// Periodic multi-counter snapshots: the run-time visualization feed.
//
// Attach to a stats::StatRegistry, pick counters by name, call sample() on
// a schedule (e.g. from the Workbench progress hook); the CSV writers yield
// tidy time-series tables (one column per counter) ready for plotting —
// cumulative values, per-interval deltas, or per-second rates.
//
// Moved here from stats:: (the sampler is an observability consumer of the
// registry, not a statistics primitive); stats::CounterSampler remains as a
// deprecated alias.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace merm::stats {
class StatRegistry;
}  // namespace merm::stats

namespace merm::obs {

class CounterSampler {
 public:
  CounterSampler(const stats::StatRegistry& registry,
                 std::vector<std::string> counter_names);

  /// Records one row at simulated time `t`.
  void sample(sim::Tick t);

  std::size_t samples() const { return rows_.size(); }
  const std::vector<std::string>& columns() const { return names_; }

  /// CSV: time_ps,<counter...> (cumulative values).
  void write_csv(std::ostream& os) const;

  /// Per-interval deltas instead of cumulative values.
  void write_csv_deltas(std::ostream& os) const;

  /// Per-interval rates in counts per simulated second.  Rows whose
  /// interval has zero elapsed time (two samples at the same tick — e.g. a
  /// manual sample at the end of a run that finished exactly on a progress
  /// boundary) are skipped: a rate over no time is undefined, not infinite.
  void write_csv_rates(std::ostream& os) const;

 private:
  const stats::StatRegistry& registry_;
  std::vector<std::string> names_;
  struct Row {
    sim::Tick time;
    std::vector<std::uint64_t> values;
  };
  std::vector<Row> rows_;
};

}  // namespace merm::obs
