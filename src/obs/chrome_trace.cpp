#include "obs/chrome_trace.hpp"

#include <cinttypes>
#include <cstdio>

namespace merm::obs {

namespace {

/// Kind-specific names for TraceEvent::{a,b,c}; nullptr = omit the field.
struct ArgNames {
  const char* a;
  const char* b;
  const char* c;
};

ArgNames arg_names(SpanKind k) {
  switch (k) {
    case SpanKind::kCompute:
      return {nullptr, nullptr, nullptr};
    case SpanKind::kMissWalk:
      return {"addr", nullptr, nullptr};
    case SpanKind::kBusWait:
      return {"bytes", nullptr, nullptr};
    case SpanKind::kLinkTransit:
      return {"bytes", "dst", "delivered"};
    case SpanKind::kSendBlock:
      return {"bytes", "peer", "tag"};
    case SpanKind::kRecvBlock:
      return {nullptr, "peer", "tag"};
    case SpanKind::kNicRetry:
      return {"attempt", "peer", "tag"};
    case SpanKind::kReroute:
      return {"bytes", "dst", nullptr};
    case SpanKind::kDrop:
      return {"bytes", "dst", nullptr};
  }
  return {nullptr, nullptr, nullptr};
}

/// Ticks (picoseconds) as a microsecond decimal: exact, no floating point,
/// so identical runs serialize to identical bytes.
void put_us(std::ostream& os, sim::Tick ps) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%06" PRIu64, ps / 1'000'000,
                ps % 1'000'000);
  os << buf;
}

void put_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

void put_args(std::ostream& os, const TraceEvent& ev, bool hung) {
  const ArgNames names = arg_names(ev.kind);
  bool any = false;
  const auto field = [&](const char* name, std::int64_t v) {
    if (name == nullptr) return;
    os << (any ? ", " : "") << '"' << name << "\": " << v;
    any = true;
  };
  os << ", \"args\": {";
  field(names.a, ev.a);
  field(names.b, ev.b);
  field(names.c, ev.c);
  if ((ev.flags & kFlagOpen) != 0) {
    os << (any ? ", " : "") << "\"unterminated\": 1";
    any = true;
    if (hung) os << ", \"hang\": 1";
  }
  os << '}';
}

}  // namespace

void write_chrome_trace(std::ostream& os, const TraceData& data,
                        const HostProfiler* host) {
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  os << "{\"ph\": \"M\", \"pid\": 0, \"name\": \"process_name\", "
        "\"args\": {\"name\": \"simulated\"}}";
  for (std::size_t t = 0; t < data.tracks.size(); ++t) {
    os << ",\n{\"ph\": \"M\", \"pid\": 0, \"tid\": " << t
       << ", \"name\": \"thread_name\", \"args\": {\"name\": ";
    put_json_string(os, data.tracks[t].name);
    os << "}}";
    os << ",\n{\"ph\": \"M\", \"pid\": 0, \"tid\": " << t
       << ", \"name\": \"thread_sort_index\", \"args\": {\"sort_index\": "
       << t << "}}";
  }

  for (const TraceEvent& ev : data.events) {
    const bool instant = (ev.flags & kFlagInstant) != 0;
    const bool open = (ev.flags & kFlagOpen) != 0;
    os << ",\n{\"ph\": \"" << (instant ? 'i' : 'X')
       << "\", \"pid\": 0, \"tid\": " << ev.track << ", \"ts\": ";
    put_us(os, ev.begin);
    if (instant) {
      os << ", \"s\": \"t\"";
    } else {
      os << ", \"dur\": ";
      put_us(os, ev.end - ev.begin);
    }
    os << ", \"name\": \"" << to_string(ev.kind) << "\", \"cat\": \"sim"
       << (open ? (data.hung ? ",hang" : ",open") : "") << '"';
    put_args(os, ev, data.hung);
    os << '}';
  }

  if (host != nullptr) {
    os << ",\n{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
          "\"args\": {\"name\": \"host\"}}";
    os << ",\n{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
          "\"name\": \"thread_name\", \"args\": {\"name\": \"phases\"}}";
    for (const HostProfiler::Phase& p : host->phases()) {
      char ts[40];
      char dur[40];
      std::snprintf(ts, sizeof(ts), "%.3f", p.begin_s * 1e6);
      std::snprintf(dur, sizeof(dur), "%.3f", p.dur_s * 1e6);
      os << ",\n{\"ph\": \"X\", \"pid\": 1, \"tid\": 0, \"ts\": " << ts
         << ", \"dur\": " << dur << ", \"name\": ";
      put_json_string(os, p.name);
      os << ", \"cat\": \"host\", \"args\": {\"depth\": " << p.depth << "}}";
    }
  }

  os << "\n]}\n";
}

}  // namespace merm::obs
