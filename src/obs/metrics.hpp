// Runtime metrics: a registry of named counters, gauges and fixed-bucket
// histograms with thread-sharded recording and merge-on-snapshot.
//
// Recording is the hot side: each handle owns a small array of cache-line
// padded atomic shards and a thread bumps "its" shard with a relaxed RMW —
// no locks, no false sharing between pool workers.  Reading is the cold
// side: snapshots merge the shards with plain atomic loads, so scraping a
// registry while workers record is race-free (TSan-clean) and two
// snapshots of an idle registry are byte-identical.
//
// Like HostProfiler, everything here is host-side telemetry: nothing a
// metric records is ever consulted by the simulation, so enabling metrics
// cannot perturb simulated results (the PDES determinism contract).
//
// Exposition: Prometheus text format (# HELP/# TYPE, counters named
// *_total by convention at the call site, histogram _bucket{le=...} with
// cumulative counts plus _sum/_count) and a structured JSON mirror.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace merm::obs {

/// Label set attached to one instrument, e.g. {{"job", "ab12"}}.  Kept in
/// insertion order for rendering; (name, rendered labels) is the registry
/// key.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

namespace detail {

inline constexpr std::size_t kMetricShards = 16;

/// Stable per-thread shard slot: threads are striped round-robin across
/// the shard array, so two pool workers almost never contend on a line.
std::size_t metrics_shard_index();

struct alignas(64) ShardCell {
  std::atomic<std::uint64_t> v{0};
};

}  // namespace detail

/// Monotonic counter (integer).  add() is wait-free on x86.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    shards_[detail::metrics_shard_index()].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t value() const;

 private:
  std::array<detail::ShardCell, detail::kMetricShards> shards_;
};

/// Last-writer-wins double with add() for up/down counts (pool busyness).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d);
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: upper bounds are set at registration and never
/// change, so recording is a binary search plus one sharded bucket bump.
class Histogram {
 public:
  /// Merged, immutable view of one histogram at a point in time.
  struct View {
    std::vector<double> bounds;          ///< finite upper bounds (le)
    std::vector<std::uint64_t> counts;   ///< per-bucket, bounds.size()+1
    std::uint64_t count = 0;
    double sum = 0.0;
    /// Prometheus-style quantile: linear interpolation inside the bucket;
    /// observations in the +Inf bucket clamp to the last finite bound.
    /// Returns 0 for an empty histogram.
    double quantile(double q) const;
  };

  void observe(double v);
  View view() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;
  struct Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<double> sum{0.0};
  };
  std::array<Shard, detail::kMetricShards> shards_;
};

/// Owner of all instruments.  Registration takes a mutex; the returned
/// references are stable for the registry's lifetime and recording through
/// them never locks.  Re-registering the same (name, labels) returns the
/// existing instrument (a kind or histogram-bounds mismatch throws
/// std::logic_error), so two layers — e.g. the sweep engine and the
/// daemon — can share one series.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const std::string& help = "",
                   MetricLabels labels = {});
  Gauge& gauge(const std::string& name, const std::string& help = "",
               MetricLabels labels = {});
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "", MetricLabels labels = {});

  /// Lookup without registering; nullptr when absent (or a different kind).
  const Counter* find_counter(const std::string& name,
                              const MetricLabels& labels = {}) const;
  const Histogram* find_histogram(const std::string& name,
                                  const MetricLabels& labels = {}) const;

  /// Prometheus text exposition.  Families are emitted in name order and
  /// series in label order, with a fixed number format, so output is a
  /// pure function of the recorded values.
  void write_prometheus(std::ostream& os) const;
  std::string prometheus() const;

  /// JSON mirror: {"metrics":[{name,type,help,labels,...}, ...]}.
  void write_json(std::ostream& os) const;
  std::string json() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    MetricLabels labels;
    std::string label_key;  ///< rendered labels, the dedup key
    std::string help;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Finds or creates an entry under mu_; the instrument is allocated
  /// before the lock is released so concurrent registrants of the same
  /// series never observe a half-built entry.  `bounds` is only used for
  /// kHistogram.
  Entry& intern(const std::string& name, MetricLabels labels,
                const std::string& help, Kind kind,
                std::vector<double> bounds = {});
  const Entry* find(const std::string& name, const MetricLabels& labels,
                    Kind kind) const;
  std::vector<const Entry*> sorted_entries() const;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace merm::obs
