// Timeline tracing for the visualization layer of Fig. 1: typed spans and
// instants on per-process tracks, recorded in simulated time.
//
// A TraceSink owns one bounded ring buffer per track ("node3.cpu0",
// "node3.comm", "node3.net", "node3.bus", ...).  A simulation is strictly
// single-threaded, so recording is lock-free by confinement: plain stores,
// no atomics, no mutex — the rings are private to the simulation thread
// until the run finishes and the sink is sealed.  When a ring fills, the
// oldest events are overwritten and counted as dropped (the recent past is
// what a timeline viewer needs; silent unbounded growth is what it cannot
// afford).
//
// Components emit three shapes:
//  - span(track, kind, begin, end):  a completed interval, recorded at its
//    end (completion order within a ring, which Chrome/Perfetto accept);
//  - instant(track, kind, at):       a point event (a NIC retry, a reroute);
//  - open(...)/close(token, end):    an interval whose end is unknown at
//    begin time (a blocked send/recv).  Spans still open when the sink is
//    sealed export as unterminated-to-seal-time; if the run hung, they are
//    exactly the blocked operations of Simulator::hang_diagnostic(), tagged
//    `hang` so a deadlock is visible in the timeline without re-running.
//
// Every hook site in the models guards on a raw sink pointer, so with no
// sink attached tracing compiles down to one branch-on-null per potential
// record — measured ≤2% on the detailed inner loop (scripts/check.sh).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace merm::obs {

/// Index into the sink's track table.  Tracks are created in a deterministic
/// order (Machine::attach_trace), so ids are stable across identical runs.
using TrackId = std::uint16_t;
inline constexpr TrackId kNoTrack = 0xffff;

/// What a span or instant represents.  Kinds marked (i) are instants.
enum class SpanKind : std::uint8_t {
  kCompute,      ///< uninterrupted computation between sync points
  kMissWalk,     ///< slow-path memory walk (miss/coherence/write-through)
  kBusWait,      ///< waiting for the node bus grant
  kLinkTransit,  ///< message in flight src -> dst
  kSendBlock,    ///< sync send awaiting rendezvous/ack
  kRecvBlock,    ///< recv awaiting a matching arrival
  kNicRetry,     ///< (i) retransmission fired
  kReroute,      ///< (i) message took a degraded-mode detour
  kDrop,         ///< (i) message lost to an injected fault
};

const char* to_string(SpanKind k);

/// Event flags.
inline constexpr std::uint8_t kFlagInstant = 1;  ///< point event, end == begin
inline constexpr std::uint8_t kFlagOpen = 2;     ///< unterminated at seal time

/// One recorded event: 40 bytes, POD.  `a`/`b`/`c` are kind-specific
/// payloads (bytes/addr, peer, tag, ... — see chrome_trace.cpp's arg table).
struct TraceEvent {
  sim::Tick begin = 0;
  sim::Tick end = 0;
  std::int64_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  TrackId track = kNoTrack;
  SpanKind kind = SpanKind::kCompute;
  std::uint8_t flags = 0;
};

/// Sealed, self-contained snapshot of a trace — what the exporters consume
/// and the binary format round-trips.  Events are ordered track-by-track
/// (ring order, oldest first), with still-open spans appended last.
struct TraceData {
  struct Track {
    std::string name;
    std::uint64_t dropped = 0;  ///< events overwritten in this track's ring
  };
  bool hung = false;       ///< the run deadlocked (open spans are the blockers)
  sim::Tick sealed_at = 0;  ///< simulated time at seal; end of open spans
  std::vector<Track> tracks;
  std::vector<TraceEvent> events;
};

/// Handle of an open span; valid until close().
using SpanToken = std::uint32_t;
inline constexpr SpanToken kNoSpan = ~SpanToken{0};

class TraceSink {
 public:
  /// Per-track ring capacity in events (rings grow lazily up to this).
  static constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 15;

  explicit TraceSink(std::size_t ring_capacity = kDefaultRingCapacity)
      : capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Adds a track; ids are assigned in call order.
  TrackId add_track(std::string name);
  std::size_t track_count() const { return tracks_.size(); }
  const std::string& track_name(TrackId t) const { return tracks_[t].name; }

  /// Records a completed span [begin, end].
  void span(TrackId track, SpanKind kind, sim::Tick begin, sim::Tick end,
            std::int64_t a = 0, std::int32_t b = 0, std::int32_t c = 0) {
    record(TraceEvent{begin, end, a, b, c, track, kind, 0});
  }

  /// Records a point event.
  void instant(TrackId track, SpanKind kind, sim::Tick at, std::int64_t a = 0,
               std::int32_t b = 0, std::int32_t c = 0) {
    record(TraceEvent{at, at, a, b, c, track, kind, kFlagInstant});
  }

  /// Begins a span whose end is not yet known (a blocking operation).  The
  /// token stays valid until close(); open spans survive ring wrap.
  SpanToken open(TrackId track, SpanKind kind, sim::Tick begin,
                 std::int64_t a = 0, std::int32_t b = 0, std::int32_t c = 0);
  /// Completes an open span, moving it into its track's ring.
  void close(SpanToken token, sim::Tick end);
  /// Updates the kind-specific payload of an open span (e.g. the attempt
  /// count of a retransmitting send) without closing it.
  void annotate(SpanToken token, std::int64_t a, std::int32_t b,
                std::int32_t c);

  /// Marks the end of recording at simulated time `now`.  `hung` tags the
  /// still-open spans as blocked-at-deadlock in the export.  Idempotent per
  /// run; a later run on the same sink may seal again.
  void seal(sim::Tick now, bool hung) {
    sealed_at_ = now;
    hung_ = hung;
    sealed_ = true;
  }
  bool sealed() const { return sealed_; }
  sim::Tick sealed_at() const { return sealed_at_; }
  bool hung() const { return hung_; }

  std::uint64_t events_recorded() const { return recorded_; }
  std::uint64_t events_dropped() const { return dropped_; }
  std::size_t open_spans() const { return open_count_; }

  /// Snapshot for export: per-track events in ring order, open spans last
  /// (ends clamped to sealed_at, flagged kFlagOpen).
  TraceData to_data() const;

 private:
  /// One track's bounded ring: grows to `capacity_`, then overwrites the
  /// oldest event.
  struct Track {
    std::string name;
    std::vector<TraceEvent> ring;
    std::size_t head = 0;  ///< oldest event once the ring has wrapped
    std::uint64_t dropped = 0;
  };

  struct OpenSlot {
    TraceEvent ev;
    bool active = false;
  };

  void record(const TraceEvent& ev);

  std::size_t capacity_;
  std::vector<Track> tracks_;
  std::vector<OpenSlot> open_;
  std::vector<SpanToken> free_open_;
  std::size_t open_count_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  sim::Tick sealed_at_ = 0;
  bool sealed_ = false;
  bool hung_ = false;
};

}  // namespace merm::obs
