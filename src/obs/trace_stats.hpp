// Post-hoc wait-state analysis of a sealed trace: where did simulated time
// go — compute, bus waits, link transit, blocked sends/recvs?
//
// This is the answer layer on top of the MOBT traces: `trace_tool stats
// run.mobt` renders the report below instead of asking a human to eyeball
// a Perfetto timeline.  The report is a pure function of the TraceData —
// integer tick arithmetic, fixed formatting, deterministic tie-breaks in
// the top-K ranking — so identical traces produce byte-identical reports
// (checked against a golden file in tests/obs).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace merm::obs {

struct TraceStatsOptions {
  std::size_t top_k = 10;  ///< longest spans to list individually
};

/// Aggregated wait-state totals; compute() is the analysis, write() the
/// deterministic rendering.
struct TraceStats {
  static constexpr std::size_t kKinds = 9;  ///< SpanKind enumerator count

  struct KindTotal {
    std::uint64_t time = 0;      ///< summed span duration, ticks
    std::uint64_t spans = 0;     ///< completed + open spans
    std::uint64_t instants = 0;  ///< point events of this kind
  };
  struct TrackTotal {
    std::string name;
    std::uint64_t time = 0;  ///< summed span duration on this track
    std::uint64_t events = 0;
    std::uint64_t dropped = 0;
    std::array<std::uint64_t, kKinds> kind_time{};
  };
  struct TopSpan {
    std::uint64_t duration = 0;
    sim::Tick begin = 0;
    sim::Tick end = 0;
    SpanKind kind = SpanKind::kCompute;
    std::string track;
    bool open = false;  ///< still open at seal time
  };

  sim::Tick sealed_at = 0;
  bool hung = false;
  std::uint64_t events = 0;
  std::uint64_t spans = 0;
  std::uint64_t instants = 0;
  std::uint64_t open_spans = 0;  ///< spans unterminated at seal
  std::uint64_t dropped = 0;     ///< ring overwrites (report is partial)
  std::uint64_t span_time = 0;   ///< sum of all span durations
  std::array<KindTotal, kKinds> kinds{};
  std::vector<TrackTotal> tracks;  ///< trace track order; empty tracks kept
  std::vector<TopSpan> top;        ///< longest first, deterministic ties

  static TraceStats compute(const TraceData& data,
                            const TraceStatsOptions& opts = {});
};

/// Renders the wait-state report (compute + write in one call).
void write_trace_stats(std::ostream& os, const TraceData& data,
                       const TraceStatsOptions& opts = {});

}  // namespace merm::obs
