#include "obs/trace.hpp"

namespace merm::obs {

const char* to_string(SpanKind k) {
  switch (k) {
    case SpanKind::kCompute:
      return "compute";
    case SpanKind::kMissWalk:
      return "miss-walk";
    case SpanKind::kBusWait:
      return "bus-wait";
    case SpanKind::kLinkTransit:
      return "link-transit";
    case SpanKind::kSendBlock:
      return "send-block";
    case SpanKind::kRecvBlock:
      return "recv-block";
    case SpanKind::kNicRetry:
      return "nic-retry";
    case SpanKind::kReroute:
      return "reroute";
    case SpanKind::kDrop:
      return "drop";
  }
  return "?";
}

TrackId TraceSink::add_track(std::string name) {
  Track t;
  t.name = std::move(name);
  tracks_.push_back(std::move(t));
  return static_cast<TrackId>(tracks_.size() - 1);
}

void TraceSink::record(const TraceEvent& ev) {
  Track& t = tracks_[ev.track];
  ++recorded_;
  if (t.ring.size() < capacity_) {
    t.ring.push_back(ev);
    return;
  }
  // Full: overwrite the oldest event, keeping the recent past.
  t.ring[t.head] = ev;
  t.head = t.head + 1 == t.ring.size() ? 0 : t.head + 1;
  ++t.dropped;
  ++dropped_;
}

SpanToken TraceSink::open(TrackId track, SpanKind kind, sim::Tick begin,
                          std::int64_t a, std::int32_t b, std::int32_t c) {
  SpanToken tok;
  if (!free_open_.empty()) {
    tok = free_open_.back();
    free_open_.pop_back();
  } else {
    tok = static_cast<SpanToken>(open_.size());
    open_.emplace_back();
  }
  open_[tok].ev = TraceEvent{begin, begin, a, b, c, track, kind, 0};
  open_[tok].active = true;
  ++open_count_;
  return tok;
}

void TraceSink::close(SpanToken token, sim::Tick end) {
  OpenSlot& slot = open_[token];
  slot.ev.end = end;
  record(slot.ev);
  slot.active = false;
  free_open_.push_back(token);
  --open_count_;
}

void TraceSink::annotate(SpanToken token, std::int64_t a, std::int32_t b,
                         std::int32_t c) {
  TraceEvent& ev = open_[token].ev;
  ev.a = a;
  ev.b = b;
  ev.c = c;
}

TraceData TraceSink::to_data() const {
  TraceData data;
  data.hung = hung_;
  data.sealed_at = sealed_at_;
  data.tracks.reserve(tracks_.size());
  std::size_t total = 0;
  for (const Track& t : tracks_) {
    data.tracks.push_back({t.name, t.dropped});
    total += t.ring.size();
  }
  data.events.reserve(total + open_count_);
  for (const Track& t : tracks_) {
    for (std::size_t i = 0; i < t.ring.size(); ++i) {
      data.events.push_back(t.ring[(t.head + i) % t.ring.size()]);
    }
  }
  // Unterminated spans: blocked operations at drain time (the hang
  // diagnostic, visualized), or merely in-flight ones at a time/event limit.
  for (const OpenSlot& slot : open_) {
    if (!slot.active) continue;
    TraceEvent ev = slot.ev;
    ev.end = sealed_at_ > ev.begin ? sealed_at_ : ev.begin;
    ev.flags |= kFlagOpen;
    data.events.push_back(ev);
  }
  return data;
}

}  // namespace merm::obs
