// Chrome trace-event JSON exporter: the output loads directly in Perfetto
// (ui.perfetto.dev) or chrome://tracing.
//
// Layout: one "simulated" process (pid 0) with a thread per trace track,
// timestamps in microseconds of *simulated* time (ticks are picoseconds, so
// the conversion is exact — emitted with integer math, which keeps the JSON
// byte-deterministic for golden-file tests); optionally one "host" process
// (pid 1) rendering a HostProfiler's wall-clock phases beside it.
//
// Spans that were still open at seal time export with the `hang` category
// when the run deadlocked — the blocked sends/recvs of the hang diagnostic,
// visible as bars running off the end of the timeline.
#pragma once

#include <ostream>

#include "obs/host_profiler.hpp"
#include "obs/trace.hpp"

namespace merm::obs {

/// Writes `data` as Chrome trace-event JSON.  `host` adds the host-time
/// process; pass nullptr for a fully deterministic export.
void write_chrome_trace(std::ostream& os, const TraceData& data,
                        const HostProfiler* host = nullptr);

}  // namespace merm::obs
