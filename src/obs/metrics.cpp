#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace merm::obs {

namespace detail {

std::size_t metrics_shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return idx;
}

}  // namespace detail

namespace {

// Fixed formatter so exposition is a pure function of the value: integral
// doubles render with no fraction, the rest through %.9g.
std::string format_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.9g", v);
  }
  return buf;
}

// JSON has no literal for NaN/Inf; those become null.
std::string format_json_number(double v) {
  if (!std::isfinite(v)) return "null";
  return format_number(v);
}

std::string escape_label_value(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// {a="x",b="y"} body (no braces); empty for an unlabelled series.
std::string render_labels(const MetricLabels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out.push_back(',');
    out += k + "=\"" + escape_label_value(v) + "\"";
  }
  return out;
}

}  // namespace

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Gauge::add(double d) {
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::logic_error("Histogram bounds must be strictly increasing");
  }
  for (auto& shard : shards_) {
    shard.buckets =
        std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) shard.buckets[i] = 0;
  }
}

void Histogram::observe(double v) {
  // NaN would land in bucket 0 (lower_bound) and poison _sum forever;
  // +/-Inf would poison _sum too.  Drop non-finite observations.
  if (!std::isfinite(v)) return;
  // Prometheus buckets are inclusive upper bounds: bucket i counts
  // v <= bounds_[i]; everything above the last bound lands in +Inf.
  const std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  Shard& shard = shards_[detail::metrics_shard_index()];
  shard.buckets[idx].fetch_add(1, std::memory_order_relaxed);
  double cur = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(cur, cur + v,
                                          std::memory_order_relaxed)) {
  }
}

Histogram::View Histogram::view() const {
  View out;
  out.bounds = bounds_;
  out.counts.assign(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      out.counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    out.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (std::uint64_t c : out.counts) out.count += c;
  return out;
}

double Histogram::View::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t prev = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < target) continue;
    if (i >= bounds.size()) {
      // +Inf bucket: clamp to the last finite bound (Prometheus semantics).
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double hi = bounds[i];
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    if (counts[i] == 0) return hi;
    const double frac =
        (target - static_cast<double>(prev)) / static_cast<double>(counts[i]);
    return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

MetricsRegistry::Entry& MetricsRegistry::intern(const std::string& name,
                                                MetricLabels labels,
                                                const std::string& help,
                                                Kind kind,
                                                std::vector<double> bounds) {
  const std::string key = render_labels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (e->name == name && e->label_key == key) {
      if (e->kind != kind) {
        throw std::logic_error("metric '" + name +
                               "' re-registered as a different kind");
      }
      if (kind == Kind::kHistogram && e->histogram->bounds_ != bounds) {
        throw std::logic_error("metric '" + name +
                               "' re-registered with different bounds");
      }
      return *e;
    }
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->labels = std::move(labels);
  e->label_key = key;
  e->help = help;
  e->kind = kind;
  // The instrument must exist before mu_ is released: a second registrant
  // of the same series returns *e above and dereferences it with no further
  // synchronization.
  switch (kind) {
    case Kind::kCounter: e->counter.reset(new Counter()); break;
    case Kind::kGauge: e->gauge.reset(new Gauge()); break;
    case Kind::kHistogram:
      e->histogram.reset(new Histogram(std::move(bounds)));
      break;
  }
  entries_.push_back(std::move(e));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  MetricLabels labels) {
  return *intern(name, std::move(labels), help, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              MetricLabels labels) {
  return *intern(name, std::move(labels), help, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& help,
                                      MetricLabels labels) {
  return *intern(name, std::move(labels), help, Kind::kHistogram,
                 std::move(bounds))
              .histogram;
}

const MetricsRegistry::Entry* MetricsRegistry::find(const std::string& name,
                                                    const MetricLabels& labels,
                                                    Kind kind) const {
  const std::string key = render_labels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (e->name == name && e->label_key == key && e->kind == kind) {
      return e.get();
    }
  }
  return nullptr;
}

const Counter* MetricsRegistry::find_counter(const std::string& name,
                                             const MetricLabels& labels) const {
  const Entry* e = find(name, labels, Kind::kCounter);
  return e != nullptr ? e->counter.get() : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name, const MetricLabels& labels) const {
  const Entry* e = find(name, labels, Kind::kHistogram);
  return e != nullptr ? e->histogram.get() : nullptr;
}

std::vector<const MetricsRegistry::Entry*> MetricsRegistry::sorted_entries()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Entry*> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.get());
  std::sort(out.begin(), out.end(), [](const Entry* a, const Entry* b) {
    if (a->name != b->name) return a->name < b->name;
    return a->label_key < b->label_key;
  });
  return out;
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  const auto entries = sorted_entries();
  const std::string* family = nullptr;
  for (const Entry* e : entries) {
    if (family == nullptr || *family != e->name) {
      family = &e->name;
      if (!e->help.empty()) os << "# HELP " << e->name << " " << e->help << "\n";
      os << "# TYPE " << e->name << " "
         << (e->kind == Kind::kCounter
                 ? "counter"
                 : e->kind == Kind::kGauge ? "gauge" : "histogram")
         << "\n";
    }
    const std::string labels = e->label_key;
    if (e->kind == Kind::kCounter) {
      os << e->name << (labels.empty() ? "" : "{" + labels + "}") << " "
         << e->counter->value() << "\n";
    } else if (e->kind == Kind::kGauge) {
      os << e->name << (labels.empty() ? "" : "{" + labels + "}") << " "
         << format_number(e->gauge->value()) << "\n";
    } else {
      const Histogram::View v = e->histogram->view();
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i <= v.bounds.size(); ++i) {
        cumulative += v.counts[i];
        const std::string le =
            i < v.bounds.size() ? format_number(v.bounds[i]) : "+Inf";
        os << e->name << "_bucket{" << labels << (labels.empty() ? "" : ",")
           << "le=\"" << le << "\"} " << cumulative << "\n";
      }
      os << e->name << "_sum" << (labels.empty() ? "" : "{" + labels + "}")
         << " " << format_number(v.sum) << "\n";
      os << e->name << "_count" << (labels.empty() ? "" : "{" + labels + "}")
         << " " << v.count << "\n";
    }
  }
}

std::string MetricsRegistry::prometheus() const {
  std::ostringstream os;
  write_prometheus(os);
  return os.str();
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const auto entries = sorted_entries();
  os << "{\"metrics\":[";
  bool first = true;
  for (const Entry* e : entries) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << escape_json(e->name) << "\",\"type\":\""
       << (e->kind == Kind::kCounter
               ? "counter"
               : e->kind == Kind::kGauge ? "gauge" : "histogram")
       << "\"";
    if (!e->help.empty()) os << ",\"help\":\"" << escape_json(e->help) << "\"";
    if (!e->labels.empty()) {
      os << ",\"labels\":{";
      bool lf = true;
      for (const auto& [k, val] : e->labels) {
        if (!lf) os << ",";
        lf = false;
        os << "\"" << escape_json(k) << "\":\"" << escape_json(val) << "\"";
      }
      os << "}";
    }
    if (e->kind == Kind::kCounter) {
      os << ",\"value\":" << e->counter->value();
    } else if (e->kind == Kind::kGauge) {
      os << ",\"value\":" << format_json_number(e->gauge->value());
    } else {
      const Histogram::View v = e->histogram->view();
      os << ",\"sum\":" << format_json_number(v.sum) << ",\"count\":" << v.count
         << ",\"buckets\":[";
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i <= v.bounds.size(); ++i) {
        cumulative += v.counts[i];
        if (i != 0) os << ",";
        os << "{\"le\":";
        if (i < v.bounds.size()) {
          os << format_number(v.bounds[i]);
        } else {
          os << "\"+Inf\"";
        }
        os << ",\"count\":" << cumulative << "}";
      }
      os << "]";
    }
    os << "}";
  }
  os << "]}";
}

std::string MetricsRegistry::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace merm::obs
