#include "obs/trace_stats.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace merm::obs {

namespace {

// Every ranked span carries its position in TraceData::events so ties
// break on recording order — the last resort that keeps the top-K list
// stable for byte-identical inputs.
struct Ranked {
  TraceStats::TopSpan span;
  std::size_t index = 0;
  std::uint8_t kind_idx = 0;
};

std::string percent(std::uint64_t part, std::uint64_t whole) {
  char buf[32];
  const double pct =
      whole == 0 ? 0.0
                 : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
  std::snprintf(buf, sizeof buf, "%.1f%%", pct);
  return buf;
}

}  // namespace

TraceStats TraceStats::compute(const TraceData& data,
                               const TraceStatsOptions& opts) {
  TraceStats s;
  s.sealed_at = data.sealed_at;
  s.hung = data.hung;
  s.events = data.events.size();
  s.tracks.reserve(data.tracks.size());
  for (const auto& t : data.tracks) {
    TrackTotal tt;
    tt.name = t.name;
    tt.dropped = t.dropped;
    s.dropped += t.dropped;
    s.tracks.push_back(std::move(tt));
  }

  std::vector<Ranked> ranked;
  for (std::size_t i = 0; i < data.events.size(); ++i) {
    const TraceEvent& ev = data.events[i];
    const std::size_t k = static_cast<std::size_t>(ev.kind);
    if (k >= kKinds) continue;
    TrackTotal* track =
        ev.track < s.tracks.size() ? &s.tracks[ev.track] : nullptr;
    if (track != nullptr) ++track->events;
    if ((ev.flags & kFlagInstant) != 0) {
      ++s.instants;
      ++s.kinds[k].instants;
      continue;
    }
    const std::uint64_t dur = ev.end >= ev.begin ? ev.end - ev.begin : 0;
    ++s.spans;
    s.kinds[k].time += dur;
    ++s.kinds[k].spans;
    s.span_time += dur;
    if ((ev.flags & kFlagOpen) != 0) ++s.open_spans;
    if (track != nullptr) {
      track->time += dur;
      track->kind_time[k] += dur;
    }
    Ranked r;
    r.span.duration = dur;
    r.span.begin = ev.begin;
    r.span.end = ev.end;
    r.span.kind = ev.kind;
    r.span.track = track != nullptr ? track->name : "?";
    r.span.open = (ev.flags & kFlagOpen) != 0;
    r.index = i;
    r.kind_idx = static_cast<std::uint8_t>(k);
    ranked.push_back(std::move(r));
  }

  const std::size_t keep = std::min(opts.top_k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + keep, ranked.end(),
                    [](const Ranked& a, const Ranked& b) {
                      if (a.span.duration != b.span.duration)
                        return a.span.duration > b.span.duration;
                      if (a.span.begin != b.span.begin)
                        return a.span.begin < b.span.begin;
                      if (a.span.track != b.span.track)
                        return a.span.track < b.span.track;
                      if (a.kind_idx != b.kind_idx)
                        return a.kind_idx < b.kind_idx;
                      return a.index < b.index;
                    });
  s.top.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) s.top.push_back(ranked[i].span);
  return s;
}

void write_trace_stats(std::ostream& os, const TraceData& data,
                       const TraceStatsOptions& opts) {
  const TraceStats s = TraceStats::compute(data, opts);
  char buf[256];

  os << "trace: " << s.tracks.size() << " tracks, " << s.events << " events ("
     << s.spans << " spans, " << s.instants << " instants), sealed at "
     << s.sealed_at << " ticks\n";
  if (s.hung) {
    os << "note: run HUNG; the open spans below are the blocked operations\n";
  }
  if (s.dropped > 0) {
    os << "note: " << s.dropped
       << " events dropped to ring wrap; totals are partial\n";
  }

  os << "\nwait states (span time summed over tracks):\n";
  std::snprintf(buf, sizeof buf, "  %-14s %14s %9s %8s\n", "kind",
                "time_ticks", "share", "spans");
  os << buf;
  for (std::size_t k = 0; k < TraceStats::kKinds; ++k) {
    const auto& kt = s.kinds[k];
    if (kt.spans == 0 && kt.instants == 0) continue;
    if (kt.instants > 0 && kt.spans == 0) continue;  // instants listed below
    std::snprintf(buf, sizeof buf, "  %-14s %14llu %9s %8llu\n",
                  to_string(static_cast<SpanKind>(k)),
                  static_cast<unsigned long long>(kt.time),
                  percent(kt.time, s.span_time).c_str(),
                  static_cast<unsigned long long>(kt.spans));
    os << buf;
  }
  if (s.instants > 0) {
    os << "instants:";
    for (std::size_t k = 0; k < TraceStats::kKinds; ++k) {
      if (s.kinds[k].instants == 0) continue;
      os << " " << to_string(static_cast<SpanKind>(k)) << "="
         << s.kinds[k].instants;
    }
    os << "\n";
  }
  if (s.open_spans > 0) {
    os << "open at seal: " << s.open_spans << " span(s)\n";
  }

  os << "\nper-track totals:\n";
  for (const auto& t : s.tracks) {
    std::snprintf(buf, sizeof buf, "  %-18s %12llu ticks %8llu events",
                  t.name.c_str(), static_cast<unsigned long long>(t.time),
                  static_cast<unsigned long long>(t.events));
    os << buf;
    for (std::size_t k = 0; k < TraceStats::kKinds; ++k) {
      if (t.kind_time[k] == 0) continue;
      os << "  " << to_string(static_cast<SpanKind>(k)) << "="
         << t.kind_time[k];
    }
    if (t.dropped > 0) os << "  dropped=" << t.dropped;
    os << "\n";
  }

  if (!s.top.empty()) {
    os << "\ntop " << s.top.size() << " longest spans:\n";
    for (std::size_t i = 0; i < s.top.size(); ++i) {
      const auto& ts = s.top[i];
      std::snprintf(buf, sizeof buf, "  %2llu. %12llu ticks  %-12s %-18s",
                    static_cast<unsigned long long>(i + 1),
                    static_cast<unsigned long long>(ts.duration),
                    to_string(ts.kind), ts.track.c_str());
      os << buf << " [" << ts.begin << ".." << ts.end << "]"
         << (ts.open ? " (open)" : "") << "\n";
    }
  }
}

}  // namespace merm::obs
