// Host-side phase profiler: where does the *wall clock* go — workload
// generation, launch, the event loop, export?  Complements the simulated-
// time TraceSink; the Chrome exporter renders these phases as a second
// process ("host") so simulated and host time sit side by side in Perfetto.
//
// Host times are inherently nondeterministic, so nothing here ever feeds
// back into simulation results; sweep host columns are opt-in
// (SweepOptions::host_metrics) to keep serial-vs-threaded outputs
// byte-comparable by default.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

namespace merm::obs {

class HostProfiler {
 public:
  struct Phase {
    std::string name;
    double begin_s = 0.0;  ///< seconds since profiler construction/reset
    double dur_s = 0.0;
    int depth = 0;  ///< nesting level at begin time
  };

  HostProfiler() : origin_(Clock::now()) {}

  /// Opens a phase; phases nest (stack discipline).
  void begin(std::string name);
  /// Closes the innermost open phase.
  void end();

  /// RAII sugar: profiler.scope("run") times the enclosing block.
  class Scope {
   public:
    Scope(HostProfiler& p, std::string name) : p_(p) {
      p_.begin(std::move(name));
    }
    ~Scope() { p_.end(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    HostProfiler& p_;
  };

  const std::vector<Phase>& phases() const { return phases_; }

  /// Sum of durations over completed phases with this name.
  double total_seconds(const std::string& name) const;

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - origin_).count();
  }

  /// Drops recorded phases and restarts the time origin.
  void reset();

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point origin_;
  std::vector<Phase> phases_;
  std::vector<std::size_t> stack_;  ///< indices of open phases
};

}  // namespace merm::obs
