// Crash-safe execution: process-isolated points turn abort()/segfault into
// structured failure rows while the grid completes, wall-clock timeouts kill
// hung points, bounded retries mark repeat offenders as poisoned, the memo
// store replays finished rows byte-identically, and a PDES-mode hang row
// carries the same schema (error_type + hang_diagnostic) as a serial one.
//
// Fork-based: not registered under the tsan label (TSan does not follow
// fork()), but tier-1 like everything else in this directory.
#include "explore/sweep.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "explore/memo.hpp"
#include "gen/apps.hpp"
#include "trace/stream.hpp"

namespace merm::explore {
namespace {

WorkloadFactory pingpong_factory() {
  return [](const machine::MachineParams& params, std::uint64_t) {
    return gen::make_offline_workload(
        params.node_count(),
        [](gen::Annotator& a, trace::NodeId self, std::uint32_t nodes) {
          gen::pingpong(a, self, nodes, gen::PingPongParams{2, 256});
        });
  };
}

Sweep cheap_grid(std::size_t points) {
  Sweep sweep;
  sweep.workload = pingpong_factory();
  for (std::size_t i = 0; i < points; ++i) {
    sweep.add(machine::presets::t805_multicomputer(2, 1),
              "pt-" + std::to_string(i));
  }
  return sweep;
}

std::string csv_of(const SweepResult& r) {
  std::ostringstream os;
  r.write_csv(os, {.host_columns = false});
  return os.str();
}

std::string make_temp_dir(const char* tag) {
  std::string tmpl = ::testing::TempDir() + tag + std::string("-XXXXXX");
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* dir = ::mkdtemp(buf.data());
  EXPECT_NE(dir, nullptr);
  return dir != nullptr ? dir : "";
}

TEST(SweepIsolationTest, AbortingPointBecomesFailureRowAndGridCompletes) {
  Sweep sweep = cheap_grid(5);
  sweep.points[2].workload = [](const machine::MachineParams&,
                                std::uint64_t) -> trace::Workload {
    std::abort();
  };

  SweepEngine engine({.threads = 2,
                      .keep_going = true,
                      .isolate = Isolation::kProcess});
  const SweepResult result = engine.run(sweep);  // must not throw

  ASSERT_EQ(result.points.size(), 5u);
  for (const std::size_t i : {0u, 1u, 3u, 4u}) {
    EXPECT_EQ(result.points[i].status, PointResult::Status::kDone) << i;
    EXPECT_TRUE(result.points[i].run.completed) << i;
  }
  const PointResult& crashed = result.points[2];
  EXPECT_EQ(crashed.status, PointResult::Status::kFailed);
  EXPECT_EQ(crashed.error_type, "signal:SIGABRT");
  EXPECT_EQ(crashed.exit_signal, SIGABRT);
  EXPECT_EQ(crashed.attempts, 1u);
  EXPECT_NE(crashed.error.find("SIGABRT"), std::string::npos) << crashed.error;
  EXPECT_EQ(result.completed(), 4u);
  EXPECT_EQ(result.failed(), 1u);
}

TEST(SweepIsolationTest, IsolatedRowsAreBitIdenticalToInProcessRows) {
  Sweep sweep = cheap_grid(4);
  sweep.probe = [](core::Workbench&, const core::RunResult& r) {
    return std::vector<std::pair<std::string, double>>{
        {"ops_x2", static_cast<double>(r.operations) * 2.0},
        {"frac", 1.0 / 3.0}};  // non-representable: exercises the hexfloat
  };

  const SweepResult in_proc = SweepEngine({.threads = 2}).run(sweep);
  const SweepResult forked =
      SweepEngine({.threads = 2, .isolate = Isolation::kProcess}).run(sweep);

  // Same simulation, same seed derivation, and a lossless row codec over the
  // pipe: everything except host cost must match to the byte.
  EXPECT_EQ(csv_of(in_proc), csv_of(forked));
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_EQ(in_proc.points[i].run.simulated_time,
              forked.points[i].run.simulated_time)
        << i;
    EXPECT_EQ(in_proc.points[i].metrics, forked.points[i].metrics) << i;
  }
}

TEST(SweepIsolationTest, TimeoutKillsTheHungPointAndRecordsIt) {
  Sweep sweep = cheap_grid(3);
  sweep.points[1].workload = [](const machine::MachineParams&,
                                std::uint64_t) -> trace::Workload {
    std::this_thread::sleep_for(std::chrono::seconds(30));
    return {};
  };

  SweepEngine engine({.threads = 1,
                      .keep_going = true,
                      .isolate = Isolation::kProcess,
                      .point_timeout_s = 0.3});
  const SweepResult result = engine.run(sweep);

  EXPECT_EQ(result.points[0].status, PointResult::Status::kDone);
  EXPECT_EQ(result.points[2].status, PointResult::Status::kDone);
  const PointResult& hung = result.points[1];
  EXPECT_EQ(hung.status, PointResult::Status::kFailed);
  EXPECT_EQ(hung.error_type, "timeout");
  EXPECT_NE(hung.error.find("wall-clock timeout"), std::string::npos)
      << hung.error;
}

TEST(SweepIsolationTest, RepeatedCrashIsPoisonedAfterBoundedRetries) {
  Sweep sweep = cheap_grid(1);
  sweep.points[0].workload = [](const machine::MachineParams&,
                                std::uint64_t) -> trace::Workload {
    std::abort();
  };

  SweepEngine engine({.threads = 1,
                      .keep_going = true,
                      .isolate = Isolation::kProcess,
                      .max_attempts = 3,
                      .retry_backoff_s = 0.01});
  const SweepResult result = engine.run(sweep);

  const PointResult& p = result.points[0];
  EXPECT_EQ(p.status, PointResult::Status::kFailed);
  EXPECT_EQ(p.attempts, 3u);
  EXPECT_EQ(p.error_type, "poisoned:signal:SIGABRT");
  EXPECT_EQ(p.exit_signal, SIGABRT);
  EXPECT_NE(p.error.find("poisoned after 3 attempts"), std::string::npos)
      << p.error;
}

TEST(SweepIsolationTest, DeterministicExceptionDoesNotRetry) {
  Sweep sweep = cheap_grid(1);
  sweep.points[0].workload = [](const machine::MachineParams&,
                                std::uint64_t) -> trace::Workload {
    throw std::runtime_error("deterministic boom");
  };

  SweepEngine engine({.threads = 1,
                      .keep_going = true,
                      .isolate = Isolation::kProcess,
                      .max_attempts = 3,
                      .retry_backoff_s = 0.01});
  const SweepResult result = engine.run(sweep);

  const PointResult& p = result.points[0];
  EXPECT_EQ(p.status, PointResult::Status::kFailed);
  EXPECT_EQ(p.attempts, 1u) << "a clean exception row must not re-run";
  EXPECT_EQ(p.error, "deterministic boom");
  EXPECT_EQ(p.error_type, "std::runtime_error");
}

TEST(SweepIsolationTest, NonIsolatedFirstFailureStillRethrowsOriginalType) {
  // The !keep_going contract predates isolation and must survive it: the
  // original exception object propagates for in-process execution.
  Sweep sweep = cheap_grid(2);
  sweep.points[0].workload = [](const machine::MachineParams&,
                                std::uint64_t) -> trace::Workload {
    throw std::logic_error("typed boom");
  };
  SweepEngine engine({.threads = 1});
  SweepResult result;
  EXPECT_THROW(engine.run_into(sweep, result), std::logic_error);
}

TEST(SweepOptionValidationTest, TimeoutAndRetriesRequireIsolation) {
  const Sweep sweep = cheap_grid(1);
  SweepResult out;
  EXPECT_THROW(
      SweepEngine({.threads = 1, .point_timeout_s = 1.0}).run_into(sweep, out),
      std::invalid_argument);
  EXPECT_THROW(
      SweepEngine({.threads = 1, .max_attempts = 2}).run_into(sweep, out),
      std::invalid_argument);
}

TEST(SweepOptionValidationTest, MemoizationRequiresAWorkloadFingerprint) {
  const Sweep sweep = cheap_grid(1);  // no workload_fingerprint
  SweepResult out;
  EXPECT_THROW(SweepEngine({.threads = 1, .memo_dir = "/tmp/unused-memo"})
                   .run_into(sweep, out),
               std::invalid_argument);
}

TEST(SweepMemoTest, RepeatedSweepHitsTheStoreWithIdenticalBytes) {
  const std::string dir = make_temp_dir("merm-memo");
  Sweep sweep = cheap_grid(4);
  sweep.workload_fingerprint = "pingpong:2x256:v1";

  SweepOptions opts{.threads = 2, .memo_dir = dir};
  const SweepResult first = SweepEngine(opts).run(sweep);
  EXPECT_EQ(first.memo_hits, 0u);
  EXPECT_EQ(first.memo_misses, 4u);

  const SweepResult second = SweepEngine(opts).run(sweep);
  EXPECT_EQ(second.memo_hits, 4u);
  EXPECT_EQ(second.memo_misses, 0u);
  for (const PointResult& p : second.points) EXPECT_TRUE(p.memo_hit);

  EXPECT_EQ(csv_of(first), csv_of(second));
  std::ostringstream j1, j2;
  first.write_json(j1, {.host_columns = false});
  second.write_json(j2, {.host_columns = false});
  EXPECT_EQ(j1.str(), j2.str());
}

TEST(SweepMemoTest, MemoColumnsSurfaceTheHitFlagWhenAskedFor) {
  const std::string dir = make_temp_dir("merm-memo-col");
  Sweep sweep = cheap_grid(2);
  sweep.workload_fingerprint = "pingpong:2x256:v1";

  SweepOptions opts{.threads = 1, .memo_dir = dir, .memo_columns = true};
  const SweepResult first = SweepEngine(opts).run(sweep);
  const SweepResult second = SweepEngine(opts).run(sweep);
  for (const PointResult& p : first.points) {
    ASSERT_FALSE(p.metrics.empty());
    EXPECT_EQ(p.metrics.back().first, "memo.hit");
    EXPECT_EQ(p.metrics.back().second, 0.0);
  }
  for (const PointResult& p : second.points) {
    ASSERT_FALSE(p.metrics.empty());
    EXPECT_EQ(p.metrics.back().first, "memo.hit");
    EXPECT_EQ(p.metrics.back().second, 1.0);
  }
}

TEST(SweepMemoTest, DifferentSeedOrFingerprintMisses) {
  const std::string dir = make_temp_dir("merm-memo-key");
  Sweep sweep = cheap_grid(2);
  sweep.workload_fingerprint = "pingpong:2x256:v1";
  SweepOptions opts{.threads = 1, .memo_dir = dir};
  (void)SweepEngine(opts).run(sweep);

  Sweep reseeded = sweep;
  reseeded.base_seed = 12345;
  EXPECT_EQ(SweepEngine(opts).run(reseeded).memo_hits, 0u);

  Sweep refingered = sweep;
  refingered.workload_fingerprint = "pingpong:2x256:v2";
  EXPECT_EQ(SweepEngine(opts).run(refingered).memo_hits, 0u);

  // The untouched grid still hits: the store key is content, not history.
  EXPECT_EQ(SweepEngine(opts).run(sweep).memo_hits, 2u);
}

TEST(SweepHangSchemaTest, PdesHangRowMatchesSerialRowSchema) {
  // A hang under conservative PDES must produce the same structured failure
  // row as the serial engine: HangError in error_type, the blocked-operation
  // report in hang_diagnostic — not a different shape per engine.
  Sweep sweep;
  sweep.workload = [](const machine::MachineParams& params, std::uint64_t) {
    trace::Workload w;
    auto sender = std::make_unique<trace::VectorSource>();
    sender->push(trace::Operation::asend(64, 1, /*tag=*/7));
    auto receiver = std::make_unique<trace::VectorSource>();
    receiver->push(trace::Operation::recv(0, /*tag=*/99));
    w.sources.push_back(std::move(sender));
    w.sources.push_back(std::move(receiver));
    for (std::uint32_t n = 2; n < params.node_count(); ++n) {
      w.sources.push_back(std::make_unique<trace::VectorSource>());
    }
    return w;
  };
  machine::MachineParams m = machine::presets::t805_multicomputer(2, 2);
  m.fault.enabled = true;  // implies fail_on_hang for this point
  sweep.add(m, "mismatched-tags");

  const SweepResult serial =
      SweepEngine({.threads = 1, .keep_going = true}).run(sweep);
  const SweepResult pdes =
      SweepEngine({.threads = 1, .sim_threads = 2, .keep_going = true})
          .run(sweep);

  for (const SweepResult* r : {&serial, &pdes}) {
    ASSERT_EQ(r->points.size(), 1u);
    const PointResult& p = r->points[0];
    EXPECT_EQ(p.status, PointResult::Status::kFailed);
    EXPECT_EQ(p.error_type, "merm::core::HangError");
    EXPECT_FALSE(p.hang_diagnostic.empty());
    EXPECT_NE(p.hang_diagnostic.find("tag=99"), std::string::npos)
        << p.hang_diagnostic;
    EXPECT_NE(p.error.find("simulation hang"), std::string::npos) << p.error;
  }

  // Same columns either way (the CSV header is schema; diagnosing a hang
  // must not require knowing which engine ran the point).
  const std::string serial_csv = csv_of(serial);
  const std::string pdes_csv = csv_of(pdes);
  EXPECT_EQ(serial_csv.substr(0, serial_csv.find('\n')),
            pdes_csv.substr(0, pdes_csv.find('\n')));
}

TEST(SweepHangSchemaTest, IsolatedHangRowKeepsTheSameSchemaToo) {
  Sweep sweep;
  sweep.workload = [](const machine::MachineParams&, std::uint64_t) {
    trace::Workload w;
    auto sender = std::make_unique<trace::VectorSource>();
    sender->push(trace::Operation::asend(64, 1, /*tag=*/7));
    auto receiver = std::make_unique<trace::VectorSource>();
    receiver->push(trace::Operation::recv(0, /*tag=*/99));
    w.sources.push_back(std::move(sender));
    w.sources.push_back(std::move(receiver));
    return w;
  };
  machine::MachineParams m = machine::presets::t805_multicomputer(2, 1);
  m.fault.enabled = true;
  sweep.add(m, "mismatched-tags");

  const SweepResult result =
      SweepEngine(
          {.threads = 1, .keep_going = true, .isolate = Isolation::kProcess})
          .run(sweep);
  const PointResult& p = result.points[0];
  EXPECT_EQ(p.status, PointResult::Status::kFailed);
  EXPECT_EQ(p.error_type, "merm::core::HangError");
  EXPECT_NE(p.hang_diagnostic.find("tag=99"), std::string::npos)
      << p.hang_diagnostic;
}

}  // namespace
}  // namespace merm::explore
