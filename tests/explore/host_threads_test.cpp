// Strict parsing of the driver thread flags: valid values land on the right
// axis (including the pre-PDES --threads / -jN back-compat aliases), and a
// present-but-malformed value — zero, negative, garbage, missing — throws
// instead of silently falling back to the engine default.
#include "explore/sweep.hpp"

#include <gtest/gtest.h>

#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

namespace merm::explore {
namespace {

HostThreads parse(std::initializer_list<std::string> args,
                  HostThreads fallback = {}) {
  std::vector<std::string> hold = {"prog"};
  hold.insert(hold.end(), args);
  std::vector<char*> argv;
  argv.reserve(hold.size());
  for (std::string& s : hold) argv.push_back(s.data());
  return host_threads_from_args(static_cast<int>(argv.size()), argv.data(),
                                fallback);
}

TEST(HostThreadsTest, AbsentFlagsKeepTheFallback) {
  const HostThreads t = parse({"--faults=drop=0.1"}, HostThreads{3, 2});
  EXPECT_EQ(t.sweep_threads, 3u);
  EXPECT_EQ(t.sim_threads, 2u);
}

TEST(HostThreadsTest, BothAxesParseInEqualsAndSpaceForm) {
  const HostThreads eq = parse({"--sweep-threads=4", "--sim-threads=2"});
  EXPECT_EQ(eq.sweep_threads, 4u);
  EXPECT_EQ(eq.sim_threads, 2u);

  const HostThreads sp = parse({"--sweep-threads", "8", "--sim-threads", "3"});
  EXPECT_EQ(sp.sweep_threads, 8u);
  EXPECT_EQ(sp.sim_threads, 3u);
}

TEST(HostThreadsTest, ThreadsAliasStillSetsTheSweepAxis) {
  EXPECT_EQ(parse({"--threads=6"}).sweep_threads, 6u);
  EXPECT_EQ(parse({"--threads", "5"}).sweep_threads, 5u);
  EXPECT_EQ(parse({"-j7"}).sweep_threads, 7u);
  EXPECT_EQ(parse({"--threads=6"}).sim_threads, 0u);
}

TEST(HostThreadsTest, LaterFlagWins) {
  EXPECT_EQ(parse({"--threads=2", "--sweep-threads=9"}).sweep_threads, 9u);
}

TEST(HostThreadsTest, ZeroIsRejectedNotSilentlyDefaulted) {
  // "--sweep-threads=0" used to mean "engine default" by accident — exactly
  // the typo that turns an intended 10-way sweep into a serial overnight run.
  EXPECT_THROW(parse({"--sweep-threads=0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--sim-threads=0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--threads", "0"}), std::invalid_argument);
  EXPECT_THROW(parse({"-j0"}), std::invalid_argument);
}

TEST(HostThreadsTest, NegativeAndGarbageAreRejected) {
  EXPECT_THROW(parse({"--threads=-2"}), std::invalid_argument);
  EXPECT_THROW(parse({"--sweep-threads=abc"}), std::invalid_argument);
  EXPECT_THROW(parse({"--sim-threads=4x"}), std::invalid_argument);
  EXPECT_THROW(parse({"--threads="}), std::invalid_argument);
  EXPECT_THROW(parse({"--sweep-threads", "2.5"}), std::invalid_argument);
  EXPECT_THROW(parse({"--threads=100000"}), std::invalid_argument);
}

TEST(HostThreadsTest, MissingValueIsRejected) {
  EXPECT_THROW(parse({"--sweep-threads"}), std::invalid_argument);
  EXPECT_THROW(parse({"--sim-threads"}), std::invalid_argument);
}

TEST(HostThreadsTest, ErrorNamesTheOffendingFlag) {
  try {
    parse({"--sweep-threads=0"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--sweep-threads"),
              std::string::npos)
        << e.what();
  }
}

TEST(HostThreadsTest, SingleAxisWrapperKeepsItsContract) {
  std::vector<std::string> hold = {"prog", "--threads=3"};
  std::vector<char*> argv;
  for (std::string& s : hold) argv.push_back(s.data());
  EXPECT_EQ(threads_from_args(static_cast<int>(argv.size()), argv.data(), 9),
            3u);

  std::vector<std::string> none = {"prog"};
  std::vector<char*> argv2 = {none[0].data()};
  EXPECT_EQ(threads_from_args(1, argv2.data(), 9), 9u);
}

}  // namespace
}  // namespace merm::explore
