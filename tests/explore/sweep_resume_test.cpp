// Journaled resume: SIGKILL the engine process mid-grid, resume from the
// write-ahead journal, and the final CSV/JSON must be byte-identical to an
// uninterrupted run's — the acceptance bar for crash-safe sweeps.  Also the
// journal's refusal paths (foreign grid, missing file) and torn-tail
// tolerance.
//
// Fork-based: not registered under the tsan label (TSan does not follow
// fork()), but tier-1 like everything else in this directory.
#include "explore/sweep.hpp"

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "explore/journal.hpp"
#include "gen/apps.hpp"

namespace merm::explore {
namespace {

constexpr sim::Tick kUs = sim::kTicksPerMicrosecond;

std::string csv_of(const SweepResult& r) {
  std::ostringstream os;
  r.write_csv(os, {.host_columns = false});
  return os.str();
}

std::string make_temp_dir(const char* tag) {
  std::string tmpl = ::testing::TempDir() + tag + std::string("-XXXXXX");
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* dir = ::mkdtemp(buf.data());
  EXPECT_NE(dir, nullptr);
  return dir != nullptr ? dir : "";
}

/// A faulted 4x4 grid: four machine variants (clean / lossy / outage /
/// deterministically-failing) times four seeds.  Every outcome — done rows,
/// fault-perturbed rows, failure rows — must round-trip the journal.
Sweep build_faulted_grid() {
  Sweep sweep;
  sweep.workload = [](const machine::MachineParams& params, std::uint64_t) {
    return gen::make_offline_workload(
        params.node_count(),
        [](gen::Annotator& a, trace::NodeId self, std::uint32_t nodes) {
          gen::pingpong(a, self, nodes, gen::PingPongParams{2, 256});
        });
  };
  sweep.workload_fingerprint = "pingpong:2x256:v1";
  for (std::size_t variant = 0; variant < 4; ++variant) {
    for (std::size_t s = 0; s < 4; ++s) {
      machine::MachineParams m = machine::presets::t805_multicomputer(2, 1);
      if (variant == 1) {
        m.fault.enabled = true;
        m.fault.seed = 99;
        m.fault.drop_probability = 0.05;
        m.fault.ack_timeout = 500 * kUs;
        m.fault.max_retries = 12;
      } else if (variant == 2) {
        m.fault.enabled = true;
        m.fault.max_retries = 12;
        m.fault.ack_timeout = 500 * kUs;
        m.fault.link_events.push_back(
            {.a = 0, .b = 1, .down_at = 0, .up_at = 5000 * kUs});
      }
      ExperimentPoint& p = sweep.add(
          m, "v" + std::to_string(variant) + "-s" + std::to_string(s));
      p.seed = 1000 + 16 * variant + s;
      if (variant == 3) {
        p.workload = [](const machine::MachineParams&,
                        std::uint64_t) -> trace::Workload {
          throw std::runtime_error("deterministic failure point");
        };
      }
    }
  }
  return sweep;
}

std::size_t journal_lines(const std::string& path) {
  std::ifstream in(path);
  std::size_t n = 0;
  std::string line;
  while (std::getline(in, line)) ++n;
  return n;
}

TEST(SweepResumeTest, KillMidGridThenResumeIsByteIdentical) {
  const std::string dir = make_temp_dir("merm-resume");
  const std::string journal = dir + "/sweep.journal";
  Sweep sweep = build_faulted_grid();
  // Slow the tail of the grid down (inside each isolated child, so results
  // are unaffected) to give the parent a reliable window to SIGKILL the
  // engine with the grid only partially journaled.
  sweep.configure = [](core::Workbench&, const ExperimentPoint&,
                       std::size_t index) {
    if (index >= 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
    }
  };

  SweepOptions opts{.threads = 1,
                    .keep_going = true,
                    .isolate = Isolation::kProcess,
                    .journal_path = journal};

  // Reference: the same sweep, uninterrupted.
  SweepOptions ref_opts = opts;
  ref_opts.journal_path = dir + "/reference.journal";
  const SweepResult reference = SweepEngine(ref_opts).run(sweep);
  ASSERT_EQ(reference.points.size(), 16u);
  EXPECT_GE(reference.failed(), 4u);  // the deterministic-failure variant
  EXPECT_EQ(reference.completed() + reference.failed(), 16u);

  // Run the engine in a child process and SIGKILL it once the journal holds
  // at least three finalized rows (point 3 is then mid-sleep: killed while
  // the grid is provably incomplete).
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    SweepEngine engine(opts);
    SweepResult r;
    try {
      engine.run_into(sweep, r);
    } catch (...) {
    }
    ::_exit(0);
  }
  bool enough = false;
  for (int spin = 0; spin < 20000 && !enough; ++spin) {
    enough = journal_lines(journal) >= 1 + 3;
    if (!enough) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ::kill(pid, SIGKILL);
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  ASSERT_TRUE(enough) << "engine child never journaled its first rows";

  SweepEngine engine(opts);
  const SweepResult resumed = engine.resume(sweep, journal);

  EXPECT_GE(resumed.resumed_points, 3u);
  EXPECT_LT(resumed.resumed_points, 16u)
      << "child finished before the kill; the resume replayed everything";
  EXPECT_EQ(csv_of(resumed), csv_of(reference));
  std::ostringstream ja, jb;
  resumed.write_json(ja, {.host_columns = false});
  reference.write_json(jb, {.host_columns = false});
  EXPECT_EQ(ja.str(), jb.str());

  // And a second resume replays the now-complete journal without running
  // anything — same bytes again.
  const SweepResult replay = SweepEngine(opts).resume(sweep, journal);
  EXPECT_EQ(replay.resumed_points, 16u);
  EXPECT_EQ(csv_of(replay), csv_of(reference));
}

TEST(SweepResumeTest, ResumeRefusesAForeignJournal) {
  const std::string dir = make_temp_dir("merm-resume-foreign");
  Sweep sweep = build_faulted_grid();
  SweepOptions opts{.threads = 1,
                    .keep_going = true,
                    .journal_path = dir + "/a.journal"};
  (void)SweepEngine(opts).run(sweep);

  // Any change to the grid identity — here a different base seed — must be
  // refused rather than silently mixing rows from two different sweeps.
  Sweep other = build_faulted_grid();
  for (ExperimentPoint& p : other.points) p.seed += 1;
  EXPECT_THROW(
      (void)SweepEngine(opts).resume(other, dir + "/a.journal"),
      std::runtime_error);
}

TEST(SweepResumeTest, ResumeWithoutAJournalThrows) {
  const std::string dir = make_temp_dir("merm-resume-missing");
  Sweep sweep = build_faulted_grid();
  SweepEngine engine({.threads = 1, .keep_going = true});
  EXPECT_THROW((void)engine.resume(sweep, dir + "/nope.journal"),
               std::runtime_error);
}

TEST(SweepResumeTest, TornTailIsDiscardedAndCompleteRowsReplay) {
  const std::string dir = make_temp_dir("merm-resume-torn");
  const std::string journal = dir + "/sweep.journal";

  std::atomic<int> executions{0};
  Sweep sweep;
  sweep.workload = [&executions](const machine::MachineParams& params,
                                 std::uint64_t) {
    executions.fetch_add(1);
    return gen::make_offline_workload(
        params.node_count(),
        [](gen::Annotator& a, trace::NodeId self, std::uint32_t nodes) {
          gen::pingpong(a, self, nodes, gen::PingPongParams{1, 64});
        });
  };
  for (int i = 0; i < 4; ++i) {
    sweep.add(machine::presets::t805_multicomputer(2, 1),
              "pt-" + std::to_string(i));
  }

  SweepOptions opts{.threads = 1, .journal_path = journal};
  const SweepResult first = SweepEngine(opts).run(sweep);
  EXPECT_EQ(executions.load(), 4);

  // Simulate a crash mid-append: half a row, no checksum.
  {
    std::ofstream out(journal, std::ios::app);
    out << "4\tr1\tgarbage-torn-li";
  }

  const SweepResult resumed = SweepEngine(opts).resume(sweep, journal);
  EXPECT_EQ(executions.load(), 4) << "complete rows must not re-run";
  EXPECT_EQ(resumed.resumed_points, 4u);
  EXPECT_EQ(csv_of(resumed), csv_of(first));
}

TEST(SweepResumeTest, OverfullJournalIsRefusedNotSilentlyReplayed) {
  const std::string dir = make_temp_dir("merm-resume-overfull");
  const std::string journal = dir + "/sweep.journal";

  Sweep sweep;
  sweep.workload = [](const machine::MachineParams& params, std::uint64_t) {
    return gen::make_offline_workload(
        params.node_count(),
        [](gen::Annotator& a, trace::NodeId self, std::uint32_t nodes) {
          gen::pingpong(a, self, nodes, gen::PingPongParams{1, 64});
        });
  };
  for (int i = 0; i < 4; ++i) {
    sweep.add(machine::presets::t805_multicomputer(2, 1),
              "pt-" + std::to_string(i));
  }

  SweepOptions opts{.threads = 1, .journal_path = journal};
  (void)SweepEngine(opts).run(sweep);

  // A duplicated tail: checksum-valid rows beyond the grid size, as a buggy
  // concatenation (`cat a.journal >> b.journal` of the same grid) would
  // produce.  The header still names the right grid, so before the row-count
  // guard this replayed quietly with later duplicates overwriting earlier
  // rows.  It must be a clear refusal instead.
  std::vector<std::string> lines;
  {
    std::ifstream in(journal);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 1u + 4u);  // header + one row per point
  {
    std::ofstream out(journal, std::ios::app);
    out << lines[1] << "\n" << lines[2] << "\n";
  }

  try {
    (void)SweepEngine(opts).resume(sweep, journal);
    FAIL() << "resume accepted a journal holding more rows than the grid";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("rows for a grid"),
              std::string::npos)
        << "unexpected error: " << e.what();
  }
}

}  // namespace
}  // namespace merm::explore
