// Degraded-mode sweeps: fault-injected grids must stay bit-identical across
// serial execution and every engine thread count (the FaultPlan RNG and all
// scripted transitions live inside each point's own event loop), and a point
// whose faults make it hang must surface as a per-point failure row carrying
// the hang diagnostic instead of silently finishing or killing the grid.
#include "explore/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "gen/apps.hpp"
#include "trace/stream.hpp"

namespace merm::explore {
namespace {

constexpr sim::Tick kUs = sim::kTicksPerMicrosecond;

/// (simulated_time, operations, messages, nic retries) per point — retries
/// make fault-path divergence visible even when timing happens to agree.
using Fingerprint =
    std::vector<std::tuple<sim::Tick, std::uint64_t, std::uint64_t, double>>;

MetricProbe retry_probe() {
  return [](core::Workbench& wb, const core::RunResult&) {
    double retries = 0.0;
    double reroutes = 0.0;
    for (std::uint32_t n = 0; n < wb.machine().node_count(); ++n) {
      retries += static_cast<double>(wb.machine().comm_node(n).retries.value());
      reroutes +=
          static_cast<double>(wb.machine().comm_node(n).reroutes.value());
    }
    return std::vector<std::pair<std::string, double>>{{"retries", retries},
                                                       {"reroutes", reroutes}};
  };
}

/// Six fault-injected points: scripted outages, random loss, and both mixed.
Sweep build_faulty_grid() {
  Sweep sweep;
  sweep.workload = [](const machine::MachineParams& params, std::uint64_t) {
    return gen::make_offline_workload(
        params.node_count(),
        [](gen::Annotator& a, trace::NodeId self, std::uint32_t nodes) {
          gen::stencil_spmd(a, self, nodes, gen::StencilParams{16, 2});
        });
  };
  sweep.probe = retry_probe();

  const auto with_faults = [](machine::MachineParams m,
                              double drop) {
    m.fault.enabled = true;
    m.fault.seed = 99;
    m.fault.drop_probability = drop;
    m.fault.ack_timeout = 500 * kUs;
    m.fault.max_retries = 12;
    return m;
  };

  sweep.add(with_faults(machine::presets::t805_multicomputer(2, 2), 0.0),
            "t805-clean");
  machine::MachineParams outage =
      with_faults(machine::presets::t805_multicomputer(2, 2), 0.0);
  outage.fault.link_events.push_back(
      {.a = 0, .b = 1, .down_at = 0, .up_at = 50000 * kUs});
  sweep.add(outage, "t805-outage");
  sweep.add(with_faults(machine::presets::t805_multicomputer(2, 2), 0.2),
            "t805-lossy");
  sweep.add(with_faults(machine::presets::generic_risc(2, 2), 0.2),
            "risc-lossy");
  machine::MachineParams mixed =
      with_faults(machine::presets::generic_risc(2, 2), 0.2);
  mixed.fault.link_events.push_back(
      {.a = 0, .b = 1, .down_at = 100 * kUs, .up_at = 80000 * kUs});
  sweep.add(mixed, "risc-mixed");
  sweep.add(with_faults(machine::presets::ipsc860_hypercube(4), 0.02),
            "ipsc860-lossy");
  return sweep;
}

double metric(const PointResult& p, const std::string& name) {
  for (const auto& [key, value] : p.metrics) {
    if (key == name) return value;
  }
  return -1.0;
}

Fingerprint fingerprint(const SweepResult& result) {
  Fingerprint fp;
  for (const PointResult& p : result.points) {
    EXPECT_TRUE(p.done()) << p.label << ": " << p.error;
    EXPECT_TRUE(p.run.completed) << p.label;
    fp.emplace_back(p.run.simulated_time, p.run.operations, p.run.messages,
                    metric(p, "retries"));
  }
  return fp;
}

TEST(SweepFaultTest, FaultedGridIsBitIdenticalAcrossThreadCounts) {
  const Sweep sweep = build_faulty_grid();

  // Serial reference: plain Workbench loop, no engine.
  Fingerprint reference;
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    const ExperimentPoint& point = sweep.points[i];
    core::Workbench wb(point.params);
    trace::Workload w =
        sweep.workload(point.params, point_seed(sweep.base_seed, i));
    const core::RunResult r = wb.run_detailed(w);
    EXPECT_TRUE(r.completed) << point.label;
    double retries = 0.0;
    for (std::uint32_t n = 0; n < wb.machine().node_count(); ++n) {
      retries += static_cast<double>(wb.machine().comm_node(n).retries.value());
    }
    reference.emplace_back(r.simulated_time, r.operations, r.messages,
                           retries);
  }

  for (const unsigned threads : {1u, 2u, 4u}) {
    SweepEngine engine({.threads = threads});
    const SweepResult result = engine.run(sweep);
    EXPECT_EQ(fingerprint(result), reference)
        << "faulted grid diverged on " << threads << " thread(s)";
  }
}

TEST(SweepFaultTest, RepeatedFaultedRunsAreIdentical) {
  const Sweep sweep = build_faulty_grid();
  SweepEngine engine({.threads = 4});
  const Fingerprint first = fingerprint(engine.run(sweep));
  const Fingerprint second = fingerprint(engine.run(sweep));
  EXPECT_EQ(first, second);
}

TEST(SweepFaultTest, ScriptedOutageActuallyPerturbsThePoint) {
  const Sweep sweep = build_faulty_grid();
  const SweepResult result = SweepEngine({.threads = 2}).run(sweep);
  // The outage point rerouted traffic; the lossy points retransmitted.
  EXPECT_GT(metric(result.points[1], "reroutes"), 0.0);
  EXPECT_GT(metric(result.points[2], "retries"), 0.0);
  // And the clean fault-enabled point matches nothing-injected behaviour:
  // zero retries, zero reroutes.
  EXPECT_EQ(metric(result.points[0], "retries"), 0.0);
  EXPECT_EQ(metric(result.points[0], "reroutes"), 0.0);
}

TEST(SweepFaultTest, HungFaultedPointBecomesFailureRowUnderKeepGoing) {
  Sweep sweep;
  sweep.workload = [](const machine::MachineParams& params, std::uint64_t) {
    return gen::make_offline_workload(
        params.node_count(),
        [](gen::Annotator& a, trace::NodeId self, std::uint32_t nodes) {
          gen::pingpong(a, self, nodes, gen::PingPongParams{2, 256});
        });
  };
  sweep.add(machine::presets::t805_multicomputer(2, 1), "healthy");
  // Node 1 never comes back and sync sends run out of retries quickly, so
  // the pingpong can never complete on this point.
  machine::MachineParams doomed = machine::presets::t805_multicomputer(2, 1);
  doomed.fault.enabled = true;
  doomed.fault.max_retries = 1;
  doomed.fault.ack_timeout = 100 * kUs;
  doomed.fault.node_events.push_back({.node = 1, .down_at = 0});
  sweep.add(doomed, "doomed");

  SweepEngine engine({.threads = 2, .keep_going = true});
  const SweepResult result = engine.run(sweep);  // must not throw

  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_EQ(result.points[0].status, PointResult::Status::kDone);
  EXPECT_TRUE(result.points[0].run.completed);
  EXPECT_EQ(result.points[1].status, PointResult::Status::kFailed);
  EXPECT_FALSE(result.points[1].error.empty());
  EXPECT_EQ(result.completed(), 1u);
  EXPECT_EQ(result.failed(), 1u);
}

TEST(SweepFaultTest, HangingFaultedPointCarriesTheDiagnostic) {
  // A workload whose receive tags never match hangs rather than errors; a
  // fault-enabled point treats that hang as a failure (fail_on_hang implied)
  // and the row's error carries the simulator's blocked-operation report.
  Sweep sweep;
  sweep.workload = [](const machine::MachineParams& params, std::uint64_t) {
    trace::Workload w;
    auto sender = std::make_unique<trace::VectorSource>();
    sender->push(trace::Operation::asend(64, 1, /*tag=*/7));
    auto receiver = std::make_unique<trace::VectorSource>();
    receiver->push(trace::Operation::recv(0, /*tag=*/99));
    w.sources.push_back(std::move(sender));
    w.sources.push_back(std::move(receiver));
    (void)params;
    return w;
  };
  machine::MachineParams m = machine::presets::t805_multicomputer(2, 1);
  m.fault.enabled = true;  // implies fail_on_hang for this point
  sweep.add(m, "mismatched-tags");

  SweepEngine engine({.threads = 1, .keep_going = true});
  const SweepResult result = engine.run(sweep);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_EQ(result.points[0].status, PointResult::Status::kFailed);
  EXPECT_NE(result.points[0].error.find("recv from 0 tag=99"),
            std::string::npos)
      << result.points[0].error;
}

}  // namespace
}  // namespace merm::explore
