// Cross-thread analogue of tests/sim/determinism_test.cpp: the same grid of
// experiment points must produce bit-identical per-point results whether it
// runs serially (a plain Workbench loop), on the engine with 1, 2, or 4
// threads, or repeatedly in any of those modes.  Per-point seeds derive from
// grid position alone, so nothing about scheduling can leak into results.
#include "explore/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "gen/apps.hpp"
#include "gen/stochastic.hpp"

namespace merm::explore {
namespace {

using Fingerprint =
    std::vector<std::tuple<sim::Tick, std::uint64_t, std::uint64_t>>;

WorkloadFactory stochastic_task_factory() {
  return [](const machine::MachineParams& params, std::uint64_t seed) {
    gen::StochasticDescription desc;
    desc.task_level = true;
    desc.rounds = 3;
    desc.comm.pattern = gen::CommPattern::kRandomPerm;
    desc.seed = seed;  // the engine's per-point seed drives the traffic
    return gen::make_stochastic_task_workload(desc, params.node_count());
  };
}

/// 8 points: six detailed architectures under an annotated stencil plus two
/// task-level points whose stochastic traffic depends on the point seed.
Sweep build_grid() {
  Sweep sweep;
  sweep.workload = [](const machine::MachineParams& params, std::uint64_t) {
    return gen::make_offline_workload(
        params.node_count(),
        [](gen::Annotator& a, trace::NodeId self, std::uint32_t nodes) {
          gen::stencil_spmd(a, self, nodes, gen::StencilParams{16, 2});
        });
  };
  sweep.add(machine::presets::t805_multicomputer(2, 1), "t805-2x1");
  sweep.add(machine::presets::t805_multicomputer(2, 2), "t805-2x2");
  sweep.add(machine::presets::generic_risc(2, 1), "risc-2x1");
  sweep.add(machine::presets::generic_risc(2, 2), "risc-2x2");
  sweep.add(machine::presets::ipsc860_hypercube(4), "ipsc860-4");
  sweep.add(machine::presets::powerpc601_node(), "ppc601");
  for (int i = 0; i < 2; ++i) {
    ExperimentPoint& p =
        sweep.add(machine::presets::generic_risc(2, 2),
                  "stochastic-task-" + std::to_string(i));
    p.level = node::SimulationLevel::kTaskLevel;
    p.workload = stochastic_task_factory();
  }
  return sweep;
}

Fingerprint fingerprint(const SweepResult& result) {
  Fingerprint fp;
  for (const PointResult& p : result.points) {
    EXPECT_TRUE(p.done()) << p.label << ": " << p.error;
    EXPECT_TRUE(p.run.completed) << p.label;
    fp.emplace_back(p.run.simulated_time, p.run.operations, p.run.messages);
  }
  return fp;
}

/// The serial reference: no engine, just the plain Workbench loop every
/// pre-engine driver used, with the engine's seed derivation.
Fingerprint serial_reference(const Sweep& sweep) {
  Fingerprint fp;
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    const ExperimentPoint& point = sweep.points[i];
    const WorkloadFactory& factory =
        point.workload ? point.workload : sweep.workload;
    core::Workbench wb(point.params);
    trace::Workload w =
        factory(point.params, point_seed(sweep.base_seed, i));
    const core::RunResult r = point.level == node::SimulationLevel::kDetailed
                                  ? wb.run_detailed(w)
                                  : wb.run_task_level(w);
    EXPECT_TRUE(r.completed) << point.label;
    fp.emplace_back(r.simulated_time, r.operations, r.messages);
  }
  return fp;
}

TEST(SweepDeterminismTest, ParallelMatchesSerialBitExactly) {
  const Sweep sweep = build_grid();
  const Fingerprint reference = serial_reference(sweep);
  ASSERT_EQ(reference.size(), 8u);

  for (const unsigned threads : {1u, 2u, 4u}) {
    SweepEngine engine({.threads = threads});
    const SweepResult result = engine.run(sweep);
    EXPECT_EQ(result.threads, std::min<unsigned>(threads, 8u));
    EXPECT_EQ(fingerprint(result), reference)
        << "results diverged on " << threads << " thread(s)";
  }
}

TEST(SweepDeterminismTest, RepeatedRunsIdenticalPerMode) {
  const Sweep sweep = build_grid();
  for (const unsigned threads : {1u, 2u, 4u}) {
    SweepEngine engine({.threads = threads});
    const Fingerprint first = fingerprint(engine.run(sweep));
    const Fingerprint second = fingerprint(engine.run(sweep));
    EXPECT_EQ(first, second) << threads << " thread(s) not reproducible";
  }
}

TEST(SweepDeterminismTest, SeedsDeriveFromIndexNotSchedule) {
  const Sweep sweep = build_grid();
  SweepEngine engine({.threads = 4});
  const SweepResult result = engine.run(sweep);
  ASSERT_EQ(result.points.size(), 8u);
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    EXPECT_EQ(result.points[i].seed, point_seed(sweep.base_seed, i)) << i;
  }
  // A different base seed must reach the seed-sensitive points.
  Sweep reseeded = build_grid();
  reseeded.base_seed = sweep.base_seed + 1;
  const SweepResult other = SweepEngine({.threads = 2}).run(reseeded);
  EXPECT_NE(other.points[6].run.simulated_time,
            result.points[6].run.simulated_time)
      << "stochastic task point ignored its seed";
}

TEST(SweepDeterminismTest, AggregationAndExportCoverEveryPoint) {
  const Sweep sweep = build_grid();
  SweepEngine engine({.threads = 2});
  const SweepResult result = engine.run(sweep);

  EXPECT_EQ(result.completed(), 8u);
  EXPECT_EQ(result.failed(), 0u);
  EXPECT_EQ(result.point_host_seconds.count(), 8u);
  EXPECT_GE(result.host_seconds, 0.0);

  std::ostringstream csv;
  result.write_csv(csv);
  std::size_t lines = 0;
  for (const char c : csv.str()) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 1u + 8u);  // header + one row per point
  EXPECT_NE(csv.str().find("t805-2x1,done"), std::string::npos);

  std::ostringstream json;
  result.write_json(json);
  EXPECT_EQ(json.str().front(), '[');
  EXPECT_NE(json.str().find("\"label\": \"stochastic-task-1\""),
            std::string::npos);

  std::ostringstream table;
  result.to_table().print(table);
  EXPECT_NE(table.str().find("ppc601"), std::string::npos);
}

}  // namespace
}  // namespace merm::explore
