// Scheduler invariance at the sweep level: a fault-injected 4x4 grid must
// produce bit-identical simulated times, operation/message counts, and NIC
// retry totals whether the kernel runs the fast-path scheduler (local time
// cursors, same-tick lane, zero-delay inlining) or the reference scheduler
// (MERM_REFERENCE_SCHED semantics), and whether the engine runs the points
// serially or on worker threads.  The mode flag is a process-wide atomic
// read at Simulator construction, so it is safe to flip around threaded
// engine runs; this file carries the "tsan" label for exactly that reason.
#include "explore/sweep.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "gen/apps.hpp"
#include "sim/simulator.hpp"

namespace merm::explore {
namespace {

constexpr sim::Tick kUs = sim::kTicksPerMicrosecond;

/// (simulated_time, operations, messages, nic retries) per point.  Kernel
/// event counts and host seconds are excluded: the fast path exists to
/// change them.
using Fingerprint =
    std::vector<std::tuple<sim::Tick, std::uint64_t, std::uint64_t, double>>;

/// Fault-injected 4x4 mesh points: clean, scripted outage, random loss.
Sweep build_grid() {
  Sweep sweep;
  sweep.workload = [](const machine::MachineParams& params, std::uint64_t) {
    return gen::make_offline_workload(
        params.node_count(),
        [](gen::Annotator& a, trace::NodeId self, std::uint32_t nodes) {
          gen::stencil_spmd(a, self, nodes, gen::StencilParams{16, 2});
        });
  };
  sweep.probe = [](core::Workbench& wb, const core::RunResult&) {
    double retries = 0.0;
    for (std::uint32_t n = 0; n < wb.machine().node_count(); ++n) {
      retries += static_cast<double>(wb.machine().comm_node(n).retries.value());
    }
    return std::vector<std::pair<std::string, double>>{{"retries", retries}};
  };

  const auto with_faults = [](machine::MachineParams m, double drop) {
    m.fault.enabled = true;
    m.fault.seed = 99;
    m.fault.drop_probability = drop;
    m.fault.ack_timeout = 500 * kUs;
    m.fault.max_retries = 12;
    return m;
  };
  sweep.add(with_faults(machine::presets::t805_multicomputer(4, 4), 0.0),
            "4x4-clean");
  machine::MachineParams outage =
      with_faults(machine::presets::t805_multicomputer(4, 4), 0.0);
  outage.fault.link_events.push_back(
      {.a = 0, .b = 1, .down_at = 0, .up_at = 50000 * kUs});
  sweep.add(outage, "4x4-outage");
  sweep.add(with_faults(machine::presets::t805_multicomputer(4, 4), 0.1),
            "4x4-lossy");
  return sweep;
}

double metric(const PointResult& p, const std::string& name) {
  for (const auto& [key, value] : p.metrics) {
    if (key == name) return value;
  }
  return -1.0;
}

Fingerprint fingerprint(const SweepResult& result) {
  Fingerprint fp;
  for (const PointResult& p : result.points) {
    EXPECT_TRUE(p.done()) << p.label << ": " << p.error;
    EXPECT_TRUE(p.run.completed) << p.label;
    fp.emplace_back(p.run.simulated_time, p.run.operations, p.run.messages,
                    metric(p, "retries"));
  }
  return fp;
}

// PDES inside sweep points: the same faulted grid run with conservative
// parallel simulation inside each point must be bit-identical across every
// combination of sweep threads and PDES workers.  sim_partitions is pinned
// (one partition per node on the 4x4 grid): the auto default ties the
// partitioning to sim_threads, and different partitionings resolve shared
// network streams in different orders.  (The PDES reference is its own
// baseline — barrier-ordered link reservations are not bit-compatible with
// the serial engine's global-event-order contention on general traffic.)
TEST(SweepSchedInvarianceTest, PdesPointsAgreeAcrossSweepAndSimThreadCounts) {
  const Sweep sweep = build_grid();
  const Fingerprint reference = fingerprint(
      SweepEngine({.threads = 1, .sim_threads = 1, .sim_partitions = 16})
          .run(sweep));
  const std::vector<std::pair<unsigned, unsigned>> combos = {
      {1, 2}, {2, 4}, {4, 2}, {1, 8}};
  for (const auto& [sweep_threads, sim_threads] : combos) {
    const Fingerprint fp =
        fingerprint(SweepEngine({.threads = sweep_threads,
                                 .sim_threads = sim_threads,
                                 .sim_partitions = 16})
                        .run(sweep));
    EXPECT_EQ(fp, reference)
        << "PDES diverged at sweep_threads=" << sweep_threads
        << " sim_threads=" << sim_threads;
  }
}

TEST(SweepSchedInvarianceTest, FaultedGridAgreesAcrossSchedulersAndThreads) {
  const Sweep sweep = build_grid();

  sim::set_reference_scheduler_override(1);
  const Fingerprint reference = fingerprint(SweepEngine({.threads = 1}).run(sweep));

  sim::set_reference_scheduler_override(0);
  for (const unsigned threads : {1u, 2u, 4u}) {
    const Fingerprint fast = fingerprint(SweepEngine({.threads = threads}).run(sweep));
    EXPECT_EQ(fast, reference)
        << "fast scheduler diverged from reference on " << threads
        << " thread(s)";
  }
  sim::set_reference_scheduler_override(-1);
}

}  // namespace
}  // namespace merm::explore
