// The progress hook (SweepOptions::on_point_complete), the grid content
// hash (SweepEngine::grid_hash), and memo-store pruning — the library
// surface the sweep service is built on.
#include "explore/sweep.hpp"

#include <gtest/gtest.h>

#include <unistd.h>
#include <utime.h>

#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "explore/journal.hpp"
#include "explore/memo.hpp"
#include "explore/progress.hpp"
#include "gen/apps.hpp"

namespace merm::explore {
namespace {

std::string make_temp_dir(const char* tag) {
  std::string tmpl = ::testing::TempDir() + tag + std::string("-XXXXXX");
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* dir = ::mkdtemp(buf.data());
  EXPECT_NE(dir, nullptr);
  return dir != nullptr ? dir : "";
}

/// Six points, two of which fail deterministically.
Sweep build_grid() {
  Sweep sweep;
  sweep.workload = [](const machine::MachineParams& params, std::uint64_t) {
    return gen::make_offline_workload(
        params.node_count(),
        [](gen::Annotator& a, trace::NodeId self, std::uint32_t nodes) {
          gen::pingpong(a, self, nodes, gen::PingPongParams{1, 64});
        });
  };
  sweep.workload_fingerprint = "pingpong:1x64:progress-test";
  for (int i = 0; i < 6; ++i) {
    ExperimentPoint& p = sweep.add(machine::presets::t805_multicomputer(2, 1),
                                   "pt-" + std::to_string(i));
    p.seed = 7000 + i;
    if (i == 2 || i == 4) {
      p.workload = [](const machine::MachineParams&,
                      std::uint64_t) -> trace::Workload {
        throw std::runtime_error("deterministic failure point");
      };
    }
  }
  return sweep;
}

TEST(SweepProgressTest, HookSeesEveryRowWithCumulativeCounts) {
  const Sweep sweep = build_grid();
  std::vector<SweepProgress> seen;
  std::vector<PointResult::Status> row_status;
  SweepOptions opts;
  opts.threads = 2;
  opts.keep_going = true;
  opts.on_point_complete = [&](const SweepProgress& p) {
    ASSERT_NE(p.row, nullptr);
    seen.push_back(p);
    row_status.push_back(p.row->status);
  };
  const SweepResult result = SweepEngine(opts).run(sweep);

  ASSERT_EQ(seen.size(), 6u);  // one call per finalized row
  std::size_t failures_seen = 0;
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].total, 6u);
    // Calls are serialized under the engine's mutex, so `done` is exactly
    // the call ordinal even on a threaded pool.
    EXPECT_EQ(seen[i].done, i + 1);
    EXPECT_LE(seen[i].failed, seen[i].done);
    EXPECT_EQ(seen[i].memo_hits, 0u);
    EXPECT_EQ(seen[i].resumed, 0u);
    if (row_status[i] == PointResult::Status::kFailed) ++failures_seen;
  }
  EXPECT_EQ(failures_seen, 2u);
  EXPECT_EQ(seen.back().failed, 2u);
  EXPECT_EQ(result.failed(), 2u);
}

TEST(SweepProgressTest, HookSeesMemoReplaysAndCountsHits) {
  const std::string dir = make_temp_dir("merm-progress-memo");
  const Sweep sweep = build_grid();
  SweepOptions opts;
  opts.threads = 1;
  opts.keep_going = true;
  opts.memo_dir = dir;
  (void)SweepEngine(opts).run(sweep);  // populate the store (done rows only)

  std::vector<SweepProgress> seen;
  opts.on_point_complete = [&](const SweepProgress& p) { seen.push_back(p); };
  const SweepResult second = SweepEngine(opts).run(sweep);
  ASSERT_EQ(seen.size(), 6u);
  EXPECT_EQ(seen.back().memo_hits, 4u);  // the two failures re-ran
  EXPECT_EQ(second.memo_hits, 4u);
}

TEST(SweepProgressTest, ThrowingHookCancelsLikeAFirstFailure) {
  const Sweep sweep = build_grid();
  struct CancelRequested {};
  SweepOptions opts;
  opts.threads = 1;
  opts.keep_going = true;  // the hook cancels even a keep-going sweep
  opts.on_point_complete = [](const SweepProgress& p) {
    if (p.done == 2) throw CancelRequested{};
  };
  SweepEngine engine(opts);
  SweepResult out;
  EXPECT_THROW(engine.run_into(sweep, out), CancelRequested);
  // The two finalized rows survive in the result; the rest were cancelled.
  std::size_t finalized = 0, skipped = 0;
  for (const PointResult& p : out.points) {
    if (p.status == PointResult::Status::kSkipped) ++skipped;
    if (p.status != PointResult::Status::kPending &&
        p.status != PointResult::Status::kSkipped) {
      ++finalized;
    }
  }
  EXPECT_EQ(finalized, 2u);
  EXPECT_EQ(skipped, 4u);
}

TEST(SweepProgressTest, GridHashIsTheJournalHeaderIdentity) {
  const std::string dir = make_temp_dir("merm-grid-hash");
  const std::string journal = dir + "/sweep.journal";
  const Sweep sweep = build_grid();
  SweepOptions opts;
  opts.threads = 1;
  opts.keep_going = true;
  opts.journal_path = journal;
  SweepEngine engine(opts);
  (void)engine.run(sweep);

  // Loading the journal under the externally computed hash must succeed —
  // that is the contract the service spool depends on.
  const std::string hash = engine.grid_hash(sweep);
  const auto rows = SweepJournal::load(journal, hash, sweep.size());
  EXPECT_EQ(rows.size(), sweep.size());

  // And any identity change moves the hash.
  Sweep other = build_grid();
  other.points[3].seed += 1;
  EXPECT_NE(engine.grid_hash(other), hash);
  Sweep refingered = build_grid();
  refingered.workload_fingerprint = "pingpong:1x64:other";
  EXPECT_NE(engine.grid_hash(refingered), hash);
}

TEST(SweepProgressTest, MemoPruneEvictsByAgeThenSize) {
  const std::string dir = make_temp_dir("merm-memo-prune");
  const Sweep sweep = build_grid();
  SweepOptions opts;
  opts.threads = 1;
  opts.keep_going = true;
  opts.memo_dir = dir;
  (void)SweepEngine(opts).run(sweep);

  MemoStore store(dir);
  // Both bounds zero: a no-op scan that still reports the store size.
  const MemoPruneStats scan = store.prune({});
  EXPECT_EQ(scan.scanned, 4u);  // failures are not memoized
  EXPECT_EQ(scan.evicted, 0u);
  EXPECT_GT(scan.bytes_scanned, 0u);

  // Age-based: backdate two entries and evict anything older than an hour.
  std::vector<std::string> entries;
  {
    const std::string marker = dir + "/entries.txt";
    const std::string cmd = "ls " + dir + " > " + marker;
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    std::ifstream in(marker);
    std::string name;
    while (std::getline(in, name)) {
      if (name != "entries.txt") entries.push_back(dir + "/" + name);
    }
  }
  ASSERT_EQ(entries.size(), 4u);
  struct utimbuf old_times {};
  old_times.actime = old_times.modtime = 1'000'000;  // 1970, definitely old
  ASSERT_EQ(::utime(entries[0].c_str(), &old_times), 0);
  ASSERT_EQ(::utime(entries[1].c_str(), &old_times), 0);
  const MemoPruneStats aged = store.prune({.max_age_s = 3600.0});
  EXPECT_EQ(aged.evicted, 2u);
  EXPECT_EQ(store.evictions(), 2u);

  // Size-based: a 1-byte budget evicts everything that remains.
  const MemoPruneStats sized = store.prune({.max_bytes = 1});
  EXPECT_EQ(sized.evicted, 2u);
  EXPECT_EQ(store.evictions(), 4u);

  // The emptied store yields no hits: the next sweep re-runs every point.
  const SweepResult after = SweepEngine(opts).run(sweep);
  EXPECT_EQ(after.memo_hits, 0u);
  EXPECT_EQ(after.memo_misses, 6u);
}

// --- ThroughputMeter (the --progress / daemon ETA estimator) ---------------

using Clock = ThroughputMeter::Clock;

SweepProgress progress_row(std::size_t done, std::size_t total,
                           const PointResult* row) {
  SweepProgress p;
  p.done = done;
  p.total = total;
  p.row = row;
  return p;
}

TEST(ThroughputMeterTest, FreshCompletionsDriveRateAndEta) {
  ThroughputMeter meter;
  PointResult fresh;
  const Clock::time_point t0 = Clock::now();
  ThroughputMeter::Estimate est =
      meter.note(progress_row(1, 10, &fresh), t0);
  EXPECT_EQ(est.points_per_s, 0.0);  // one sample: no basis for a rate
  EXPECT_LT(est.eta_s, 0.0);
  est = meter.note(progress_row(2, 10, &fresh), t0 + std::chrono::seconds(1));
  EXPECT_DOUBLE_EQ(est.points_per_s, 1.0);
  EXPECT_DOUBLE_EQ(est.eta_s, 8.0);
  est = meter.note(progress_row(3, 10, &fresh), t0 + std::chrono::seconds(2));
  EXPECT_DOUBLE_EQ(est.points_per_s, 1.0);
  EXPECT_DOUBLE_EQ(est.eta_s, 7.0);
  EXPECT_EQ(est.fresh, 3u);
}

TEST(ThroughputMeterTest, MemoHitsAndResumedRowsDoNotInflateTheRate) {
  // Regression: replayed rows finalize in microseconds; counting them in
  // the rate window made a warm-cache sweep report absurd points/s and a
  // near-zero ETA for the real work remaining.
  ThroughputMeter meter;
  PointResult fresh;
  PointResult memo;
  memo.memo_hit = true;
  PointResult resumed;
  resumed.resumed = true;

  const Clock::time_point t0 = Clock::now();
  meter.note(progress_row(1, 100, &fresh), t0);
  ThroughputMeter::Estimate est =
      meter.note(progress_row(2, 100, &fresh), t0 + std::chrono::seconds(1));
  EXPECT_DOUBLE_EQ(est.points_per_s, 1.0);

  // A burst of 50 replayed rows lands in the same instant.
  const Clock::time_point burst = t0 + std::chrono::seconds(1);
  for (std::size_t i = 0; i < 25; ++i) {
    est = meter.note(progress_row(3 + i, 100, &memo), burst);
  }
  for (std::size_t i = 0; i < 25; ++i) {
    est = meter.note(progress_row(28 + i, 100, &resumed), burst);
  }
  // The rate still reflects the two fresh rows only...
  EXPECT_DOUBLE_EQ(est.points_per_s, 1.0);
  EXPECT_EQ(est.fresh, 2u);
  // ...while the replayed rows did shrink the remaining-work estimate.
  EXPECT_DOUBLE_EQ(est.eta_s, 48.0);

  // The next fresh row keeps the window honest: 3 fresh rows over 2 s.
  est = meter.note(progress_row(53, 100, &fresh),
                   t0 + std::chrono::seconds(2));
  EXPECT_DOUBLE_EQ(est.points_per_s, 1.0);
  EXPECT_EQ(est.fresh, 3u);
}

TEST(ThroughputMeterTest, ReplayOnlyStreamReportsNoRate) {
  ThroughputMeter meter;
  PointResult memo;
  memo.memo_hit = true;
  const Clock::time_point t0 = Clock::now();
  ThroughputMeter::Estimate est;
  for (std::size_t i = 0; i < 10; ++i) {
    est = meter.note(progress_row(i + 1, 10, &memo),
                     t0 + std::chrono::milliseconds(i));
  }
  EXPECT_EQ(est.points_per_s, 0.0);  // nothing fresh: no rate, no fake ETA
  EXPECT_LT(est.eta_s, 0.0);
  EXPECT_EQ(est.fresh, 0u);
}

TEST(ThroughputMeterTest, WindowSlidesOverOldCompletions) {
  // With a window of 4, the rate tracks the *recent* pace: a sweep that
  // sped up stops being penalized for its slow start.
  ThroughputMeter meter(4);
  PointResult fresh;
  const Clock::time_point t0 = Clock::now();
  ThroughputMeter::Estimate est;
  // Two slow rows (10 s apart), then four fast rows (1 s apart).
  est = meter.note(progress_row(1, 20, &fresh), t0);
  est = meter.note(progress_row(2, 20, &fresh), t0 + std::chrono::seconds(10));
  for (int i = 0; i < 4; ++i) {
    est = meter.note(progress_row(3 + i, 20, &fresh),
                     t0 + std::chrono::seconds(11 + i));
  }
  // Window holds the last 4 completions, all 1 s apart.
  EXPECT_DOUBLE_EQ(est.points_per_s, 1.0);
  EXPECT_DOUBLE_EQ(est.eta_s, 14.0);
}

}  // namespace
}  // namespace merm::explore
