// The acceptance experiment for the engine: a 12-point sweep on >= 4
// threads must beat the serial loop it replaced by >= 2x wall-clock while
// staying bit-identical per point.  The wall-clock assertion needs real
// parallel hardware, so it skips below 4 cores (the determinism half runs
// everywhere via sweep_determinism_test).
#include "explore/sweep.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/host.hpp"
#include "gen/apps.hpp"

namespace merm::explore {
namespace {

/// 12 architectures under a matmul heavy enough that per-point host time
/// dwarfs thread-pool overhead.
Sweep heavy_grid() {
  Sweep sweep;
  sweep.workload = [](const machine::MachineParams& params, std::uint64_t) {
    return gen::make_offline_workload(
        params.node_count(),
        [](gen::Annotator& a, trace::NodeId self, std::uint32_t nodes) {
          gen::matmul_spmd(a, self, nodes, gen::MatmulParams{48});
        });
  };
  for (int i = 0; i < 6; ++i) {
    sweep.add(machine::presets::t805_multicomputer(2, 2),
              "t805-" + std::to_string(i));
    sweep.add(machine::presets::generic_risc(2, 2),
              "risc-" + std::to_string(i));
  }
  return sweep;
}

TEST(SweepSpeedupTest, FourThreadsAtLeastTwiceAsFastAsSerial) {
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 host cores, have "
                 << std::thread::hardware_concurrency();
  }

  const Sweep sweep = heavy_grid();
  ASSERT_EQ(sweep.size(), 12u);

  core::HostTimer serial_timer;
  const SweepResult serial = SweepEngine({.threads = 1}).run(sweep);
  const double serial_seconds = serial_timer.elapsed_seconds();

  core::HostTimer parallel_timer;
  const SweepResult parallel = SweepEngine({.threads = 4}).run(sweep);
  const double parallel_seconds = parallel_timer.elapsed_seconds();

  ASSERT_EQ(serial.completed(), 12u);
  ASSERT_EQ(parallel.completed(), 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(parallel.points[i].run.simulated_time,
              serial.points[i].run.simulated_time)
        << i;
    EXPECT_EQ(parallel.points[i].run.operations,
              serial.points[i].run.operations)
        << i;
    EXPECT_EQ(parallel.points[i].run.messages, serial.points[i].run.messages)
        << i;
  }

  EXPECT_GE(serial_seconds / parallel_seconds, 2.0)
      << "serial " << serial_seconds << " s vs parallel " << parallel_seconds
      << " s";
}

}  // namespace
}  // namespace merm::explore
