// Failure paths and edge cases of the sweep engine: first exception wins and
// propagates, unstarted jobs are cancelled, completed results survive, and
// the empty/single-point grids behave.  Also covers the Workbench side of
// the contract: movability and the cross-thread run audit.
#include "explore/sweep.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "gen/apps.hpp"

namespace merm::explore {
namespace {

WorkloadFactory pingpong_factory() {
  return [](const machine::MachineParams& params, std::uint64_t) {
    return gen::make_offline_workload(
        params.node_count(),
        [](gen::Annotator& a, trace::NodeId self, std::uint32_t nodes) {
          gen::pingpong(a, self, nodes, gen::PingPongParams{2, 256});
        });
  };
}

Sweep cheap_grid(std::size_t points) {
  Sweep sweep;
  sweep.workload = pingpong_factory();
  for (std::size_t i = 0; i < points; ++i) {
    sweep.add(machine::presets::t805_multicomputer(2, 1),
              "pt-" + std::to_string(i));
  }
  return sweep;
}

TEST(SweepFailureTest, FirstErrorPropagatesAndCancelsPendingJobs) {
  Sweep sweep = cheap_grid(8);
  sweep.points[3].workload = [](const machine::MachineParams&,
                                std::uint64_t) -> trace::Workload {
    throw std::runtime_error("boom at 3");
  };

  // One thread makes the claim order deterministic: 0..2 complete, 3 fails,
  // 4..7 are never claimed.
  SweepEngine engine({.threads = 1});
  SweepResult result;
  EXPECT_THROW(
      {
        try {
          engine.run_into(sweep, result);
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "boom at 3");
          throw;
        }
      },
      std::runtime_error);

  ASSERT_EQ(result.points.size(), 8u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(result.points[i].status, PointResult::Status::kDone) << i;
    EXPECT_TRUE(result.points[i].run.completed) << i;
    EXPECT_GT(result.points[i].run.simulated_time, 0u) << i;
  }
  EXPECT_EQ(result.points[3].status, PointResult::Status::kFailed);
  EXPECT_EQ(result.points[3].error, "boom at 3");
  for (std::size_t i = 4; i < 8; ++i) {
    EXPECT_EQ(result.points[i].status, PointResult::Status::kSkipped) << i;
  }
  EXPECT_EQ(result.completed(), 3u);
  EXPECT_EQ(result.failed(), 1u);
}

TEST(SweepFailureTest, ParallelFailureLeavesNoPointPending) {
  Sweep sweep = cheap_grid(8);
  sweep.points[2].workload = [](const machine::MachineParams&,
                                std::uint64_t) -> trace::Workload {
    throw std::runtime_error("parallel boom");
  };

  SweepEngine engine({.threads = 4});
  SweepResult result;
  EXPECT_THROW(engine.run_into(sweep, result), std::runtime_error);

  ASSERT_EQ(result.points.size(), 8u);
  EXPECT_GE(result.failed(), 1u);
  EXPECT_EQ(result.points[2].status, PointResult::Status::kFailed);
  for (const PointResult& p : result.points) {
    EXPECT_NE(p.status, PointResult::Status::kPending) << p.label;
    if (p.done()) {
      EXPECT_TRUE(p.run.completed) << p.label;
    }
  }
}

TEST(SweepFailureTest, MissingWorkloadFactoryIsAnError) {
  Sweep sweep;
  sweep.add(machine::presets::t805_multicomputer(2, 1));
  SweepEngine engine({.threads = 1});
  SweepResult result;
  EXPECT_THROW(engine.run_into(sweep, result), std::invalid_argument);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_EQ(result.points[0].status, PointResult::Status::kFailed);
}

TEST(SweepFailureTest, EmptyGridIsANoOp) {
  Sweep sweep;
  sweep.workload = pingpong_factory();
  SweepEngine engine({.threads = 4});
  const SweepResult result = engine.run(sweep);
  EXPECT_TRUE(result.points.empty());
  EXPECT_EQ(result.completed(), 0u);
  EXPECT_EQ(result.point_host_seconds.count(), 0u);
  EXPECT_GE(result.host_seconds, 0.0);
}

TEST(SweepFailureTest, SinglePointMatchesDirectWorkbenchRun) {
  Sweep sweep = cheap_grid(1);
  const SweepResult result = SweepEngine({.threads = 4}).run(sweep);
  ASSERT_EQ(result.points.size(), 1u);
  ASSERT_TRUE(result.points[0].done());

  core::Workbench wb(machine::presets::t805_multicomputer(2, 1));
  auto w = pingpong_factory()(wb.params(), result.points[0].seed);
  const core::RunResult direct = wb.run_detailed(w);
  EXPECT_EQ(result.points[0].run.simulated_time, direct.simulated_time);
  EXPECT_EQ(result.points[0].run.operations, direct.operations);
  EXPECT_EQ(result.points[0].run.messages, direct.messages);
}

TEST(SweepFailureTest, ForEachRethrowsForPlainJobs) {
  // One thread: claims are strictly 0, 1, ... so the cancellation point is
  // exact — 0 ran, 1 threw, 2..5 never claimed.
  SweepEngine engine({.threads = 1});
  std::vector<int> touched(6, 0);
  EXPECT_THROW(engine.for_each(6,
                               [&](std::size_t i) {
                                 if (i == 1) throw std::logic_error("job 1");
                                 touched[i] = 1;
                               }),
               std::logic_error);
  EXPECT_EQ(touched, (std::vector<int>{1, 0, 0, 0, 0, 0}));
}

TEST(WorkbenchConfinementTest, SecondRunOnAnotherThreadThrows) {
  core::Workbench wb(machine::presets::t805_multicomputer(2, 1));
  auto first = pingpong_factory()(wb.params(), 1);
  EXPECT_TRUE(wb.run_detailed(first).completed);

  bool audited = false;
  std::thread other([&] {
    auto second = pingpong_factory()(wb.params(), 2);
    try {
      wb.run_detailed(second);
    } catch (const std::logic_error&) {
      audited = true;
    }
  });
  other.join();
  EXPECT_TRUE(audited) << "cross-thread reuse of a Workbench must throw";
}

TEST(WorkbenchConfinementTest, MovedWorkbenchRunsOnWorkerThread) {
  // Construct on this thread, move into a worker, run there: the engine's
  // job model.  The confinement pin follows the first *run*, not the
  // constructor.
  std::optional<core::Workbench> slot;
  slot.emplace(machine::presets::t805_multicomputer(2, 1));
  core::Workbench moved = std::move(*slot);

  core::RunResult r;
  std::thread worker([&] {
    auto w = pingpong_factory()(moved.params(), 3);
    r = moved.run_detailed(w);
  });
  worker.join();
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.simulated_time, 0u);
}

}  // namespace
}  // namespace merm::explore
